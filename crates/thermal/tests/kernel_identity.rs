//! Bit-identity of the compiled thermal kernel.
//!
//! PR 4 made the RC hot loop allocation-free by compiling the network
//! topology into flat arrays and routing every integration step through a
//! reusable [`SolverWorkspace`]. The whole point of that rework is that it
//! is *invisible*: these property tests pin down that, over random networks,
//! the compiled kernel and workspace-based stepping produce **bitwise
//! identical** temperatures to the naive allocating paths — which is what
//! keeps `reproduce_all` output byte-stable and the scenario cache valid.

use proptest::prelude::*;

use tbp_arch::units::{Celsius, Seconds};
use tbp_thermal::rc::RcNetwork;
use tbp_thermal::solver::{Solver, SolverKind, SolverWorkspace};

/// Deterministically builds a random-but-valid network from the given knobs.
fn build_network(
    node_caps: &[f64],
    ambient_gs: &[f64],
    edge_a: &[usize],
    edge_b: &[usize],
    edge_gs: &[f64],
    powers: &[f64],
) -> RcNetwork {
    let mut net = RcNetwork::new(Celsius::new(45.0));
    for (i, (&c, &g)) in node_caps.iter().zip(ambient_gs).enumerate() {
        net.add_node(&format!("n{i}"), c, g).expect("valid node");
    }
    let n = node_caps.len();
    for ((&a, &b), &g) in edge_a.iter().zip(edge_b).zip(edge_gs) {
        let (a, b) = (a % n, b % n);
        if a != b {
            net.add_edge(a, b, g).expect("valid edge");
        }
    }
    for (i, &p) in powers.iter().enumerate() {
        if i < n {
            net.set_power(i, p).expect("valid node");
        }
    }
    net
}

proptest! {
    /// The compiled kernel's derivative equals the uncompiled path bit for
    /// bit over random networks, powers and temperature states.
    #[test]
    fn compiled_derivative_is_bit_identical(
        node_caps in proptest::collection::vec(0.01f64..5.0, 2..12),
        ambient_gs in proptest::collection::vec(0.0f64..0.5, 2..12),
        edge_a in proptest::collection::vec(0usize..12, 0..24),
        edge_b in proptest::collection::vec(0usize..12, 24),
        edge_gs in proptest::collection::vec(0.001f64..0.8, 24),
        powers in proptest::collection::vec(0.0f64..2.0, 2..12),
        temps in proptest::collection::vec(20.0f64..110.0, 12),
    ) {
        let n = node_caps.len().min(ambient_gs.len());
        let mut net = build_network(&node_caps[..n], &ambient_gs[..n], &edge_a, &edge_b, &edge_gs, &powers);
        let state: Vec<f64> = temps[..n].to_vec();

        // Naive path: freshly mutated network has no compiled kernel.
        prop_assert!(!net.is_compiled());
        let naive = net.derivative(&state);

        net.ensure_compiled();
        prop_assert!(net.is_compiled());
        let mut compiled = Vec::new();
        net.derivative_into(&state, &mut compiled);

        prop_assert_eq!(naive.len(), compiled.len());
        for (i, (a, b)) in naive.iter().zip(&compiled).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "node {} differs: {} vs {}", i, a, b);
        }

        // The cached stability limit equals the fresh (uncompiled)
        // computation bitwise.
        let cached = net.max_stable_step();
        let fresh = build_network(&node_caps[..n], &ambient_gs[..n], &edge_a, &edge_b, &edge_gs, &powers)
            .max_stable_step();
        prop_assert_eq!(cached.to_bits(), fresh.to_bits());
    }

    /// Stepping through a reusable workspace (the hot path) matches the
    /// allocating `euler_step`/`rk4_step` convenience methods bit for bit,
    /// compiled or not, across a multi-step trajectory.
    #[test]
    fn workspace_stepping_is_bit_identical(
        node_caps in proptest::collection::vec(0.05f64..5.0, 2..10),
        ambient_gs in proptest::collection::vec(0.001f64..0.5, 2..10),
        edge_a in proptest::collection::vec(0usize..10, 1..18),
        edge_b in proptest::collection::vec(0usize..10, 18),
        edge_gs in proptest::collection::vec(0.001f64..0.5, 18),
        powers in proptest::collection::vec(0.0f64..2.0, 2..10),
        steps in 1usize..25,
        rk4 in any::<bool>(),
    ) {
        let n = node_caps.len().min(ambient_gs.len());
        let mut alloc_net = build_network(&node_caps[..n], &ambient_gs[..n], &edge_a, &edge_b, &edge_gs, &powers);
        let mut ws_net = alloc_net.clone();
        ws_net.ensure_compiled();
        let mut workspace = SolverWorkspace::new();

        let dt = 0.2 * alloc_net.max_stable_step().min(10.0);
        for _ in 0..steps {
            if rk4 {
                alloc_net.rk4_step(dt);
                ws_net.rk4_step_with(dt, &mut workspace);
            } else {
                alloc_net.euler_step(dt);
                ws_net.euler_step_with(dt, &mut workspace);
            }
        }
        for i in 0..n {
            let a = alloc_net.temperature(i).as_celsius();
            let b = ws_net.temperature(i).as_celsius();
            prop_assert_eq!(a.to_bits(), b.to_bits(), "node {} differs: {} vs {}", i, a, b);
        }
    }

    /// `Solver::advance` (fresh workspace per call) and
    /// `Solver::advance_with` (shared workspace) produce bitwise identical
    /// trajectories, including the sub-stepping decisions.
    #[test]
    fn solver_advance_with_matches_advance(
        node_caps in proptest::collection::vec(0.01f64..1.0, 2..8),
        ambient_gs in proptest::collection::vec(0.01f64..0.5, 2..8),
        edge_a in proptest::collection::vec(0usize..8, 1..12),
        edge_b in proptest::collection::vec(0usize..8, 12),
        edge_gs in proptest::collection::vec(0.01f64..0.5, 12),
        powers in proptest::collection::vec(0.0f64..1.5, 2..8),
        millis in 1.0f64..200.0,
        rk4 in any::<bool>(),
    ) {
        let n = node_caps.len().min(ambient_gs.len());
        let mut net_a = build_network(&node_caps[..n], &ambient_gs[..n], &edge_a, &edge_b, &edge_gs, &powers);
        let mut net_b = net_a.clone();
        let kind = if rk4 { SolverKind::RungeKutta4 } else { SolverKind::ForwardEuler };
        let solver = Solver::new(kind);
        let mut workspace = SolverWorkspace::new();
        for _ in 0..5 {
            solver.advance(&mut net_a, Seconds::from_millis(millis)).expect("advance");
            solver
                .advance_with(&mut net_b, Seconds::from_millis(millis), &mut workspace)
                .expect("advance_with");
        }
        for i in 0..n {
            let a = net_a.temperature(i).as_celsius();
            let b = net_b.temperature(i).as_celsius();
            prop_assert_eq!(a.to_bits(), b.to_bits(), "node {} differs: {} vs {}", i, a, b);
        }
    }

    /// `steady_state_for` with the currently injected power equals
    /// `steady_state` exactly (it is the same relaxation, minus the network
    /// clone the thermal model used to pay for).
    #[test]
    fn steady_state_for_matches_steady_state(
        node_caps in proptest::collection::vec(0.05f64..5.0, 2..10),
        ambient_gs in proptest::collection::vec(0.01f64..0.5, 2..10),
        edge_a in proptest::collection::vec(0usize..10, 1..18),
        edge_b in proptest::collection::vec(0usize..10, 18),
        edge_gs in proptest::collection::vec(0.001f64..0.5, 18),
        powers in proptest::collection::vec(0.0f64..2.0, 2..10),
    ) {
        let n = node_caps.len().min(ambient_gs.len());
        let net = build_network(&node_caps[..n], &ambient_gs[..n], &edge_a, &edge_b, &edge_gs, &powers);
        let direct = net.steady_state();
        let explicit = net.steady_state_for(net.powers()).expect("matching length");
        for (a, b) in direct.iter().zip(&explicit) {
            prop_assert_eq!(a.as_celsius().to_bits(), b.as_celsius().to_bits());
        }
        prop_assert!(net.steady_state_for(&[0.0]).is_err() || n == 1);
    }
}
