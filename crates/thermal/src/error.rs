//! Error type for the thermal model.

use std::error::Error;
use std::fmt;

use tbp_arch::ArchError;

/// Errors produced while building or stepping the thermal model.
#[derive(Debug, Clone, PartialEq)]
pub enum ThermalError {
    /// The power vector handed to the model does not match its node count.
    PowerLengthMismatch {
        /// Number of power entries expected (one per floorplan block).
        expected: usize,
        /// Number of entries received.
        actual: usize,
    },
    /// A node index was out of range.
    UnknownNode(usize),
    /// A network was built with an invalid parameter (non-positive
    /// capacitance or conductance).
    InvalidParameter(String),
    /// The underlying architecture description was invalid.
    Arch(ArchError),
    /// The solver was asked to integrate over a non-positive time step.
    InvalidTimeStep(f64),
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThermalError::PowerLengthMismatch { expected, actual } => write!(
                f,
                "power vector has {actual} entries but the model has {expected} blocks"
            ),
            ThermalError::UnknownNode(i) => write!(f, "unknown thermal node {i}"),
            ThermalError::InvalidParameter(msg) => write!(f, "invalid thermal parameter: {msg}"),
            ThermalError::Arch(e) => write!(f, "architecture error: {e}"),
            ThermalError::InvalidTimeStep(dt) => {
                write!(f, "time step {dt} s must be positive and finite")
            }
        }
    }
}

impl Error for ThermalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ThermalError::Arch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArchError> for ThermalError {
    fn from(value: ArchError) -> Self {
        ThermalError::Arch(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbp_arch::core::CoreId;

    #[test]
    fn display_and_source() {
        let err = ThermalError::PowerLengthMismatch {
            expected: 14,
            actual: 3,
        };
        assert!(err.to_string().contains("14"));
        assert!(err.to_string().contains('3'));
        assert!(ThermalError::UnknownNode(5).to_string().contains('5'));
        assert!(ThermalError::InvalidParameter("bad".into())
            .to_string()
            .contains("bad"));
        assert!(ThermalError::InvalidTimeStep(-1.0)
            .to_string()
            .contains("-1"));
        let wrapped: ThermalError = ArchError::UnknownCore(CoreId(1)).into();
        assert!(wrapped.to_string().contains("core1"));
        assert!(Error::source(&wrapped).is_some());
        assert!(Error::source(&ThermalError::UnknownNode(0)).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ThermalError>();
    }
}
