//! Time integration of the RC network.
//!
//! The co-simulation advances in steps of a millisecond or more, while the
//! explicit stability limit of the die-level RC network can be much smaller.
//! [`Solver`] hides the sub-stepping: callers ask for an arbitrary `dt` and
//! the solver splits it into stable sub-steps of the selected integration
//! scheme.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

use crate::error::ThermalError;
use crate::rc::RcNetwork;
use tbp_arch::units::Seconds;

/// Reusable scratch buffers for the integration schemes.
///
/// One workspace serves any number of [`Solver::advance_with`] calls on any
/// number of networks: every buffer is cleared and resized to the network at
/// hand, so after the first call on the largest network the integration
/// performs **zero heap allocations** — the property the
/// `crates/core/tests/alloc_free_step.rs` counting-allocator test pins down
/// for the whole simulation step.
///
/// The workspace is pure scratch: cloning starts empty, equality always
/// holds, and (de)serialization skips the contents entirely (it serializes
/// to the unit value, which struct serializers omit).
#[derive(Debug, Default)]
pub struct SolverWorkspace {
    /// First (or only) derivative evaluation of a step.
    pub(crate) k1: Vec<f64>,
    /// Second RK4 stage derivative.
    pub(crate) k2: Vec<f64>,
    /// Third RK4 stage derivative.
    pub(crate) k3: Vec<f64>,
    /// Fourth RK4 stage derivative.
    pub(crate) k4: Vec<f64>,
    /// Temperatures at the start of an RK4 step.
    pub(crate) t0: Vec<f64>,
    /// Intermediate stage temperatures (reused for all three RK4 stages).
    pub(crate) stage: Vec<f64>,
}

impl SolverWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        SolverWorkspace::default()
    }
}

impl Clone for SolverWorkspace {
    fn clone(&self) -> Self {
        // Scratch contents are meaningless between steps; a clone starts
        // empty and regrows on first use.
        SolverWorkspace::new()
    }
}

impl PartialEq for SolverWorkspace {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Serialize for SolverWorkspace {
    fn to_value(&self) -> Value {
        Value::Unit
    }
}

impl Deserialize for SolverWorkspace {
    fn from_value(_: &Value) -> Result<Self, serde::Error> {
        Ok(SolverWorkspace::new())
    }

    fn absent() -> Option<Self> {
        Some(SolverWorkspace::new())
    }
}

/// Integration scheme used to advance the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SolverKind {
    /// Forward Euler with stability-bounded sub-steps (HotSpot's default
    /// transient mode uses a comparable explicit scheme). Fast and accurate
    /// enough for the millisecond-scale steps of the co-simulation.
    #[default]
    ForwardEuler,
    /// Classic fourth-order Runge–Kutta; more work per step, used as the
    /// reference in the solver-ablation benchmark.
    RungeKutta4,
}

impl fmt::Display for SolverKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverKind::ForwardEuler => write!(f, "forward Euler"),
            SolverKind::RungeKutta4 => write!(f, "RK4"),
        }
    }
}

/// A configured integrator for [`RcNetwork`]s.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Solver {
    kind: SolverKind,
    /// Safety factor applied to the stability limit when choosing sub-steps.
    safety_factor: f64,
    /// Hard cap on the number of sub-steps per call, to bound the cost of a
    /// single `advance` invocation.
    max_substeps: usize,
}

impl Solver {
    /// Creates a solver of the given kind with default sub-stepping
    /// parameters (safety factor 0.25, at most 20 000 sub-steps per call).
    pub fn new(kind: SolverKind) -> Self {
        Solver {
            kind,
            safety_factor: 0.25,
            max_substeps: 20_000,
        }
    }

    /// The integration scheme.
    pub fn kind(&self) -> SolverKind {
        self.kind
    }

    /// Overrides the stability safety factor.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] when the factor is not in
    /// `(0, 1]`.
    pub fn with_safety_factor(mut self, factor: f64) -> Result<Self, ThermalError> {
        if !(factor > 0.0 && factor <= 1.0) {
            return Err(ThermalError::InvalidParameter(format!(
                "safety factor {factor} must be in (0, 1]"
            )));
        }
        self.safety_factor = factor;
        Ok(self)
    }

    /// Advances the network by `dt`, splitting into stable sub-steps.
    ///
    /// Convenience wrapper around [`advance_with`](Self::advance_with) that
    /// allocates a fresh [`SolverWorkspace`] per call; hot loops hold a
    /// workspace and call [`advance_with`](Self::advance_with) directly.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidTimeStep`] when `dt` is not positive
    /// and finite.
    pub fn advance(&self, network: &mut RcNetwork, dt: Seconds) -> Result<(), ThermalError> {
        let mut workspace = SolverWorkspace::new();
        self.advance_with(network, dt, &mut workspace)
    }

    /// The sub-step plan `(substeps, sub_dt)` this solver uses to advance by
    /// `dt_secs` a network whose explicit-Euler stability limit is `stable`.
    ///
    /// Factored out so the single-network [`advance_with`](Self::advance_with)
    /// path and the lane-batched kernel
    /// ([`lanes`](crate::lanes)) split `dt` identically — the differential
    /// equivalence tests rely on both paths performing the exact same
    /// floating-point operation sequence.
    pub fn substep_plan(&self, dt_secs: f64, stable: f64) -> (usize, f64) {
        // RK4 tolerates larger steps than explicit Euler; allow 2x.
        let scheme_factor = match self.kind {
            SolverKind::ForwardEuler => 1.0,
            SolverKind::RungeKutta4 => 2.0,
        };
        let max_sub = if stable.is_finite() {
            (stable * self.safety_factor * scheme_factor).max(1e-9)
        } else {
            dt_secs
        };
        let substeps = ((dt_secs / max_sub).ceil() as usize).clamp(1, self.max_substeps);
        (substeps, dt_secs / substeps as f64)
    }

    /// Advances the network by `dt` using caller-provided scratch buffers.
    ///
    /// Compiles the network's kernel if a topology mutation invalidated it,
    /// reads the stability limit from the kernel's cache (instead of
    /// recomputing it — with a temporary vector — on every call), and routes
    /// every sub-step through the workspace so the integration performs no
    /// heap allocations once the buffers have grown to the network size.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidTimeStep`] when `dt` is not positive
    /// and finite.
    pub fn advance_with(
        &self,
        network: &mut RcNetwork,
        dt: Seconds,
        workspace: &mut SolverWorkspace,
    ) -> Result<(), ThermalError> {
        let dt_secs = dt.as_secs();
        if !(dt_secs.is_finite() && dt_secs > 0.0) {
            return Err(ThermalError::InvalidTimeStep(dt_secs));
        }
        network.ensure_compiled();
        let (substeps, sub_dt) = self.substep_plan(dt_secs, network.max_stable_step());
        for _ in 0..substeps {
            match self.kind {
                SolverKind::ForwardEuler => network.euler_step_with(sub_dt, workspace),
                SolverKind::RungeKutta4 => network.rk4_step_with(sub_dt, workspace),
            }
        }
        Ok(())
    }
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new(SolverKind::ForwardEuler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbp_arch::units::Celsius;

    fn heated_network() -> RcNetwork {
        let mut net = RcNetwork::new(Celsius::new(45.0));
        let a = net.add_node("a", 0.01, 0.02).unwrap();
        let b = net.add_node("b", 0.01, 0.02).unwrap();
        net.add_edge(a, b, 0.01).unwrap();
        net.set_power(a, 0.5).unwrap();
        net
    }

    #[test]
    fn solver_kinds_display() {
        assert_eq!(SolverKind::ForwardEuler.to_string(), "forward Euler");
        assert_eq!(SolverKind::RungeKutta4.to_string(), "RK4");
        assert_eq!(SolverKind::default(), SolverKind::ForwardEuler);
        assert_eq!(Solver::default().kind(), SolverKind::ForwardEuler);
    }

    #[test]
    fn advance_rejects_bad_steps() {
        let solver = Solver::default();
        let mut net = heated_network();
        assert!(solver.advance(&mut net, Seconds::ZERO).is_err());
        assert!(solver.advance(&mut net, Seconds::new(-0.1)).is_err());
        assert!(solver
            .advance(&mut net, Seconds::new(f64::INFINITY))
            .is_err());
        assert!(solver.advance(&mut net, Seconds::from_millis(10.0)).is_ok());
    }

    #[test]
    fn safety_factor_validation() {
        assert!(Solver::default().with_safety_factor(0.3).is_ok());
        assert!(Solver::default().with_safety_factor(1.0).is_ok());
        assert!(Solver::default().with_safety_factor(0.0).is_err());
        assert!(Solver::default().with_safety_factor(1.5).is_err());
    }

    #[test]
    fn large_steps_remain_stable() {
        // The stability limit here is C/G = 0.01/0.03 = 0.33 s; ask for a
        // 10 s advance and verify the solution does not blow up.
        let solver = Solver::new(SolverKind::ForwardEuler);
        let mut net = heated_network();
        solver.advance(&mut net, Seconds::new(10.0)).unwrap();
        let t = net.temperature(0).as_celsius();
        assert!(t.is_finite());
        assert!(t > 45.0);
        assert!(t < 200.0);
    }

    #[test]
    fn euler_and_rk4_converge_to_the_same_solution() {
        let euler = Solver::new(SolverKind::ForwardEuler);
        let rk4 = Solver::new(SolverKind::RungeKutta4);
        let mut net_a = heated_network();
        let mut net_b = heated_network();
        for _ in 0..200 {
            euler
                .advance(&mut net_a, Seconds::from_millis(50.0))
                .unwrap();
            rk4.advance(&mut net_b, Seconds::from_millis(50.0)).unwrap();
        }
        for i in 0..net_a.len() {
            let d = (net_a.temperature(i).as_celsius() - net_b.temperature(i).as_celsius()).abs();
            assert!(d < 0.1, "node {i} differs by {d}");
        }
    }

    #[test]
    fn repeated_small_steps_match_single_large_step() {
        let solver = Solver::new(SolverKind::ForwardEuler);
        let mut fine = heated_network();
        let mut coarse = heated_network();
        for _ in 0..100 {
            solver
                .advance(&mut fine, Seconds::from_millis(10.0))
                .unwrap();
        }
        solver.advance(&mut coarse, Seconds::new(1.0)).unwrap();
        for i in 0..fine.len() {
            let d = (fine.temperature(i).as_celsius() - coarse.temperature(i).as_celsius()).abs();
            assert!(d < 0.5, "node {i} differs by {d}");
        }
    }
}
