//! Floorplan-level thermal model.
//!
//! [`ThermalModel`] turns a [`Floorplan`] plus a [`Package`] into an RC
//! network with one node per floorplan block, a spreader node and a sink
//! node, and exposes the operations the co-simulation loop needs: inject the
//! per-block power snapshot, advance time, read block and core temperatures.

use serde::{Deserialize, Serialize};

use crate::error::ThermalError;
use crate::package::Package;
use crate::rc::RcNetwork;
use crate::solver::{Solver, SolverKind, SolverWorkspace};
use tbp_arch::core::CoreId;
use tbp_arch::floorplan::Floorplan;
use tbp_arch::units::{Celsius, Seconds, Watts};

/// Thermal model of a die described by a floorplan, mounted in a package.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    package: Package,
    network: RcNetwork,
    solver: Solver,
    /// Indices of the RC nodes corresponding to floorplan blocks (same order
    /// as the floorplan).
    block_nodes: Vec<usize>,
    /// RC node index of each core's processor block, indexed by core id.
    core_nodes: Vec<usize>,
    spreader_node: usize,
    sink_node: usize,
    elapsed: Seconds,
    /// Reusable integration scratch (skipped by comparison/serialization),
    /// so [`step`](Self::step) allocates nothing.
    workspace: SolverWorkspace,
}

impl ThermalModel {
    /// Builds the thermal model for `floorplan` mounted in `package`, using
    /// the default forward-Euler solver.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] when the package parameters
    /// are invalid.
    pub fn new(floorplan: &Floorplan, package: Package) -> Result<Self, ThermalError> {
        ThermalModel::with_solver(floorplan, package, SolverKind::ForwardEuler)
    }

    /// Builds the thermal model with an explicit integration scheme.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] when the package parameters
    /// are invalid.
    pub fn with_solver(
        floorplan: &Floorplan,
        package: Package,
        solver: SolverKind,
    ) -> Result<Self, ThermalError> {
        package.validate()?;
        let mut network = RcNetwork::new(package.ambient);

        // One node per floorplan block. Blocks do not connect directly to
        // ambient: all heat leaves through the spreader/sink stack.
        let mut block_nodes = Vec::with_capacity(floorplan.len());
        for block in floorplan.blocks() {
            let c = package.block_capacitance(block.rect.area_m2());
            let node = network.add_node(&block.name, c, 0.0)?;
            block_nodes.push(node);
        }

        // Lateral couplings between adjacent blocks.
        for (a, b, shared_mm) in floorplan.adjacencies() {
            let dist_m = floorplan.blocks()[a]
                .rect
                .center_distance(&floorplan.blocks()[b].rect)
                * 1e-3;
            let g = package.lateral_conductance(shared_mm * 1e-3, dist_m);
            if g > 0.0 {
                network.add_edge(block_nodes[a], block_nodes[b], g)?;
            }
        }

        // Spreader and sink nodes.
        let spreader_node = network.add_node("spreader", package.spreader_capacitance, 0.0)?;
        let sink_node = network.add_node(
            "sink",
            package.sink_capacitance,
            package.sink_to_ambient_conductance(),
        )?;
        network.add_edge(
            spreader_node,
            sink_node,
            package.spreader_to_sink_conductance(),
        )?;

        // Vertical couplings block -> spreader.
        for (i, block) in floorplan.blocks().iter().enumerate() {
            let g = package.block_vertical_conductance(block.rect.area_m2());
            network.add_edge(block_nodes[i], spreader_node, g)?;
        }

        // Core-id -> node lookup.
        let core_ids = floorplan.core_ids();
        let mut core_nodes = vec![usize::MAX; core_ids.len()];
        for id in core_ids {
            let block_idx = floorplan.core_block_index(id)?;
            core_nodes[id.index()] = block_nodes[block_idx];
        }

        // Compile the flat-array kernel up front: the topology is fixed from
        // here on, so every subsequent step integrates without recompiling.
        network.ensure_compiled();

        Ok(ThermalModel {
            package,
            network,
            solver: Solver::new(solver),
            block_nodes,
            core_nodes,
            spreader_node,
            sink_node,
            elapsed: Seconds::ZERO,
            workspace: SolverWorkspace::new(),
        })
    }

    /// The package the die is mounted in.
    pub fn package(&self) -> &Package {
        &self.package
    }

    /// The integration scheme in use.
    pub fn solver_kind(&self) -> SolverKind {
        self.solver.kind()
    }

    /// Number of floorplan blocks tracked by the model.
    pub fn num_blocks(&self) -> usize {
        self.block_nodes.len()
    }

    /// Number of cores tracked by the model.
    pub fn num_cores(&self) -> usize {
        self.core_nodes.len()
    }

    /// Simulated time integrated so far.
    pub fn elapsed(&self) -> Seconds {
        self.elapsed
    }

    /// Direct access to the underlying RC network (read-only).
    pub fn network(&self) -> &RcNetwork {
        &self.network
    }

    /// The configured integrator (kind plus sub-stepping parameters).
    pub(crate) fn solver(&self) -> &Solver {
        &self.solver
    }

    /// RC node indices of the floorplan blocks, in floorplan order.
    pub(crate) fn block_nodes(&self) -> &[usize] {
        &self.block_nodes
    }

    /// Injects the per-block power vector **without** advancing time — the
    /// first half of [`step`](Self::step), used by the lane-batched engine
    /// which integrates in [`ThermalLaneKernel`](crate::lanes::ThermalLaneKernel)
    /// and writes the state back via [`sync_from_lane`](Self::sync_from_lane).
    /// Keeping the network's power vector in sync with the scalar path means
    /// every field of the model stays bit-identical between the two paths.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerLengthMismatch`] when the vector length
    /// does not match the number of blocks.
    pub fn load_block_powers(&mut self, power: &[Watts]) -> Result<(), ThermalError> {
        if power.len() != self.block_nodes.len() {
            return Err(ThermalError::PowerLengthMismatch {
                expected: self.block_nodes.len(),
                actual: power.len(),
            });
        }
        self.network
            .set_node_powers(&self.block_nodes, power.iter().map(|p| p.as_watts()))
    }

    /// Adopts the integrated temperatures of `lane` from a batched kernel and
    /// advances the model clock by `dt` — the second half of
    /// [`step`](Self::step) on the lane-batched path.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] when the kernel's lane or
    /// node shape does not match this model.
    pub fn sync_from_lane(
        &mut self,
        kernel: &crate::lanes::ThermalLaneKernel,
        lane: usize,
        dt: Seconds,
    ) -> Result<(), ThermalError> {
        kernel.copy_lane_temperatures_into(lane, self.network.temperatures_raw_mut())?;
        self.elapsed += dt;
        Ok(())
    }

    /// Injects the per-block power vector and advances the model by `dt`.
    ///
    /// `power` must have one entry per floorplan block, in floorplan order —
    /// exactly the layout produced by
    /// [`MpsocPlatform::power_snapshot_at`](tbp_arch::platform::MpsocPlatform::power_snapshot_at).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerLengthMismatch`] when the vector length
    /// does not match the number of blocks, and
    /// [`ThermalError::InvalidTimeStep`] for a non-positive `dt`.
    pub fn step(&mut self, power: &[Watts], dt: Seconds) -> Result<(), ThermalError> {
        if power.len() != self.block_nodes.len() {
            return Err(ThermalError::PowerLengthMismatch {
                expected: self.block_nodes.len(),
                actual: power.len(),
            });
        }
        self.network
            .set_node_powers(&self.block_nodes, power.iter().map(|p| p.as_watts()))?;
        let solver = self.solver;
        solver.advance_with(&mut self.network, dt, &mut self.workspace)?;
        self.elapsed += dt;
        Ok(())
    }

    /// Temperature of the floorplan block with the given index.
    pub fn block_temperature(&self, block_index: usize) -> Celsius {
        let node = self
            .block_nodes
            .get(block_index)
            .copied()
            .unwrap_or(usize::MAX);
        self.network.temperature(node)
    }

    /// Temperatures of every floorplan block, in floorplan order.
    pub fn block_temperatures(&self) -> Vec<Celsius> {
        self.block_nodes
            .iter()
            .map(|&n| self.network.temperature(n))
            .collect()
    }

    /// Allocation-free form of
    /// [`block_temperatures`](Self::block_temperatures): writes the
    /// floorplan-ordered block temperatures into `out`, reusing its capacity.
    pub fn block_temperatures_into(&self, out: &mut Vec<Celsius>) {
        out.clear();
        out.extend(
            self.block_nodes
                .iter()
                .map(|&n| self.network.temperature(n)),
        );
    }

    /// Temperature of a core's processor block.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::UnknownNode`] for a core the model does not
    /// know about.
    pub fn core_temperature(&self, core: CoreId) -> Result<Celsius, ThermalError> {
        self.core_nodes
            .get(core.index())
            .copied()
            .filter(|&n| n != usize::MAX)
            .map(|n| self.network.temperature(n))
            .ok_or(ThermalError::UnknownNode(core.index()))
    }

    /// Temperatures of every core, indexed by core id.
    pub fn core_temperatures(&self) -> Vec<Celsius> {
        self.core_nodes
            .iter()
            .map(|&n| self.network.temperature(n))
            .collect()
    }

    /// Temperature of the heat spreader.
    pub fn spreader_temperature(&self) -> Celsius {
        self.network.temperature(self.spreader_node)
    }

    /// Temperature of the heat sink.
    pub fn sink_temperature(&self) -> Celsius {
        self.network.temperature(self.sink_node)
    }

    /// Steady-state block temperatures for a given power vector, without
    /// modifying the transient state. Useful for calibration and warm-start.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerLengthMismatch`] when the vector length
    /// does not match the number of blocks.
    pub fn steady_state(&self, power: &[Watts]) -> Result<Vec<Celsius>, ThermalError> {
        if power.len() != self.block_nodes.len() {
            return Err(ThermalError::PowerLengthMismatch {
                expected: self.block_nodes.len(),
                actual: power.len(),
            });
        }
        // Override the block-node power entries on a copy of the power
        // vector instead of cloning the whole network (nodes, names, edges)
        // just to vary the injected power.
        let mut node_power = self.network.powers().to_vec();
        for (node, p) in self.block_nodes.iter().zip(power) {
            node_power[*node] = p.as_watts();
        }
        let all = self.network.steady_state_for(&node_power)?;
        Ok(self.block_nodes.iter().map(|&n| all[n]).collect())
    }

    /// Sets every node (blocks, spreader, sink) to the given temperature.
    /// Used to warm-start experiments from a known state.
    pub fn set_uniform_temperature(&mut self, temperature: Celsius) {
        for i in 0..self.network.len() {
            self.network
                .set_temperature(i, temperature)
                .expect("index within range");
        }
    }

    /// Resets the model to ambient temperature and zero elapsed time.
    pub fn reset(&mut self) {
        self.network.reset();
        self.elapsed = Seconds::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbp_arch::floorplan::Floorplan;

    fn model(package: Package) -> (ThermalModel, Floorplan) {
        let floorplan = Floorplan::paper_3core();
        let model = ThermalModel::new(&floorplan, package).unwrap();
        (model, floorplan)
    }

    fn core_power_vector(floorplan: &Floorplan, per_core: &[f64]) -> Vec<Watts> {
        let mut power = vec![Watts::ZERO; floorplan.len()];
        for (i, &p) in per_core.iter().enumerate() {
            let idx = floorplan.core_block_index(CoreId(i)).unwrap();
            power[idx] = Watts::new(p);
        }
        power
    }

    #[test]
    fn model_structure_matches_floorplan() {
        let (model, floorplan) = model(Package::mobile_embedded());
        assert_eq!(model.num_blocks(), floorplan.len());
        assert_eq!(model.num_cores(), 3);
        assert_eq!(model.solver_kind(), SolverKind::ForwardEuler);
        assert_eq!(model.elapsed(), Seconds::ZERO);
        assert_eq!(
            model.package().kind(),
            crate::package::PackageKind::MobileEmbedded
        );
        // network = blocks + spreader + sink
        assert_eq!(model.network().len(), floorplan.len() + 2);
        assert_eq!(model.block_temperatures().len(), floorplan.len());
        assert_eq!(model.core_temperatures().len(), 3);
        assert!(model.core_temperature(CoreId(2)).is_ok());
        assert!(model.core_temperature(CoreId(5)).is_err());
    }

    #[test]
    fn invalid_package_rejected() {
        let floorplan = Floorplan::paper_3core();
        let mut bad = Package::mobile_embedded();
        bad.spreader_capacitance = 0.0;
        assert!(ThermalModel::new(&floorplan, bad).is_err());
    }

    #[test]
    fn power_vector_length_is_checked() {
        let (mut model, _) = model(Package::mobile_embedded());
        let err = model.step(&[Watts::new(1.0)], Seconds::from_millis(10.0));
        assert!(matches!(
            err,
            Err(ThermalError::PowerLengthMismatch {
                expected: 14,
                actual: 1
            })
        ));
        assert!(model.steady_state(&[Watts::ZERO]).is_err());
    }

    #[test]
    fn heated_core_gets_hotter_than_idle_cores() {
        let (mut model, floorplan) = model(Package::mobile_embedded());
        let power = core_power_vector(&floorplan, &[0.4, 0.05, 0.05]);
        for _ in 0..3_000 {
            model.step(&power, Seconds::from_millis(10.0)).unwrap();
        }
        let t0 = model.core_temperature(CoreId(0)).unwrap().as_celsius();
        let t1 = model.core_temperature(CoreId(1)).unwrap().as_celsius();
        let t2 = model.core_temperature(CoreId(2)).unwrap().as_celsius();
        assert!(t0 > t1);
        assert!(t1 >= t2 - 0.5);
        assert!(t0 > model.package().ambient.as_celsius());
        assert!(model.spreader_temperature().as_celsius() > model.package().ambient.as_celsius());
        assert!(model.sink_temperature().as_celsius() > model.package().ambient.as_celsius());
        assert!(model.elapsed().as_secs() > 29.0);
    }

    #[test]
    fn equal_power_on_outer_cores_gives_position_dependent_temperatures() {
        // Core 1 (middle) is surrounded by hot neighbours; cores 0 and 2 sit
        // at the edges but core 2 is next to the (cool) shared memory column,
        // matching the paper's observation that cores 2 and 3 differ despite
        // equal frequency.
        let (mut model, floorplan) = model(Package::mobile_embedded());
        let power = core_power_vector(&floorplan, &[0.2, 0.2, 0.2]);
        for _ in 0..5_000 {
            model.step(&power, Seconds::from_millis(10.0)).unwrap();
        }
        let t0 = model.core_temperature(CoreId(0)).unwrap().as_celsius();
        let t1 = model.core_temperature(CoreId(1)).unwrap().as_celsius();
        let t2 = model.core_temperature(CoreId(2)).unwrap().as_celsius();
        // Middle core is hottest; the core adjacent to the uncore column is
        // the coolest.
        assert!(t1 > t0 || t1 > t2);
        assert!((t0 - t2).abs() > 1e-3, "floorplan position should matter");
    }

    #[test]
    fn steady_state_matches_long_transient() {
        let (mut model, floorplan) = model(Package::mobile_embedded());
        let power = core_power_vector(&floorplan, &[0.3, 0.1, 0.1]);
        let ss = model.steady_state(&power).unwrap();
        for _ in 0..20_000 {
            model.step(&power, Seconds::from_millis(20.0)).unwrap();
        }
        for (i, expected) in ss.iter().enumerate() {
            let actual = model.block_temperature(i).as_celsius();
            assert!(
                (actual - expected.as_celsius()).abs() < 0.3,
                "block {i}: transient {actual} vs steady {expected}"
            );
        }
    }

    #[test]
    fn high_performance_package_reacts_faster() {
        let floorplan = Floorplan::paper_3core();
        let mut mobile = ThermalModel::new(&floorplan, Package::mobile_embedded()).unwrap();
        let mut fast = ThermalModel::new(&floorplan, Package::high_performance()).unwrap();
        let power = core_power_vector(&floorplan, &[0.4, 0.1, 0.1]);
        // Advance both by half a second: the high-performance package should
        // already be close to steady state while the mobile one is not.
        for _ in 0..50 {
            mobile.step(&power, Seconds::from_millis(10.0)).unwrap();
            fast.step(&power, Seconds::from_millis(10.0)).unwrap();
        }
        let rise_mobile = mobile.core_temperature(CoreId(0)).unwrap().as_celsius() - 45.0;
        let rise_fast = fast.core_temperature(CoreId(0)).unwrap().as_celsius() - 45.0;
        assert!(
            rise_fast > rise_mobile * 1.5,
            "high-performance package should heat up much faster ({rise_fast} vs {rise_mobile})"
        );
        // Same steady state for both packages.
        let ss_mobile = mobile.steady_state(&power).unwrap();
        let ss_fast = fast.steady_state(&power).unwrap();
        for (a, b) in ss_mobile.iter().zip(&ss_fast) {
            assert!((a.as_celsius() - b.as_celsius()).abs() < 1e-6);
        }
    }

    #[test]
    fn rk4_solver_gives_similar_results() {
        let floorplan = Floorplan::paper_3core();
        let mut euler = ThermalModel::new(&floorplan, Package::mobile_embedded()).unwrap();
        let mut rk4 = ThermalModel::with_solver(
            &floorplan,
            Package::mobile_embedded(),
            SolverKind::RungeKutta4,
        )
        .unwrap();
        assert_eq!(rk4.solver_kind(), SolverKind::RungeKutta4);
        let power = core_power_vector(&floorplan, &[0.35, 0.12, 0.12]);
        for _ in 0..500 {
            euler.step(&power, Seconds::from_millis(10.0)).unwrap();
            rk4.step(&power, Seconds::from_millis(10.0)).unwrap();
        }
        for i in 0..floorplan.len() {
            let d = (euler.block_temperature(i).as_celsius()
                - rk4.block_temperature(i).as_celsius())
            .abs();
            assert!(d < 0.2, "block {i} differs by {d} between solvers");
        }
    }

    #[test]
    fn uniform_start_and_reset() {
        let (mut model, floorplan) = model(Package::mobile_embedded());
        model.set_uniform_temperature(Celsius::new(60.0));
        assert!((model.core_temperature(CoreId(1)).unwrap().as_celsius() - 60.0).abs() < 1e-9);
        let power = core_power_vector(&floorplan, &[0.3, 0.1, 0.1]);
        model.step(&power, Seconds::from_millis(10.0)).unwrap();
        model.reset();
        assert_eq!(model.elapsed(), Seconds::ZERO);
        assert!((model.core_temperature(CoreId(0)).unwrap().as_celsius() - 45.0).abs() < 1e-9);
    }

    #[test]
    fn mobile_package_timescale_is_seconds() {
        // The paper says ~10 degrees of rise takes a few seconds on the
        // mobile package. Check that after 1 s of a strong step the core has
        // moved noticeably but is still far from its steady state, and that
        // by ~15 s it is close to steady state.
        let (mut model, floorplan) = model(Package::mobile_embedded());
        let power = core_power_vector(&floorplan, &[0.45, 0.15, 0.15]);
        let ss = model.steady_state(&power).unwrap();
        let core0_block = floorplan.core_block_index(CoreId(0)).unwrap();
        let ss_rise = ss[core0_block].as_celsius() - 45.0;
        assert!(
            ss_rise > 8.0,
            "steady-state rise should be significant, got {ss_rise}"
        );

        for _ in 0..100 {
            model.step(&power, Seconds::from_millis(10.0)).unwrap();
        }
        let rise_1s = model.core_temperature(CoreId(0)).unwrap().as_celsius() - 45.0;
        assert!(rise_1s < 0.8 * ss_rise, "1 s should not reach steady state");

        for _ in 0..1_400 {
            model.step(&power, Seconds::from_millis(10.0)).unwrap();
        }
        let rise_15s = model.core_temperature(CoreId(0)).unwrap().as_celsius() - 45.0;
        assert!(
            rise_15s > 0.7 * ss_rise,
            "15 s should be close to steady state ({rise_15s} vs {ss_rise})"
        );
    }
}
