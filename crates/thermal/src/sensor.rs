//! Periodic temperature sensors.
//!
//! The emulation platform of the paper updates shared-memory locations with
//! the processor temperatures **every 10 ms** so the MPOS can read them
//! (Section 4). [`SensorBank`] reproduces that behaviour: it holds the last
//! sampled value for every core and refreshes it only when the sampling
//! period has elapsed, optionally quantising the reading like a real thermal
//! diode interface would.

use serde::{Deserialize, Serialize};

use crate::error::ThermalError;
use crate::model::ThermalModel;
use tbp_arch::core::CoreId;
use tbp_arch::units::{Celsius, Seconds};

/// Default sampling period of the paper's platform (10 ms).
pub const DEFAULT_SAMPLING_PERIOD_MS: f64 = 10.0;

/// A bank of per-core temperature sensors sampled at a fixed period.
///
/// ```
/// use tbp_thermal::sensor::SensorBank;
/// use tbp_arch::units::Seconds;
///
/// let mut sensors = SensorBank::new(3, Seconds::from_millis(10.0), 0.0);
/// assert_eq!(sensors.num_sensors(), 3);
/// assert!(!sensors.tick(Seconds::from_millis(4.0)));
/// assert!(sensors.tick(Seconds::from_millis(6.0))); // 10 ms elapsed -> sample
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorBank {
    period: Seconds,
    quantization: f64,
    since_last_sample: Seconds,
    readings: Vec<Celsius>,
    samples_taken: u64,
}

impl SensorBank {
    /// Creates a bank of `num_cores` sensors with the given sampling period
    /// and quantisation step (°C; 0 disables quantisation). Readings start at
    /// the ambient temperature.
    pub fn new(num_cores: usize, period: Seconds, quantization: f64) -> Self {
        SensorBank {
            period,
            quantization: quantization.max(0.0),
            since_last_sample: Seconds::ZERO,
            readings: vec![Celsius::ambient(); num_cores],
            samples_taken: 0,
        }
    }

    /// Bank matching the paper's platform: 10 ms period, 0.1 °C resolution.
    pub fn paper_default(num_cores: usize) -> Self {
        SensorBank::new(
            num_cores,
            Seconds::from_millis(DEFAULT_SAMPLING_PERIOD_MS),
            0.1,
        )
    }

    /// Number of sensors in the bank.
    pub fn num_sensors(&self) -> usize {
        self.readings.len()
    }

    /// Sampling period.
    pub fn period(&self) -> Seconds {
        self.period
    }

    /// Changes the sampling period mid-run (live reconfiguration). The
    /// elapsed-since-last-sample accumulator is kept, so shortening the
    /// period can make the next sample due immediately while lengthening it
    /// simply pushes the next sample out — readings are never discarded.
    pub fn set_period(&mut self, period: Seconds) {
        self.period = period;
    }

    /// Number of samples taken since construction.
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }

    /// Advances the sensor clock by `dt` and returns `true` when a new sample
    /// is due (the caller should then call [`sample`](Self::sample)).
    pub fn tick(&mut self, dt: Seconds) -> bool {
        self.since_last_sample += dt;
        self.since_last_sample.as_secs() + 1e-12 >= self.period.as_secs()
    }

    /// Samples the thermal model, refreshing every core reading.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::UnknownNode`] when the model tracks fewer
    /// cores than the bank has sensors.
    pub fn sample(&mut self, model: &ThermalModel) -> Result<&[Celsius], ThermalError> {
        for i in 0..self.readings.len() {
            let raw = model.core_temperature(CoreId(i))?;
            self.readings[i] = self.quantize(raw);
        }
        self.since_last_sample = Seconds::ZERO;
        self.samples_taken += 1;
        Ok(&self.readings)
    }

    /// The last sampled reading of a core (ambient before the first sample).
    pub fn reading(&self, core: CoreId) -> Option<Celsius> {
        self.readings.get(core.index()).copied()
    }

    /// All last-sampled readings, indexed by core id.
    pub fn readings(&self) -> &[Celsius] {
        &self.readings
    }

    /// Mean of the last-sampled readings (the policy's `T_mean`).
    pub fn mean(&self) -> Celsius {
        if self.readings.is_empty() {
            return Celsius::ambient();
        }
        let sum: f64 = self.readings.iter().map(|t| t.as_celsius()).sum();
        Celsius::new(sum / self.readings.len() as f64)
    }

    fn quantize(&self, value: Celsius) -> Celsius {
        if self.quantization <= 0.0 {
            value
        } else {
            let steps = (value.as_celsius() / self.quantization).round();
            Celsius::new(steps * self.quantization)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::Package;
    use tbp_arch::floorplan::Floorplan;
    use tbp_arch::units::Watts;

    fn heated_model() -> ThermalModel {
        let floorplan = Floorplan::paper_3core();
        let mut model = ThermalModel::new(&floorplan, Package::high_performance()).unwrap();
        let mut power = vec![Watts::ZERO; floorplan.len()];
        power[floorplan.core_block_index(CoreId(0)).unwrap()] = Watts::new(0.5);
        for _ in 0..500 {
            model.step(&power, Seconds::from_millis(10.0)).unwrap();
        }
        model
    }

    #[test]
    fn construction_and_defaults() {
        let bank = SensorBank::paper_default(3);
        assert_eq!(bank.num_sensors(), 3);
        assert!((bank.period().as_millis() - 10.0).abs() < 1e-12);
        assert_eq!(bank.samples_taken(), 0);
        assert_eq!(bank.reading(CoreId(0)), Some(Celsius::ambient()));
        assert_eq!(bank.reading(CoreId(9)), None);
        assert_eq!(bank.readings().len(), 3);
        assert!((bank.mean().as_celsius() - 45.0).abs() < 1e-9);
        // Empty bank mean falls back to ambient.
        let empty = SensorBank::new(0, Seconds::from_millis(10.0), 0.0);
        assert!((empty.mean().as_celsius() - 45.0).abs() < 1e-9);
    }

    #[test]
    fn tick_respects_period() {
        let mut bank = SensorBank::new(3, Seconds::from_millis(10.0), 0.0);
        assert!(!bank.tick(Seconds::from_millis(3.0)));
        assert!(!bank.tick(Seconds::from_millis(3.0)));
        assert!(bank.tick(Seconds::from_millis(4.0)));
        // Exact multiple also triggers.
        let mut bank = SensorBank::new(1, Seconds::from_millis(10.0), 0.0);
        assert!(bank.tick(Seconds::from_millis(10.0)));
    }

    #[test]
    fn sample_reads_model_temperatures() {
        let model = heated_model();
        let mut bank = SensorBank::new(3, Seconds::from_millis(10.0), 0.0);
        bank.tick(Seconds::from_millis(10.0));
        // Read through the borrow `sample` returns — no `to_vec` round-trip;
        // the borrow ends before the bank is used mutably again.
        {
            let readings = bank.sample(&model).unwrap();
            assert_eq!(readings.len(), 3);
            assert!(readings[0].as_celsius() > readings[2].as_celsius());
        }
        assert_eq!(bank.samples_taken(), 1);
        assert!(bank.mean().as_celsius() > 45.0);
        // Sampling resets the tick accumulator.
        assert!(!bank.tick(Seconds::from_millis(3.0)));
    }

    #[test]
    fn sample_fails_when_bank_larger_than_model() {
        let model = heated_model();
        let mut bank = SensorBank::new(5, Seconds::from_millis(10.0), 0.0);
        assert!(bank.sample(&model).is_err());
    }

    #[test]
    fn quantization_rounds_readings() {
        let model = heated_model();
        let mut fine = SensorBank::new(3, Seconds::from_millis(10.0), 0.0);
        let mut coarse = SensorBank::new(3, Seconds::from_millis(10.0), 0.5);
        fine.sample(&model).unwrap();
        coarse.sample(&model).unwrap();
        let raw = fine.reading(CoreId(0)).unwrap().as_celsius();
        let quantized = coarse.reading(CoreId(0)).unwrap().as_celsius();
        assert!((quantized % 0.5).abs() < 1e-9 || ((quantized % 0.5) - 0.5).abs() < 1e-9);
        assert!((raw - quantized).abs() <= 0.25 + 1e-9);
        // Negative quantization behaves like disabled quantization.
        let bank = SensorBank::new(1, Seconds::from_millis(10.0), -1.0);
        assert_eq!(bank.quantization, 0.0);
    }
}
