//! Lane-batched integration of many identical RC networks.
//!
//! A parameter sweep steps N simulations that share one platform (same
//! floorplan, package, and solver) while varying policy knobs. Their thermal
//! networks therefore share a single topology and differ only in state:
//! temperatures and injected power. [`ThermalLaneKernel`] exploits that by
//! storing the state of all N *lanes* in flat struct-of-arrays buffers laid
//! out **lane-minor** — `state[node * lanes + lane]` — so the per-node and
//! per-edge inner loops of the integrator run over `lanes` consecutive
//! doubles and auto-vectorize.
//!
//! # Why lane-minor and not lane-major
//!
//! With lane-major `[lane][node]` storage the inner loop would iterate over
//! nodes of one lane — the same loop the scalar kernel already runs, with the
//! same serial edge-scatter dependency. Lane-minor storage turns every scalar
//! operation of the single-network kernel into an element-wise operation
//! across lanes, which is exactly the shape LLVM vectorizes (and the shape we
//! dispatch to AVX-512/AVX2 code paths for at runtime).
//!
//! # Bit-identical by construction
//!
//! The batched kernel performs, per lane, the **exact same floating-point
//! operations in the exact same order** as
//! [`RcNetwork::euler_step_with`](crate::rc::RcNetwork::euler_step_with) /
//! [`RcNetwork::rk4_step_with`](crate::rc::RcNetwork::rk4_step_with) driven
//! by [`Solver::advance_with`]:
//!
//! * the sub-step split comes from the shared [`Solver::substep_plan`];
//! * each node accumulates its incident edge flows in global edge-insertion
//!   order — the kernel gathers via a CSR adjacency instead of scattering
//!   `+q`/`-q` per edge, which is exactly (not approximately) the same
//!   arithmetic; see `derivative_lanes` in this module — using only `+ - * /`, which
//!   vectorize to correctly-rounded IEEE-754 element-wise instructions with
//!   no FMA contraction;
//! * the stage arithmetic copies the expression shapes of the scalar RK4.
//!
//! The differential suite in `crates/core/tests/lane_equivalence.rs` pins
//! this property end-to-end on every supported SIMD level.

use crate::error::ThermalError;
use crate::model::ThermalModel;
use crate::rc::CompiledKernel;
use crate::solver::Solver;
use tbp_arch::units::{Seconds, Watts};

/// Runtime-selected vector width for the lane loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SimdLevel {
    /// Portable element-wise loops (still auto-vectorized to the target's
    /// baseline, e.g. SSE2 on x86-64).
    Scalar,
    /// 256-bit AVX2 code path.
    #[cfg(target_arch = "x86_64")]
    Avx2,
    /// 512-bit AVX-512F code path.
    #[cfg(target_arch = "x86_64")]
    Avx512,
}

#[cfg(target_arch = "x86_64")]
fn detect_simd() -> SimdLevel {
    if std::arch::is_x86_feature_detected!("avx512f") {
        SimdLevel::Avx512
    } else if std::arch::is_x86_feature_detected!("avx2") {
        SimdLevel::Avx2
    } else {
        SimdLevel::Scalar
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_simd() -> SimdLevel {
    SimdLevel::Scalar
}

/// Scratch stages for the lane-batched integrator, all `nodes * lanes` long.
#[derive(Debug, Clone, Default)]
struct LaneWorkspace {
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    t0: Vec<f64>,
    stage: Vec<f64>,
}

impl LaneWorkspace {
    fn sized(len: usize) -> Self {
        LaneWorkspace {
            k1: vec![0.0; len],
            k2: vec![0.0; len],
            k3: vec![0.0; len],
            k4: vec![0.0; len],
            t0: vec![0.0; len],
            stage: vec![0.0; len],
        }
    }
}

/// SoA integrator stepping N identical-topology RC networks in lockstep.
///
/// Built from N [`ThermalModel`]s that share topology, package ambient, and
/// solver (verified bitwise at construction); per step, callers load each
/// lane's block powers, call [`advance`](Self::advance) once, and write the
/// state back into the models with
/// [`ThermalModel::sync_from_lane`].
#[derive(Debug, Clone)]
pub struct ThermalLaneKernel {
    lanes: usize,
    nodes: usize,
    solver: Solver,
    ambient: f64,
    /// RC node index of each floorplan block (shared across lanes).
    block_nodes: Vec<usize>,
    /// Gather-form adjacency (CSR): node `n`'s incident edges occupy
    /// `adj_start[n]..adj_start[n + 1]` of `adj_g`/`adj_other`, listed in
    /// global edge-insertion order. Every entry accumulates uniformly as
    /// `acc += g * (t_other - t_self)` — see [`derivative_lanes`] for why
    /// that is bit-identical to the scalar `+q`/`-q` scatter.
    adj_start: Vec<usize>,
    adj_other: Vec<usize>,
    adj_g: Vec<f64>,
    ambient_g: Vec<f64>,
    capacitance: Vec<f64>,
    max_stable_step: f64,
    /// Node temperatures, lane-minor: `temps[node * lanes + lane]`.
    temps: Vec<f64>,
    /// Injected node power, lane-minor like `temps`.
    power: Vec<f64>,
    workspace: LaneWorkspace,
    simd: SimdLevel,
}

impl ThermalLaneKernel {
    /// Builds a lane kernel over `models`, one lane per model in order.
    ///
    /// Every model must share lane 0's topology (nodes and edges, compared
    /// field-for-field), ambient temperature, solver configuration, and
    /// block-node mapping; each lane's current temperatures and injected
    /// powers are copied in as its initial state.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] when `models` is empty or
    /// a model's shared configuration differs from lane 0.
    pub fn from_models(models: &[&ThermalModel]) -> Result<Self, ThermalError> {
        let first = *models.first().ok_or_else(|| {
            ThermalError::InvalidParameter("lane batch needs at least one model".into())
        })?;
        for (lane, model) in models.iter().enumerate().skip(1) {
            let same = model.network().nodes() == first.network().nodes()
                && model.network().edges() == first.network().edges()
                && model.network().ambient() == first.network().ambient()
                && model.solver() == first.solver()
                && model.block_nodes() == first.block_nodes();
            if !same {
                return Err(ThermalError::InvalidParameter(format!(
                    "lane {lane} thermal platform differs from lane 0; \
                     batched stepping needs identical topology, package and solver"
                )));
            }
        }
        let kernel = CompiledKernel::build(first.network().nodes(), first.network().edges());
        let lanes = models.len();
        let nodes = first.network().len();
        // Invariant the unchecked derivative loops rely on: every edge
        // endpoint indexes a real node row.
        assert!(
            kernel
                .edge_a
                .iter()
                .chain(&kernel.edge_b)
                .all(|&n| n < nodes),
            "compiled kernel edge endpoints must index nodes"
        );
        // Transpose the edge list into gather form: each node's incident
        // edges, in global edge-insertion order (walking the edges once and
        // appending to both endpoints preserves that order per node).
        let mut adj_start = vec![0usize; nodes + 1];
        for (&a, &b) in kernel.edge_a.iter().zip(&kernel.edge_b) {
            adj_start[a + 1] += 1;
            adj_start[b + 1] += 1;
        }
        for node in 0..nodes {
            adj_start[node + 1] += adj_start[node];
        }
        let entries = adj_start[nodes];
        let mut cursor = adj_start.clone();
        let mut adj_other = vec![0usize; entries];
        let mut adj_g = vec![0.0f64; entries];
        for ((&a, &b), &g) in kernel.edge_a.iter().zip(&kernel.edge_b).zip(&kernel.edge_g) {
            for (node, other) in [(a, b), (b, a)] {
                adj_other[cursor[node]] = other;
                adj_g[cursor[node]] = g;
                cursor[node] += 1;
            }
        }
        let mut temps = vec![0.0; nodes * lanes];
        let mut power = vec![0.0; nodes * lanes];
        for (lane, model) in models.iter().enumerate() {
            for (node, &t) in model.network().temperatures_raw().iter().enumerate() {
                temps[node * lanes + lane] = t;
            }
            for (node, &p) in model.network().powers().iter().enumerate() {
                power[node * lanes + lane] = p;
            }
        }
        Ok(ThermalLaneKernel {
            lanes,
            nodes,
            solver: *first.solver(),
            ambient: first.network().ambient().as_celsius(),
            block_nodes: first.block_nodes().to_vec(),
            adj_start,
            adj_other,
            adj_g,
            ambient_g: kernel.ambient_g,
            capacitance: kernel.capacitance,
            max_stable_step: kernel.max_stable_step,
            temps,
            power,
            workspace: LaneWorkspace::sized(nodes * lanes),
            simd: detect_simd(),
        })
    }

    /// Number of lanes stepped together.
    pub fn num_lanes(&self) -> usize {
        self.lanes
    }

    /// Number of RC nodes per lane.
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// Number of floorplan blocks per lane.
    pub fn num_blocks(&self) -> usize {
        self.block_nodes.len()
    }

    /// Human-readable label of the runtime-selected SIMD code path
    /// (`"avx512"`, `"avx2"`, or `"scalar"`), for benchmark reports.
    pub fn simd_label(&self) -> &'static str {
        match self.simd {
            SimdLevel::Scalar => "scalar",
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => "avx2",
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx512 => "avx512",
        }
    }

    /// Loads one lane's per-block power vector — the batched counterpart of
    /// the injection half of [`ThermalModel::step`].
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::UnknownNode`] for an out-of-range lane and
    /// [`ThermalError::PowerLengthMismatch`] when `power` does not have one
    /// entry per floorplan block.
    pub fn set_block_powers(&mut self, lane: usize, power: &[Watts]) -> Result<(), ThermalError> {
        if lane >= self.lanes {
            return Err(ThermalError::UnknownNode(lane));
        }
        if power.len() != self.block_nodes.len() {
            return Err(ThermalError::PowerLengthMismatch {
                expected: self.block_nodes.len(),
                actual: power.len(),
            });
        }
        for (&node, p) in self.block_nodes.iter().zip(power) {
            self.power[node * self.lanes + lane] = p.as_watts();
        }
        Ok(())
    }

    /// Copies one lane's node temperatures (index order, °C) into `out`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::UnknownNode`] for an out-of-range lane and
    /// [`ThermalError::InvalidParameter`] when `out` is not one entry per
    /// node.
    pub(crate) fn copy_lane_temperatures_into(
        &self,
        lane: usize,
        out: &mut [f64],
    ) -> Result<(), ThermalError> {
        if lane >= self.lanes {
            return Err(ThermalError::UnknownNode(lane));
        }
        if out.len() != self.nodes {
            return Err(ThermalError::InvalidParameter(format!(
                "lane sync target has {} nodes but the kernel has {}",
                out.len(),
                self.nodes
            )));
        }
        for (node, t) in out.iter_mut().enumerate() {
            *t = self.temps[node * self.lanes + lane];
        }
        Ok(())
    }

    /// Current temperature of one lane's node, for tests and diagnostics.
    pub fn lane_temperature(&self, lane: usize, node: usize) -> Option<f64> {
        if lane < self.lanes && node < self.nodes {
            Some(self.temps[node * self.lanes + lane])
        } else {
            None
        }
    }

    /// Advances every lane by `dt`, splitting into the same stable sub-steps
    /// as [`Solver::advance_with`] would for each network individually.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidTimeStep`] when `dt` is not positive
    /// and finite.
    pub fn advance(&mut self, dt: Seconds) -> Result<(), ThermalError> {
        let dt_secs = dt.as_secs();
        if !(dt_secs.is_finite() && dt_secs > 0.0) {
            return Err(ThermalError::InvalidTimeStep(dt_secs));
        }
        let (substeps, sub_dt) = self.solver.substep_plan(dt_secs, self.max_stable_step);
        match self.simd {
            SimdLevel::Scalar => self.substeps_portable(substeps, sub_dt),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `detect_simd` only selects these levels when the CPU
            // reports the corresponding feature.
            SimdLevel::Avx2 => unsafe { self.substeps_avx2(substeps, sub_dt) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above — `detect_simd` reported AVX-512 support.
            SimdLevel::Avx512 => unsafe { self.substeps_avx512(substeps, sub_dt) },
        }
        Ok(())
    }

    fn substeps_portable(&mut self, substeps: usize, sub_dt: f64) {
        self.substeps_impl(substeps, sub_dt);
    }

    // SAFETY: `unsafe` only because of `target_feature`; the sole caller
    // (`advance`) dispatches here only when `detect_simd` reported AVX2.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn substeps_avx2(&mut self, substeps: usize, sub_dt: f64) {
        self.substeps_impl(substeps, sub_dt);
    }

    // SAFETY: `unsafe` only because of `target_feature`; the sole caller
    // (`advance`) dispatches here only when `detect_simd` reported AVX-512.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn substeps_avx512(&mut self, substeps: usize, sub_dt: f64) {
        self.substeps_impl(substeps, sub_dt);
    }

    /// Shared body of the feature-specialized entry points; `inline(always)`
    /// so each wrapper compiles it with its own vector ISA.
    #[inline(always)]
    fn substeps_impl(&mut self, substeps: usize, sub_dt: f64) {
        use crate::solver::SolverKind;
        match self.solver.kind() {
            SolverKind::ForwardEuler => {
                for _ in 0..substeps {
                    self.euler_substep(sub_dt);
                }
            }
            SolverKind::RungeKutta4 => {
                for _ in 0..substeps {
                    self.rk4_substep(sub_dt);
                }
            }
        }
    }

    /// One forward-Euler sub-step across all lanes; mirrors
    /// [`RcNetwork::euler_step_with`] element-wise.
    #[inline(always)]
    fn euler_substep(&mut self, dt: f64) {
        derivative_lanes(
            self.simd,
            self.lanes,
            self.ambient,
            &self.adj_start,
            &self.adj_other,
            &self.adj_g,
            &self.ambient_g,
            &self.capacitance,
            &self.power,
            &self.temps,
            &mut self.workspace.k1,
        );
        for (t, d) in self.temps.iter_mut().zip(&self.workspace.k1) {
            *t += dt * d;
        }
    }

    /// One classic RK4 sub-step across all lanes; the stage expressions copy
    /// [`RcNetwork::rk4_step_with`] shape-for-shape so each lane's arithmetic
    /// is bit-identical to the scalar path.
    #[inline(always)]
    fn rk4_substep(&mut self, dt: f64) {
        let ws = &mut self.workspace;
        ws.t0.copy_from_slice(&self.temps);
        let deriv = |temps: &[f64], out: &mut [f64]| {
            derivative_lanes(
                self.simd,
                self.lanes,
                self.ambient,
                &self.adj_start,
                &self.adj_other,
                &self.adj_g,
                &self.ambient_g,
                &self.capacitance,
                &self.power,
                temps,
                out,
            );
        };
        deriv(&ws.t0, &mut ws.k1);
        for ((stage, &t), &k) in ws.stage.iter_mut().zip(&ws.t0).zip(&ws.k1) {
            *stage = t + 0.5 * dt * k;
        }
        deriv(&ws.stage, &mut ws.k2);
        for ((stage, &t), &k) in ws.stage.iter_mut().zip(&ws.t0).zip(&ws.k2) {
            *stage = t + 0.5 * dt * k;
        }
        deriv(&ws.stage, &mut ws.k3);
        for ((stage, &t), &k) in ws.stage.iter_mut().zip(&ws.t0).zip(&ws.k3) {
            *stage = t + dt * k;
        }
        deriv(&ws.stage, &mut ws.k4);
        for (i, temp) in self.temps.iter_mut().enumerate() {
            *temp = ws.t0[i] + dt / 6.0 * (ws.k1[i] + 2.0 * ws.k2[i] + 2.0 * ws.k3[i] + ws.k4[i]);
        }
    }
}

/// Lane-batched form of [`RcNetwork::derivative_into`]: per lane the same
/// operations in the same order, vectorized across the `lanes` consecutive
/// doubles of each node row.
///
/// The scalar path scatters each edge's flow `q = g * (t_b - t_a)` as
/// `flow[a] += q; flow[b] -= q` in edge order. This kernel instead *gathers*:
/// each node walks its incident edges (CSR adjacency, kept in global edge
/// order) accumulating into a register, so there is no serializing
/// read-modify-write chain through memory and each node's sum enjoys
/// independent out-of-order execution. Bit-identity with the scatter is
/// exact, not approximate:
///
/// * a node's contributions arrive in the same (global edge) order, and
///   interleaving with *other* nodes' updates never affects its own sum;
/// * the b-side `flow[b] -= g * (t_b - t_a)` is rewritten as
///   `acc += g * (t_a - t_b)` — IEEE-754 negation is exact and
///   `x - y == x + (-y)` rounds identically, so folding the sign into the
///   operand order gives the same bits while making every entry uniform;
/// * only `+ - * /` are used (no FMA contraction), each correctly rounded
///   element-wise.
///
/// Dispatches on the detected SIMD level and the lane count: hand-written
/// 512-/256-bit row kernels when the lane count fills whole vectors (LLVM's
/// autovectorizer prefers 256-bit operations even under AVX-512, leaving half
/// the register width unused), a monomorphized element loop for other common
/// lane counts, and a fully bounds-checked loop otherwise.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn derivative_lanes(
    simd: SimdLevel,
    lanes: usize,
    ambient: f64,
    adj_start: &[usize],
    adj_other: &[usize],
    adj_g: &[f64],
    ambient_g: &[f64],
    capacitance: &[f64],
    power: &[f64],
    temps: &[f64],
    out: &mut [f64],
) {
    let nodes = ambient_g.len();
    assert_eq!(out.len(), nodes * lanes);
    assert_eq!(temps.len(), out.len());
    assert_eq!(power.len(), out.len());
    assert_eq!(capacitance.len(), nodes);
    assert_eq!(adj_start.len(), nodes + 1);
    assert_eq!(adj_start.last().copied(), Some(adj_g.len()));
    assert_eq!(adj_other.len(), adj_g.len());
    // SAFETY (all branches): the shape checks above plus the construction
    // invariants of the adjacency (monotone `adj_start`, every `adj_other`
    // entry `< nodes` — both asserted when the kernel is built) bound every
    // `node * lanes + l` access by `out.len()`; the intrinsic branches
    // additionally require the matching CPU feature, which `detect_simd`
    // established for the passed `simd` level.
    #[cfg(target_arch = "x86_64")]
    {
        if simd == SimdLevel::Avx512 && lanes.is_multiple_of(8) {
            // SAFETY: shape argument above; AVX-512 is available at this
            // `simd` level.
            return unsafe {
                derivative_avx512(
                    lanes,
                    ambient,
                    adj_start,
                    adj_other,
                    adj_g,
                    ambient_g,
                    capacitance,
                    power,
                    temps,
                    out,
                )
            };
        }
        if simd != SimdLevel::Scalar && lanes.is_multiple_of(4) {
            // AVX-512 implies AVX2; 4-lane batches on an AVX-512 machine use
            // the 256-bit kernel rather than falling back to scalar code.
            // SAFETY: shape argument above; AVX2 is available at either
            // non-scalar `simd` level.
            return unsafe {
                derivative_avx2(
                    lanes,
                    ambient,
                    adj_start,
                    adj_other,
                    adj_g,
                    ambient_g,
                    capacitance,
                    power,
                    temps,
                    out,
                )
            };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = simd;
    match lanes {
        // SAFETY: shape argument above (scalar rows, no CPU feature).
        1 => unsafe {
            derivative_rows::<1>(
                ambient,
                adj_start,
                adj_other,
                adj_g,
                ambient_g,
                capacitance,
                power,
                temps,
                out,
            )
        },
        // SAFETY: shape argument above (scalar rows, no CPU feature).
        2 => unsafe {
            derivative_rows::<2>(
                ambient,
                adj_start,
                adj_other,
                adj_g,
                ambient_g,
                capacitance,
                power,
                temps,
                out,
            )
        },
        // SAFETY: shape argument above (scalar rows, no CPU feature).
        4 => unsafe {
            derivative_rows::<4>(
                ambient,
                adj_start,
                adj_other,
                adj_g,
                ambient_g,
                capacitance,
                power,
                temps,
                out,
            )
        },
        // SAFETY: shape argument above (scalar rows, no CPU feature).
        8 => unsafe {
            derivative_rows::<8>(
                ambient,
                adj_start,
                adj_other,
                adj_g,
                ambient_g,
                capacitance,
                power,
                temps,
                out,
            )
        },
        // SAFETY: shape argument above (scalar rows, no CPU feature).
        16 => unsafe {
            derivative_rows::<16>(
                ambient,
                adj_start,
                adj_other,
                adj_g,
                ambient_g,
                capacitance,
                power,
                temps,
                out,
            )
        },
        _ => derivative_rows_dyn(
            lanes,
            ambient,
            adj_start,
            adj_other,
            adj_g,
            ambient_g,
            capacitance,
            power,
            temps,
            out,
        ),
    }
}

/// 512-bit derivative rows: one `vaddpd`/`vsubpd`/`vmulpd`/`vdivpd` per 8
/// lanes. All four operations are correctly-rounded IEEE-754 element-wise
/// (no FMA contraction), so each lane's arithmetic is bit-identical to the
/// scalar expression it mirrors. The whole node row — init, gathered edge
/// accumulation, capacitance divide — stays in one register between the
/// single load and single store per vector of lanes.
///
/// # Safety
///
/// Caller must verify AVX-512F support, the shape preconditions of
/// [`derivative_rows`], and `lanes % 8 == 0`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn derivative_avx512(
    lanes: usize,
    ambient: f64,
    adj_start: &[usize],
    adj_other: &[usize],
    adj_g: &[f64],
    ambient_g: &[f64],
    capacitance: &[f64],
    power: &[f64],
    temps: &[f64],
    out: &mut [f64],
) {
    use core::arch::x86_64::*;
    let op = out.as_mut_ptr();
    let tp = temps.as_ptr();
    let pp = power.as_ptr();
    let amb = _mm512_set1_pd(ambient);
    for (node, &g) in ambient_g.iter().enumerate() {
        let gv = _mm512_set1_pd(g);
        let cv = _mm512_set1_pd(*capacitance.get_unchecked(node));
        let base = node * lanes;
        let (lo, hi) = (
            *adj_start.get_unchecked(node),
            *adj_start.get_unchecked(node + 1),
        );
        for l in (0..lanes).step_by(8) {
            let t = _mm512_loadu_pd(tp.add(base + l));
            let mut acc = _mm512_add_pd(
                _mm512_loadu_pd(pp.add(base + l)),
                _mm512_mul_pd(gv, _mm512_sub_pd(amb, t)),
            );
            for e in lo..hi {
                let ge = _mm512_set1_pd(*adj_g.get_unchecked(e));
                let to = _mm512_loadu_pd(tp.add(*adj_other.get_unchecked(e) * lanes + l));
                acc = _mm512_add_pd(acc, _mm512_mul_pd(ge, _mm512_sub_pd(to, t)));
            }
            _mm512_storeu_pd(op.add(base + l), _mm512_div_pd(acc, cv));
        }
    }
}

/// 256-bit derivative rows; see [`derivative_avx512`] for the bit-identity
/// argument.
///
/// # Safety
///
/// Caller must verify AVX2 support, the shape preconditions of
/// [`derivative_rows`], and `lanes % 4 == 0`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn derivative_avx2(
    lanes: usize,
    ambient: f64,
    adj_start: &[usize],
    adj_other: &[usize],
    adj_g: &[f64],
    ambient_g: &[f64],
    capacitance: &[f64],
    power: &[f64],
    temps: &[f64],
    out: &mut [f64],
) {
    use core::arch::x86_64::*;
    let op = out.as_mut_ptr();
    let tp = temps.as_ptr();
    let pp = power.as_ptr();
    let amb = _mm256_set1_pd(ambient);
    for (node, &g) in ambient_g.iter().enumerate() {
        let gv = _mm256_set1_pd(g);
        let cv = _mm256_set1_pd(*capacitance.get_unchecked(node));
        let base = node * lanes;
        let (lo, hi) = (
            *adj_start.get_unchecked(node),
            *adj_start.get_unchecked(node + 1),
        );
        for l in (0..lanes).step_by(4) {
            let t = _mm256_loadu_pd(tp.add(base + l));
            let mut acc = _mm256_add_pd(
                _mm256_loadu_pd(pp.add(base + l)),
                _mm256_mul_pd(gv, _mm256_sub_pd(amb, t)),
            );
            for e in lo..hi {
                let ge = _mm256_set1_pd(*adj_g.get_unchecked(e));
                let to = _mm256_loadu_pd(tp.add(*adj_other.get_unchecked(e) * lanes + l));
                acc = _mm256_add_pd(acc, _mm256_mul_pd(ge, _mm256_sub_pd(to, t)));
            }
            _mm256_storeu_pd(op.add(base + l), _mm256_div_pd(acc, cv));
        }
    }
}

/// Monomorphized derivative body for a compile-time lane count.
///
/// # Safety
///
/// `out`, `temps`, and `power` must be `ambient_g.len() * LANES` long,
/// `capacitance` must be `ambient_g.len()` long, `adj_start` must be a
/// monotone `ambient_g.len() + 1`-long prefix table into
/// `adj_other`/`adj_g`, and every `adj_other` entry must be
/// `< ambient_g.len()`.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
unsafe fn derivative_rows<const LANES: usize>(
    ambient: f64,
    adj_start: &[usize],
    adj_other: &[usize],
    adj_g: &[f64],
    ambient_g: &[f64],
    capacitance: &[f64],
    power: &[f64],
    temps: &[f64],
    out: &mut [f64],
) {
    for (node, &g) in ambient_g.iter().enumerate() {
        let base = node * LANES;
        let c = *capacitance.get_unchecked(node);
        let mut acc = [0.0f64; LANES];
        for (l, a) in acc.iter_mut().enumerate() {
            *a = *power.get_unchecked(base + l) + g * (ambient - *temps.get_unchecked(base + l));
        }
        let (lo, hi) = (
            *adj_start.get_unchecked(node),
            *adj_start.get_unchecked(node + 1),
        );
        for e in lo..hi {
            let ge = *adj_g.get_unchecked(e);
            let obase = *adj_other.get_unchecked(e) * LANES;
            for (l, a) in acc.iter_mut().enumerate() {
                *a += ge * (*temps.get_unchecked(obase + l) - *temps.get_unchecked(base + l));
            }
        }
        for (l, a) in acc.iter().enumerate() {
            *out.get_unchecked_mut(base + l) = a / c;
        }
    }
}

/// Fully bounds-checked fallback for uncommon lane counts; same operations
/// in the same order as [`derivative_rows`].
#[allow(clippy::too_many_arguments)]
fn derivative_rows_dyn(
    lanes: usize,
    ambient: f64,
    adj_start: &[usize],
    adj_other: &[usize],
    adj_g: &[f64],
    ambient_g: &[f64],
    capacitance: &[f64],
    power: &[f64],
    temps: &[f64],
    out: &mut [f64],
) {
    for (node, &g) in ambient_g.iter().enumerate() {
        let base = node * lanes;
        let c = capacitance[node];
        for l in 0..lanes {
            out[base + l] = power[base + l] + g * (ambient - temps[base + l]);
        }
        for e in adj_start[node]..adj_start[node + 1] {
            let ge = adj_g[e];
            let obase = adj_other[e] * lanes;
            for l in 0..lanes {
                out[base + l] += ge * (temps[obase + l] - temps[base + l]);
            }
        }
        for l in 0..lanes {
            out[base + l] /= c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::Package;
    use crate::solver::SolverKind;
    use tbp_arch::floorplan::Floorplan;

    fn model(package: Package, solver: SolverKind) -> ThermalModel {
        ThermalModel::with_solver(&Floorplan::paper_3core(), package, solver).unwrap()
    }

    fn block_power(model: &ThermalModel, watts: &[f64]) -> Vec<Watts> {
        assert_eq!(watts.len(), model.num_blocks());
        watts.iter().copied().map(Watts::new).collect()
    }

    #[test]
    fn construction_validates_lanes() {
        assert!(ThermalLaneKernel::from_models(&[]).is_err());
        let euler = model(Package::mobile_embedded(), SolverKind::ForwardEuler);
        let rk4 = model(Package::mobile_embedded(), SolverKind::RungeKutta4);
        let hiperf = model(Package::high_performance(), SolverKind::ForwardEuler);
        assert!(ThermalLaneKernel::from_models(&[&euler, &rk4]).is_err());
        assert!(ThermalLaneKernel::from_models(&[&euler, &hiperf]).is_err());
        let twin = euler.clone();
        let kernel = ThermalLaneKernel::from_models(&[&euler, &twin]).unwrap();
        assert_eq!(kernel.num_lanes(), 2);
        assert_eq!(kernel.num_nodes(), euler.network().len());
        assert_eq!(kernel.num_blocks(), euler.num_blocks());
        assert!(!kernel.simd_label().is_empty());
    }

    #[test]
    fn shape_errors_are_reported() {
        let m = model(Package::mobile_embedded(), SolverKind::ForwardEuler);
        let mut kernel = ThermalLaneKernel::from_models(&[&m]).unwrap();
        assert!(kernel.set_block_powers(3, &[Watts::ZERO; 14]).is_err());
        assert!(kernel.set_block_powers(0, &[Watts::ZERO]).is_err());
        assert!(kernel.advance(Seconds::ZERO).is_err());
        assert!(kernel.advance(Seconds::new(f64::NAN)).is_err());
        assert_eq!(kernel.lane_temperature(9, 0), None);
        assert_eq!(kernel.lane_temperature(0, 999), None);
        let mut short = vec![0.0; 3];
        assert!(kernel.copy_lane_temperatures_into(0, &mut short).is_err());
        assert!(kernel
            .copy_lane_temperatures_into(2, &mut vec![0.0; kernel.num_nodes()])
            .is_err());
    }

    /// Lane counts that exercise every dispatch path: the 512-bit kernel
    /// (8, 16), the 256-bit kernel (4), the monomorphized element loops
    /// (1, 2), and the dynamic fallback (3, 5).
    const LANE_COUNTS: [usize; 7] = [1, 2, 3, 4, 5, 8, 16];

    /// The load-bearing property: each lane of the batched kernel produces
    /// *bit-identical* temperatures to a scalar [`ThermalModel::step`] run of
    /// the same model, for both solvers, heterogeneous lane powers, and
    /// every SIMD dispatch path reachable on this machine.
    #[test]
    fn lanes_match_scalar_models_bit_for_bit() {
        for kind in [SolverKind::ForwardEuler, SolverKind::RungeKutta4] {
            for package in [Package::mobile_embedded(), Package::high_performance()] {
                for lanes in LANE_COUNTS {
                    lanes_match_scalar_case(kind, package.clone(), lanes);
                }
            }
        }
    }

    fn lanes_match_scalar_case(kind: SolverKind, package: Package, lanes: usize) {
        let reference = model(package, kind);
        let mut scalar: Vec<ThermalModel> = (0..lanes).map(|_| reference.clone()).collect();
        let mut batched = scalar.clone();
        let mut kernel =
            ThermalLaneKernel::from_models(&batched.iter().collect::<Vec<_>>()).unwrap();
        let dt = Seconds::from_millis(5.0);
        for step in 0..200 {
            for (lane, (s, b)) in scalar.iter_mut().zip(&mut batched).enumerate() {
                // Lane-dependent, step-dependent power pattern.
                let watts: Vec<f64> = (0..s.num_blocks())
                    .map(|blk| 0.01 * (lane + 1) as f64 * ((blk + step) % 5) as f64)
                    .collect();
                let p = block_power(s, &watts);
                s.step(&p, dt).unwrap();
                b.load_block_powers(&p).unwrap();
                kernel.set_block_powers(lane, &p).unwrap();
            }
            kernel.advance(dt).unwrap();
            for (lane, b) in batched.iter_mut().enumerate() {
                b.sync_from_lane(&kernel, lane, dt).unwrap();
            }
        }
        for (lane, (s, b)) in scalar.iter().zip(&batched).enumerate() {
            assert_eq!(s.elapsed(), b.elapsed());
            for node in 0..s.network().len() {
                let ts = s.network().temperature(node).as_celsius();
                let tb = b.network().temperature(node).as_celsius();
                assert_eq!(
                    ts.to_bits(),
                    tb.to_bits(),
                    "{kind:?} {lanes} lanes, lane {lane} node {node}: \
                     scalar {ts} vs batched {tb}"
                );
            }
            assert_eq!(s.network().powers(), b.network().powers());
        }
    }
}
