//! Generic lumped resistance–capacitance thermal network.
//!
//! The network is a graph of thermal nodes. Each node has a heat capacitance
//! and optionally a conductance to the fixed-temperature ambient; pairs of
//! nodes are coupled by conductances. Power (heat) is injected into nodes and
//! the temperature state evolves according to
//!
//! ```text
//! C_i · dT_i/dt = P_i + Σ_j G_ij (T_j − T_i) + G_amb,i (T_amb − T_i)
//! ```
//!
//! which is exactly the equation HotSpot integrates for its block-level mode.

use serde::{Deserialize, Serialize, Value};

use crate::error::ThermalError;
use crate::solver::SolverWorkspace;
use tbp_arch::units::Celsius;

/// A single thermal node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RcNode {
    /// Human-readable name (floorplan block name, `spreader`, `sink`, ...).
    pub name: String,
    /// Heat capacitance in J/K.
    pub capacitance: f64,
    /// Conductance to the ambient in W/K (zero when not connected).
    pub ambient_conductance: f64,
}

/// A conductive coupling between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RcEdge {
    /// First node index.
    pub a: usize,
    /// Second node index.
    pub b: usize,
    /// Conductance in W/K.
    pub conductance: f64,
}

/// Compiled flat-array (CSR-style) form of the network topology, rebuilt
/// lazily after a topology mutation.
///
/// The per-node data (`1/C` is deliberately **not** precomputed: the kernel
/// divides by the stored capacitance so results stay bit-identical to the
/// naive [`RcNetwork::derivative`] path) and the edge list live in dense
/// struct-of-arrays storage, so the inner integration loop touches no `RcNode`
/// structs and chases no `String`s. Edges are kept in insertion order — a
/// node-major CSR adjacency would change the floating-point accumulation
/// order and therefore the low bits of every temperature.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CompiledKernel {
    /// `RcEdge::a` of every edge, in insertion order.
    pub(crate) edge_a: Vec<usize>,
    /// `RcEdge::b` of every edge, in insertion order.
    pub(crate) edge_b: Vec<usize>,
    /// Edge conductances, in insertion order.
    pub(crate) edge_g: Vec<f64>,
    /// Per-node conductance to ambient.
    pub(crate) ambient_g: Vec<f64>,
    /// Per-node heat capacitance.
    pub(crate) capacitance: Vec<f64>,
    /// Cached explicit-Euler stability limit (`min_i C_i / ΣG_i`).
    pub(crate) max_stable_step: f64,
}

impl CompiledKernel {
    pub(crate) fn build(nodes: &[RcNode], edges: &[RcEdge]) -> Self {
        CompiledKernel {
            edge_a: edges.iter().map(|e| e.a).collect(),
            edge_b: edges.iter().map(|e| e.b).collect(),
            edge_g: edges.iter().map(|e| e.conductance).collect(),
            ambient_g: nodes.iter().map(|n| n.ambient_conductance).collect(),
            capacitance: nodes.iter().map(|n| n.capacitance).collect(),
            max_stable_step: compute_max_stable_step(nodes, edges),
        }
    }
}

/// Shared stability-limit computation (used both by the compiled kernel and
/// by the uncompiled fallback, so the cached and fresh values are identical).
fn compute_max_stable_step(nodes: &[RcNode], edges: &[RcEdge]) -> f64 {
    let mut total_conductance = vec![0.0; nodes.len()];
    for (i, node) in nodes.iter().enumerate() {
        total_conductance[i] += node.ambient_conductance;
    }
    for edge in edges {
        total_conductance[edge.a] += edge.conductance;
        total_conductance[edge.b] += edge.conductance;
    }
    nodes
        .iter()
        .zip(&total_conductance)
        .map(|(node, &g)| {
            if g > 0.0 {
                node.capacitance / g
            } else {
                f64::INFINITY
            }
        })
        .fold(f64::INFINITY, f64::min)
}

/// Lazily built [`CompiledKernel`] cache.
///
/// The cache is pure derived data: clones carry it along, equality ignores
/// it, and (de)serialization skips it entirely (it serializes to the unit
/// value, which the struct serializer omits, and deserializes to "not built
/// yet").
#[derive(Debug, Clone, Default)]
struct KernelCache(Option<Box<CompiledKernel>>);

impl PartialEq for KernelCache {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Serialize for KernelCache {
    fn to_value(&self) -> Value {
        Value::Unit
    }
}

impl Deserialize for KernelCache {
    fn from_value(_: &Value) -> Result<Self, serde::Error> {
        Ok(KernelCache::default())
    }

    fn absent() -> Option<Self> {
        Some(KernelCache::default())
    }
}

/// A lumped RC thermal network with its current temperature state.
///
/// ```
/// use tbp_thermal::rc::RcNetwork;
/// use tbp_arch::units::Celsius;
///
/// # fn main() -> Result<(), tbp_thermal::ThermalError> {
/// let mut net = RcNetwork::new(Celsius::new(45.0));
/// let hot = net.add_node("hot", 0.5, 0.05)?;
/// let cold = net.add_node("cold", 0.5, 0.05)?;
/// net.add_edge(hot, cold, 0.02)?;
/// net.set_power(hot, 1.0)?;
/// for _ in 0..10_000 {
///     net.euler_step(0.01);
/// }
/// assert!(net.temperature(hot).as_celsius() > net.temperature(cold).as_celsius());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RcNetwork {
    nodes: Vec<RcNode>,
    edges: Vec<RcEdge>,
    temperatures: Vec<f64>,
    power: Vec<f64>,
    ambient: Celsius,
    kernel: KernelCache,
}

impl RcNetwork {
    /// Creates an empty network at the given ambient temperature. New nodes
    /// start at ambient.
    pub fn new(ambient: Celsius) -> Self {
        RcNetwork {
            nodes: Vec::new(),
            edges: Vec::new(),
            temperatures: Vec::new(),
            power: Vec::new(),
            ambient,
            kernel: KernelCache::default(),
        }
    }

    /// Ambient temperature of the network.
    pub fn ambient(&self) -> Celsius {
        self.ambient
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Nodes of the network.
    pub fn nodes(&self) -> &[RcNode] {
        &self.nodes
    }

    /// Edges of the network.
    pub fn edges(&self) -> &[RcEdge] {
        &self.edges
    }

    /// Adds a node and returns its index.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for a non-positive or
    /// non-finite capacitance, or a negative ambient conductance.
    pub fn add_node(
        &mut self,
        name: &str,
        capacitance: f64,
        ambient_conductance: f64,
    ) -> Result<usize, ThermalError> {
        if !(capacitance.is_finite() && capacitance > 0.0) {
            return Err(ThermalError::InvalidParameter(format!(
                "capacitance of `{name}` must be positive (got {capacitance})"
            )));
        }
        if !(ambient_conductance.is_finite() && ambient_conductance >= 0.0) {
            return Err(ThermalError::InvalidParameter(format!(
                "ambient conductance of `{name}` must be non-negative (got {ambient_conductance})"
            )));
        }
        self.nodes.push(RcNode {
            name: name.to_string(),
            capacitance,
            ambient_conductance,
        });
        self.temperatures.push(self.ambient.as_celsius());
        self.power.push(0.0);
        self.kernel.0 = None;
        Ok(self.nodes.len() - 1)
    }

    /// Adds a conductive edge between two nodes.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::UnknownNode`] for an out-of-range index and
    /// [`ThermalError::InvalidParameter`] for a non-positive conductance or a
    /// self-loop.
    pub fn add_edge(&mut self, a: usize, b: usize, conductance: f64) -> Result<(), ThermalError> {
        if a >= self.nodes.len() {
            return Err(ThermalError::UnknownNode(a));
        }
        if b >= self.nodes.len() {
            return Err(ThermalError::UnknownNode(b));
        }
        if a == b {
            return Err(ThermalError::InvalidParameter(
                "self-coupled thermal node".into(),
            ));
        }
        if !(conductance.is_finite() && conductance > 0.0) {
            return Err(ThermalError::InvalidParameter(format!(
                "edge conductance must be positive (got {conductance})"
            )));
        }
        self.edges.push(RcEdge { a, b, conductance });
        self.kernel.0 = None;
        Ok(())
    }

    /// Builds the compiled flat-array kernel (and its cached stability limit)
    /// if a topology mutation invalidated it. Idempotent and cheap when the
    /// kernel is already built; [`Solver::advance`](crate::solver::Solver)
    /// calls this before integrating so the hot loop never recompiles.
    pub fn ensure_compiled(&mut self) {
        if self.kernel.0.is_none() {
            self.kernel.0 = Some(Box::new(CompiledKernel::build(&self.nodes, &self.edges)));
        }
    }

    /// Returns `true` when the compiled kernel is currently built (it is
    /// dropped by [`add_node`](Self::add_node) / [`add_edge`](Self::add_edge)
    /// and rebuilt by [`ensure_compiled`](Self::ensure_compiled)).
    pub fn is_compiled(&self) -> bool {
        self.kernel.0.is_some()
    }

    /// Sets the power injected into a node (W).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::UnknownNode`] for an out-of-range index.
    pub fn set_power(&mut self, node: usize, watts: f64) -> Result<(), ThermalError> {
        if node >= self.nodes.len() {
            return Err(ThermalError::UnknownNode(node));
        }
        self.power[node] = watts;
        Ok(())
    }

    /// Currently injected power at a node (W). Returns 0 for out-of-range
    /// indices.
    pub fn power(&self, node: usize) -> f64 {
        self.power.get(node).copied().unwrap_or(0.0)
    }

    /// Sets the power (W) of each listed node in one pass — the batched form
    /// of [`set_power`](Self::set_power) used by the per-step injection of
    /// the thermal model.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::UnknownNode`] for the first out-of-range
    /// index; earlier entries of the batch stay applied.
    pub fn set_node_powers<I>(&mut self, nodes: &[usize], watts: I) -> Result<(), ThermalError>
    where
        I: IntoIterator<Item = f64>,
    {
        for (&node, w) in nodes.iter().zip(watts) {
            *self
                .power
                .get_mut(node)
                .ok_or(ThermalError::UnknownNode(node))? = w;
        }
        Ok(())
    }

    /// Current temperature of a node. Out-of-range indices return the
    /// ambient temperature.
    pub fn temperature(&self, node: usize) -> Celsius {
        self.temperatures
            .get(node)
            .copied()
            .map(Celsius::new)
            .unwrap_or(self.ambient)
    }

    /// All node temperatures in index order.
    pub fn temperatures(&self) -> Vec<Celsius> {
        self.temperatures
            .iter()
            .copied()
            .map(Celsius::new)
            .collect()
    }

    /// Overwrites a node's temperature (used to set initial conditions).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::UnknownNode`] for an out-of-range index.
    pub fn set_temperature(&mut self, node: usize, value: Celsius) -> Result<(), ThermalError> {
        if node >= self.nodes.len() {
            return Err(ThermalError::UnknownNode(node));
        }
        self.temperatures[node] = value.as_celsius();
        Ok(())
    }

    /// Resets every node to the ambient temperature and clears injected power.
    pub fn reset(&mut self) {
        for t in &mut self.temperatures {
            *t = self.ambient.as_celsius();
        }
        for p in &mut self.power {
            *p = 0.0;
        }
    }

    /// Time derivative of each node temperature for the current state, K/s.
    pub fn derivative(&self, temperatures: &[f64]) -> Vec<f64> {
        let mut flow = Vec::new();
        self.derivative_into(temperatures, &mut flow);
        flow
    }

    /// Allocation-free form of [`derivative`](Self::derivative): writes the
    /// per-node derivative into `out`, resizing it to the node count.
    ///
    /// Uses the compiled kernel when it is built (see
    /// [`ensure_compiled`](Self::ensure_compiled)); either way the
    /// accumulation happens in the same edge order with the same operations,
    /// so the results are bit-identical.
    pub fn derivative_into(&self, temperatures: &[f64], out: &mut Vec<f64>) {
        let ambient = self.ambient.as_celsius();
        out.clear();
        if let Some(kernel) = self.kernel.0.as_deref() {
            out.extend(
                self.power
                    .iter()
                    .zip(&kernel.ambient_g)
                    .zip(temperatures)
                    .map(|((p, g), t)| p + g * (ambient - t)),
            );
            let flow = &mut out[..];
            for ((&a, &b), &g) in kernel.edge_a.iter().zip(&kernel.edge_b).zip(&kernel.edge_g) {
                let q = g * (temperatures[b] - temperatures[a]);
                flow[a] += q;
                flow[b] -= q;
            }
            for (f, c) in flow.iter_mut().zip(&kernel.capacitance) {
                *f /= c;
            }
        } else {
            out.extend(
                self.power
                    .iter()
                    .zip(&self.nodes)
                    .zip(temperatures)
                    .map(|((p, node), t)| p + node.ambient_conductance * (ambient - t)),
            );
            let flow = &mut out[..];
            for edge in &self.edges {
                let q = edge.conductance * (temperatures[edge.b] - temperatures[edge.a]);
                flow[edge.a] += q;
                flow[edge.b] -= q;
            }
            for (f, node) in flow.iter_mut().zip(&self.nodes) {
                *f /= node.capacitance;
            }
        }
    }

    /// Largest explicit-Euler step (seconds) that keeps the integration
    /// stable: `min_i C_i / ΣG_i`.
    ///
    /// Served from the compiled kernel's cache when it is built; otherwise
    /// recomputed from the topology (identical value either way).
    pub fn max_stable_step(&self) -> f64 {
        match self.kernel.0.as_deref() {
            Some(kernel) => kernel.max_stable_step,
            None => compute_max_stable_step(&self.nodes, &self.edges),
        }
    }

    /// Performs one explicit (forward) Euler step of `dt` seconds.
    ///
    /// Callers are responsible for keeping `dt` below
    /// [`max_stable_step`](Self::max_stable_step); the higher-level
    /// [`solver`](crate::solver) module handles sub-stepping automatically.
    /// Allocates a derivative buffer per call — the hot loop uses
    /// [`euler_step_with`](Self::euler_step_with) instead.
    pub fn euler_step(&mut self, dt: f64) {
        let mut workspace = SolverWorkspace::new();
        self.euler_step_with(dt, &mut workspace);
    }

    /// [`euler_step`](Self::euler_step) writing into a reusable
    /// [`SolverWorkspace`] — allocation-free once the workspace buffers have
    /// grown to the network size.
    pub fn euler_step_with(&mut self, dt: f64, workspace: &mut SolverWorkspace) {
        let SolverWorkspace { k1, .. } = workspace;
        self.derivative_into(&self.temperatures, k1);
        for (t, d) in self.temperatures.iter_mut().zip(k1.iter()) {
            *t += dt * d;
        }
    }

    /// Performs one classic Runge–Kutta (RK4) step of `dt` seconds.
    ///
    /// Allocates stage buffers per call — the hot loop uses
    /// [`rk4_step_with`](Self::rk4_step_with) instead.
    pub fn rk4_step(&mut self, dt: f64) {
        let mut workspace = SolverWorkspace::new();
        self.rk4_step_with(dt, &mut workspace);
    }

    /// [`rk4_step`](Self::rk4_step) writing every stage (k1–k4 and the
    /// intermediate temperature vectors) into a reusable [`SolverWorkspace`]
    /// — allocation-free once the workspace buffers have grown to the
    /// network size. The stage arithmetic matches [`rk4_step`](Self::rk4_step)
    /// operation for operation, so temperatures stay bit-identical.
    pub fn rk4_step_with(&mut self, dt: f64, workspace: &mut SolverWorkspace) {
        let n = self.temperatures.len();
        let SolverWorkspace {
            k1,
            k2,
            k3,
            k4,
            t0,
            stage,
        } = workspace;
        t0.clear();
        t0.extend_from_slice(&self.temperatures);
        self.derivative_into(t0, k1);
        stage.clear();
        stage.extend(t0.iter().zip(k1.iter()).map(|(t, k)| t + 0.5 * dt * k));
        self.derivative_into(stage, k2);
        for i in 0..n {
            stage[i] = t0[i] + 0.5 * dt * k2[i];
        }
        self.derivative_into(stage, k3);
        for i in 0..n {
            stage[i] = t0[i] + dt * k3[i];
        }
        self.derivative_into(stage, k4);
        for i in 0..n {
            self.temperatures[i] = t0[i] + dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
    }

    /// Computes the steady-state temperatures for the currently injected
    /// power by iterating a damped Gauss–Seidel relaxation of the static heat
    /// balance. The dynamic state is not modified.
    pub fn steady_state(&self) -> Vec<Celsius> {
        self.steady_state_for(&self.power)
            .expect("own power vector always matches")
    }

    /// Injected power of every node, in index order (W).
    pub fn powers(&self) -> &[f64] {
        &self.power
    }

    /// Raw node temperatures in index order (°C), for the lane-batched
    /// kernel's state export.
    pub(crate) fn temperatures_raw(&self) -> &[f64] {
        &self.temperatures
    }

    /// Mutable raw node temperatures, for the lane-batched kernel's
    /// write-back of integrated state.
    pub(crate) fn temperatures_raw_mut(&mut self) -> &mut [f64] {
        &mut self.temperatures
    }

    /// [`steady_state`](Self::steady_state) for an explicit per-node power
    /// vector instead of the currently injected one, so callers (e.g.
    /// [`ThermalModel::steady_state`](crate::model::ThermalModel)) do not
    /// have to clone the network just to vary the power.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerLengthMismatch`] when `power` does not
    /// have one entry per node.
    pub fn steady_state_for(&self, power: &[f64]) -> Result<Vec<Celsius>, ThermalError> {
        if power.len() != self.nodes.len() {
            return Err(ThermalError::PowerLengthMismatch {
                expected: self.nodes.len(),
                actual: power.len(),
            });
        }
        let n = self.nodes.len();
        let mut t: Vec<f64> = self.temperatures.clone();
        // Pre-index neighbours for the relaxation.
        let mut neighbours: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for edge in &self.edges {
            neighbours[edge.a].push((edge.b, edge.conductance));
            neighbours[edge.b].push((edge.a, edge.conductance));
        }
        for _ in 0..20_000 {
            let mut max_delta: f64 = 0.0;
            for i in 0..n {
                let mut g_sum = self.nodes[i].ambient_conductance;
                let mut rhs =
                    power[i] + self.nodes[i].ambient_conductance * self.ambient.as_celsius();
                for &(j, g) in &neighbours[i] {
                    g_sum += g;
                    rhs += g * t[j];
                }
                if g_sum > 0.0 {
                    let new_t = rhs / g_sum;
                    max_delta = max_delta.max((new_t - t[i]).abs());
                    t[i] = new_t;
                }
            }
            if max_delta < 1e-9 {
                break;
            }
        }
        Ok(t.into_iter().map(Celsius::new).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_network() -> (RcNetwork, usize, usize) {
        let mut net = RcNetwork::new(Celsius::new(45.0));
        let a = net.add_node("a", 1.0, 0.1).unwrap();
        let b = net.add_node("b", 1.0, 0.1).unwrap();
        net.add_edge(a, b, 0.05).unwrap();
        (net, a, b)
    }

    #[test]
    fn construction_and_validation() {
        let mut net = RcNetwork::new(Celsius::new(45.0));
        assert!(net.is_empty());
        assert_eq!(net.ambient().as_celsius(), 45.0);
        let a = net.add_node("a", 1.0, 0.0).unwrap();
        assert_eq!(net.len(), 1);
        assert!(!net.is_empty());
        assert_eq!(net.nodes()[a].name, "a");
        assert!(net.add_node("bad", 0.0, 0.1).is_err());
        assert!(net.add_node("bad", f64::NAN, 0.1).is_err());
        assert!(net.add_node("bad", 1.0, -0.1).is_err());
        let b = net.add_node("b", 1.0, 0.0).unwrap();
        assert!(net.add_edge(a, b, 0.1).is_ok());
        assert!(net.add_edge(a, a, 0.1).is_err());
        assert!(net.add_edge(a, 99, 0.1).is_err());
        assert!(net.add_edge(99, b, 0.1).is_err());
        assert!(net.add_edge(a, b, 0.0).is_err());
        assert_eq!(net.edges().len(), 1);
        assert!(net.set_power(99, 1.0).is_err());
        assert!(net.set_temperature(99, Celsius::new(50.0)).is_err());
        assert_eq!(net.power(99), 0.0);
        assert_eq!(net.temperature(99).as_celsius(), 45.0);
    }

    #[test]
    fn nodes_start_at_ambient_and_stay_without_power() {
        let (mut net, a, b) = two_node_network();
        assert_eq!(net.temperature(a).as_celsius(), 45.0);
        for _ in 0..1000 {
            net.euler_step(0.1);
        }
        assert!((net.temperature(a).as_celsius() - 45.0).abs() < 1e-9);
        assert!((net.temperature(b).as_celsius() - 45.0).abs() < 1e-9);
    }

    #[test]
    fn heated_node_rises_and_settles_at_analytic_steady_state() {
        let (mut net, a, b) = two_node_network();
        net.set_power(a, 1.0).unwrap();
        assert_eq!(net.power(a), 1.0);
        let dt = 0.5 * net.max_stable_step();
        for _ in 0..200_000 {
            net.euler_step(dt);
        }
        let ta = net.temperature(a).as_celsius();
        let tb = net.temperature(b).as_celsius();
        assert!(ta > tb);
        assert!(tb > 45.0);
        // Analytic solution of the 2-node divider:
        //   node a: G_amb=0.1, edge 0.05 to b, b has G_amb=0.1.
        // Solve: 1 = 0.1(Ta-45) + 0.05(Ta-Tb); 0 = 0.1(Tb-45) - 0.05(Ta-Tb)
        // => Tb-45 = (Ta-45)/3; 1 = 0.1 x + 0.05*2x/3 where x = Ta-45
        let x = 1.0 / (0.1 + 0.1 / 3.0);
        assert!((ta - (45.0 + x)).abs() < 1e-3);
        assert!((tb - (45.0 + x / 3.0)).abs() < 1e-3);
        // steady_state() agrees with the integrated result.
        let ss = net.steady_state();
        assert!((ss[a].as_celsius() - ta).abs() < 1e-3);
        assert!((ss[b].as_celsius() - tb).abs() < 1e-3);
    }

    #[test]
    fn rk4_matches_euler_with_small_steps() {
        let (mut euler_net, a, _) = two_node_network();
        let (mut rk4_net, _, _) = two_node_network();
        euler_net.set_power(a, 0.5).unwrap();
        rk4_net.set_power(a, 0.5).unwrap();
        let dt = 0.2 * euler_net.max_stable_step();
        for _ in 0..5_000 {
            euler_net.euler_step(dt);
            rk4_net.rk4_step(dt);
        }
        for i in 0..euler_net.len() {
            assert!(
                (euler_net.temperature(i).as_celsius() - rk4_net.temperature(i).as_celsius()).abs()
                    < 0.05
            );
        }
    }

    #[test]
    fn topology_mutation_invalidates_the_compiled_kernel() {
        let (mut net, a, _) = two_node_network();
        assert!(!net.is_compiled());
        net.ensure_compiled();
        assert!(net.is_compiled());
        let stable_before = net.max_stable_step();

        // Stepping uses (and keeps) the compiled kernel.
        net.set_power(a, 1.0).unwrap();
        net.euler_step(0.01);
        assert!(net.is_compiled());

        // Adding a node drops the kernel; the stability limit is recomputed
        // from the new topology, not served stale from the cache.
        let c = net.add_node("c", 0.001, 5.0).unwrap();
        assert!(!net.is_compiled());
        let stale_free = net.max_stable_step();
        assert!(stale_free < stable_before);
        net.ensure_compiled();
        assert_eq!(net.max_stable_step().to_bits(), stale_free.to_bits());

        // Adding an edge invalidates again, and stepping after the mutation
        // recompiles and integrates the new topology (the new node heats up
        // through the fresh edge).
        net.add_edge(a, c, 0.5).unwrap();
        assert!(!net.is_compiled());
        let solver = crate::solver::Solver::default();
        solver
            .advance(&mut net, tbp_arch::units::Seconds::from_millis(10.0))
            .unwrap();
        assert!(net.is_compiled());
        assert!(net.temperature(c).as_celsius() > 45.0);

        // Non-topology mutations (power, temperature, reset) keep the kernel.
        net.set_power(a, 0.5).unwrap();
        net.set_temperature(a, Celsius::new(50.0)).unwrap();
        net.reset();
        assert!(net.is_compiled());
    }

    #[test]
    fn max_stable_step_is_finite_for_grounded_networks() {
        let (net, _, _) = two_node_network();
        let dt = net.max_stable_step();
        assert!(dt.is_finite());
        assert!(dt > 0.0);
        // A network with a floating node reports an infinite limit for it but
        // the minimum over grounded nodes still applies.
        let mut floating = RcNetwork::new(Celsius::new(45.0));
        floating.add_node("float", 1.0, 0.0).unwrap();
        assert!(floating.max_stable_step().is_infinite());
    }

    #[test]
    fn energy_conservation_between_coupled_nodes() {
        // With no ambient connection, total heat is conserved: the mean
        // temperature rises linearly with injected energy.
        let mut net = RcNetwork::new(Celsius::new(45.0));
        let a = net.add_node("a", 2.0, 0.0).unwrap();
        let b = net.add_node("b", 2.0, 0.0).unwrap();
        net.add_edge(a, b, 0.05).unwrap();
        net.set_power(a, 1.0).unwrap();
        let dt = 0.25 * (2.0 / 0.05f64);
        let steps = 100;
        for _ in 0..steps {
            net.euler_step(dt);
        }
        let injected = 1.0 * dt * steps as f64; // joules
        let stored = 2.0 * (net.temperature(a).as_celsius() - 45.0)
            + 2.0 * (net.temperature(b).as_celsius() - 45.0);
        assert!((stored - injected).abs() / injected < 1e-9);
    }

    #[test]
    fn set_temperature_and_reset() {
        let (mut net, a, b) = two_node_network();
        net.set_temperature(a, Celsius::new(80.0)).unwrap();
        assert_eq!(net.temperature(a).as_celsius(), 80.0);
        net.set_power(b, 2.0).unwrap();
        net.reset();
        assert_eq!(net.temperature(a).as_celsius(), 45.0);
        assert_eq!(net.power(b), 0.0);
        assert_eq!(net.temperatures().len(), 2);
    }

    #[test]
    fn cooling_decays_towards_ambient() {
        let (mut net, a, _) = two_node_network();
        net.set_temperature(a, Celsius::new(90.0)).unwrap();
        let t_start = net.temperature(a).as_celsius();
        let dt = 0.5 * net.max_stable_step();
        for _ in 0..2_000 {
            net.euler_step(dt);
        }
        let t_end = net.temperature(a).as_celsius();
        assert!(t_end < t_start);
        assert!(t_end >= 45.0 - 1e-6);
    }
}
