//! Generic lumped resistance–capacitance thermal network.
//!
//! The network is a graph of thermal nodes. Each node has a heat capacitance
//! and optionally a conductance to the fixed-temperature ambient; pairs of
//! nodes are coupled by conductances. Power (heat) is injected into nodes and
//! the temperature state evolves according to
//!
//! ```text
//! C_i · dT_i/dt = P_i + Σ_j G_ij (T_j − T_i) + G_amb,i (T_amb − T_i)
//! ```
//!
//! which is exactly the equation HotSpot integrates for its block-level mode.

use serde::{Deserialize, Serialize};

use crate::error::ThermalError;
use tbp_arch::units::Celsius;

/// A single thermal node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RcNode {
    /// Human-readable name (floorplan block name, `spreader`, `sink`, ...).
    pub name: String,
    /// Heat capacitance in J/K.
    pub capacitance: f64,
    /// Conductance to the ambient in W/K (zero when not connected).
    pub ambient_conductance: f64,
}

/// A conductive coupling between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RcEdge {
    /// First node index.
    pub a: usize,
    /// Second node index.
    pub b: usize,
    /// Conductance in W/K.
    pub conductance: f64,
}

/// A lumped RC thermal network with its current temperature state.
///
/// ```
/// use tbp_thermal::rc::RcNetwork;
/// use tbp_arch::units::Celsius;
///
/// # fn main() -> Result<(), tbp_thermal::ThermalError> {
/// let mut net = RcNetwork::new(Celsius::new(45.0));
/// let hot = net.add_node("hot", 0.5, 0.05)?;
/// let cold = net.add_node("cold", 0.5, 0.05)?;
/// net.add_edge(hot, cold, 0.02)?;
/// net.set_power(hot, 1.0)?;
/// for _ in 0..10_000 {
///     net.euler_step(0.01);
/// }
/// assert!(net.temperature(hot).as_celsius() > net.temperature(cold).as_celsius());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RcNetwork {
    nodes: Vec<RcNode>,
    edges: Vec<RcEdge>,
    temperatures: Vec<f64>,
    power: Vec<f64>,
    ambient: Celsius,
}

impl RcNetwork {
    /// Creates an empty network at the given ambient temperature. New nodes
    /// start at ambient.
    pub fn new(ambient: Celsius) -> Self {
        RcNetwork {
            nodes: Vec::new(),
            edges: Vec::new(),
            temperatures: Vec::new(),
            power: Vec::new(),
            ambient,
        }
    }

    /// Ambient temperature of the network.
    pub fn ambient(&self) -> Celsius {
        self.ambient
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Nodes of the network.
    pub fn nodes(&self) -> &[RcNode] {
        &self.nodes
    }

    /// Edges of the network.
    pub fn edges(&self) -> &[RcEdge] {
        &self.edges
    }

    /// Adds a node and returns its index.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for a non-positive or
    /// non-finite capacitance, or a negative ambient conductance.
    pub fn add_node(
        &mut self,
        name: &str,
        capacitance: f64,
        ambient_conductance: f64,
    ) -> Result<usize, ThermalError> {
        if !(capacitance.is_finite() && capacitance > 0.0) {
            return Err(ThermalError::InvalidParameter(format!(
                "capacitance of `{name}` must be positive (got {capacitance})"
            )));
        }
        if !(ambient_conductance.is_finite() && ambient_conductance >= 0.0) {
            return Err(ThermalError::InvalidParameter(format!(
                "ambient conductance of `{name}` must be non-negative (got {ambient_conductance})"
            )));
        }
        self.nodes.push(RcNode {
            name: name.to_string(),
            capacitance,
            ambient_conductance,
        });
        self.temperatures.push(self.ambient.as_celsius());
        self.power.push(0.0);
        Ok(self.nodes.len() - 1)
    }

    /// Adds a conductive edge between two nodes.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::UnknownNode`] for an out-of-range index and
    /// [`ThermalError::InvalidParameter`] for a non-positive conductance or a
    /// self-loop.
    pub fn add_edge(&mut self, a: usize, b: usize, conductance: f64) -> Result<(), ThermalError> {
        if a >= self.nodes.len() {
            return Err(ThermalError::UnknownNode(a));
        }
        if b >= self.nodes.len() {
            return Err(ThermalError::UnknownNode(b));
        }
        if a == b {
            return Err(ThermalError::InvalidParameter(
                "self-coupled thermal node".into(),
            ));
        }
        if !(conductance.is_finite() && conductance > 0.0) {
            return Err(ThermalError::InvalidParameter(format!(
                "edge conductance must be positive (got {conductance})"
            )));
        }
        self.edges.push(RcEdge { a, b, conductance });
        Ok(())
    }

    /// Sets the power injected into a node (W).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::UnknownNode`] for an out-of-range index.
    pub fn set_power(&mut self, node: usize, watts: f64) -> Result<(), ThermalError> {
        if node >= self.nodes.len() {
            return Err(ThermalError::UnknownNode(node));
        }
        self.power[node] = watts;
        Ok(())
    }

    /// Currently injected power at a node (W). Returns 0 for out-of-range
    /// indices.
    pub fn power(&self, node: usize) -> f64 {
        self.power.get(node).copied().unwrap_or(0.0)
    }

    /// Current temperature of a node. Out-of-range indices return the
    /// ambient temperature.
    pub fn temperature(&self, node: usize) -> Celsius {
        self.temperatures
            .get(node)
            .copied()
            .map(Celsius::new)
            .unwrap_or(self.ambient)
    }

    /// All node temperatures in index order.
    pub fn temperatures(&self) -> Vec<Celsius> {
        self.temperatures
            .iter()
            .copied()
            .map(Celsius::new)
            .collect()
    }

    /// Overwrites a node's temperature (used to set initial conditions).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::UnknownNode`] for an out-of-range index.
    pub fn set_temperature(&mut self, node: usize, value: Celsius) -> Result<(), ThermalError> {
        if node >= self.nodes.len() {
            return Err(ThermalError::UnknownNode(node));
        }
        self.temperatures[node] = value.as_celsius();
        Ok(())
    }

    /// Resets every node to the ambient temperature and clears injected power.
    pub fn reset(&mut self) {
        for t in &mut self.temperatures {
            *t = self.ambient.as_celsius();
        }
        for p in &mut self.power {
            *p = 0.0;
        }
    }

    /// Time derivative of each node temperature for the current state, K/s.
    pub fn derivative(&self, temperatures: &[f64]) -> Vec<f64> {
        let mut flow = vec![0.0; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            flow[i] = self.power[i]
                + node.ambient_conductance * (self.ambient.as_celsius() - temperatures[i]);
        }
        for edge in &self.edges {
            let q = edge.conductance * (temperatures[edge.b] - temperatures[edge.a]);
            flow[edge.a] += q;
            flow[edge.b] -= q;
        }
        for (i, node) in self.nodes.iter().enumerate() {
            flow[i] /= node.capacitance;
        }
        flow
    }

    /// Largest explicit-Euler step (seconds) that keeps the integration
    /// stable: `min_i C_i / ΣG_i`.
    pub fn max_stable_step(&self) -> f64 {
        let mut total_conductance = vec![0.0; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            total_conductance[i] += node.ambient_conductance;
        }
        for edge in &self.edges {
            total_conductance[edge.a] += edge.conductance;
            total_conductance[edge.b] += edge.conductance;
        }
        self.nodes
            .iter()
            .zip(&total_conductance)
            .map(|(node, &g)| {
                if g > 0.0 {
                    node.capacitance / g
                } else {
                    f64::INFINITY
                }
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// Performs one explicit (forward) Euler step of `dt` seconds.
    ///
    /// Callers are responsible for keeping `dt` below
    /// [`max_stable_step`](Self::max_stable_step); the higher-level
    /// [`solver`](crate::solver) module handles sub-stepping automatically.
    pub fn euler_step(&mut self, dt: f64) {
        let derivative = self.derivative(&self.temperatures);
        for (t, d) in self.temperatures.iter_mut().zip(derivative) {
            *t += dt * d;
        }
    }

    /// Performs one classic Runge–Kutta (RK4) step of `dt` seconds.
    pub fn rk4_step(&mut self, dt: f64) {
        let t0 = self.temperatures.clone();
        let k1 = self.derivative(&t0);
        let t1: Vec<f64> = t0.iter().zip(&k1).map(|(t, k)| t + 0.5 * dt * k).collect();
        let k2 = self.derivative(&t1);
        let t2: Vec<f64> = t0.iter().zip(&k2).map(|(t, k)| t + 0.5 * dt * k).collect();
        let k3 = self.derivative(&t2);
        let t3: Vec<f64> = t0.iter().zip(&k3).map(|(t, k)| t + dt * k).collect();
        let k4 = self.derivative(&t3);
        for i in 0..self.temperatures.len() {
            self.temperatures[i] = t0[i] + dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
    }

    /// Computes the steady-state temperatures for the currently injected
    /// power by iterating a damped Gauss–Seidel relaxation of the static heat
    /// balance. The dynamic state is not modified.
    pub fn steady_state(&self) -> Vec<Celsius> {
        let n = self.nodes.len();
        let mut t: Vec<f64> = self.temperatures.clone();
        // Pre-index neighbours for the relaxation.
        let mut neighbours: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for edge in &self.edges {
            neighbours[edge.a].push((edge.b, edge.conductance));
            neighbours[edge.b].push((edge.a, edge.conductance));
        }
        for _ in 0..20_000 {
            let mut max_delta: f64 = 0.0;
            for i in 0..n {
                let mut g_sum = self.nodes[i].ambient_conductance;
                let mut rhs =
                    self.power[i] + self.nodes[i].ambient_conductance * self.ambient.as_celsius();
                for &(j, g) in &neighbours[i] {
                    g_sum += g;
                    rhs += g * t[j];
                }
                if g_sum > 0.0 {
                    let new_t = rhs / g_sum;
                    max_delta = max_delta.max((new_t - t[i]).abs());
                    t[i] = new_t;
                }
            }
            if max_delta < 1e-9 {
                break;
            }
        }
        t.into_iter().map(Celsius::new).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_network() -> (RcNetwork, usize, usize) {
        let mut net = RcNetwork::new(Celsius::new(45.0));
        let a = net.add_node("a", 1.0, 0.1).unwrap();
        let b = net.add_node("b", 1.0, 0.1).unwrap();
        net.add_edge(a, b, 0.05).unwrap();
        (net, a, b)
    }

    #[test]
    fn construction_and_validation() {
        let mut net = RcNetwork::new(Celsius::new(45.0));
        assert!(net.is_empty());
        assert_eq!(net.ambient().as_celsius(), 45.0);
        let a = net.add_node("a", 1.0, 0.0).unwrap();
        assert_eq!(net.len(), 1);
        assert!(!net.is_empty());
        assert_eq!(net.nodes()[a].name, "a");
        assert!(net.add_node("bad", 0.0, 0.1).is_err());
        assert!(net.add_node("bad", f64::NAN, 0.1).is_err());
        assert!(net.add_node("bad", 1.0, -0.1).is_err());
        let b = net.add_node("b", 1.0, 0.0).unwrap();
        assert!(net.add_edge(a, b, 0.1).is_ok());
        assert!(net.add_edge(a, a, 0.1).is_err());
        assert!(net.add_edge(a, 99, 0.1).is_err());
        assert!(net.add_edge(99, b, 0.1).is_err());
        assert!(net.add_edge(a, b, 0.0).is_err());
        assert_eq!(net.edges().len(), 1);
        assert!(net.set_power(99, 1.0).is_err());
        assert!(net.set_temperature(99, Celsius::new(50.0)).is_err());
        assert_eq!(net.power(99), 0.0);
        assert_eq!(net.temperature(99).as_celsius(), 45.0);
    }

    #[test]
    fn nodes_start_at_ambient_and_stay_without_power() {
        let (mut net, a, b) = two_node_network();
        assert_eq!(net.temperature(a).as_celsius(), 45.0);
        for _ in 0..1000 {
            net.euler_step(0.1);
        }
        assert!((net.temperature(a).as_celsius() - 45.0).abs() < 1e-9);
        assert!((net.temperature(b).as_celsius() - 45.0).abs() < 1e-9);
    }

    #[test]
    fn heated_node_rises_and_settles_at_analytic_steady_state() {
        let (mut net, a, b) = two_node_network();
        net.set_power(a, 1.0).unwrap();
        assert_eq!(net.power(a), 1.0);
        let dt = 0.5 * net.max_stable_step();
        for _ in 0..200_000 {
            net.euler_step(dt);
        }
        let ta = net.temperature(a).as_celsius();
        let tb = net.temperature(b).as_celsius();
        assert!(ta > tb);
        assert!(tb > 45.0);
        // Analytic solution of the 2-node divider:
        //   node a: G_amb=0.1, edge 0.05 to b, b has G_amb=0.1.
        // Solve: 1 = 0.1(Ta-45) + 0.05(Ta-Tb); 0 = 0.1(Tb-45) - 0.05(Ta-Tb)
        // => Tb-45 = (Ta-45)/3; 1 = 0.1 x + 0.05*2x/3 where x = Ta-45
        let x = 1.0 / (0.1 + 0.1 / 3.0);
        assert!((ta - (45.0 + x)).abs() < 1e-3);
        assert!((tb - (45.0 + x / 3.0)).abs() < 1e-3);
        // steady_state() agrees with the integrated result.
        let ss = net.steady_state();
        assert!((ss[a].as_celsius() - ta).abs() < 1e-3);
        assert!((ss[b].as_celsius() - tb).abs() < 1e-3);
    }

    #[test]
    fn rk4_matches_euler_with_small_steps() {
        let (mut euler_net, a, _) = two_node_network();
        let (mut rk4_net, _, _) = two_node_network();
        euler_net.set_power(a, 0.5).unwrap();
        rk4_net.set_power(a, 0.5).unwrap();
        let dt = 0.2 * euler_net.max_stable_step();
        for _ in 0..5_000 {
            euler_net.euler_step(dt);
            rk4_net.rk4_step(dt);
        }
        for i in 0..euler_net.len() {
            assert!(
                (euler_net.temperature(i).as_celsius() - rk4_net.temperature(i).as_celsius()).abs()
                    < 0.05
            );
        }
    }

    #[test]
    fn max_stable_step_is_finite_for_grounded_networks() {
        let (net, _, _) = two_node_network();
        let dt = net.max_stable_step();
        assert!(dt.is_finite());
        assert!(dt > 0.0);
        // A network with a floating node reports an infinite limit for it but
        // the minimum over grounded nodes still applies.
        let mut floating = RcNetwork::new(Celsius::new(45.0));
        floating.add_node("float", 1.0, 0.0).unwrap();
        assert!(floating.max_stable_step().is_infinite());
    }

    #[test]
    fn energy_conservation_between_coupled_nodes() {
        // With no ambient connection, total heat is conserved: the mean
        // temperature rises linearly with injected energy.
        let mut net = RcNetwork::new(Celsius::new(45.0));
        let a = net.add_node("a", 2.0, 0.0).unwrap();
        let b = net.add_node("b", 2.0, 0.0).unwrap();
        net.add_edge(a, b, 0.05).unwrap();
        net.set_power(a, 1.0).unwrap();
        let dt = 0.25 * (2.0 / 0.05f64);
        let steps = 100;
        for _ in 0..steps {
            net.euler_step(dt);
        }
        let injected = 1.0 * dt * steps as f64; // joules
        let stored = 2.0 * (net.temperature(a).as_celsius() - 45.0)
            + 2.0 * (net.temperature(b).as_celsius() - 45.0);
        assert!((stored - injected).abs() / injected < 1e-9);
    }

    #[test]
    fn set_temperature_and_reset() {
        let (mut net, a, b) = two_node_network();
        net.set_temperature(a, Celsius::new(80.0)).unwrap();
        assert_eq!(net.temperature(a).as_celsius(), 80.0);
        net.set_power(b, 2.0).unwrap();
        net.reset();
        assert_eq!(net.temperature(a).as_celsius(), 45.0);
        assert_eq!(net.power(b), 0.0);
        assert_eq!(net.temperatures().len(), 2);
    }

    #[test]
    fn cooling_decays_towards_ambient() {
        let (mut net, a, _) = two_node_network();
        net.set_temperature(a, Celsius::new(90.0)).unwrap();
        let t_start = net.temperature(a).as_celsius();
        let dt = 0.5 * net.max_stable_step();
        for _ in 0..2_000 {
            net.euler_step(dt);
        }
        let t_end = net.temperature(a).as_celsius();
        assert!(t_end < t_start);
        assert!(t_end >= 45.0 - 1e-6);
    }
}
