//! Thermal package parameterisations.
//!
//! Section 4 of the paper compares two packaging solutions:
//!
//! * a **mobile embedded** package derived from real-life streaming SoCs
//!   (i.MX31-class devices), where a temperature rise of about 10 °C takes a
//!   few seconds;
//! * a **high-performance** package modelling "highly variant" SoCs where
//!   significant temperature changes happen in less than a second — the paper
//!   states its temperature variations are **6× faster** than the mobile
//!   model.
//!
//! The same steady-state behaviour is kept for both (resistances are
//! unchanged); only the thermal capacitances shrink, which is exactly how a
//! thinner die/package with less thermal mass behaves.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::ThermalError;
use tbp_arch::units::Celsius;

/// Speed-up factor of the high-performance package relative to the mobile
/// one, as stated in Section 5 of the paper.
pub const HIGH_PERFORMANCE_SPEEDUP: f64 = 6.0;

/// Which of the paper's two packages a [`Package`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PackageKind {
    /// Mobile embedded streaming SoC package (slow thermal dynamics).
    MobileEmbedded,
    /// High-performance SoC package (6× faster thermal dynamics).
    HighPerformance,
    /// A custom parameterisation.
    Custom,
}

impl fmt::Display for PackageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackageKind::MobileEmbedded => write!(f, "mobile embedded"),
            PackageKind::HighPerformance => write!(f, "high performance"),
            PackageKind::Custom => write!(f, "custom"),
        }
    }
}

/// Physical parameters of the die + package thermal stack.
///
/// The defaults are calibrated so the paper's 3-core SDR workload reproduces
/// the reported behaviour: roughly a 10 °C spread between the hottest and
/// coolest core after the DVFS-only warm-up, with the mobile package needing
/// seconds to move by 10 °C.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Package {
    kind: PackageKind,
    /// Ambient temperature the sink convects into.
    pub ambient: Celsius,
    /// Die thickness in metres.
    pub die_thickness_m: f64,
    /// Silicon volumetric heat capacity, J/(m³·K).
    pub silicon_volumetric_heat: f64,
    /// Silicon in-plane thermal conductivity, W/(m·K).
    pub silicon_conductivity: f64,
    /// Specific vertical resistance from a die block to the spreader,
    /// K·m²/W (divide by block area to get the block's vertical resistance).
    pub vertical_resistance_specific: f64,
    /// Heat-spreader capacitance, J/K.
    pub spreader_capacitance: f64,
    /// Spreader-to-sink resistance, K/W.
    pub spreader_to_sink_resistance: f64,
    /// Heat-sink (or case) capacitance, J/K.
    pub sink_capacitance: f64,
    /// Sink-to-ambient (convection) resistance, K/W.
    pub sink_to_ambient_resistance: f64,
    /// Multiplier applied to all die-block capacitances. Values below one
    /// make the die respond faster; the high-performance package divides all
    /// capacitances by [`HIGH_PERFORMANCE_SPEEDUP`].
    pub capacitance_scale: f64,
}

impl Package {
    /// The mobile embedded streaming-SoC package (default in the paper's
    /// first experiment set).
    pub fn mobile_embedded() -> Self {
        Package {
            kind: PackageKind::MobileEmbedded,
            ambient: Celsius::ambient(),
            die_thickness_m: 0.35e-3,
            silicon_volumetric_heat: 1.75e6,
            silicon_conductivity: 35.0,
            vertical_resistance_specific: 7.0e-4,
            spreader_capacitance: 0.35,
            spreader_to_sink_resistance: 2.0,
            sink_capacitance: 0.3,
            sink_to_ambient_resistance: 8.0,
            capacitance_scale: 3.0,
        }
    }

    /// The high-performance package: identical steady state, thermal
    /// capacitances divided by [`HIGH_PERFORMANCE_SPEEDUP`] so temperature
    /// variations are six times faster (Section 5 of the paper).
    pub fn high_performance() -> Self {
        let mobile = Package::mobile_embedded();
        Package {
            kind: PackageKind::HighPerformance,
            spreader_capacitance: mobile.spreader_capacitance / HIGH_PERFORMANCE_SPEEDUP,
            sink_capacitance: mobile.sink_capacitance / HIGH_PERFORMANCE_SPEEDUP,
            capacitance_scale: mobile.capacitance_scale / HIGH_PERFORMANCE_SPEEDUP,
            ..mobile
        }
    }

    /// Which package this is.
    pub fn kind(&self) -> PackageKind {
        self.kind
    }

    /// Marks the package as a custom parameterisation (builder helper used
    /// after tweaking fields).
    pub fn into_custom(mut self) -> Self {
        self.kind = PackageKind::Custom;
        self
    }

    /// Validates the physical parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] when any capacitance,
    /// resistance, conductivity or geometric parameter is not positive and
    /// finite.
    pub fn validate(&self) -> Result<(), ThermalError> {
        let checks = [
            ("die thickness", self.die_thickness_m),
            ("silicon volumetric heat", self.silicon_volumetric_heat),
            ("silicon conductivity", self.silicon_conductivity),
            (
                "vertical specific resistance",
                self.vertical_resistance_specific,
            ),
            ("spreader capacitance", self.spreader_capacitance),
            (
                "spreader-to-sink resistance",
                self.spreader_to_sink_resistance,
            ),
            ("sink capacitance", self.sink_capacitance),
            (
                "sink-to-ambient resistance",
                self.sink_to_ambient_resistance,
            ),
            ("capacitance scale", self.capacitance_scale),
        ];
        for (name, value) in checks {
            if !(value.is_finite() && value > 0.0) {
                return Err(ThermalError::InvalidParameter(format!(
                    "{name} must be positive and finite (got {value})"
                )));
            }
        }
        Ok(())
    }

    /// Thermal capacitance (J/K) of a die block of the given area (m²),
    /// including the package's capacitance scaling.
    pub fn block_capacitance(&self, area_m2: f64) -> f64 {
        self.silicon_volumetric_heat * self.die_thickness_m * area_m2 * self.capacitance_scale
    }

    /// Vertical conductance (W/K) from a die block of the given area (m²) to
    /// the spreader.
    pub fn block_vertical_conductance(&self, area_m2: f64) -> f64 {
        area_m2 / self.vertical_resistance_specific
    }

    /// Lateral conductance (W/K) between two adjacent die blocks sharing an
    /// edge of `shared_edge_m` metres whose centres are `distance_m` apart.
    pub fn lateral_conductance(&self, shared_edge_m: f64, distance_m: f64) -> f64 {
        if distance_m <= 0.0 {
            return 0.0;
        }
        self.silicon_conductivity * self.die_thickness_m * shared_edge_m / distance_m
    }

    /// Conductance (W/K) from the spreader to the sink.
    pub fn spreader_to_sink_conductance(&self) -> f64 {
        1.0 / self.spreader_to_sink_resistance
    }

    /// Conductance (W/K) from the sink to ambient.
    pub fn sink_to_ambient_conductance(&self) -> f64 {
        1.0 / self.sink_to_ambient_resistance
    }
}

impl Default for Package {
    fn default() -> Self {
        Package::mobile_embedded()
    }
}

impl fmt::Display for Package {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} package (ambient {})", self.kind, self.ambient)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packages_validate() {
        assert!(Package::mobile_embedded().validate().is_ok());
        assert!(Package::high_performance().validate().is_ok());
        assert!(Package::default().validate().is_ok());
        assert_eq!(Package::default().kind(), PackageKind::MobileEmbedded);
        assert_eq!(
            Package::high_performance().kind(),
            PackageKind::HighPerformance
        );
        assert_eq!(
            Package::mobile_embedded().into_custom().kind(),
            PackageKind::Custom
        );
    }

    #[test]
    fn invalid_parameters_detected() {
        let mut p = Package::mobile_embedded();
        p.sink_capacitance = 0.0;
        assert!(p.validate().is_err());
        let mut p = Package::mobile_embedded();
        p.die_thickness_m = -1.0;
        assert!(p.validate().is_err());
        let mut p = Package::mobile_embedded();
        p.capacitance_scale = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn high_performance_is_six_times_faster() {
        let mobile = Package::mobile_embedded();
        let fast = Package::high_performance();
        let area = 6e-6;
        let ratio = mobile.block_capacitance(area) / fast.block_capacitance(area);
        assert!((ratio - HIGH_PERFORMANCE_SPEEDUP).abs() < 1e-9);
        assert!(
            (mobile.spreader_capacitance / fast.spreader_capacitance - HIGH_PERFORMANCE_SPEEDUP)
                .abs()
                < 1e-9
        );
        assert!(
            (mobile.sink_capacitance / fast.sink_capacitance - HIGH_PERFORMANCE_SPEEDUP).abs()
                < 1e-9
        );
        // Same steady state: resistances unchanged.
        assert_eq!(
            mobile.vertical_resistance_specific,
            fast.vertical_resistance_specific
        );
        assert_eq!(
            mobile.sink_to_ambient_resistance,
            fast.sink_to_ambient_resistance
        );
    }

    #[test]
    fn conductances_scale_with_geometry() {
        let p = Package::mobile_embedded();
        assert!(p.block_vertical_conductance(6e-6) > p.block_vertical_conductance(1.5e-6));
        assert!(p.lateral_conductance(2e-3, 3e-3) > p.lateral_conductance(1e-3, 3e-3));
        assert_eq!(p.lateral_conductance(2e-3, 0.0), 0.0);
        assert!(p.spreader_to_sink_conductance() > 0.0);
        assert!(p.sink_to_ambient_conductance() > 0.0);
        assert!(p.block_capacitance(6e-6) > 0.0);
    }

    #[test]
    fn display_mentions_kind() {
        assert!(Package::mobile_embedded().to_string().contains("mobile"));
        assert!(Package::high_performance().to_string().contains("high"));
        assert!(format!("{}", PackageKind::Custom).contains("custom"));
    }
}
