//! # tbp-thermal — HotSpot-style lumped-RC thermal model
//!
//! The paper evaluates its policy on a thermal emulation framework whose
//! temperatures are computed by a software library "based on the HotSpot
//! thermal analysis tool" (Section 4). This crate reimplements that layer as
//! an equivalent lumped resistance–capacitance (RC) network:
//!
//! * every floorplan block of the die becomes a thermal node with a
//!   capacitance proportional to its silicon volume;
//! * adjacent blocks exchange heat through lateral conductances derived from
//!   their shared edge length;
//! * each block connects vertically to a heat **spreader** node, the spreader
//!   to a **sink** node, and the sink to the fixed-temperature **ambient**.
//!
//! Two [`package::Package`] parameterisations reproduce the paper's two
//! targets: a **mobile embedded** package where a 10 °C swing takes a few
//! seconds, and a **high-performance** package whose thermal capacitances are
//! six times smaller, so temperature changes are 6× faster (Section 5).
//!
//! Temperatures are advanced by [`solver::Solver`] (forward Euler with
//! stability-bounded sub-steps, or classic RK4), and sampled every 10 ms by a
//! [`sensor::SensorBank`] exactly like the emulation platform updates its
//! shared-memory thermal registers.
//!
//! # Example
//!
//! ```
//! use tbp_arch::floorplan::Floorplan;
//! use tbp_arch::units::{Seconds, Watts};
//! use tbp_thermal::{package::Package, model::ThermalModel};
//!
//! # fn main() -> Result<(), tbp_thermal::ThermalError> {
//! let floorplan = Floorplan::paper_3core();
//! let mut model = ThermalModel::new(&floorplan, Package::mobile_embedded())?;
//!
//! // Heat core 0 with 0.4 W for one second of simulated time.
//! let mut power = vec![Watts::ZERO; floorplan.len()];
//! power[floorplan.index_of("core0")?] = Watts::new(0.4);
//! for _ in 0..100 {
//!     model.step(&power, Seconds::from_millis(10.0))?;
//! }
//! let hot = model.block_temperature(floorplan.index_of("core0")?);
//! let cold = model.block_temperature(floorplan.index_of("core2")?);
//! assert!(hot > cold);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod error;
pub mod lanes;
pub mod model;
pub mod package;
pub mod rc;
pub mod sensor;
pub mod solver;

pub use error::ThermalError;
pub use lanes::ThermalLaneKernel;
pub use model::ThermalModel;
pub use package::Package;
pub use sensor::SensorBank;
pub use solver::{SolverKind, SolverWorkspace};
