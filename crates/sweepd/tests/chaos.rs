//! Chaos tests: the merged report survives every fault the plan can inject.
//!
//! The contract under test is the crate's headline invariant: no matter
//! which frames are dropped/corrupted/delayed and which workers die or go
//! silent mid-lease, a coordinator that completes returns a
//! [`BatchReport`] **byte-identical** to a single-process
//! [`Runner::run`] over the same specs. Each deterministic test pins one
//! failure mode of the matrix in `docs/DISTRIBUTED.md`; the seeded proptest
//! then sweeps random [`FaultPlan`]s over the same grid.
//!
//! Every distributed run here includes one healthy worker, so completion is
//! guaranteed even when the chaotic worker removes itself from service.

use std::time::Duration;

use proptest::prelude::*;

use tbp_core::scenario::{Runner, ScenarioSpec, SweepSpec};
use tbp_obs::MetricsRegistry;
use tbp_sweepd::{
    CoordConfig, CoordMetrics, Coordinator, FaultPlan, SweepError, Worker, WorkerConfig,
    WorkerMetrics, WorkerOutcome,
};

/// A small sweep grid: 2 policies × 2 thresholds = 4 scenarios, short
/// simulated window — one distributed run stays well under a second.
fn grid() -> Vec<ScenarioSpec> {
    vec![ScenarioSpec::new("chaos-grid")
        .with_schedule(0.2, 0.5)
        .with_sweep(
            SweepSpec::default()
                .with_policies(["thermal-balancing", "energy-balancing"])
                .with_thresholds([1.0, 3.0]),
        )]
}

/// Coordinator tuning for tests: leases expire fast, handshakes time out
/// fast, and an overall completion timeout converts a hung test into a
/// failure instead of a stuck suite.
fn coord_config() -> CoordConfig {
    CoordConfig {
        lease_timeout: Duration::from_millis(300),
        tick: Duration::from_millis(10),
        hello_timeout: Duration::from_millis(500),
        completion_timeout: Some(Duration::from_secs(60)),
        fault: FaultPlan::none(),
    }
}

/// Worker tuning to match: heartbeats well under the lease timeout, tiny
/// backoff, a short stall window so `stall-at-lease` tests finish quickly.
fn worker_config(name: &str, seed: u64, fault: FaultPlan) -> WorkerConfig {
    WorkerConfig {
        name: name.to_string(),
        heartbeat: Duration::from_millis(50),
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(50),
        max_retries: 3,
        seed,
        fault,
        local_fallback: false,
        stall_duration: Duration::from_millis(600),
        hello_timeout: Duration::from_millis(500),
    }
}

/// Runs one distributed sweep: a coordinator (instruments registered in the
/// returned registry) plus one worker per fault plan. Returns the merged
/// report and each worker's terminal outcome.
#[allow(clippy::type_complexity)]
fn distributed(
    specs: &[ScenarioSpec],
    faults: Vec<FaultPlan>,
) -> (
    Result<tbp_core::scenario::BatchReport, SweepError>,
    Vec<Result<WorkerOutcome, SweepError>>,
    MetricsRegistry,
) {
    let registry = MetricsRegistry::new();
    let coordinator = Coordinator::bind("127.0.0.1:0", specs, coord_config())
        .expect("coordinator binds an ephemeral port")
        .with_metrics(CoordMetrics::register(&registry));
    let addr = coordinator.local_addr().expect("bound address").to_string();
    let coord_handle = std::thread::spawn(move || coordinator.run());
    let worker_handles: Vec<_> = faults
        .into_iter()
        .enumerate()
        .map(|(i, fault)| {
            let name = format!("w{i}");
            let config = worker_config(&name, i as u64, fault);
            let worker = Worker::new(addr.clone(), specs, Runner::sequential(), config)
                .expect("worker prepares")
                .with_metrics(WorkerMetrics::register(&registry));
            std::thread::spawn(move || worker.run())
        })
        .collect();
    let batch = coord_handle.join().expect("coordinator thread completes");
    let outcomes = worker_handles
        .into_iter()
        .map(|h| h.join().expect("worker thread completes"))
        .collect();
    (batch, outcomes, registry)
}

fn assert_identical(batch: &tbp_core::scenario::BatchReport, specs: &[ScenarioSpec]) {
    let solo = Runner::sequential().run(specs).expect("solo run succeeds");
    assert_eq!(batch.to_json(), solo.to_json(), "JSON reports must match");
    assert_eq!(batch.to_csv(), solo.to_csv(), "CSV reports must match");
}

#[test]
fn clean_two_worker_sweep_matches_the_solo_report() {
    let specs = grid();
    let (batch, outcomes, registry) =
        distributed(&specs, vec![FaultPlan::none(), FaultPlan::none()]);
    assert_identical(&batch.unwrap(), &specs);
    for outcome in outcomes {
        assert!(matches!(outcome, Ok(WorkerOutcome::Served { .. })));
    }
    let snap = registry.snapshot(0.0);
    assert_eq!(snap.counter("sweepd.results"), Some(4));
    assert_eq!(snap.counter("sweepd.frames_rejected"), Some(0));
}

#[test]
fn a_killed_worker_never_changes_the_merged_report() {
    let specs = grid();
    let kill = FaultPlan::parse("kill-at-lease=1").unwrap();
    let (batch, outcomes, registry) = distributed(&specs, vec![kill, FaultPlan::none()]);
    assert_identical(&batch.unwrap(), &specs);
    assert!(matches!(
        outcomes[0],
        Ok(WorkerOutcome::Killed { at_lease: 1 })
    ));
    assert!(matches!(outcomes[1], Ok(WorkerOutcome::Served { .. })));
    // The killed worker's lease came back via disconnect-reclaim (or expiry,
    // if the reaper won the race) — either way the batch closed.
    let snap = registry.snapshot(0.0);
    let recovered = snap.counter("sweepd.leases_reclaimed").unwrap_or(0)
        + snap.counter("sweepd.leases_expired").unwrap_or(0);
    assert!(recovered >= 1, "the dropped lease must be recovered");
}

#[test]
fn a_stalled_worker_expires_by_deadline_and_the_batch_completes() {
    let specs = grid();
    let stall = FaultPlan::parse("stall-at-lease=1").unwrap();
    let (batch, outcomes, registry) = distributed(&specs, vec![stall, FaultPlan::none()]);
    assert_identical(&batch.unwrap(), &specs);
    assert!(matches!(
        outcomes[0],
        Ok(WorkerOutcome::Stalled { at_lease: 1 })
    ));
    // A stall keeps the connection open, so the lease can only come back by
    // deadline expiry — the reaper path specifically.
    let snap = registry.snapshot(0.0);
    assert!(snap.counter("sweepd.leases_expired").unwrap_or(0) >= 1);
}

#[test]
fn corrupted_and_dropped_frames_heal_through_reconnect() {
    let specs = grid();
    // Frame 1 is the worker's HELLO; 2.. are heartbeats/results. Corrupting
    // an early frame poisons the connection (CRC reject), dropping a result
    // forces a lease expiry — both must heal.
    let faulty = FaultPlan::parse("corrupt=2,drop=4").unwrap();
    let (batch, _outcomes, registry) = distributed(&specs, vec![faulty, FaultPlan::none()]);
    assert_identical(&batch.unwrap(), &specs);
    let snap = registry.snapshot(0.0);
    assert!(
        snap.counter("sweepd.frames_rejected").unwrap_or(0) >= 1,
        "the corrupted frame must be counted as rejected"
    );
    assert!(
        snap.counter("sweepd.worker_frames_corrupted").unwrap_or(0) >= 1
            && snap.counter("sweepd.worker_frames_dropped").unwrap_or(0) >= 1,
        "the fault tap must account for its injections"
    );
}

#[test]
fn a_batch_digest_mismatch_is_refused_as_fatal() {
    let specs = grid();
    let other = vec![ScenarioSpec::new("different-batch").with_schedule(0.2, 0.5)];
    let registry = MetricsRegistry::new();
    let coordinator = Coordinator::bind("127.0.0.1:0", &specs, coord_config())
        .unwrap()
        .with_metrics(CoordMetrics::register(&registry));
    let addr = coordinator.local_addr().unwrap().to_string();
    let coord_handle = std::thread::spawn(move || coordinator.run());

    // The mismatched worker is refused outright — no retry can help.
    let mismatched = Worker::new(
        addr.clone(),
        &other,
        Runner::sequential(),
        worker_config("mismatch", 0, FaultPlan::none()),
    )
    .unwrap();
    match mismatched.run() {
        Err(SweepError::Handshake(reason)) => {
            assert!(reason.contains("batch mismatch"), "got: {reason}")
        }
        other => panic!("expected a fatal handshake refusal, got {other:?}"),
    }

    // A matching worker still completes the batch afterwards.
    let healthy = Worker::new(
        addr,
        &specs,
        Runner::sequential(),
        worker_config("healthy", 1, FaultPlan::none()),
    )
    .unwrap();
    assert!(matches!(healthy.run(), Ok(WorkerOutcome::Served { .. })));
    assert_identical(&coord_handle.join().unwrap().unwrap(), &specs);
}

#[test]
fn an_unreachable_coordinator_degrades_to_a_local_batch() {
    let specs = grid();
    let config = WorkerConfig {
        local_fallback: true,
        max_retries: 1,
        ..worker_config("lonely", 7, FaultPlan::none())
    };
    // Port 1 refuses connections immediately.
    let worker = Worker::new("127.0.0.1:1", &specs, Runner::sequential(), config).unwrap();
    match worker.run() {
        Ok(WorkerOutcome::LocalBatch(batch)) => assert_identical(&batch, &specs),
        other => panic!("expected the local fallback, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline invariant, swept over seeded fault plans: one chaotic
    /// worker (random drops/corruptions/delays/kills/stalls) plus one
    /// healthy worker always converge to the byte-identical solo report.
    #[test]
    fn seeded_fault_plans_always_converge_to_the_solo_report(seed in any::<u64>()) {
        let specs = grid();
        let chaos = FaultPlan::from_seed(seed);
        let (batch, outcomes, _registry) =
            distributed(&specs, vec![chaos, FaultPlan::none()]);
        let batch = batch.expect("batch completes despite the fault plan");
        let solo = Runner::sequential().run(&specs).unwrap();
        prop_assert_eq!(batch.to_json(), solo.to_json());
        prop_assert_eq!(batch.to_csv(), solo.to_csv());
        // The healthy worker always ends in a clean shutdown.
        prop_assert!(matches!(outcomes[1], Ok(WorkerOutcome::Served { .. })));
    }
}
