//! Deterministic fault injection for the sweep transport.
//!
//! Chaos testing a distributed service is only useful when a failing run can
//! be replayed exactly. A [`FaultPlan`] is a *pure data* description of the
//! faults one peer will inject — drop/delay/corrupt its Nth outgoing frame,
//! kill or stall itself at its Mth lease — built either from an explicit CLI
//! spec ([`FaultPlan::parse`]) or derived deterministically from a seed
//! ([`FaultPlan::from_seed`], used by the chaos proptest). The
//! [`FrameSender`](crate::proto::FrameSender) consults the plan on every
//! outgoing frame; the worker consults it on every granted lease. No clock,
//! no randomness at injection time: the same plan against the same traffic
//! produces the same faults.

use std::time::Duration;

/// What to do with one outgoing frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Send the frame unmodified.
    Deliver,
    /// Silently discard the frame (the peer sees a gap, not an error).
    Drop,
    /// Flip a payload byte *after* the CRC is computed — the peer's CRC
    /// check must reject the frame.
    Corrupt,
    /// Sleep this long, then deliver the frame unmodified.
    Delay(Duration),
}

/// A deterministic, replayable set of faults for one peer.
///
/// Frame numbers are 1-based and count that peer's outgoing frames across
/// its whole lifetime (surviving reconnects — otherwise a fault on an early
/// frame would re-fire on every reconnect and never heal). Lease numbers are
/// 1-based and count leases *granted to* the worker.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    drop_frames: Vec<u64>,
    corrupt_frames: Vec<u64>,
    delay_frames: Vec<(u64, u64)>,
    kill_at_lease: Option<u64>,
    stall_at_lease: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether this plan injects nothing at all.
    pub fn is_none(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// Parses the CLI fault spec: comma-separated `key=value` clauses.
    ///
    /// | clause | effect |
    /// |---|---|
    /// | `drop=N` | drop outgoing frame N |
    /// | `corrupt=N` | corrupt outgoing frame N |
    /// | `delay=N:MS` | delay outgoing frame N by MS milliseconds |
    /// | `kill-at-lease=M` | die abruptly on receiving lease M |
    /// | `stall-at-lease=M` | go silent (connection open, no heartbeats) on lease M |
    ///
    /// Clauses may repeat (`drop=2,drop=5`).
    ///
    /// # Errors
    ///
    /// Returns a description of the offending clause.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none();
        for clause in spec.split(',').filter(|c| !c.trim().is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause `{clause}` is not key=value"))?;
            let parse_u64 = |v: &str, what: &str| {
                v.trim()
                    .parse::<u64>()
                    .map_err(|_| format!("fault clause `{clause}`: {what} `{v}` is not a number"))
            };
            match key.trim() {
                "drop" => plan.drop_frames.push(parse_u64(value, "frame")?),
                "corrupt" => plan.corrupt_frames.push(parse_u64(value, "frame")?),
                "delay" => {
                    let (frame, ms) = value.split_once(':').ok_or_else(|| {
                        format!("fault clause `{clause}` needs delay=FRAME:MILLIS")
                    })?;
                    plan.delay_frames
                        .push((parse_u64(frame, "frame")?, parse_u64(ms, "delay")?));
                }
                "kill-at-lease" => plan.kill_at_lease = Some(parse_u64(value, "lease")?),
                "stall-at-lease" => plan.stall_at_lease = Some(parse_u64(value, "lease")?),
                other => return Err(format!("unknown fault kind `{other}`")),
            }
        }
        Ok(plan)
    }

    /// Derives a random-but-replayable chaos plan from a seed: a handful of
    /// dropped/corrupted/delayed frames early in the stream, sometimes a
    /// kill or stall at an early lease. Every fault kind this module knows
    /// is reachable from some seed; the same seed always yields the same
    /// plan.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut plan = FaultPlan::none();
        // Frame-level faults: up to three, within the first 12 frames so
        // they actually land on handshake/lease/heartbeat/result traffic of
        // a small test batch.
        for _ in 0..(rng.next_u64() % 4) {
            let frame = 2 + rng.next_u64() % 11;
            match rng.next_u64() % 3 {
                0 => plan.drop_frames.push(frame),
                1 => plan.corrupt_frames.push(frame),
                _ => plan.delay_frames.push((frame, 5 + rng.next_u64() % 40)),
            }
        }
        // Process-level faults: kill or stall at one of the first leases.
        match rng.next_u64() % 4 {
            0 => plan.kill_at_lease = Some(1 + rng.next_u64() % 3),
            1 => plan.stall_at_lease = Some(1 + rng.next_u64() % 3),
            _ => {}
        }
        plan
    }

    /// The action for outgoing frame `seq` (1-based). Precedence when one
    /// frame is named by several clauses: drop, then corrupt, then delay.
    pub fn action(&self, seq: u64) -> FaultAction {
        if self.drop_frames.contains(&seq) {
            return FaultAction::Drop;
        }
        if self.corrupt_frames.contains(&seq) {
            return FaultAction::Corrupt;
        }
        if let Some((_, ms)) = self.delay_frames.iter().find(|(frame, _)| *frame == seq) {
            return FaultAction::Delay(Duration::from_millis(*ms));
        }
        FaultAction::Deliver
    }

    /// The 1-based lease number at which the worker dies abruptly, if any.
    pub fn kill_at_lease(&self) -> Option<u64> {
        self.kill_at_lease
    }

    /// The 1-based lease number at which the worker goes silent, if any.
    pub fn stall_at_lease(&self) -> Option<u64> {
        self.stall_at_lease
    }
}

/// SplitMix64 — the tiny deterministic generator used for fault-plan
/// derivation and backoff jitter (the same construction the workload
/// subsystem uses for arrival processes).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Capped exponential backoff with deterministic "equal jitter".
///
/// Attempt `n` (1-based) waits `min(cap, base · 2ⁿ⁻¹)` scaled into
/// `[50 %, 100 %]` by a jitter factor derived from `(seed, attempt)` — so a
/// fleet of workers with distinct seeds spreads its reconnects, while any
/// single worker's schedule replays exactly.
pub fn backoff_delay(attempt: u32, base: Duration, cap: Duration, seed: u64) -> Duration {
    let exp = attempt.saturating_sub(1).min(20);
    let raw = base
        .saturating_mul(1u32 << exp.min(16))
        .min(cap)
        .max(Duration::from_millis(1));
    let jitter_bits =
        SplitMix64::new(seed ^ u64::from(attempt).wrapping_mul(0xA076_1D64_78BD_642F)).next_u64()
            >> 11; // 53 bits, like a float mantissa
    let fraction = jitter_bits as f64 / (1u64 << 53) as f64;
    raw.mul_f64(0.5 + 0.5 * fraction)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_every_clause_and_rejects_garbage() {
        let plan = FaultPlan::parse("drop=3,corrupt=7,delay=2:150,kill-at-lease=2,drop=5").unwrap();
        assert_eq!(plan.action(3), FaultAction::Drop);
        assert_eq!(plan.action(5), FaultAction::Drop);
        assert_eq!(plan.action(7), FaultAction::Corrupt);
        assert_eq!(
            plan.action(2),
            FaultAction::Delay(Duration::from_millis(150))
        );
        assert_eq!(plan.action(4), FaultAction::Deliver);
        assert_eq!(plan.kill_at_lease(), Some(2));
        assert_eq!(plan.stall_at_lease(), None);
        assert_eq!(
            FaultPlan::parse("stall-at-lease=1")
                .unwrap()
                .stall_at_lease(),
            Some(1)
        );
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::none());
        assert!(FaultPlan::parse("explode=1").is_err());
        assert!(FaultPlan::parse("drop").is_err());
        assert!(FaultPlan::parse("drop=x").is_err());
        assert!(FaultPlan::parse("delay=3").is_err());
    }

    #[test]
    fn seeded_plans_are_deterministic_and_varied() {
        for seed in 0..64 {
            assert_eq!(FaultPlan::from_seed(seed), FaultPlan::from_seed(seed));
        }
        let distinct: std::collections::BTreeSet<String> = (0..64)
            .map(|s| format!("{:?}", FaultPlan::from_seed(s)))
            .collect();
        assert!(distinct.len() > 16, "seeds should produce varied plans");
        assert!((0..64).any(|s| FaultPlan::from_seed(s).kill_at_lease().is_some()));
        assert!((0..64).any(|s| FaultPlan::from_seed(s).stall_at_lease().is_some()));
        assert!((0..64).any(|s| FaultPlan::from_seed(s).is_none()));
    }

    #[test]
    fn backoff_is_deterministic_capped_and_grows() {
        let base = Duration::from_millis(100);
        let cap = Duration::from_secs(5);
        for attempt in 1..12 {
            let a = backoff_delay(attempt, base, cap, 42);
            let b = backoff_delay(attempt, base, cap, 42);
            assert_eq!(a, b, "same (seed, attempt) must replay the same delay");
            assert!(a <= cap, "delay never exceeds the cap");
            assert!(a >= base / 2, "equal jitter keeps at least half the step");
        }
        // Distinct seeds de-synchronize a reconnect stampede.
        let spread: std::collections::BTreeSet<Duration> = (0..16)
            .map(|seed| backoff_delay(3, base, cap, seed))
            .collect();
        assert!(spread.len() > 8);
        // The envelope grows until the cap.
        assert!(backoff_delay(6, base, cap, 7) > backoff_delay(1, base, cap, 7));
    }
}
