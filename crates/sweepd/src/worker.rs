//! The worker: leases scenarios, runs them, survives everything.
//!
//! A [`Worker`] connects to the coordinator, proves in the `HELLO`
//! handshake that it loaded the *same batch* (protocol version + batch
//! content digest + expansion size), then loops: receive a lease, run the
//! scenario through the ordinary
//! [`Runner`] (with whatever cache the caller
//! configured — a shared [`FsCache`](tbp_core::scenario::FsCache) makes
//! crash re-execution free), heartbeat while computing, deliver the result.
//!
//! Robustness behaviors:
//!
//! * **Reconnect with capped exponential backoff + deterministic jitter**
//!   ([`backoff_delay`]) on any lost
//!   connection; the retry budget resets after every successful handshake.
//! * **Local fallback** ([`WorkerConfig::local_fallback`]): when the
//!   coordinator stays unreachable through the whole retry budget, run the
//!   entire batch locally instead of failing — the sweep degrades to
//!   exactly what `run_scenario` would have done.
//! * **Fatal refusals stay fatal**: a `NACK` marked fatal (version or batch
//!   mismatch) aborts instead of retrying forever.
//! * **Fault injection**: the configured
//!   [`FaultPlan`] taps outgoing frames and can
//!   kill ([`WorkerOutcome::Killed`]) or stall ([`WorkerOutcome::Stalled`])
//!   the worker at a given lease, for deterministic chaos tests.

use std::net::TcpStream;
use std::time::{Duration, Instant};

use tbp_core::scenario::{expand_work, BatchReport, Runner, ScenarioSpec, WorkItem};
use tbp_core::SimError;
use tbp_obs::metrics::{Counter, MetricsRegistry};

use crate::fault::{backoff_delay, FaultPlan};
use crate::proto::{
    FrameReceiver, FrameSender, Heartbeat, Hello, LeaseResult, Msg, ProtoError, PROTOCOL_VERSION,
};
use crate::SweepError;

/// Tuning knobs of a [`Worker`].
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Display name carried in the handshake (shows up in coordinator
    /// diagnostics).
    pub name: String,
    /// Heartbeat period while computing or idle. Keep well under the
    /// coordinator's lease timeout.
    pub heartbeat: Duration,
    /// First reconnect backoff step.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Consecutive failed connection attempts tolerated before giving up
    /// (then: local fallback or [`SweepError::Unreachable`]). Resets after
    /// every successful handshake.
    pub max_retries: u32,
    /// Seed for backoff jitter (give each worker its own to spread
    /// reconnect stampedes).
    pub seed: u64,
    /// Deterministic fault injection for chaos tests.
    pub fault: FaultPlan,
    /// Run the whole batch locally when the coordinator stays unreachable.
    pub local_fallback: bool,
    /// How long a `stall-at-lease` fault holds the connection open in
    /// silence before giving up (tests use a short window; the CI smoke
    /// keeps it long and `kill -9`s the process instead).
    pub stall_duration: Duration,
    /// How long to wait for the coordinator's `HELLO` reply.
    pub hello_timeout: Duration,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            name: "worker".to_string(),
            heartbeat: Duration::from_millis(500),
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
            max_retries: 5,
            seed: 0,
            fault: FaultPlan::none(),
            local_fallback: false,
            stall_duration: Duration::from_secs(600),
            hello_timeout: Duration::from_secs(5),
        }
    }
}

/// Live instruments of a worker, registered under `sweepd.worker_*`.
#[derive(Debug, Clone)]
pub struct WorkerMetrics {
    /// First successful handshakes (`sweepd.worker_connects`).
    pub connects: Counter,
    /// Re-connections after a lost session (`sweepd.worker_reconnects`).
    pub reconnects: Counter,
    /// Leases received (`sweepd.worker_leases`).
    pub leases: Counter,
    /// Results delivered (`sweepd.worker_results`).
    pub results: Counter,
    /// Heartbeats sent, idle keepalives included
    /// (`sweepd.worker_heartbeats`).
    pub heartbeats: Counter,
    /// Outgoing frames the fault plan corrupted
    /// (`sweepd.worker_frames_corrupted`).
    pub frames_corrupted: Counter,
    /// Outgoing frames the fault plan dropped
    /// (`sweepd.worker_frames_dropped`).
    pub frames_dropped: Counter,
    /// Incoming frames rejected at the protocol layer
    /// (`sweepd.worker_frames_rejected`).
    pub frames_rejected: Counter,
}

impl WorkerMetrics {
    /// Registers (or re-resolves) the worker instruments in `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        WorkerMetrics {
            connects: registry.counter("sweepd.worker_connects"),
            reconnects: registry.counter("sweepd.worker_reconnects"),
            leases: registry.counter("sweepd.worker_leases"),
            results: registry.counter("sweepd.worker_results"),
            heartbeats: registry.counter("sweepd.worker_heartbeats"),
            frames_corrupted: registry.counter("sweepd.worker_frames_corrupted"),
            frames_dropped: registry.counter("sweepd.worker_frames_dropped"),
            frames_rejected: registry.counter("sweepd.worker_frames_rejected"),
        }
    }
}

/// How a worker's service ended.
#[derive(Debug)]
pub enum WorkerOutcome {
    /// Clean `SHUTDOWN` from the coordinator: the batch completed.
    Served {
        /// Results this worker delivered.
        results: u64,
    },
    /// The fault plan's `kill-at-lease` fired: the worker dropped
    /// everything on the floor, exactly like a crash.
    Killed {
        /// The 1-based lease count at which the kill fired.
        at_lease: u64,
    },
    /// The fault plan's `stall-at-lease` fired and the stall window
    /// elapsed: the worker held its connection open in silence (the
    /// coordinator must expire the lease by deadline).
    Stalled {
        /// The 1-based lease count at which the stall fired.
        at_lease: u64,
    },
    /// The coordinator stayed unreachable and
    /// [`WorkerConfig::local_fallback`] was set: the whole batch ran
    /// locally.
    LocalBatch(Box<BatchReport>),
}

/// How one connected session ended (internal).
enum Session {
    Shutdown,
    Lost,
    Killed(u64),
    Stalled(u64),
    Fatal(String),
    Sim(SimError),
}

/// The lease-taking client side of a distributed sweep.
pub struct Worker {
    addr: String,
    specs: Vec<ScenarioSpec>,
    items: Vec<WorkItem>,
    digest: String,
    runner: Runner,
    config: WorkerConfig,
    metrics: Option<WorkerMetrics>,
    // Mutable service state.
    frame_seq: u64,
    lease_count: u64,
    results: u64,
}

impl Worker {
    /// Prepares a worker for `addr`: `specs` must be the same scenario
    /// files (in the same order, with the same overrides) the coordinator
    /// loaded — the handshake enforces agreement via the batch digest.
    /// `runner` is used as-is; give it a cache/lane configuration exactly
    /// like a local run.
    ///
    /// # Errors
    ///
    /// [`SweepError::Sim`] when a spec fails to expand or hash,
    /// [`SweepError::Config`] on nonsensical tuning (zero heartbeat).
    pub fn new(
        addr: impl Into<String>,
        specs: &[ScenarioSpec],
        runner: Runner,
        config: WorkerConfig,
    ) -> Result<Self, SweepError> {
        if config.heartbeat.is_zero() {
            return Err(SweepError::Config(
                "heartbeat period must be nonzero".to_string(),
            ));
        }
        let assembler = tbp_core::scenario::BatchAssembler::new(specs)?;
        Ok(Worker {
            addr: addr.into(),
            specs: specs.to_vec(),
            items: expand_work(specs),
            digest: assembler.digest().to_string(),
            runner,
            config,
            metrics: None,
            frame_seq: 0,
            lease_count: 0,
            results: 0,
        })
    }

    /// Publishes connection/lease/result instruments through `metrics`
    /// (builder-style).
    pub fn with_metrics(mut self, metrics: WorkerMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Serves until the coordinator shuts the batch down (or a fault/
    /// fallback path ends things earlier — see [`WorkerOutcome`]).
    ///
    /// # Errors
    ///
    /// [`SweepError::Unreachable`] after the retry budget without
    /// `local_fallback`, [`SweepError::Handshake`] on fatal refusals,
    /// [`SweepError::Sim`] when a leased scenario fails to execute.
    pub fn run(mut self) -> Result<WorkerOutcome, SweepError> {
        let mut attempt = 0u32;
        let mut ever_connected = false;
        loop {
            attempt += 1;
            let stream = match TcpStream::connect(&self.addr) {
                Ok(stream) => stream,
                Err(e) => {
                    if attempt > self.config.max_retries {
                        if self.config.local_fallback {
                            let batch = self.runner.run(&self.specs)?;
                            return Ok(WorkerOutcome::LocalBatch(Box::new(batch)));
                        }
                        return Err(SweepError::Unreachable {
                            attempts: attempt,
                            last: e.to_string(),
                        });
                    }
                    std::thread::sleep(backoff_delay(
                        attempt,
                        self.config.backoff_base,
                        self.config.backoff_cap,
                        self.config.seed,
                    ));
                    continue;
                }
            };
            if let Some(m) = &self.metrics {
                if ever_connected {
                    m.reconnects.inc();
                } else {
                    m.connects.inc();
                }
            }
            ever_connected = true;
            match self.serve(stream) {
                Ok(Session::Shutdown) => {
                    return Ok(WorkerOutcome::Served {
                        results: self.results,
                    })
                }
                Ok(Session::Killed(at)) => return Ok(WorkerOutcome::Killed { at_lease: at }),
                Ok(Session::Stalled(at)) => return Ok(WorkerOutcome::Stalled { at_lease: at }),
                Ok(Session::Fatal(reason)) => return Err(SweepError::Handshake(reason)),
                Ok(Session::Sim(e)) => return Err(SweepError::Sim(e)),
                Ok(Session::Lost) | Err(_) => {
                    // Lost session: back off and reconnect. A session that
                    // got as far as a handshake resets the retry budget.
                    attempt = 0;
                    std::thread::sleep(backoff_delay(
                        1,
                        self.config.backoff_base,
                        self.config.backoff_cap,
                        self.config.seed ^ self.frame_seq,
                    ));
                }
            }
        }
    }

    /// One connected session: handshake, then serve leases until the
    /// session ends one way or another.
    fn serve(&mut self, stream: TcpStream) -> Result<Session, SweepError> {
        stream.set_read_timeout(Some(
            (self.config.heartbeat / 4).max(Duration::from_millis(5)),
        ))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        let mut tx = FrameSender::with_fault(writer, self.config.fault.clone())
            .with_start_seq(self.frame_seq);
        let mut rx = FrameReceiver::new(stream);
        let session = self.serve_framed(&mut tx, &mut rx);
        // Frame numbering and fault-tap accounting survive reconnects.
        self.frame_seq = tx.next_seq();
        if let Some(m) = &self.metrics {
            if tx.stats.corrupted > 0 {
                m.frames_corrupted.add(tx.stats.corrupted);
            }
            if tx.stats.dropped > 0 {
                m.frames_dropped.add(tx.stats.dropped);
            }
        }
        session
    }

    fn serve_framed(
        &mut self,
        tx: &mut FrameSender,
        rx: &mut FrameReceiver,
    ) -> Result<Session, SweepError> {
        // Handshake: our HELLO, then their HELLO (or refusal).
        if tx
            .send(&Msg::Hello(Hello {
                version: PROTOCOL_VERSION,
                peer: self.config.name.clone(),
                batch: self.digest.clone(),
                total: self.items.len() as u64,
            }))
            .is_err()
        {
            return Ok(Session::Lost);
        }
        let opened = Instant::now();
        loop {
            match rx.recv() {
                Ok(Some(Msg::Hello(hello))) => {
                    if hello.version != PROTOCOL_VERSION || hello.batch != self.digest {
                        return Ok(Session::Fatal(format!(
                            "coordinator answered with version {} and digest {}, \
                             worker has version {PROTOCOL_VERSION} and digest {}",
                            hello.version, hello.batch, self.digest
                        )));
                    }
                    break;
                }
                Ok(Some(Msg::Nack(nack))) => {
                    return Ok(if nack.fatal {
                        Session::Fatal(nack.reason)
                    } else {
                        Session::Lost
                    })
                }
                Ok(Some(_)) => return Ok(Session::Lost),
                Ok(None) => {
                    if opened.elapsed() > self.config.hello_timeout {
                        return Ok(Session::Lost);
                    }
                }
                Err(e) => return Ok(self.lost_on(e)),
            }
        }

        // The lease loop.
        let mut last_keepalive = Instant::now();
        loop {
            match rx.recv() {
                Ok(Some(Msg::Lease(lease))) => {
                    self.lease_count += 1;
                    if let Some(m) = &self.metrics {
                        m.leases.inc();
                    }
                    if self.config.fault.kill_at_lease() == Some(self.lease_count) {
                        // Crash semantics: drop the connection on the floor,
                        // no goodbye. (The bins escalate this to a real
                        // process abort.)
                        return Ok(Session::Killed(self.lease_count));
                    }
                    if self.config.fault.stall_at_lease() == Some(self.lease_count) {
                        // Wedge semantics: keep the connection open but go
                        // completely silent, so the coordinator must expire
                        // the lease by deadline (not by disconnect).
                        std::thread::sleep(self.config.stall_duration);
                        return Ok(Session::Stalled(self.lease_count));
                    }
                    let index = lease.index as usize;
                    let Some(item) = self.items.get(index) else {
                        return Ok(Session::Lost);
                    };
                    let report = match self.compute(item, lease.lease, tx) {
                        Ok(report) => report,
                        Err(e) => return Ok(Session::Sim(e)),
                    };
                    if tx
                        .send(&Msg::Result(LeaseResult {
                            lease: lease.lease,
                            index: lease.index,
                            report,
                        }))
                        .is_err()
                    {
                        return Ok(Session::Lost);
                    }
                    self.results += 1;
                    if let Some(m) = &self.metrics {
                        m.results.inc();
                    }
                    last_keepalive = Instant::now();
                }
                Ok(Some(Msg::Shutdown(_))) => return Ok(Session::Shutdown),
                Ok(Some(Msg::Nack(nack))) => {
                    return Ok(if nack.fatal {
                        Session::Fatal(nack.reason)
                    } else {
                        Session::Lost
                    })
                }
                Ok(Some(_)) => return Ok(Session::Lost),
                Ok(None) => {
                    // Idle (queue empty at the coordinator, most likely):
                    // keep the connection demonstrably alive.
                    if last_keepalive.elapsed() >= self.config.heartbeat {
                        if tx.send(&Msg::Heartbeat(Heartbeat { lease: 0 })).is_err() {
                            return Ok(Session::Lost);
                        }
                        if let Some(m) = &self.metrics {
                            m.heartbeats.inc();
                        }
                        last_keepalive = Instant::now();
                    }
                }
                Err(e) => return Ok(self.lost_on(e)),
            }
        }
    }

    /// Runs one leased scenario on a helper thread while this thread
    /// heartbeats the lease.
    fn compute(
        &self,
        item: &WorkItem,
        lease: u64,
        tx: &mut FrameSender,
    ) -> Result<tbp_core::scenario::RunReport, SimError> {
        std::thread::scope(|scope| {
            let runner = &self.runner;
            let handle = scope.spawn(move || runner.run_one(&item.group, &item.case));
            let mut last_heartbeat = Instant::now();
            while !handle.is_finished() {
                std::thread::sleep(Duration::from_millis(5));
                if last_heartbeat.elapsed() >= self.config.heartbeat {
                    // A failed heartbeat is not fatal to the computation:
                    // finish it (the work is already paid for) and let the
                    // result delivery discover the connection state.
                    if tx.send(&Msg::Heartbeat(Heartbeat { lease })).is_ok() {
                        if let Some(m) = &self.metrics {
                            m.heartbeats.inc();
                        }
                    }
                    last_heartbeat = Instant::now();
                }
            }
            handle.join().expect("scenario thread never panics")
        })
    }

    /// Classifies a receive error: protocol-layer rejections are counted,
    /// every flavor ends the session the same way.
    fn lost_on(&self, error: ProtoError) -> Session {
        if !matches!(error, ProtoError::Closed | ProtoError::Io(_)) {
            if let Some(m) = &self.metrics {
                m.frames_rejected.inc();
            }
        }
        Session::Lost
    }
}
