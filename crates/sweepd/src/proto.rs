//! The framed wire protocol between coordinator and workers.
//!
//! Every message travels in one frame:
//!
//! ```text
//! ┌──────────┬──────────────┬──────────────┬─────────────┐
//! │ magic    │ payload len  │ CRC-32       │ payload     │
//! │ "TSWP"   │ u32 LE       │ u32 LE       │ len bytes   │
//! └──────────┴──────────────┴──────────────┴─────────────┘
//! ```
//!
//! The CRC is the same IEEE CRC-32 the `.tbptrace` chunk framing uses
//! ([`tbp_obs::crc32`]), computed over the payload only; the payload is the
//! JSON encoding of one [`Msg`]. A frame either verifies in full or the
//! connection is considered poisoned — after a CRC mismatch the stream
//! offset can no longer be trusted, so both sides drop the connection and
//! let the lease/backoff machinery recover, exactly like a crashed peer.
//!
//! The protocol is versioned by [`PROTOCOL_VERSION`], exchanged (and
//! checked, along with the batch content digest) in the `HELLO` handshake
//! before any work flows.
//!
//! [`FrameSender`] owns outgoing framing and is where the deterministic
//! [`FaultPlan`] taps the stream; [`FrameReceiver`]
//! owns incoming framing and distinguishes "idle" (read timeout between
//! frames — the caller's chance to do housekeeping) from real errors.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;

use serde::{Deserialize, Serialize};
use tbp_core::scenario::RunReport;
use tbp_obs::crc32::crc32;

use crate::fault::{FaultAction, FaultPlan};

/// Version of the wire protocol; peers with different versions refuse to
/// talk (fatal `NACK` at handshake).
pub const PROTOCOL_VERSION: u32 = 1;

/// Every frame starts with these four bytes.
pub const FRAME_MAGIC: [u8; 4] = *b"TSWP";

/// Upper bound a receiver accepts for one frame's payload: large enough for
/// any report JSON, small enough to reject a garbage length field before
/// allocating.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// The messages of the sweep protocol.
///
/// Direction conventions: `Hello` opens both directions of the handshake
/// (worker first); `Lease` and `Shutdown` flow coordinator → worker;
/// `Heartbeat` and `Result` flow worker → coordinator; `Nack` may flow
/// either way and precedes a deliberate disconnect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Msg {
    /// Handshake: identify yourself, your protocol version, and the batch
    /// (content digest + expansion size) you intend to work on.
    Hello(Hello),
    /// Coordinator grants the worker one scenario under a deadline-bearing
    /// lease.
    Lease(Lease),
    /// Worker renews its lease (lease 0 is an idle keepalive).
    Heartbeat(Heartbeat),
    /// Worker delivers the finished report for a lease.
    Result(LeaseResult),
    /// Refusal: the sender is about to drop the connection (fatal refusals
    /// — version/batch mismatch — must not be retried).
    Nack(Nack),
    /// Coordinator announces the batch is complete; the worker exits.
    Shutdown(Shutdown),
}

/// Handshake payload (both directions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hello {
    /// Sender's [`PROTOCOL_VERSION`].
    pub version: u32,
    /// Sender's display name (worker name or `coordinator`).
    pub peer: String,
    /// Hex batch content digest (both sides load the same specs and must
    /// agree — work is addressed by expansion index, never shipped).
    pub batch: String,
    /// Number of expanded scenarios in the batch.
    pub total: u64,
}

/// One granted lease.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lease {
    /// Coordinator-unique lease id.
    pub lease: u64,
    /// Index into the batch's deterministic expansion.
    pub index: u64,
    /// Expanded scenario name, for logs only.
    pub scenario: String,
    /// Lease lifetime granted per heartbeat, in milliseconds.
    pub deadline_ms: u64,
}

/// Lease renewal (or, with `lease == 0`, an idle keepalive).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heartbeat {
    /// The lease being renewed.
    pub lease: u64,
}

/// A finished scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeaseResult {
    /// The lease this report discharges (may already be expired — the
    /// report is still accepted if its slot is empty, see `results` vs
    /// `results_duplicate`).
    pub lease: u64,
    /// Index into the batch expansion.
    pub index: u64,
    /// The report, exactly as a local runner would have produced it.
    pub report: RunReport,
}

/// Refusal notice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Nack {
    /// Human-readable reason.
    pub reason: String,
    /// Fatal refusals (version/batch mismatch) must not be retried.
    pub fatal: bool,
}

/// End of batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Shutdown {
    /// Why the coordinator is closing (normally `batch complete`).
    pub reason: String,
}

/// Errors of the wire protocol.
#[derive(Debug)]
pub enum ProtoError {
    /// A socket read/write failed mid-frame.
    Io(std::io::Error),
    /// The peer closed the connection at a frame boundary.
    Closed,
    /// A frame did not start with [`FRAME_MAGIC`] — the stream is not (or
    /// no longer) a sweep protocol stream.
    BadMagic([u8; 4]),
    /// A frame declared a payload larger than [`MAX_FRAME_BYTES`].
    Oversized(u32),
    /// A frame's payload does not match its stored CRC-32.
    CrcMismatch {
        /// CRC stored in the frame header.
        stored: u32,
        /// CRC computed over the received payload.
        computed: u32,
    },
    /// A CRC-valid payload failed to parse as a [`Msg`].
    Malformed(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "frame I/O error: {e}"),
            ProtoError::Closed => write!(f, "peer closed the connection"),
            ProtoError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            ProtoError::Oversized(n) => {
                write!(
                    f,
                    "frame declares {n} payload bytes (limit {MAX_FRAME_BYTES})"
                )
            }
            ProtoError::CrcMismatch { stored, computed } => write!(
                f,
                "frame CRC mismatch (stored {stored:08x}, computed {computed:08x})"
            ),
            ProtoError::Malformed(what) => write!(f, "malformed frame payload: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Encodes one message into a complete frame (magic + length + CRC +
/// payload).
pub fn encode_frame(msg: &Msg) -> Vec<u8> {
    let payload = serde_json::to_string(msg).expect("protocol messages always serialize");
    let payload = payload.as_bytes();
    let mut frame = Vec::with_capacity(12 + payload.len());
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Decodes the payload bytes of one frame (CRC already verified).
fn decode_payload(payload: &[u8]) -> Result<Msg, ProtoError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| ProtoError::Malformed("payload is not UTF-8".to_string()))?;
    serde_json::from_str(text).map_err(|e| ProtoError::Malformed(e.to_string()))
}

/// Counters a [`FrameSender`] keeps about what it actually put on (or kept
/// off) the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SendStats {
    /// Frames delivered (including delayed and corrupted ones).
    pub sent: u64,
    /// Frames the fault plan silently discarded.
    pub dropped: u64,
    /// Frames the fault plan corrupted before delivery.
    pub corrupted: u64,
}

/// Owns the outgoing half of a connection: framing, the frame sequence
/// counter, and the fault-injection tap.
#[derive(Debug)]
pub struct FrameSender {
    stream: TcpStream,
    fault: FaultPlan,
    /// 1-based sequence number of the next outgoing frame; survives
    /// reconnects via [`FrameSender::with_start_seq`].
    seq: u64,
    /// What actually happened on the wire.
    pub stats: SendStats,
}

impl FrameSender {
    /// A sender that injects nothing.
    pub fn new(stream: TcpStream) -> Self {
        FrameSender::with_fault(stream, FaultPlan::none())
    }

    /// A sender whose outgoing frames pass through `fault`.
    pub fn with_fault(stream: TcpStream, fault: FaultPlan) -> Self {
        FrameSender {
            stream,
            fault,
            seq: 0,
            stats: SendStats::default(),
        }
    }

    /// Continues the frame sequence of a previous connection (so fault
    /// clauses indexed by frame number fire at most once per process, not
    /// once per reconnect).
    pub fn with_start_seq(mut self, seq: u64) -> Self {
        self.seq = seq;
        self
    }

    /// The sequence number the next frame will carry, for handoff across
    /// reconnects.
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    /// Frames, faults and writes one message.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Io`] when the write fails (a fault-dropped frame is a
    /// successful no-op).
    pub fn send(&mut self, msg: &Msg) -> Result<(), ProtoError> {
        self.seq += 1;
        let mut frame = encode_frame(msg);
        match self.fault.action(self.seq) {
            FaultAction::Drop => {
                self.stats.dropped += 1;
                return Ok(());
            }
            FaultAction::Corrupt => {
                // Flip one payload bit after the CRC was computed: the
                // receiver must detect and reject the frame.
                let target = 12 + (frame.len() - 12) / 2;
                frame[target] ^= 0x20;
                self.stats.corrupted += 1;
            }
            FaultAction::Delay(pause) => std::thread::sleep(pause),
            FaultAction::Deliver => {}
        }
        self.stream.write_all(&frame)?;
        self.stream.flush()?;
        self.stats.sent += 1;
        Ok(())
    }
}

/// Owns the incoming half of a connection.
///
/// The stream's read timeout (configure it on the `TcpStream` before
/// wrapping) doubles as the caller's housekeeping tick:
/// [`recv`](Self::recv) returns `Ok(None)` when the timeout strikes
/// *between* frames. A timeout striking mid-frame keeps reading — the frame
/// is in flight — up to a patience budget, after which the peer is treated
/// as wedged.
#[derive(Debug)]
pub struct FrameReceiver {
    stream: TcpStream,
    /// Consecutive idle reads tolerated while a frame is partially
    /// received.
    mid_frame_patience: u32,
}

impl FrameReceiver {
    /// Wraps the reading half of `stream`.
    pub fn new(stream: TcpStream) -> Self {
        FrameReceiver {
            stream,
            mid_frame_patience: 400,
        }
    }

    /// Receives one message, `Ok(None)` on an idle read timeout at a frame
    /// boundary.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Closed`] on EOF at a frame boundary, [`ProtoError::Io`]
    /// on EOF or read failure mid-frame, and the decode errors described on
    /// [`ProtoError`]. After any error the stream offset is untrusted; drop
    /// the connection.
    pub fn recv(&mut self) -> Result<Option<Msg>, ProtoError> {
        let mut magic = [0u8; 4];
        match self.read_patient(&mut magic, true)? {
            ReadOutcome::Idle => return Ok(None),
            ReadOutcome::Eof => return Err(ProtoError::Closed),
            ReadOutcome::Filled => {}
        }
        if magic != FRAME_MAGIC {
            return Err(ProtoError::BadMagic(magic));
        }
        let mut word = [0u8; 4];
        self.read_rest(&mut word)?;
        let len = u32::from_le_bytes(word);
        if len > MAX_FRAME_BYTES {
            return Err(ProtoError::Oversized(len));
        }
        self.read_rest(&mut word)?;
        let stored = u32::from_le_bytes(word);
        let mut payload = vec![0u8; len as usize];
        self.read_rest(&mut payload)?;
        let computed = crc32(&payload);
        if stored != computed {
            return Err(ProtoError::CrcMismatch { stored, computed });
        }
        decode_payload(&payload).map(Some)
    }

    /// Reads the remainder of a frame: timeouts keep waiting (bounded by
    /// the patience budget), EOF is an error.
    fn read_rest(&mut self, buf: &mut [u8]) -> Result<(), ProtoError> {
        match self.read_patient(buf, false)? {
            ReadOutcome::Filled => Ok(()),
            ReadOutcome::Eof | ReadOutcome::Idle => Err(ProtoError::Io(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "connection ended mid-frame",
            ))),
        }
    }

    /// Fills `buf`, tolerating read timeouts. With `idle_ok` a timeout
    /// before the first byte reports [`ReadOutcome::Idle`]; after the first
    /// byte (or with `idle_ok` false) timeouts retry until the patience
    /// budget is spent.
    fn read_patient(&mut self, buf: &mut [u8], idle_ok: bool) -> Result<ReadOutcome, ProtoError> {
        let mut filled = 0usize;
        let mut idle_reads = 0u32;
        while filled < buf.len() {
            match self.stream.read(&mut buf[filled..]) {
                Ok(0) => {
                    if filled == 0 {
                        return Ok(ReadOutcome::Eof);
                    }
                    return Err(ProtoError::Io(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "connection ended mid-frame",
                    )));
                }
                Ok(n) => {
                    filled += n;
                    idle_reads = 0;
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if filled == 0 && idle_ok {
                        return Ok(ReadOutcome::Idle);
                    }
                    idle_reads += 1;
                    if idle_reads > self.mid_frame_patience {
                        return Err(ProtoError::Io(std::io::Error::new(
                            ErrorKind::TimedOut,
                            "peer wedged mid-frame",
                        )));
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(ProtoError::Io(e)),
            }
        }
        Ok(ReadOutcome::Filled)
    }
}

enum ReadOutcome {
    Filled,
    Idle,
    Eof,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn sample_msgs() -> Vec<Msg> {
        vec![
            Msg::Hello(Hello {
                version: PROTOCOL_VERSION,
                peer: "w1".to_string(),
                batch: "ab12".to_string(),
                total: 9,
            }),
            Msg::Lease(Lease {
                lease: 3,
                index: 7,
                scenario: "fig7[t4]".to_string(),
                deadline_ms: 5000,
            }),
            Msg::Heartbeat(Heartbeat { lease: 3 }),
            Msg::Nack(Nack {
                reason: "nope".to_string(),
                fatal: true,
            }),
            Msg::Shutdown(Shutdown {
                reason: "batch complete".to_string(),
            }),
        ]
    }

    #[test]
    fn frames_round_trip_over_a_socket() {
        let (client, server) = pair();
        server
            .set_read_timeout(Some(Duration::from_millis(20)))
            .unwrap();
        let mut tx = FrameSender::new(client);
        let mut rx = FrameReceiver::new(server);
        assert!(rx.recv().unwrap().is_none(), "no traffic yet: idle");
        for msg in sample_msgs() {
            tx.send(&msg).unwrap();
            assert_eq!(rx.recv().unwrap(), Some(msg));
        }
        assert_eq!(tx.stats.sent, 5);
        drop(tx);
        assert!(matches!(rx.recv(), Err(ProtoError::Closed)));
    }

    #[test]
    fn corrupted_frame_is_rejected_by_crc() {
        let (client, server) = pair();
        let mut tx = FrameSender::with_fault(client, FaultPlan::parse("corrupt=2").unwrap());
        let mut rx = FrameReceiver::new(server);
        tx.send(&Msg::Heartbeat(Heartbeat { lease: 1 })).unwrap();
        tx.send(&Msg::Heartbeat(Heartbeat { lease: 2 })).unwrap();
        assert_eq!(tx.stats.corrupted, 1);
        assert!(rx.recv().unwrap().is_some());
        assert!(matches!(rx.recv(), Err(ProtoError::CrcMismatch { .. })));
    }

    #[test]
    fn dropped_frame_leaves_no_trace_on_the_wire() {
        let (client, server) = pair();
        server
            .set_read_timeout(Some(Duration::from_millis(20)))
            .unwrap();
        let mut tx = FrameSender::with_fault(client, FaultPlan::parse("drop=1").unwrap());
        let mut rx = FrameReceiver::new(server);
        tx.send(&Msg::Heartbeat(Heartbeat { lease: 1 })).unwrap();
        tx.send(&Msg::Heartbeat(Heartbeat { lease: 2 })).unwrap();
        assert_eq!((tx.stats.sent, tx.stats.dropped), (1, 1));
        assert_eq!(
            rx.recv().unwrap(),
            Some(Msg::Heartbeat(Heartbeat { lease: 2 })),
            "frame 1 was dropped, frame 2 arrives first"
        );
        assert!(rx.recv().unwrap().is_none());
    }

    #[test]
    fn garbage_magic_and_oversized_lengths_are_rejected() {
        let (mut client, server) = pair();
        let mut rx = FrameReceiver::new(server);
        client.write_all(b"JUNKxxxx").unwrap();
        assert!(matches!(rx.recv(), Err(ProtoError::BadMagic(m)) if &m == b"JUNK"));

        let (mut client, server) = pair();
        let mut rx = FrameReceiver::new(server);
        let mut bogus = Vec::new();
        bogus.extend_from_slice(&FRAME_MAGIC);
        bogus.extend_from_slice(&u32::MAX.to_le_bytes());
        bogus.extend_from_slice(&0u32.to_le_bytes());
        client.write_all(&bogus).unwrap();
        assert!(matches!(rx.recv(), Err(ProtoError::Oversized(n)) if n == u32::MAX));
    }

    #[test]
    fn torn_frame_waits_for_the_rest_instead_of_erroring() {
        let (mut client, server) = pair();
        server
            .set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        let frame = encode_frame(&Msg::Heartbeat(Heartbeat { lease: 9 }));
        let (head, tail) = frame.split_at(frame.len() - 3);
        client.write_all(head).unwrap();
        let reader = std::thread::spawn(move || {
            let mut rx = FrameReceiver::new(server);
            rx.recv()
        });
        std::thread::sleep(Duration::from_millis(60));
        client.write_all(tail).unwrap();
        assert_eq!(
            reader.join().unwrap().unwrap(),
            Some(Msg::Heartbeat(Heartbeat { lease: 9 }))
        );
    }
}
