//! Fault-tolerant distributed sweep service.
//!
//! `tbp-sweepd` promotes the uncoordinated shard runner
//! ([`ShardPlan`](tbp_core::scenario::ShardPlan)) to a long-running
//! coordinator + worker service over plain `std::net` TCP:
//!
//! * [`proto`] — the framed wire protocol: length-prefixed, CRC-checked
//!   frames (the same IEEE CRC-32 the `.tbptrace` format uses) carrying
//!   `HELLO` / `LEASE` / `HEARTBEAT` / `RESULT` / `NACK` / `SHUTDOWN`
//!   messages, versioned in the handshake.
//! * [`coord`] — the [`Coordinator`]: owns a lease-based
//!   work queue over the batch's deterministic expansion
//!   ([`expand_work`](tbp_core::scenario::expand_work)). Leases carry
//!   heartbeat-renewed deadlines; a missed deadline or a dropped connection
//!   returns the lease to the queue, so `kill -9` on any worker loses at
//!   most its in-flight scenarios, never the batch.
//! * [`worker`] — the [`Worker`]: runs leased scenarios
//!   through the existing [`Runner`](tbp_core::scenario::Runner) (+
//!   [`FsCache`](tbp_core::scenario::FsCache) when configured — results are
//!   content-addressed, so re-execution after a crash is idempotent),
//!   reconnects with capped exponential backoff + deterministic jitter, and
//!   optionally degrades to local-only execution when the coordinator stays
//!   unreachable.
//! * [`fault`] — a deterministic fault-injection layer ([`FaultPlan`]):
//!   drop / delay / corrupt frame N, kill or stall the worker at lease M,
//!   parseable from a CLI spec or derived from a seed, threaded through the
//!   transport so chaos tests replay exactly.
//!
//! The merged [`BatchReport`](tbp_core::scenario::BatchReport) a
//! coordinator returns is byte-identical to a single-process
//! [`Runner::run`](tbp_core::scenario::Runner::run) over the same specs, no
//! matter how many workers died on the way — pinned by the chaos proptest in
//! `tests/` and the `sweep-chaos-smoke` CI job. Protocol frames, the lease
//! state machine and the failure matrix are documented in
//! `docs/DISTRIBUTED.md`.

pub mod coord;
pub mod fault;
pub mod proto;
pub mod worker;

pub use coord::{CoordConfig, CoordMetrics, Coordinator};
pub use fault::{backoff_delay, FaultAction, FaultPlan, SplitMix64};
pub use proto::{FrameReceiver, FrameSender, Msg, ProtoError, PROTOCOL_VERSION};
pub use worker::{Worker, WorkerConfig, WorkerMetrics, WorkerOutcome};

use std::fmt;

use tbp_core::SimError;

/// Errors of the distributed sweep service.
#[derive(Debug)]
pub enum SweepError {
    /// A socket operation failed.
    Io(std::io::Error),
    /// The wire protocol was violated (bad magic, CRC mismatch, malformed
    /// payload, oversized frame).
    Proto(ProtoError),
    /// A scenario failed to expand, hash or execute.
    Sim(SimError),
    /// The peers disagree fundamentally (protocol version, batch digest,
    /// batch size) — retrying cannot help.
    Handshake(String),
    /// The coordinator could not be reached within the retry budget.
    Unreachable {
        /// Connection attempts made.
        attempts: u32,
        /// The last connect error.
        last: String,
    },
    /// The coordinator's completion timeout elapsed with scenarios missing.
    Timeout(String),
    /// Invalid service configuration (bad fault spec, zero heartbeat, …).
    Config(String),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Io(e) => write!(f, "sweep I/O error: {e}"),
            SweepError::Proto(e) => write!(f, "sweep protocol error: {e}"),
            SweepError::Sim(e) => write!(f, "sweep scenario error: {e}"),
            SweepError::Handshake(msg) => write!(f, "sweep handshake refused: {msg}"),
            SweepError::Unreachable { attempts, last } => write!(
                f,
                "coordinator unreachable after {attempts} connection attempts (last error: {last})"
            ),
            SweepError::Timeout(msg) => write!(f, "sweep timed out: {msg}"),
            SweepError::Config(msg) => write!(f, "invalid sweep configuration: {msg}"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Io(e) => Some(e),
            SweepError::Proto(e) => Some(e),
            SweepError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SweepError {
    fn from(e: std::io::Error) -> Self {
        SweepError::Io(e)
    }
}

impl From<ProtoError> for SweepError {
    fn from(e: ProtoError) -> Self {
        SweepError::Proto(e)
    }
}

impl From<SimError> for SweepError {
    fn from(e: SimError) -> Self {
        SweepError::Sim(e)
    }
}
