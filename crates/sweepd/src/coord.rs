//! The coordinator: a lease-based work queue over the batch expansion.
//!
//! One [`Coordinator`] owns the authoritative state of a distributed sweep:
//! the queue of unleased scenario indices, the table of active leases with
//! their heartbeat-renewed deadlines, and a
//! [`BatchAssembler`] collecting
//! results. Worker connections are served by one thread each; a reaper in
//! the accept loop returns expired leases to the queue. The lease state
//! machine and the full failure matrix are documented in
//! `docs/DISTRIBUTED.md`.
//!
//! Correctness invariants:
//!
//! * A scenario index is in exactly one of three places: the queue, an
//!   active lease, or a filled assembler slot. Expiry/disconnect moves it
//!   lease → queue; a result moves it lease → slot.
//! * Results are accepted by *index*, idempotently: a worker that lost its
//!   lease (expired, reassigned, connection dropped) but finishes anyway
//!   delivers bytes identical to any other execution of that scenario, so
//!   the first report in wins and duplicates are counted and dropped.
//! * The final report is assembled in expansion order, so it is
//!   byte-identical to a single-process [`Runner::run`](tbp_core::scenario::Runner::run).

use std::collections::{HashMap, VecDeque};
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use tbp_core::scenario::{expand_work, BatchAssembler, BatchReport, ScenarioSpec, WorkItem};
use tbp_obs::metrics::{Counter, Gauge, MetricsRegistry};

use crate::fault::FaultPlan;
use crate::proto::{
    FrameReceiver, FrameSender, Hello, Lease, Msg, Nack, ProtoError, Shutdown, PROTOCOL_VERSION,
};
use crate::SweepError;

/// Tuning knobs of a [`Coordinator`].
#[derive(Debug, Clone)]
pub struct CoordConfig {
    /// Lease lifetime granted at issue and on every heartbeat.
    pub lease_timeout: Duration,
    /// Reaper/housekeeping tick (also the connection read timeout).
    pub tick: Duration,
    /// How long a fresh connection may take to send its `HELLO`.
    pub hello_timeout: Duration,
    /// Give up ([`SweepError::Timeout`]) when the batch has not completed
    /// after this long. `None` waits forever.
    pub completion_timeout: Option<Duration>,
    /// Fault plan applied to the coordinator's *outgoing* frames (tests).
    pub fault: FaultPlan,
}

impl Default for CoordConfig {
    fn default() -> Self {
        CoordConfig {
            lease_timeout: Duration::from_secs(5),
            tick: Duration::from_millis(50),
            hello_timeout: Duration::from_secs(5),
            completion_timeout: None,
            fault: FaultPlan::none(),
        }
    }
}

/// Live instruments of the coordinator, registered under `sweepd.*`.
#[derive(Debug, Clone)]
pub struct CoordMetrics {
    /// Leases handed to workers (`sweepd.leases_granted`).
    pub leases_granted: Counter,
    /// Leases whose deadline passed without heartbeat or result
    /// (`sweepd.leases_expired`).
    pub leases_expired: Counter,
    /// Leases returned to the queue because their connection dropped
    /// (`sweepd.leases_reclaimed`).
    pub leases_reclaimed: Counter,
    /// Reports accepted into empty slots (`sweepd.results`).
    pub results: Counter,
    /// Reports for already-filled slots, dropped idempotently
    /// (`sweepd.results_duplicate`).
    pub results_duplicate: Counter,
    /// Frames refused at the protocol layer — CRC mismatch, bad magic,
    /// malformed payload (`sweepd.frames_rejected`).
    pub frames_rejected: Counter,
    /// Scenarios currently unleased and waiting (`sweepd.queue_depth`).
    pub queue_depth: Gauge,
    /// Workers currently past the handshake (`sweepd.workers`).
    pub workers: Gauge,
}

impl CoordMetrics {
    /// Registers (or re-resolves) the coordinator instruments in `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        CoordMetrics {
            leases_granted: registry.counter("sweepd.leases_granted"),
            leases_expired: registry.counter("sweepd.leases_expired"),
            leases_reclaimed: registry.counter("sweepd.leases_reclaimed"),
            results: registry.counter("sweepd.results"),
            results_duplicate: registry.counter("sweepd.results_duplicate"),
            frames_rejected: registry.counter("sweepd.frames_rejected"),
            queue_depth: registry.gauge("sweepd.queue_depth"),
            workers: registry.gauge("sweepd.workers"),
        }
    }
}

/// One active lease.
#[derive(Debug)]
struct ActiveLease {
    index: usize,
    deadline: Instant,
}

/// The mutable heart of the coordinator, behind one mutex.
struct CoordState {
    queue: VecDeque<usize>,
    leases: HashMap<u64, ActiveLease>,
    assembler: BatchAssembler,
    next_lease: u64,
    done: bool,
}

/// Shared context every connection thread sees.
struct Shared {
    state: Mutex<CoordState>,
    items: Vec<WorkItem>,
    digest: String,
    config: CoordConfig,
    metrics: Option<CoordMetrics>,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, CoordState> {
        self.state.lock().expect("coordinator state lock poisoned")
    }

    fn publish_queue_depth(&self, state: &CoordState) {
        if let Some(m) = &self.metrics {
            m.queue_depth.set(state.queue.len() as f64);
        }
    }

    /// Returns an expired or orphaned lease's index to the queue (unless
    /// its slot was filled by a late result in the meantime).
    fn requeue(&self, state: &mut CoordState, lease: ActiveLease) {
        if !state.assembler.is_filled(lease.index) {
            state.queue.push_back(lease.index);
        }
        self.publish_queue_depth(state);
    }
}

/// The lease-granting server side of a distributed sweep.
pub struct Coordinator {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Coordinator {
    /// Binds `addr` and prepares the work queue: `specs` expand
    /// deterministically into the indexed scenario list workers will be
    /// leased from.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] when the address cannot be bound,
    /// [`SweepError::Sim`] when a spec fails to expand or hash.
    pub fn bind(
        addr: impl ToSocketAddrs,
        specs: &[ScenarioSpec],
        config: CoordConfig,
    ) -> Result<Self, SweepError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let assembler = BatchAssembler::new(specs)?;
        let items = expand_work(specs);
        let queue: VecDeque<usize> = (0..items.len()).collect();
        let digest = assembler.digest().to_string();
        Ok(Coordinator {
            listener,
            shared: Arc::new(Shared {
                state: Mutex::new(CoordState {
                    queue,
                    leases: HashMap::new(),
                    assembler,
                    next_lease: 0,
                    done: false,
                }),
                items,
                digest,
                config,
                metrics: None,
            }),
        })
    }

    /// Publishes lease/result/queue instruments through `metrics`
    /// (builder-style; call before [`run`](Self::run)).
    pub fn with_metrics(mut self, metrics: CoordMetrics) -> Self {
        let shared = Arc::get_mut(&mut self.shared)
            .expect("with_metrics must be called before serving starts");
        metrics.queue_depth.set(shared.items.len() as f64);
        shared.metrics = Some(metrics);
        self
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] when the socket refuses to report it.
    pub fn local_addr(&self) -> Result<SocketAddr, SweepError> {
        Ok(self.listener.local_addr()?)
    }

    /// Number of expanded scenarios in the batch.
    pub fn total(&self) -> usize {
        self.shared.items.len()
    }

    /// Serves workers until every scenario has a result, then returns the
    /// merged report — byte-identical to a single-process run.
    ///
    /// # Errors
    ///
    /// [`SweepError::Timeout`] when `completion_timeout` elapses first,
    /// [`SweepError::Io`] on listener failures.
    pub fn run(self) -> Result<BatchReport, SweepError> {
        let started = Instant::now();
        let mut handles = Vec::new();
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self.shared);
                    handles.push(std::thread::spawn(move || serve_conn(&shared, stream)));
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(SweepError::Io(e)),
            }

            {
                let mut state = self.shared.lock();
                reap_expired(&self.shared, &mut state);
                if state.assembler.is_complete() {
                    state.done = true;
                }
            }
            if self.shared.lock().done {
                break;
            }
            if let Some(limit) = self.shared.config.completion_timeout {
                if started.elapsed() > limit {
                    let mut state = self.shared.lock();
                    state.done = true;
                    let missing = state.assembler.missing();
                    drop(state);
                    for handle in handles {
                        let _ = handle.join();
                    }
                    return Err(SweepError::Timeout(format!(
                        "batch incomplete after {:.1} s: {} of {} scenarios missing \
                         (indices {missing:?})",
                        limit.as_secs_f64(),
                        missing.len(),
                        self.shared.items.len(),
                    )));
                }
            }
            std::thread::sleep(self.shared.config.tick);
        }
        // Connection threads notice `done` within one tick, send SHUTDOWN
        // and exit.
        for handle in handles {
            let _ = handle.join();
        }
        let assembler =
            std::mem::replace(&mut self.shared.lock().assembler, BatchAssembler::new(&[])?);
        Ok(assembler.into_batch()?)
    }
}

/// Moves every lease whose deadline has passed back to the queue.
fn reap_expired(shared: &Shared, state: &mut CoordState) {
    let now = Instant::now();
    let expired: Vec<u64> = state
        .leases
        .iter()
        .filter(|(_, lease)| lease.deadline <= now)
        .map(|(&id, _)| id)
        .collect();
    for id in expired {
        if let Some(lease) = state.leases.remove(&id) {
            if let Some(m) = &shared.metrics {
                m.leases_expired.inc();
            }
            shared.requeue(state, lease);
        }
    }
}

/// What ended one worker connection (logging/debugging only).
enum ConnEnd {
    Shutdown,
    Closed,
    Refused,
    Poisoned,
}

/// Serves one worker connection: handshake, then the grant/heartbeat/result
/// loop.
fn serve_conn(shared: &Shared, stream: TcpStream) -> ConnEnd {
    let _ = stream.set_read_timeout(Some(shared.config.tick.max(Duration::from_millis(5))));
    let _ = stream.set_nodelay(true);
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return ConnEnd::Closed,
    };
    let mut tx = FrameSender::with_fault(writer, shared.config.fault.clone());
    let mut rx = FrameReceiver::new(stream);

    if let Err(end) = handshake(shared, &mut tx, &mut rx) {
        return end;
    }
    if let Some(m) = &shared.metrics {
        m.workers.set(m.workers.get() + 1.0);
    }
    let end = serve_leases(shared, &mut tx, &mut rx);
    if let Some(m) = &shared.metrics {
        m.workers.set((m.workers.get() - 1.0).max(0.0));
    }
    end
}

/// Waits for the worker's `HELLO`, validates it, and answers in kind.
fn handshake(shared: &Shared, tx: &mut FrameSender, rx: &mut FrameReceiver) -> Result<(), ConnEnd> {
    let opened = Instant::now();
    let hello = loop {
        match rx.recv() {
            Ok(Some(Msg::Hello(hello))) => break hello,
            Ok(Some(_)) => {
                refuse(tx, "expected HELLO first", true);
                return Err(ConnEnd::Refused);
            }
            Ok(None) => {
                if opened.elapsed() > shared.config.hello_timeout {
                    refuse(tx, "no HELLO before the handshake timeout", false);
                    return Err(ConnEnd::Refused);
                }
            }
            Err(ProtoError::Closed | ProtoError::Io(_)) => return Err(ConnEnd::Closed),
            Err(e) => return Err(reject_frame(shared, tx, &e)),
        }
    };
    if hello.version != PROTOCOL_VERSION {
        refuse(
            tx,
            &format!(
                "protocol version mismatch: coordinator speaks {PROTOCOL_VERSION}, \
                 worker speaks {}",
                hello.version
            ),
            true,
        );
        return Err(ConnEnd::Refused);
    }
    if hello.batch != shared.digest || hello.total != shared.items.len() as u64 {
        refuse(
            tx,
            &format!(
                "batch mismatch: worker loaded {} scenarios with digest {}, coordinator \
                 has {} with digest {} (are both sides reading the same scenario files?)",
                hello.total,
                hello.batch,
                shared.items.len(),
                shared.digest
            ),
            true,
        );
        return Err(ConnEnd::Refused);
    }
    let reply = Msg::Hello(Hello {
        version: PROTOCOL_VERSION,
        peer: "coordinator".to_string(),
        batch: shared.digest.clone(),
        total: shared.items.len() as u64,
    });
    if tx.send(&reply).is_err() {
        return Err(ConnEnd::Closed);
    }
    Ok(())
}

/// The post-handshake loop: grant a lease whenever the worker is free,
/// process heartbeats and results, shut the worker down when the batch
/// completes.
fn serve_leases(shared: &Shared, tx: &mut FrameSender, rx: &mut FrameReceiver) -> ConnEnd {
    // The lease currently held by *this* connection's worker (one at a
    // time): what we reclaim if the connection drops.
    let mut current: Option<u64> = None;
    let end = loop {
        if shared.lock().done {
            let _ = tx.send(&Msg::Shutdown(Shutdown {
                reason: "batch complete".to_string(),
            }));
            break ConnEnd::Shutdown;
        }
        if current.is_none() {
            if let Some((id, lease)) = grant(shared) {
                current = Some(id);
                if tx.send(&Msg::Lease(lease)).is_err() {
                    break ConnEnd::Closed;
                }
            }
        }
        match rx.recv() {
            Ok(None) => {}
            Ok(Some(Msg::Heartbeat(hb))) => {
                if hb.lease != 0 {
                    let mut state = shared.lock();
                    let deadline = Instant::now() + shared.config.lease_timeout;
                    if let Some(lease) = state.leases.get_mut(&hb.lease) {
                        lease.deadline = deadline;
                    }
                    // An unknown lease already expired; the worker's result,
                    // if it ever lands, is still welcome (accepted by index).
                }
            }
            Ok(Some(Msg::Result(result))) => {
                let mut state = shared.lock();
                let index = result.index as usize;
                match state.assembler.accept(index, result.report) {
                    Ok(fresh) => {
                        if let Some(m) = &shared.metrics {
                            if fresh {
                                m.results.inc();
                            } else {
                                m.results_duplicate.inc();
                            }
                        }
                    }
                    Err(_) => {
                        drop(state);
                        refuse(tx, &format!("result index {index} outside batch"), true);
                        break ConnEnd::Refused;
                    }
                }
                state.leases.remove(&result.lease);
                if current == Some(result.lease) {
                    current = None;
                }
                shared.publish_queue_depth(&state);
            }
            Ok(Some(Msg::Nack(_)) | Some(Msg::Hello(_))) => break ConnEnd::Closed,
            Ok(Some(Msg::Lease(_)) | Some(Msg::Shutdown(_))) => {
                refuse(tx, "coordinator-only message from worker", true);
                break ConnEnd::Refused;
            }
            Err(ProtoError::Closed | ProtoError::Io(_)) => break ConnEnd::Closed,
            Err(e) => break reject_frame(shared, tx, &e),
        }
    };
    // Whatever this worker still held goes back to the queue immediately —
    // a dropped connection must not cost a full lease timeout.
    if let Some(id) = current {
        let mut state = shared.lock();
        if let Some(lease) = state.leases.remove(&id) {
            if let Some(m) = &shared.metrics {
                m.leases_reclaimed.inc();
            }
            shared.requeue(&mut state, lease);
        }
    }
    end
}

/// Pops the next unfinished index off the queue and registers a lease for
/// it.
fn grant(shared: &Shared) -> Option<(u64, Lease)> {
    let mut state = shared.lock();
    let index = loop {
        let candidate = state.queue.pop_front()?;
        if !state.assembler.is_filled(candidate) {
            break candidate;
        }
    };
    state.next_lease += 1;
    let id = state.next_lease;
    state.leases.insert(
        id,
        ActiveLease {
            index,
            deadline: Instant::now() + shared.config.lease_timeout,
        },
    );
    if let Some(m) = &shared.metrics {
        m.leases_granted.inc();
    }
    shared.publish_queue_depth(&state);
    let item = &shared.items[index];
    Some((
        id,
        Lease {
            lease: id,
            index: index as u64,
            scenario: item.case.name.clone(),
            deadline_ms: shared.config.lease_timeout.as_millis() as u64,
        },
    ))
}

/// Counts a protocol-layer rejection and drops the connection: after a CRC
/// mismatch or malformed frame the stream offset is untrusted.
fn reject_frame(shared: &Shared, tx: &mut FrameSender, error: &ProtoError) -> ConnEnd {
    if let Some(m) = &shared.metrics {
        m.frames_rejected.inc();
    }
    refuse(tx, &format!("frame rejected: {error}"), false);
    ConnEnd::Poisoned
}

/// Best-effort `NACK` before a deliberate disconnect.
fn refuse(tx: &mut FrameSender, reason: &str, fatal: bool) {
    let _ = tx.send(&Msg::Nack(Nack {
        reason: reason.to_string(),
        fatal,
    }));
}
