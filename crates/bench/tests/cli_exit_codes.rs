//! Exit-code hygiene of the batch and sweep binaries.
//!
//! A binary greeting a typo with a panic backtrace (or worse, exit code 0)
//! breaks every shell script built on top of it. The convention pinned here:
//! usage errors exit 2, runtime failures exit 1, and every failure prints a
//! one-line `error:` diagnostic to stderr — never an unwrap panic.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin(path: &str) -> Command {
    Command::new(path)
}

fn scenario() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios/10_table1_power.toml")
}

fn run(mut cmd: Command) -> Output {
    cmd.output().expect("binary spawns")
}

/// Asserts the run failed with `code`, printed exactly one `error:` line on
/// stderr and no panic backtrace.
fn assert_clean_failure(out: &Output, code: i32, needle: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(code),
        "expected exit code {code}; stderr:\n{stderr}"
    );
    assert!(
        stderr.lines().any(|l| l.starts_with("error: ")),
        "expected a one-line `error:` diagnostic; stderr:\n{stderr}"
    );
    assert!(
        stderr.contains(needle),
        "diagnostic should mention `{needle}`; stderr:\n{stderr}"
    );
    assert!(
        !stderr.contains("panicked at") && !stderr.contains("RUST_BACKTRACE"),
        "no panic output allowed; stderr:\n{stderr}"
    );
}

#[test]
fn run_scenario_rejects_unknown_flags_with_exit_2() {
    let mut cmd = bin(env!("CARGO_BIN_EXE_run_scenario"));
    cmd.arg(scenario()).arg("--frobnicate");
    assert_clean_failure(&run(cmd), 2, "unknown flag `--frobnicate`");
}

#[test]
fn run_scenario_without_files_prints_usage_with_exit_2() {
    let out = run(bin(env!("CARGO_BIN_EXE_run_scenario")));
    assert_clean_failure(&out, 2, "usage: run_scenario");
}

#[test]
fn run_scenario_reports_a_missing_file_with_exit_1() {
    let mut cmd = bin(env!("CARGO_BIN_EXE_run_scenario"));
    cmd.arg("no/such/scenario.toml");
    assert_clean_failure(&run(cmd), 1, "cannot load scenario no/such/scenario.toml");
}

#[test]
fn run_scenario_turns_shared_parser_panics_into_exit_2() {
    // --cache-dir without a value panics inside the shared flag parser; the
    // binary's panic hook must turn that into a clean usage failure.
    let mut cmd = bin(env!("CARGO_BIN_EXE_run_scenario"));
    cmd.arg(scenario()).arg("--cache-dir");
    assert_clean_failure(&run(cmd), 2, "--cache-dir needs a directory");
}

#[test]
fn sweep_coord_requires_listen_and_rejects_bad_flags() {
    let mut cmd = bin(env!("CARGO_BIN_EXE_sweep_coord"));
    cmd.arg(scenario());
    assert_clean_failure(&run(cmd), 2, "--listen is required");

    let mut cmd = bin(env!("CARGO_BIN_EXE_sweep_coord"));
    cmd.arg(scenario())
        .args(["--listen", "127.0.0.1:0", "--bogus"]);
    assert_clean_failure(&run(cmd), 2, "unknown flag `--bogus`");

    let mut cmd = bin(env!("CARGO_BIN_EXE_sweep_coord"));
    cmd.arg(scenario())
        .args(["--listen", "127.0.0.1:0", "--fault", "explode=1"]);
    assert_clean_failure(&run(cmd), 2, "unknown fault kind `explode`");

    let mut cmd = bin(env!("CARGO_BIN_EXE_sweep_coord"));
    cmd.arg(scenario())
        .args(["--listen", "127.0.0.1:0", "--lease-timeout", "never"]);
    assert_clean_failure(&run(cmd), 2, "positive duration in seconds");
}

#[test]
fn sweep_worker_requires_connect_and_reports_missing_files() {
    let out = run(bin(env!("CARGO_BIN_EXE_sweep_worker")));
    assert_clean_failure(&out, 2, "usage: sweep_worker");

    let mut cmd = bin(env!("CARGO_BIN_EXE_sweep_worker"));
    cmd.arg("no/such/scenario.toml")
        .args(["--connect", "127.0.0.1:1"]);
    assert_clean_failure(&run(cmd), 1, "cannot load scenario");
}

#[test]
fn sweep_worker_reports_an_unreachable_coordinator_with_exit_1() {
    // Port 1 refuses immediately; a zero retry budget keeps the test fast.
    let mut cmd = bin(env!("CARGO_BIN_EXE_sweep_worker"));
    cmd.arg(scenario()).args([
        "--connect",
        "127.0.0.1:1",
        "--retries",
        "0",
        "--backoff-base",
        "1",
        "--backoff-cap",
        "2",
    ]);
    assert_clean_failure(&run(cmd), 1, "coordinator unreachable");
}
