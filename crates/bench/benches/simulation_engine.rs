//! Criterion benchmarks of the full co-simulation loop.
//!
//! Measures how much wall-clock time one second of simulated SDR execution
//! costs for each policy, and how the engine scales with the core count.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tbp_arch::platform::PlatformConfig;
use tbp_arch::units::Seconds;
use tbp_core::experiments::PolicyKind;
use tbp_core::sim::builder::Workload;
use tbp_core::sim::{SimulationBuilder, SimulationConfig};
use tbp_streaming::workload::WorkloadSpec;
use tbp_thermal::package::Package;

fn bench_one_simulated_second(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_one_second_sdr");
    group.sample_size(10);
    for policy in [
        PolicyKind::ThermalBalancing,
        PolicyKind::StopGo,
        PolicyKind::EnergyBalancing,
    ] {
        group.bench_function(policy.label(), |b| {
            b.iter(|| {
                let mut sim = SimulationBuilder::new()
                    .with_package(Package::high_performance())
                    .with_workload(Workload::sdr())
                    .with_policy_box(policy.instantiate(2.0))
                    .with_config(SimulationConfig {
                        warmup: Seconds::new(0.2),
                        ..SimulationConfig::paper_default()
                    })
                    .build()
                    .expect("simulation builds");
                sim.run_for(Seconds::new(1.0)).expect("simulation runs");
                black_box(sim.summary())
            });
        });
    }
    group.finish();
}

fn bench_core_count_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_one_second_synthetic");
    group.sample_size(10);
    for cores in [2usize, 4, 8] {
        group.bench_function(format!("{cores}_cores"), |b| {
            b.iter(|| {
                let spec = WorkloadSpec {
                    num_tasks: cores * 3,
                    num_cores: cores,
                    total_fse_load: 0.5 * cores as f64,
                    ..WorkloadSpec::default_mixed()
                };
                let mut sim = SimulationBuilder::new()
                    .with_platform(PlatformConfig::paper_default().with_cores(cores))
                    .with_package(Package::high_performance())
                    .with_workload(Workload::Synthetic(spec))
                    .with_config(SimulationConfig {
                        warmup: Seconds::new(0.2),
                        ..SimulationConfig::paper_default()
                    })
                    .build()
                    .expect("simulation builds");
                sim.run_for(Seconds::new(1.0)).expect("simulation runs");
                black_box(sim.summary())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_one_simulated_second,
    bench_core_count_scaling
);
criterion_main!(benches);
