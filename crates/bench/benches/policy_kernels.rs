//! Criterion benchmarks of the policy decision kernels.
//!
//! The paper stresses that its balancing algorithm is *lightweight*: the
//! decision runs on every 10 ms sensor refresh, so it must cost far less than
//! the sensor period. These benches measure a single `decide` invocation of
//! each policy on a representative snapshot.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tbp_arch::core::CoreId;
use tbp_arch::freq::{DvfsScale, Frequency};
use tbp_arch::units::{Bytes, Celsius, Seconds};
use tbp_core::policy::{
    build_input, CoreSnapshot, EnergyBalancingPolicy, Policy, PolicyInput, StopGoPolicy,
    TaskSnapshot, ThermalBalancingConfig, ThermalBalancingPolicy,
};
use tbp_os::task::TaskId;

/// Builds a snapshot with `num_cores` cores carrying `tasks_per_core` tasks
/// each, with an imbalanced temperature profile so the policies have work to
/// do.
fn snapshot(num_cores: usize, tasks_per_core: usize) -> PolicyInput {
    let mut cores = Vec::new();
    let mut next_task = 0;
    for i in 0..num_cores {
        let tasks: Vec<TaskSnapshot> = (0..tasks_per_core)
            .map(|j| {
                let id = TaskId(next_task + j);
                TaskSnapshot {
                    id,
                    fse_load: 0.08 + 0.03 * (j as f64),
                    context_size: Bytes::from_kib(64 + 32 * j as u64),
                    migratable: true,
                    migrating: false,
                }
            })
            .collect();
        next_task += tasks_per_core;
        let fse_load = tasks.iter().map(|t| t.fse_load).sum();
        cores.push(CoreSnapshot {
            id: CoreId(i),
            temperature: Celsius::new(58.0 + 3.0 * i as f64),
            frequency: Frequency::from_mhz(if i % 2 == 0 { 533.0 } else { 266.0 }),
            running: true,
            fse_load,
            tasks,
        });
    }
    build_input(Seconds::new(1.0), cores, 0)
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_decide");
    for &(cores, tasks) in &[(3usize, 2usize), (4, 4), (8, 8)] {
        let input = snapshot(cores, tasks);
        group.bench_function(format!("thermal_balancing/{cores}c_{tasks}t"), |b| {
            let mut policy = ThermalBalancingPolicy::new(
                DvfsScale::paper_default(),
                ThermalBalancingConfig::paper_default().with_threshold(1.0),
            );
            b.iter(|| {
                policy.reset();
                black_box(policy.decide(black_box(&input)))
            });
        });
        group.bench_function(format!("stop_and_go/{cores}c_{tasks}t"), |b| {
            let mut policy = StopGoPolicy::new(1.0);
            b.iter(|| black_box(policy.decide(black_box(&input))));
        });
        group.bench_function(format!("energy_balancing/{cores}c_{tasks}t"), |b| {
            let mut policy = EnergyBalancingPolicy::new();
            b.iter(|| black_box(policy.decide(black_box(&input))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
