//! Criterion benchmarks of the RC thermal model.
//!
//! Measures the cost of one 10 ms thermal step (the sensor period of the
//! emulation platform) for both integration schemes and both packages, and
//! the steady-state solver used for calibration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tbp_arch::floorplan::Floorplan;
use tbp_arch::units::{Seconds, Watts};
use tbp_thermal::package::Package;
use tbp_thermal::solver::SolverKind;
use tbp_thermal::ThermalModel;

fn power_vector(floorplan: &Floorplan) -> Vec<Watts> {
    floorplan
        .blocks()
        .iter()
        .enumerate()
        .map(|(i, _)| Watts::new(0.02 + 0.03 * (i % 5) as f64))
        .collect()
}

fn bench_thermal_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("thermal_step_10ms");
    for cores in [3usize, 8] {
        let floorplan = Floorplan::homogeneous_tiles(cores).expect("valid floorplan");
        let power = power_vector(&floorplan);
        for (label, solver) in [
            ("euler", SolverKind::ForwardEuler),
            ("rk4", SolverKind::RungeKutta4),
        ] {
            for (pkg_label, package) in [
                ("mobile", Package::mobile_embedded()),
                ("hiperf", Package::high_performance()),
            ] {
                let mut model =
                    ThermalModel::with_solver(&floorplan, package, solver).expect("model builds");
                group.bench_function(format!("{cores}tiles/{pkg_label}/{label}"), |b| {
                    b.iter(|| {
                        model
                            .step(black_box(&power), Seconds::from_millis(10.0))
                            .expect("step succeeds")
                    });
                });
            }
        }
    }
    group.finish();
}

fn bench_steady_state(c: &mut Criterion) {
    let floorplan = Floorplan::paper_3core();
    let power = power_vector(&floorplan);
    let model = ThermalModel::new(&floorplan, Package::mobile_embedded()).expect("model builds");
    c.bench_function("thermal_steady_state_3core", |b| {
        b.iter(|| black_box(model.steady_state(black_box(&power)).expect("steady state")));
    });
}

criterion_group!(benches, bench_thermal_step, bench_steady_state);
criterion_main!(benches);
