//! Lane-scaling microbenchmarks: aggregate `LaneBatch` throughput at 1, 2,
//! 4 and 8 lanes against the solo `Simulation::step` baseline, plus the raw
//! thermal lane kernel at the same widths.
//!
//! Run with `cargo bench -p tbp-bench --bench lane_scaling`. The committed
//! acceptance numbers come from the `perf_report` binary (`BENCH_PR7.json`);
//! this group is the criterion view of the same curves for local iteration.

use criterion::{criterion_group, criterion_main, Criterion};

use tbp_arch::platform::PlatformConfig;
use tbp_arch::units::{Seconds, Watts};
use tbp_core::sim::builder::Workload;
use tbp_core::sim::{LaneBatch, Simulation, SimulationBuilder, SimulationConfig};
use tbp_thermal::lanes::ThermalLaneKernel;
use tbp_thermal::package::Package;
use tbp_thermal::solver::SolverKind;
use tbp_thermal::ThermalModel;

/// Steps per bench iteration: large enough that the loop dominates the
/// closure-call overhead of the harness.
const STEPS_PER_ITER: u64 = 2_000;

fn build_lane_sim(solver: SolverKind, step_ms: f64, cores: usize, policy_ms: f64) -> Simulation {
    SimulationBuilder::new()
        .with_platform(PlatformConfig::paper_default().with_cores(cores))
        .with_package(Package::high_performance())
        .with_solver(solver)
        .with_workload(Workload::sdr())
        .with_config(SimulationConfig {
            trace_interval: None,
            time_step: Seconds::from_millis(step_ms),
            policy_period: Seconds::from_millis(policy_ms.max(step_ms).max(10.0)),
            ..SimulationConfig::paper_default()
        })
        .build()
        .expect("bench simulation builds")
}

/// Full co-simulation batches: the paper platform at the default 5 ms step
/// and the thermal-dominated 16-core RK4 20 ms headline config.
fn bench_lane_batch(c: &mut Criterion) {
    let cases: [(&str, SolverKind, f64, usize, f64); 2] = [
        (
            "hiperf_euler_sdr_3c_5ms",
            SolverKind::ForwardEuler,
            5.0,
            3,
            10.0,
        ),
        (
            "hiperf_rk4_sdr_16c_20ms",
            SolverKind::RungeKutta4,
            20.0,
            16,
            100.0,
        ),
    ];
    for (name, solver, step_ms, cores, policy_ms) in cases {
        let mut group = c.benchmark_group(format!("lane_batch/{name}"));
        // Solo baseline: a plain simulation stepped past warm-up.
        let mut solo = build_lane_sim(solver, step_ms, cores, policy_ms);
        solo.run_for(Seconds::new(9.0)).expect("warm-up runs");
        group.bench_function(format!("solo_x{STEPS_PER_ITER}"), |b| {
            b.iter(|| {
                for _ in 0..STEPS_PER_ITER {
                    solo.step().expect("steady-state step");
                }
                solo.elapsed().as_secs()
            })
        });
        for lanes in [1usize, 2, 4, 8] {
            let sims: Vec<Simulation> = (0..lanes)
                .map(|_| build_lane_sim(solver, step_ms, cores, policy_ms))
                .collect();
            let mut batch = LaneBatch::new(sims).expect("lane batch forms");
            let warm = (9.0 / batch.time_step().as_secs()).ceil() as u64;
            batch.run_steps(warm).expect("warm-up runs");
            // Per-iteration work is `lanes * STEPS_PER_ITER` lane-steps;
            // divide the reported time by `lanes` to compare with solo.
            group.bench_function(format!("lanes{lanes}_x{STEPS_PER_ITER}"), |b| {
                b.iter(|| {
                    batch.run_steps(STEPS_PER_ITER).expect("batch steps");
                    batch.lane(0).expect("lane").elapsed().as_secs()
                })
            });
        }
        group.finish();
    }
}

/// Raw thermal lane kernel (no OS/streaming/policy around it): the SIMD
/// gather kernel in isolation, where lane scaling is cleanest.
fn bench_lane_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("lane_kernel");
    let dt = Seconds::from_millis(20.0);
    for cores in [3usize, 16] {
        let fp = tbp_arch::floorplan::Floorplan::homogeneous_tiles(cores).expect("floorplan");
        let power = vec![Watts::new(0.4); fp.len()];
        for lanes in [1usize, 8] {
            let models: Vec<ThermalModel> = (0..lanes)
                .map(|_| {
                    ThermalModel::with_solver(
                        &fp,
                        Package::high_performance(),
                        SolverKind::RungeKutta4,
                    )
                    .expect("model builds")
                })
                .collect();
            let refs: Vec<&ThermalModel> = models.iter().collect();
            let mut kernel = ThermalLaneKernel::from_models(&refs).expect("kernel forms");
            for lane in 0..lanes {
                kernel.set_block_powers(lane, &power).expect("powers set");
            }
            group.bench_function(
                format!("rk4_20ms_{cores}c_lanes{lanes}_x{STEPS_PER_ITER}"),
                |b| {
                    b.iter(|| {
                        for _ in 0..STEPS_PER_ITER {
                            kernel.advance(dt).expect("advance");
                        }
                        kernel.lane_temperature(0, 0).expect("lane 0 node 0")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_lane_batch, bench_lane_kernel);
criterion_main!(benches);
