//! Criterion benchmarks timing the regeneration of each figure/table.
//!
//! These benches answer "how long does it take to reproduce figure X?"
//! rather than asserting its values (the `src/bin/figN_*` binaries print the
//! values; the integration tests assert the shapes). The measured duration of
//! each experiment is reduced so a Criterion run stays short.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tbp_arch::units::{Bytes, Seconds};
use tbp_core::experiments::{run_sdr_experiment, ExperimentConfig, PolicyKind};
use tbp_os::migration::{MigrationCostModel, MigrationStrategy};
use tbp_thermal::package::PackageKind;

fn bench_fig2_cost_model(c: &mut Criterion) {
    let model = MigrationCostModel::paper_default();
    c.bench_function("fig2_cost_curve", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for kib in (64..=1024).step_by(32) {
                let size = Bytes::from_kib(kib);
                total += model.cycles(MigrationStrategy::TaskReplication, size);
                total += model.cycles(MigrationStrategy::TaskRecreation, size);
            }
            black_box(total)
        });
    });
}

fn bench_figure_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_point_2s");
    group.sample_size(10);
    let cases = [
        (
            "fig7_mobile_balancing",
            PackageKind::MobileEmbedded,
            PolicyKind::ThermalBalancing,
        ),
        (
            "fig7_mobile_stopgo",
            PackageKind::MobileEmbedded,
            PolicyKind::StopGo,
        ),
        (
            "fig7_mobile_energy",
            PackageKind::MobileEmbedded,
            PolicyKind::EnergyBalancing,
        ),
        (
            "fig9_hiperf_balancing",
            PackageKind::HighPerformance,
            PolicyKind::ThermalBalancing,
        ),
        (
            "fig9_hiperf_stopgo",
            PackageKind::HighPerformance,
            PolicyKind::StopGo,
        ),
    ];
    for (label, package, policy) in cases {
        group.bench_function(label, |b| {
            b.iter(|| {
                let config = ExperimentConfig {
                    package,
                    policy,
                    threshold: 2.0,
                    warmup: Seconds::new(1.0),
                    duration: Seconds::new(2.0),
                };
                black_box(run_sdr_experiment(&config).expect("experiment runs"))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2_cost_model, bench_figure_points);
criterion_main!(benches);
