//! Hot-loop microbenchmarks: steady-state `Simulation::step` throughput for
//! platform × solver × workload combinations, plus layer-level benches
//! (RC-network kernel, power snapshot, OS step, pipeline step) that show
//! where a step's nanoseconds go.
//!
//! Run with `cargo bench -p tbp-bench --bench hot_loop`. The numbers feed
//! the committed `BENCH_PR4.json` trajectory via the `perf_report` binary;
//! see `docs/PERFORMANCE.md`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use tbp_arch::core::CoreId;
use tbp_arch::platform::{MpsocPlatform, PlatformConfig, PowerSnapshot};
use tbp_arch::units::{Celsius, Seconds};
use tbp_core::sim::builder::Workload;
use tbp_core::sim::{Simulation, SimulationBuilder, SimulationConfig};
use tbp_os::mpos::{Mpos, MposStepReport};
use tbp_os::task::TaskDescriptor;
use tbp_thermal::package::Package;
use tbp_thermal::rc::RcNetwork;
use tbp_thermal::solver::{Solver, SolverKind, SolverWorkspace};
use tbp_thermal::ThermalModel;

/// Steps per bench iteration: large enough that the loop dominates the
/// closure-call overhead of the harness.
const STEPS_PER_ITER: u64 = 10_000;

fn build_sim(package: Package, solver: SolverKind, workload: Workload) -> Simulation {
    let mut sim = SimulationBuilder::new()
        .with_package(package)
        .with_solver(solver)
        .with_workload(workload)
        .with_config(SimulationConfig {
            trace_interval: None,
            ..SimulationConfig::paper_default()
        })
        .build()
        .expect("bench simulation builds");
    // Run past the warm-up so the measured loop includes policy invocations.
    sim.run_for(Seconds::new(9.0)).expect("warm-up runs");
    sim
}

fn bench_simulation_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_step");
    let cases: Vec<(&str, Package, SolverKind, Workload)> = vec![
        (
            "mobile_euler_sdr",
            Package::mobile_embedded(),
            SolverKind::ForwardEuler,
            Workload::sdr(),
        ),
        (
            "hiperf_euler_sdr",
            Package::high_performance(),
            SolverKind::ForwardEuler,
            Workload::sdr(),
        ),
        (
            "mobile_rk4_sdr",
            Package::mobile_embedded(),
            SolverKind::RungeKutta4,
            Workload::sdr(),
        ),
        (
            "hiperf_rk4_sdr",
            Package::high_performance(),
            SolverKind::RungeKutta4,
            Workload::sdr(),
        ),
        (
            "mobile_euler_dag",
            Package::mobile_embedded(),
            SolverKind::ForwardEuler,
            Workload::generated("dag"),
        ),
        (
            "hiperf_euler_dag",
            Package::high_performance(),
            SolverKind::ForwardEuler,
            Workload::generated("dag"),
        ),
    ];
    for (name, package, solver, workload) in cases {
        let mut sim = build_sim(package, solver, workload);
        group.bench_function(format!("{name}_x{STEPS_PER_ITER}"), |b| {
            b.iter(|| {
                for _ in 0..STEPS_PER_ITER {
                    sim.step().expect("steady-state step");
                }
                sim.elapsed().as_secs()
            })
        });
    }
    group.finish();
}

/// The paper-floorplan thermal model network, heated like the SDR run.
fn paper_network() -> RcNetwork {
    let floorplan = tbp_arch::floorplan::Floorplan::paper_3core();
    let model = ThermalModel::new(&floorplan, Package::mobile_embedded()).expect("model builds");
    model.network().clone()
}

fn bench_rc_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("rc_network");
    let iters = 10_000u64;

    let mut net = paper_network();
    net.ensure_compiled();
    let temps: Vec<f64> = (0..net.len()).map(|i| 45.0 + i as f64).collect();
    let mut out = Vec::new();
    group.bench_function(format!("derivative_into_compiled_x{iters}"), |b| {
        b.iter(|| {
            for _ in 0..iters {
                net.derivative_into(black_box(&temps), &mut out);
            }
            out[0]
        })
    });
    group.bench_function(format!("derivative_alloc_x{iters}"), |b| {
        b.iter(|| {
            let mut last = 0.0;
            for _ in 0..iters {
                last = net.derivative(black_box(&temps))[0];
            }
            last
        })
    });

    let solver = Solver::new(SolverKind::ForwardEuler);
    let mut ws = SolverWorkspace::new();
    group.bench_function(format!("advance_with_euler_5ms_x{iters}"), |b| {
        b.iter(|| {
            for _ in 0..iters {
                solver
                    .advance_with(&mut net, Seconds::from_millis(5.0), &mut ws)
                    .expect("advance");
            }
            net.temperature(0).as_celsius()
        })
    });
    let rk4 = Solver::new(SolverKind::RungeKutta4);
    group.bench_function(format!("advance_with_rk4_5ms_x{iters}"), |b| {
        b.iter(|| {
            for _ in 0..iters {
                rk4.advance_with(&mut net, Seconds::from_millis(5.0), &mut ws)
                    .expect("advance");
            }
            net.temperature(0).as_celsius()
        })
    });
    group.finish();
}

fn bench_layers(c: &mut Criterion) {
    let mut group = c.benchmark_group("layers");
    let iters = 10_000u64;

    // Power snapshot fill.
    let mut platform = MpsocPlatform::new(PlatformConfig::paper_default()).expect("platform");
    for id in platform.core_ids() {
        platform
            .core_mut(id)
            .expect("core")
            .set_utilization(0.5)
            .expect("utilization");
    }
    let temps = vec![Celsius::new(55.0); platform.floorplan().len()];
    let mut snap = PowerSnapshot::empty();
    group.bench_function(format!("power_snapshot_into_x{iters}"), |b| {
        b.iter(|| {
            for _ in 0..iters {
                platform.power_snapshot_into(black_box(&temps), &mut snap);
            }
            snap.total()
        })
    });

    // OS step with the SDR-like task population.
    let mut os = Mpos::new(3, tbp_arch::freq::DvfsScale::paper_default());
    for (name, load, core) in [
        ("bpf1", 0.367, 0usize),
        ("demod", 0.283, 0),
        ("bpf2", 0.304, 1),
    ] {
        os.spawn(
            TaskDescriptor::new(name, load, tbp_arch::units::Bytes::from_kib(64)),
            CoreId(core),
        )
        .expect("spawn");
    }
    let mut report = MposStepReport::default();
    group.bench_function(format!("mpos_step_into_x{iters}"), |b| {
        b.iter(|| {
            for _ in 0..iters {
                os.step_into(&mut platform, Seconds::from_millis(5.0), &mut report)
                    .expect("os step");
            }
            report.core_loads.len()
        })
    });
    group.finish();
}

fn bench_trace_encode(c: &mut Criterion) {
    use tbp_obs::{TraceWriter, TrackDef, TrackKind};

    let mut group = c.benchmark_group("trace_encode");
    let iters = 10_000u64;
    // One sampling tick of an N-core platform: N temperature + N frequency
    // counters plus the two cumulative counters, written into an in-memory
    // writer (the same encode path a file-backed sink drives per tick).
    for cores in [4usize, 16, 64] {
        let mut defs = Vec::new();
        for i in 0..cores {
            defs.push(TrackDef::counter(
                TrackKind::CoreTemperature,
                i as u32,
                0.01,
                format!("core{i}.temp_c"),
            ));
        }
        for i in 0..cores {
            defs.push(TrackDef::counter(
                TrackKind::CoreFrequency,
                i as u32,
                0.01,
                format!("core{i}.freq_mhz"),
            ));
        }
        defs.push(TrackDef::counter(
            TrackKind::Migrations,
            0,
            0.01,
            "migrations",
        ));
        defs.push(TrackDef::counter(
            TrackKind::DeadlineMisses,
            0,
            0.01,
            "deadline_misses",
        ));
        let mut writer = TraceWriter::new(std::io::sink(), &defs).expect("writer builds");
        let freq_base = cores as u16;
        let mig = 2 * cores as u16;
        group.bench_function(format!("tick_{cores}cores_x{iters}"), |b| {
            b.iter(|| {
                for tick in 0..iters {
                    let t = tick as f64 * 0.01;
                    for i in 0..cores as u16 {
                        writer.counter(i, t, black_box(45.0 + f64::from(i)));
                        writer.counter(freq_base + i, t, black_box(400.0));
                    }
                    writer.counter(mig, t, 3.0);
                    writer.counter(mig + 1, t, 0.0);
                }
                writer.records()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_simulation_step,
    bench_rc_network,
    bench_layers,
    bench_trace_encode
);
criterion_main!(benches);
