//! Inspects and exports binary trace files (`.tbptrace`).
//!
//! The runner's `--trace-dir` flag makes every simulated run emit one binary
//! trace (see `docs/OBSERVABILITY.md` for the format); this binary is the
//! companion reader:
//!
//! ```text
//! cargo run --release -p tbp-bench --bin trace_explore -- <file.tbptrace>
//!     [--window <seconds>]           # windowed stats instead of track table
//!     [--export perfetto|json|csv]   # convert instead of summarising
//!     [--out <file>]                 # write the export to a file
//! ```
//!
//! Without flags it prints one row per track — kind, samples, span, min,
//! mean, max and an ASCII sparkline of the series. `--window` aggregates the
//! run into fixed windows with the spatial temperature σ (the paper's
//! headline balancing metric) and the migration rate per window. `--export
//! perfetto` emits Chrome-trace JSON that `ui.perfetto.dev` opens directly;
//! `json` is the legacy in-memory recorder shape; `csv` is long-format.

use std::path::{Path, PathBuf};

use tbp_obs::export::{to_csv, to_legacy_json, to_perfetto_json};
use tbp_obs::{TraceData, TraceReader, Track, TrackKind};

const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

fn main() {
    let cli = Cli::parse(std::env::args().skip(1));
    let data = TraceReader::read_file(&cli.file)
        .unwrap_or_else(|e| panic!("cannot read trace {}: {e}", cli.file.display()));
    if let Some(format) = &cli.export {
        let rendered = match format.as_str() {
            "perfetto" => to_perfetto_json(&data),
            "json" => to_legacy_json(&data),
            "csv" => to_csv(&data),
            other => panic!("unknown export format `{other}` (known: perfetto, json, csv)"),
        };
        match &cli.out {
            Some(path) => std::fs::write(path, rendered)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display())),
            None => print!("{rendered}"),
        }
        return;
    }
    match cli.window {
        Some(window) => print_windowed(&data, window),
        None => print_summary(&cli.file, &data),
    }
}

struct Cli {
    file: PathBuf,
    window: Option<f64>,
    export: Option<String>,
    out: Option<PathBuf>,
}

impl Cli {
    fn parse(args: impl Iterator<Item = String>) -> Cli {
        let mut file = None;
        let mut window = None;
        let mut export = None;
        let mut out = None;
        let mut args = args.peekable();
        fn value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
            match args.next() {
                Some(v) if !v.starts_with("--") => v,
                _ => panic!("{flag} needs a value"),
            }
        }
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--window" => {
                    let v = value(&mut args, "--window");
                    let secs: f64 = v.parse().unwrap_or_else(|_| {
                        panic!("--window needs a duration in seconds, got `{v}`")
                    });
                    assert!(
                        secs.is_finite() && secs > 0.0,
                        "--window must be positive, got {secs}"
                    );
                    window = Some(secs);
                }
                "--export" => export = Some(value(&mut args, "--export")),
                "--out" => out = Some(PathBuf::from(value(&mut args, "--out"))),
                other if other.starts_with("--") => panic!("unknown flag `{other}`"),
                other => {
                    assert!(file.is_none(), "more than one trace file given");
                    file = Some(PathBuf::from(other));
                }
            }
        }
        Cli {
            file: file.unwrap_or_else(|| {
                panic!(
                    "usage: trace_explore <file.tbptrace> [--window <s>] \
                     [--export perfetto|json|csv] [--out <file>]"
                )
            }),
            window,
            export,
            out,
        }
    }
}

/// One row per track: kind, record count, time span, min/mean/max and a
/// sparkline of the (resampled) series.
fn print_summary(path: &Path, data: &TraceData) {
    let (start, end) = data.span().unwrap_or((0.0, 0.0));
    println!(
        "{}: {} tracks, {} records, {:.2} s .. {:.2} s",
        path.display(),
        data.tracks.len(),
        data.total_records(),
        start,
        end
    );
    println!(
        "{:<22} {:>7} {:>9} {:>9} {:>9}  sparkline",
        "track", "records", "min", "mean", "max"
    );
    for track in &data.tracks {
        if track.def.kind.is_event() {
            let preview = track
                .labels
                .first()
                .map(|l| format!("first: {l}"))
                .unwrap_or_default();
            println!(
                "{:<22} {:>7} {:>9} {:>9} {:>9}  {}",
                track.def.name,
                track.len(),
                "-",
                "-",
                "-",
                preview
            );
            continue;
        }
        let stats = series_stats(&track.values);
        println!(
            "{:<22} {:>7} {:>9.2} {:>9.2} {:>9.2}  {}",
            track.def.name,
            track.len(),
            stats.0,
            stats.1,
            stats.2,
            sparkline(&track.values, 40)
        );
    }
}

/// Windowed aggregates: per window the spatial temperature σ (mean over the
/// window's samples) and the migration rate, the paper's two headline
/// balancing metrics.
fn print_windowed(data: &TraceData, window: f64) {
    let temps: Vec<&Track> = data.tracks_of(TrackKind::CoreTemperature).collect();
    let migrations = data.track(TrackKind::Migrations, 0);
    let Some((start, end)) = data.span() else {
        println!("empty trace");
        return;
    };
    let grid: &[f64] = temps
        .iter()
        .max_by_key(|t| t.len())
        .map(|t| t.times.as_slice())
        .unwrap_or(&[]);
    println!(
        "{:>9} {:>9} {:>12} {:>14}",
        "from_s", "to_s", "sigma_c", "migrations_per_s"
    );
    let mut at = start;
    while at < end {
        let to = (at + window).min(end);
        // Mean spatial σ over the window's sample instants.
        let mut sigma_sum = 0.0;
        let mut sigma_n = 0u64;
        for &t in grid.iter().filter(|&&t| t >= at && t < to) {
            let values: Vec<f64> = temps
                .iter()
                .filter_map(|track| track.value_at_or_before(t))
                .collect();
            if values.len() > 1 {
                sigma_sum += std_dev(&values);
                sigma_n += 1;
            }
        }
        let sigma = if sigma_n > 0 {
            sigma_sum / sigma_n as f64
        } else {
            0.0
        };
        let migrated = migrations
            .map(|m| {
                let before = m.value_at_or_before(at).unwrap_or(0.0);
                let after = m.value_at_or_before(to).unwrap_or(before);
                (after - before).max(0.0)
            })
            .unwrap_or(0.0);
        let rate = if to > at { migrated / (to - at) } else { 0.0 };
        println!("{at:>9.2} {to:>9.2} {sigma:>12.4} {rate:>14.3}");
        at = to;
    }
}

fn series_stats(values: &[f64]) -> (f64, f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    (min, mean, max)
}

fn std_dev(values: &[f64]) -> f64 {
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// Resamples `values` into at most `width` buckets (bucket mean) and maps
/// each onto the 8-level block characters.
fn sparkline(values: &[f64], width: usize) -> String {
    if values.is_empty() {
        return String::new();
    }
    let buckets = width.min(values.len()).max(1);
    let mut resampled = Vec::with_capacity(buckets);
    for b in 0..buckets {
        let lo = b * values.len() / buckets;
        let hi = (((b + 1) * values.len()) / buckets).max(lo + 1);
        let slice = &values[lo..hi.min(values.len())];
        resampled.push(slice.iter().sum::<f64>() / slice.len() as f64);
    }
    let (min, _, max) = series_stats(&resampled);
    let span = (max - min).max(1e-12);
    resampled
        .iter()
        .map(|v| {
            let level = (((v - min) / span) * 7.0).round() as usize;
            SPARKS[level.min(7)]
        })
        .collect()
}
