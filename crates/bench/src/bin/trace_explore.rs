//! Inspects, exports and live-tails binary trace files (`.tbptrace`).
//!
//! The runner's `--trace-dir` flag makes every simulated run emit one binary
//! trace (see `docs/OBSERVABILITY.md` for the format); this binary is the
//! companion reader:
//!
//! ```text
//! cargo run --release -p tbp-bench --bin trace_explore -- <file.tbptrace>
//!     [--window <seconds>]           # windowed stats instead of track table
//!     [--export perfetto|json|csv]   # convert instead of summarising
//!     [--out <file>]                 # write the export to a file
//!     [--follow]                     # tail a live trace as it is written
//!     [--follow-timeout <seconds>]   # give up when the writer stalls
//! ```
//!
//! Without flags it prints one row per track — kind, samples, span, min,
//! mean, max and an ASCII sparkline of the series. `--window` aggregates the
//! run into fixed windows with the spatial temperature σ (the paper's
//! headline balancing metric) and the migration rate per window. `--export
//! perfetto` emits Chrome-trace JSON that `ui.perfetto.dev` opens directly;
//! `json` is the legacy in-memory recorder shape; `csv` is long-format.
//!
//! `--follow` opens the trace while the producing run is still writing it
//! and streams the windowed stats: each window row is printed as soon as it
//! completes (an incomplete final chunk is "wait for more data", not
//! corruption — see [`TraceTailer`]), and when the writer finishes, the
//! accumulated samples are checked byte-for-byte against a fresh post-hoc
//! [`TraceReader::read_file`] pass. By default the tail waits forever for a
//! writer that went quiet; `--follow-timeout <seconds>` arms the tailer's
//! stall detector instead, turning a crashed producer into a clean one-line
//! failure (exit code 1) rather than a hung terminal.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use tbp_obs::export::{to_csv, to_legacy_json, to_perfetto_json};
use tbp_obs::stats::{series_stats, sparkline, windowed_stats, WindowStat};
use tbp_obs::{TraceData, TraceError, TraceReader, TraceTailer};

fn main() {
    let cli = Cli::parse(std::env::args().skip(1));
    if cli.follow {
        follow(&cli.file, cli.window.unwrap_or(1.0), cli.follow_timeout);
        return;
    }
    let data = TraceReader::read_file(&cli.file)
        .unwrap_or_else(|e| panic!("cannot read trace {}: {e}", cli.file.display()));
    if let Some(format) = &cli.export {
        let rendered = match format.as_str() {
            "perfetto" => to_perfetto_json(&data),
            "json" => to_legacy_json(&data),
            "csv" => to_csv(&data),
            other => panic!("unknown export format `{other}` (known: perfetto, json, csv)"),
        };
        match &cli.out {
            Some(path) => std::fs::write(path, rendered)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display())),
            None => print!("{rendered}"),
        }
        return;
    }
    match cli.window {
        Some(window) => print_windowed(&data, window),
        None => print_summary(&cli.file, &data),
    }
}

struct Cli {
    file: PathBuf,
    window: Option<f64>,
    export: Option<String>,
    out: Option<PathBuf>,
    follow: bool,
    follow_timeout: Option<Duration>,
}

impl Cli {
    fn parse(args: impl Iterator<Item = String>) -> Cli {
        let mut file = None;
        let mut window = None;
        let mut export = None;
        let mut out = None;
        let mut follow = false;
        let mut follow_timeout = None;
        let mut args = args.peekable();
        fn value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
            match args.next() {
                Some(v) if !v.starts_with("--") => v,
                _ => panic!("{flag} needs a value"),
            }
        }
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--window" => {
                    let v = value(&mut args, "--window");
                    let secs: f64 = v.parse().unwrap_or_else(|_| {
                        panic!("--window needs a duration in seconds, got `{v}`")
                    });
                    assert!(
                        secs.is_finite() && secs > 0.0,
                        "--window must be positive, got {secs}"
                    );
                    window = Some(secs);
                }
                "--export" => export = Some(value(&mut args, "--export")),
                "--out" => out = Some(PathBuf::from(value(&mut args, "--out"))),
                "--follow" => follow = true,
                "--follow-timeout" => {
                    let v = value(&mut args, "--follow-timeout");
                    let secs: f64 = v.parse().unwrap_or_else(|_| {
                        panic!("--follow-timeout needs a duration in seconds, got `{v}`")
                    });
                    assert!(
                        secs.is_finite() && secs > 0.0,
                        "--follow-timeout must be positive, got {secs}"
                    );
                    follow_timeout = Some(Duration::from_secs_f64(secs));
                }
                other if other.starts_with("--") => panic!("unknown flag `{other}`"),
                other => {
                    assert!(file.is_none(), "more than one trace file given");
                    file = Some(PathBuf::from(other));
                }
            }
        }
        assert!(
            !(follow && export.is_some()),
            "--follow streams windowed stats and cannot be combined with --export"
        );
        assert!(
            follow || follow_timeout.is_none(),
            "--follow-timeout only makes sense with --follow"
        );
        Cli {
            file: file.unwrap_or_else(|| {
                panic!(
                    "usage: trace_explore <file.tbptrace> [--window <s>] \
                     [--export perfetto|json|csv] [--out <file>] [--follow]"
                )
            }),
            window,
            export,
            out,
            follow,
            follow_timeout,
        }
    }
}

/// Tails a live trace: prints each windowed-stats row as soon as its window
/// completes, then — once the writer lands the end chunk — verifies the
/// accumulated samples against a fresh post-hoc read of the finished file.
fn follow(path: &Path, window: f64, stall_timeout: Option<Duration>) {
    const POLL: Duration = Duration::from_millis(150);
    const OPEN_TIMEOUT: Duration = Duration::from_secs(30);
    // The producing run may not have created the file yet: retry the open
    // briefly instead of racing the writer.
    let opened = Instant::now();
    let mut tailer = loop {
        match TraceTailer::open(path) {
            Ok(tailer) => break tailer,
            Err(e) if opened.elapsed() < OPEN_TIMEOUT => {
                let _ = e;
                std::thread::sleep(POLL);
            }
            Err(e) => panic!("cannot open trace {} for tailing: {e}", path.display()),
        }
    };
    if let Some(timeout) = stall_timeout {
        tailer = tailer.with_stall_timeout(timeout);
    }
    println!(
        "{:>9} {:>9} {:>12} {:>14}",
        "from_s", "to_s", "sigma_c", "migrations_per_s"
    );
    let mut printed = 0usize;
    loop {
        let progress = match tailer.poll() {
            Ok(progress) => progress,
            Err(e @ TraceError::WriterStalled { .. }) => {
                tbp_bench::fail(format!("{}: {e}", path.display()))
            }
            Err(e) => panic!("cannot tail {}: {e}", path.display()),
        };
        let windows = windowed_stats(tailer.data(), window);
        // While the writer is running, the final window is still filling (it
        // would stretch as samples land), so only completed windows print;
        // the end chunk flushes the rest including the final partial window.
        let complete = if progress.ended {
            windows.len()
        } else {
            windows.len().saturating_sub(1)
        };
        for stat in &windows[printed..complete] {
            print_window_row(stat);
        }
        printed = complete;
        if progress.ended {
            break;
        }
        std::thread::sleep(POLL);
    }
    let tailed = tailer
        .into_data()
        .unwrap_or_else(|e| panic!("tailed trace {} is incomplete: {e}", path.display()));
    let posthoc = TraceReader::read_file(path)
        .unwrap_or_else(|e| panic!("cannot re-read trace {}: {e}", path.display()));
    assert_eq!(
        tailed,
        posthoc,
        "tailed samples diverged from the post-hoc read of {}",
        path.display()
    );
    println!(
        "tail verified: {} records byte-identical to post-hoc read",
        posthoc.total_records()
    );
}

/// One row per track: kind, record count, time span, min/mean/max and a
/// sparkline of the (resampled) series.
fn print_summary(path: &Path, data: &TraceData) {
    let (start, end) = data.span().unwrap_or((0.0, 0.0));
    println!(
        "{}: {} tracks, {} records, {:.2} s .. {:.2} s",
        path.display(),
        data.tracks.len(),
        data.total_records(),
        start,
        end
    );
    println!(
        "{:<22} {:>7} {:>9} {:>9} {:>9}  sparkline",
        "track", "records", "min", "mean", "max"
    );
    for track in &data.tracks {
        if track.def.kind.is_event() {
            let preview = track
                .labels
                .first()
                .map(|l| format!("first: {l}"))
                .unwrap_or_default();
            println!(
                "{:<22} {:>7} {:>9} {:>9} {:>9}  {}",
                track.def.name,
                track.len(),
                "-",
                "-",
                "-",
                preview
            );
            continue;
        }
        let stats = series_stats(&track.values);
        println!(
            "{:<22} {:>7} {:>9.2} {:>9.2} {:>9.2}  {}",
            track.def.name,
            track.len(),
            stats.0,
            stats.1,
            stats.2,
            sparkline(&track.values, 40)
        );
    }
}

/// Windowed aggregates: per window the spatial temperature σ (mean over the
/// window's samples) and the migration rate, the paper's two headline
/// balancing metrics. Shares [`windowed_stats`] with `--follow` and
/// `trace_tui`, so all three views agree exactly.
fn print_windowed(data: &TraceData, window: f64) {
    if data.span().is_none() {
        println!("empty trace");
        return;
    }
    println!(
        "{:>9} {:>9} {:>12} {:>14}",
        "from_s", "to_s", "sigma_c", "migrations_per_s"
    );
    for stat in windowed_stats(data, window) {
        print_window_row(&stat);
    }
}

fn print_window_row(stat: &WindowStat) {
    println!(
        "{:>9.2} {:>9.2} {:>12.4} {:>14.3}",
        stat.from_s, stat.to_s, stat.sigma_c, stat.migrations_per_s
    );
}
