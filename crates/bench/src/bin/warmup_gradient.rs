//! Narrative experiment N1: the DVFS-only warm-up phase, built from the
//! `warmup-gradient` scenario spec.
//!
//! The paper reports that after an initial execution phase of 12.5 s the
//! temperatures stabilise but are **not** balanced: about 10 °C separate the
//! hottest core (core 1) from the coolest (core 3), and cores 2 and 3 differ
//! despite running at the same frequency because of their floorplan position.

use tbp_arch::units::Seconds;
use tbp_core::experiments::warmup_gradient_spec;

fn main() {
    let mut sim = warmup_gradient_spec().build().expect("simulation builds");
    let mut rows = Vec::new();
    let checkpoints = [1.0, 2.5, 5.0, 7.5, 10.0, 12.5];
    let mut last = 0.0;
    for &t in &checkpoints {
        sim.run_for(Seconds::new(t - last))
            .expect("simulation runs");
        last = t;
        let temps = sim.core_temperatures();
        let spread = temps
            .iter()
            .map(|c| c.as_celsius())
            .fold(f64::MIN, f64::max)
            - temps
                .iter()
                .map(|c| c.as_celsius())
                .fold(f64::MAX, f64::min);
        rows.push(vec![
            format!("{t:.1}"),
            format!("{:.2}", temps[0].as_celsius()),
            format!("{:.2}", temps[1].as_celsius()),
            format!("{:.2}", temps[2].as_celsius()),
            format!("{spread:.2}"),
        ]);
    }
    tbp_bench::print_table(
        "Warm-up (DVFS only, mobile package): core temperatures over time",
        &[
            "time [s]",
            "core0 [°C]",
            "core1 [°C]",
            "core2 [°C]",
            "spread [°C]",
        ],
        &rows,
    );
    let temps = sim.core_temperatures();
    println!(
        "\nFinal gradient between hottest and coolest core: {:.2} °C (paper: ~10 °C)",
        temps
            .iter()
            .map(|c| c.as_celsius())
            .fold(f64::MIN, f64::max)
            - temps
                .iter()
                .map(|c| c.as_celsius())
                .fold(f64::MAX, f64::min)
    );
}
