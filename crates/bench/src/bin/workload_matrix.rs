//! The cross-workload policy matrix: every policy × every workload family.
//!
//! One declarative spec expands into the full grid — 4 workloads (`sdr`,
//! `synthetic`, `video-analytics`, `dag`) × 3 policies — and the tables
//! pivot the reports per workload so the policies' behaviour can be compared
//! *across* application shapes, not just on the paper's SDR benchmark.
//!
//! ```sh
//! cargo run --release -p tbp-bench --bin workload_matrix -- --cache-dir .tbp-cache
//! ```
//!
//! Accepts the shared batch flags (`--json`/`--csv`, `--cache-dir`,
//! `--shard i/k`, `--merge`) and `TBP_DURATION`.

use tbp_core::scenario::{RunReport, ScenarioSpec, SweepSpec, WorkloadKind};

fn main() {
    let duration = tbp_bench::measured_duration();
    let spec = ScenarioSpec::new("workload-matrix")
        .with_description("All three policies across the four workload families")
        .with_policy("thermal-balancing", 2.0)
        .with_schedule(6.0, duration.as_secs())
        .with_sweep(
            SweepSpec::default()
                .with_workloads([
                    WorkloadKind::Sdr,
                    WorkloadKind::Synthetic,
                    WorkloadKind::VideoAnalytics,
                    WorkloadKind::Dag,
                ])
                .with_policies(["thermal-balancing", "stop-and-go", "energy-balancing"]),
        );
    let Some(batch) = tbp_bench::run_cli("workload matrix", &[spec]) else {
        return; // shard mode: the partial report went to stdout
    };
    if tbp_bench::emit_structured(&batch) {
        return;
    }

    let reports: Vec<&RunReport> = batch.reports.iter().collect();
    let policies = tbp_bench::policy_columns(&reports);
    let mut header = vec!["workload"];
    header.extend(policies.iter().copied());

    let workloads = workload_rows(&reports);
    let pivot = |metric: &dyn Fn(&RunReport) -> f64| -> Vec<Vec<String>> {
        workloads
            .iter()
            .map(|workload| {
                let mut row = vec![workload.clone()];
                for policy in &policies {
                    let value = reports
                        .iter()
                        .find(|r| {
                            r.workload.as_deref() == Some(workload)
                                && r.policy.as_deref() == Some(*policy)
                        })
                        .map(|r| metric(r))
                        .unwrap_or(f64::NAN);
                    row.push(format!("{value:.3}"));
                }
                row
            })
            .collect()
    };

    tbp_bench::print_table(
        "Temperature σ [°C] per workload × policy",
        &header,
        &pivot(&|r| r.summary().map_or(f64::NAN, |s| s.mean_spatial_std_dev())),
    );
    tbp_bench::print_table(
        "Deadline misses per workload × policy (flat workloads have no deadlines)",
        &header,
        &pivot(&|r| {
            r.summary()
                .map_or(f64::NAN, |s| s.qos.deadline_misses as f64)
        }),
    );
    tbp_bench::print_table(
        "Migrations per second per workload × policy",
        &header,
        &pivot(&|r| r.summary().map_or(f64::NAN, |s| s.migrations_per_second())),
    );
}

/// The distinct workload labels of the batch, in first-appearance order.
fn workload_rows(reports: &[&RunReport]) -> Vec<String> {
    let mut workloads: Vec<String> = Vec::new();
    for report in reports {
        if let Some(workload) = report.workload.as_deref() {
            if !workloads.iter().any(|w| w == workload) {
                workloads.push(workload.to_string());
            }
        }
    }
    workloads
}
