//! Serves a distributed sweep: lease-based coordinator over TCP.
//!
//! Loads the given scenario files exactly like `run_scenario`, binds the
//! listen address and hands the batch's expanded scenarios out to
//! `sweep_worker` processes one lease at a time. When every scenario has a
//! result, prints the merged batch report — byte-identical to running the
//! same files through `run_scenario` in one process (see
//! `docs/DISTRIBUTED.md` for the protocol and the failure matrix):
//!
//! ```sh
//! cargo run --release -p tbp-bench --bin sweep_coord -- \
//!     scenarios/90_dag_sweep.toml --listen 127.0.0.1:4750 --csv
//! ```
//!
//! Flags:
//!
//! * `--listen <host:port>` (required) — address to serve on.
//! * `--lease-timeout <s>` — lease lifetime granted at issue and renewed on
//!   every heartbeat (default 5).
//! * `--timeout <s>` — give up when the batch has not completed after this
//!   long (default: wait forever).
//! * `--fault <spec>` — deterministic fault injection on outgoing frames,
//!   e.g. `drop=3,corrupt=7` (see `FaultPlan::parse`).
//! * `--json` / `--csv` — structured report instead of tables.
//! * `--metrics <file>` / `--metrics-prom <file>` — live `sweepd.*`
//!   instruments (leases granted/expired/reclaimed, results, queue depth,
//!   connected workers) as a JSONL heartbeat / one-shot Prometheus dump.
//!
//! `TBP_DURATION` applies the same duration override as `run_scenario` —
//! workers must run with the identical environment, or the handshake's batch
//! digest check will refuse them.

use std::path::PathBuf;
use std::time::Duration;

use tbp_bench::{fail, fail_usage, MetricsOutputs};
use tbp_sweepd::{CoordConfig, CoordMetrics, Coordinator, FaultPlan};

fn main() {
    tbp_bench::exit_cleanly_on_panic();
    let cli = Cli::parse(std::env::args().skip(1));
    let specs = tbp_bench::load_scenarios(&cli.paths);
    let config = CoordConfig {
        lease_timeout: cli.lease_timeout,
        completion_timeout: cli.timeout,
        fault: cli.fault,
        ..CoordConfig::default()
    };
    let obs = match (&cli.metrics, &cli.metrics_prom) {
        (None, None) => None,
        (metrics, prom) => Some(
            MetricsOutputs::start(metrics.as_deref(), prom.as_deref())
                .unwrap_or_else(|e| fail(format!("cannot create metrics file: {e}"))),
        ),
    };
    let mut coordinator = Coordinator::bind(&cli.listen, &specs, config)
        .unwrap_or_else(|e| fail(format!("cannot serve on {}: {e}", cli.listen)));
    if let Some(obs) = &obs {
        coordinator = coordinator.with_metrics(CoordMetrics::register(obs.registry()));
    }
    let addr = coordinator
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| cli.listen.clone());
    eprintln!(
        "[coord] serving {} scenarios on {addr}",
        coordinator.total()
    );
    let result = tbp_bench::timed("coord", || coordinator.run());
    if let Some(obs) = obs {
        obs.finish();
    }
    let batch = result.unwrap_or_else(|e| fail(format!("sweep failed: {e}")));
    if tbp_bench::emit_structured(&batch) {
        return;
    }
    for spec in &specs {
        let reports = batch.group(&spec.name);
        if reports.is_empty() {
            continue;
        }
        if let Some(table) = reports[0].table() {
            tbp_bench::print_table_report(table);
        } else {
            tbp_bench::print_table(
                &spec.name,
                &tbp_bench::SUMMARY_HEADER,
                &tbp_bench::summary_rows(&reports),
            );
        }
    }
}

const USAGE: &str = "usage: sweep_coord <scenario.toml>... --listen <host:port> \
                     [--lease-timeout <s>] [--timeout <s>] [--fault <spec>] \
                     [--json|--csv] [--metrics <file>] [--metrics-prom <file>]";

struct Cli {
    paths: Vec<PathBuf>,
    listen: String,
    lease_timeout: Duration,
    timeout: Option<Duration>,
    fault: FaultPlan,
    metrics: Option<PathBuf>,
    metrics_prom: Option<PathBuf>,
}

impl Cli {
    fn parse(args: impl Iterator<Item = String>) -> Cli {
        let mut paths = Vec::new();
        let mut listen = None;
        let mut lease_timeout = Duration::from_secs(5);
        let mut timeout = None;
        let mut fault = FaultPlan::none();
        let mut metrics = None;
        let mut metrics_prom = None;
        let mut args = args;
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--listen" => listen = Some(flag_value(&mut args, "--listen")),
                "--lease-timeout" => {
                    lease_timeout = parse_seconds(&flag_value(&mut args, "--lease-timeout"));
                }
                "--timeout" => {
                    timeout = Some(parse_seconds(&flag_value(&mut args, "--timeout")));
                }
                "--fault" => {
                    let spec = flag_value(&mut args, "--fault");
                    fault = FaultPlan::parse(&spec).unwrap_or_else(|e| fail_usage(e));
                }
                "--metrics" => {
                    metrics = Some(PathBuf::from(flag_value(&mut args, "--metrics")));
                }
                "--metrics-prom" => {
                    metrics_prom = Some(PathBuf::from(flag_value(&mut args, "--metrics-prom")));
                }
                "--json" | "--csv" => {}
                other if other.starts_with("--") => {
                    fail_usage(format!("unknown flag `{other}`\n{USAGE}"))
                }
                other => paths.push(PathBuf::from(other)),
            }
        }
        if paths.is_empty() {
            fail_usage(USAGE);
        }
        let Some(listen) = listen else {
            fail_usage(format!("--listen is required\n{USAGE}"));
        };
        Cli {
            paths,
            listen,
            lease_timeout,
            timeout,
            fault,
            metrics,
            metrics_prom,
        }
    }
}

fn flag_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    match args.next() {
        Some(v) if !v.starts_with("--") => v,
        _ => fail_usage(format!("{flag} needs a value\n{USAGE}")),
    }
}

fn parse_seconds(value: &str) -> Duration {
    match value.parse::<f64>() {
        Ok(secs) if secs.is_finite() && secs > 0.0 => Duration::from_secs_f64(secs),
        _ => fail_usage(format!(
            "expected a positive duration in seconds, got `{value}`"
        )),
    }
}
