//! Figure 10: frame deadline misses vs. threshold for the three policies on
//! the high-performance package.
//!
//! Expected shape (paper): Stop&Go trades its good temperature deviation for
//! a large number of missed frames; the thermal balancing policy keeps misses
//! near zero.

use tbp_core::experiments::run_threshold_sweep;
use tbp_thermal::package::PackageKind;

fn main() {
    let duration = tbp_bench::measured_duration();
    let points = tbp_bench::timed("fig10", || {
        run_threshold_sweep(PackageKind::HighPerformance, duration).expect("sweep runs")
    });
    let rows = tbp_bench::sweep_table(&points, |p| p.summary.qos.deadline_misses as f64);
    tbp_bench::print_table(
        "Figure 10 — deadline misses vs threshold (high-performance package)",
        &["threshold [°C]", "thermal-balancing", "stop-and-go", "energy-balancing"],
        &rows,
    );
}
