//! Figure 10: frame deadline misses vs. threshold for the three policies on
//! the high-performance package, via the Scenario API.
//!
//! Expected shape (paper): Stop&Go trades its good temperature deviation for
//! a large number of missed frames; the thermal balancing policy keeps misses
//! near zero.

use tbp_core::experiments::threshold_sweep_spec;
use tbp_thermal::package::PackageKind;

fn main() {
    let spec = threshold_sweep_spec(PackageKind::HighPerformance, tbp_bench::measured_duration());
    let Some(batch) = tbp_bench::run_cli("fig10", std::slice::from_ref(&spec)) else {
        return;
    };
    if tbp_bench::emit_structured(&batch) {
        return;
    }
    let reports = batch.group(&spec.name);
    let mut header = vec!["threshold [°C]"];
    header.extend(tbp_bench::policy_columns(&reports));
    let rows = tbp_bench::pivot_threshold_policy(&reports, |r| {
        r.summary()
            .map_or(f64::NAN, |s| s.qos.deadline_misses as f64)
    });
    tbp_bench::print_table(
        "Figure 10 — deadline misses vs threshold (high-performance package)",
        &header,
        &rows,
    );
}
