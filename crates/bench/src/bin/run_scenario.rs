//! Runs arbitrary scenario TOML files through the batch CLI.
//!
//! Where `reproduce_all` always executes the whole `scenarios/` directory,
//! this binary runs exactly the files it is given — the CI smoke jobs use it
//! to exercise individual scenarios (cold + warm against a cache), and it is
//! the quickest way to iterate on a new scenario file:
//!
//! ```sh
//! cargo run --release -p tbp-bench --bin run_scenario -- \
//!     scenarios/90_dag_sweep.toml --cache-dir .tbp-cache --csv
//! ```
//!
//! Accepts the shared batch flags (`--json`/`--csv`, `--cache-dir`,
//! `--shard i/k`, `--trace-dir <dir>`, `--lanes <n>`, `--merge`, plus the
//! observability trio `--metrics <file>`, `--metrics-prom <file>` and
//! `--progress`). With
//! `--lanes <n>` compatible simulation misses step in lockstep through one
//! SIMD lane batch — byte-identical output, faster. With `--trace-dir` every
//! *simulated* run additionally writes a binary trace (see
//! `docs/OBSERVABILITY.md`); cache hits skip simulation and emit none.
//! Merge mode still needs the scenario files —
//! they define the batch the partials are checked against:
//! `run_scenario <scenario.toml>... --merge p1.json p2.json`.
//! `TBP_DURATION` overrides the measured duration of every simulated
//! scenario *when set*; unlike `reproduce_all`, an unset variable leaves the
//! files' own schedules untouched.

use std::path::PathBuf;

fn main() {
    tbp_bench::exit_cleanly_on_panic();
    let paths = scenario_paths();
    if paths.is_empty() {
        tbp_bench::fail_usage(
            "usage: run_scenario <scenario.toml>... [--cache-dir <dir>] [--shard i/k] \
             [--trace-dir <dir>] [--lanes <n>] [--merge <partial.json>...] [--json|--csv]\n\
             note: --merge also needs the scenario files — they define the batch \
             the partial reports are validated against",
        );
    }
    let specs = tbp_bench::load_scenarios(&paths);
    let Some(batch) = tbp_bench::run_cli("scenarios", &specs) else {
        return; // shard mode: the partial report went to stdout
    };
    if tbp_bench::emit_structured(&batch) {
        return;
    }
    for spec in &specs {
        let reports = batch.group(&spec.name);
        if reports.is_empty() {
            continue;
        }
        if let Some(table) = reports[0].table() {
            tbp_bench::print_table_report(table);
        } else {
            tbp_bench::print_table(
                &spec.name,
                &tbp_bench::SUMMARY_HEADER,
                &tbp_bench::summary_rows(&reports),
            );
        }
    }
}

/// The positional scenario-file arguments: everything that is not one of the
/// shared batch/format flags (whose values are skipped).
fn scenario_paths() -> Vec<PathBuf> {
    let mut paths = Vec::new();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cache-dir" | "--shard" | "--trace-dir" | "--lanes" | "--metrics"
            | "--metrics-prom" => {
                args.next();
            }
            "--merge" => {
                while args.peek().is_some_and(|a| !a.starts_with("--")) {
                    args.next();
                }
            }
            "--json" | "--csv" | "--progress" => {}
            other if other.starts_with("--") => {
                tbp_bench::fail_usage(format!("unknown flag `{other}`"))
            }
            other => paths.push(PathBuf::from(other)),
        }
    }
    paths
}
