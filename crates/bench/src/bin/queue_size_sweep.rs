//! Narrative experiment N3: minimum queue size sustaining thermal balancing,
//! via the Scenario API's queue-capacity sweep axis.
//!
//! The paper observes that the average queue level does not change because of
//! migration and that a queue size of 11 frames was sufficient to sustain the
//! policy without QoS impact. This sweep varies the inter-task queue capacity
//! under the most aggressive configuration (1 °C threshold, high-performance
//! package) and reports misses and the minimum queue level reached.

use tbp_core::experiments::queue_capacity_sweep_spec;

fn main() {
    let spec = queue_capacity_sweep_spec(tbp_bench::measured_duration());
    let Some(batch) = tbp_bench::run_cli("queue sweep", std::slice::from_ref(&spec)) else {
        return;
    };
    if tbp_bench::emit_structured(&batch) {
        return;
    }
    let rows: Vec<Vec<String>> = batch
        .reports
        .iter()
        .filter_map(|report| {
            let summary = report.summary()?;
            Some(vec![
                format!("{}", report.queue_capacity.unwrap_or(0)),
                format!("{}", summary.qos.deadline_misses),
                format!("{}", summary.qos.min_queue_level),
                format!("{:.1}", summary.qos.mean_queue_level),
                format!("{}", summary.migration.migrations),
            ])
        })
        .collect();
    tbp_bench::print_table(
        "Queue capacity sweep (thermal balancing, 1 °C threshold, high-performance package)",
        &[
            "queue size [frames]",
            "deadline misses",
            "min queue level",
            "mean queue level",
            "migrations",
        ],
        &rows,
    );
}
