//! Narrative experiment N3: minimum queue size sustaining thermal balancing.
//!
//! The paper observes that the average queue level does not change because of
//! migration and that a queue size of 11 frames was sufficient to sustain the
//! policy without QoS impact. This sweep varies the inter-task queue capacity
//! under the most aggressive configuration (1 °C threshold, high-performance
//! package) and reports misses and the minimum queue level reached.

use tbp_arch::units::Seconds;
use tbp_core::sim::builder::Workload;
use tbp_core::sim::{SimulationBuilder, SimulationConfig};
use tbp_streaming::pipeline::PipelineConfig;
use tbp_streaming::sdr::SdrBenchmark;
use tbp_thermal::package::Package;

fn main() {
    let duration = tbp_bench::measured_duration();
    let mut rows = Vec::new();
    for queue_capacity in [1usize, 2, 3, 4, 6, 8, 11, 16, 24] {
        let sdr = SdrBenchmark::paper_default().with_pipeline_config(PipelineConfig {
            queue_capacity,
            prefill: queue_capacity / 2,
            ..PipelineConfig::paper_default()
        });
        let mut sim = SimulationBuilder::new()
            .with_package(Package::high_performance())
            .with_workload(Workload::Sdr(sdr))
            .with_threshold(1.0)
            .with_config(SimulationConfig {
                warmup: Seconds::new(3.0),
                metrics_threshold: 1.0,
                ..SimulationConfig::paper_default()
            })
            .build()
            .expect("simulation builds");
        sim.run_for(Seconds::new(3.0) + duration).expect("simulation runs");
        let summary = sim.summary();
        let mean_level = sim.pipeline().map(|p| p.mean_queue_level()).unwrap_or(0.0);
        rows.push(vec![
            format!("{queue_capacity}"),
            format!("{}", summary.qos.deadline_misses),
            format!("{}", summary.qos.min_queue_level),
            format!("{mean_level:.1}"),
            format!("{}", summary.migration.migrations),
        ]);
    }
    tbp_bench::print_table(
        "Queue capacity sweep (thermal balancing, 1 °C threshold, high-performance package)",
        &[
            "queue size [frames]",
            "deadline misses",
            "min queue level",
            "mean queue level",
            "migrations",
        ],
        &rows,
    );
}
