//! Runs every experiment of the paper's evaluation from the declarative
//! scenario files in `scenarios/` and prints the regenerated tables/figures.
//!
//! All tables and figures flow through `ScenarioSpec` + `Runner`: the TOML
//! files expand into a batch of concrete runs that execute in parallel, and
//! the printed tables are pivots of the returned reports. The two trace-based
//! narratives (N1 warm-up, N2 transient) follow, built from the same specs.
//!
//! * `TBP_DURATION=<seconds>` shortens/lengthens the measured window.
//! * `--json` / `--csv` (or `TBP_FORMAT`) emit the structured batch report.
//! * `TBP_SCENARIOS=<dir>` points at an alternative scenario directory.
//! * `--cache-dir <dir>` (or `TBP_CACHE_DIR`) memoizes run reports by
//!   content hash: a warm re-run performs zero simulations.
//! * `--shard i/k` executes the i-th of k contiguous slices of the batch and
//!   prints a partial report (JSON) on stdout; `--merge <file>...` merges
//!   such partials back into the full batch (byte-identical to a
//!   single-process run) and renders it.

use tbp_arch::units::{Celsius, Seconds};
use tbp_core::experiments::{paper_scenarios, ExperimentConfig, PolicyKind};
use tbp_core::scenario::{BatchReport, RunReport, ScenarioSpec};
use tbp_thermal::package::PackageKind;

fn main() {
    let duration = tbp_bench::measured_duration();
    let specs = load_specs(duration);
    let cli = tbp_bench::batch_cli();
    let Some(batch) = tbp_bench::run_cli_with(&cli, "paper batch", &specs) else {
        return; // shard mode: the partial report went to stdout
    };
    if tbp_bench::emit_structured(&batch) {
        return;
    }
    for spec in &specs {
        print_group(spec, &batch);
    }
    // The two trace-based narratives step their simulations directly, so they
    // are neither shardable nor part of a merged batch — skip them when this
    // invocation only reassembles partial reports.
    if !cli.is_merge() {
        warmup_and_transient();
    }
}

/// Loads the scenario files, falling back to the built-in constructors when
/// the directory is missing (e.g. when the binary runs outside the repo).
fn load_specs(duration: Seconds) -> Vec<ScenarioSpec> {
    let dir = tbp_bench::scenarios_dir();
    match tbp_core::scenario::load_dir(&dir) {
        Ok(specs) if !specs.is_empty() => specs
            .into_iter()
            .map(|spec| {
                if spec.analysis.is_some() {
                    spec
                } else {
                    tbp_bench::override_duration(spec, duration)
                }
            })
            .collect(),
        Ok(_) => {
            eprintln!(
                "note: no scenario files under {}; using built-in specs",
                dir.display()
            );
            paper_scenarios(duration)
        }
        // A present-but-broken scenario file is an error, not a fallback:
        // silently ignoring it would run something other than what the user
        // pointed at.
        Err(error) => {
            if dir.is_dir() {
                panic!("failed to load scenarios from {}: {error}", dir.display());
            }
            eprintln!(
                "note: no scenario directory at {}; using built-in specs",
                dir.display()
            );
            paper_scenarios(duration)
        }
    }
}

/// Renders the reports of one scenario with the pivot its figure uses.
fn print_group(spec: &ScenarioSpec, batch: &BatchReport) {
    let reports = batch.group(&spec.name);
    if reports.is_empty() {
        return;
    }
    if let Some(table) = reports[0].table() {
        tbp_bench::print_table_report(table);
        return;
    }
    match spec.name.as_str() {
        "threshold-sweep-mobile" => print_sweep_figures(&reports, "mobile embedded", 7, 8),
        "threshold-sweep-hiperf" => print_sweep_figures(&reports, "high-performance", 9, 10),
        "migration-rate" => print_migration_rate(&reports),
        "queue-capacity" => print_queue_capacity(&reports),
        _ => tbp_bench::print_table(
            &spec.name,
            &tbp_bench::SUMMARY_HEADER,
            &tbp_bench::summary_rows(&reports),
        ),
    }
}

fn print_sweep_figures(reports: &[&RunReport], package: &str, sigma_fig: u32, miss_fig: u32) {
    let mut header = vec!["threshold [°C]"];
    let policies = tbp_bench::policy_columns(reports);
    header.extend(policies.iter().copied());
    let sigma_rows = tbp_bench::pivot_threshold_policy(reports, |r| {
        r.summary().map_or(f64::NAN, |s| s.mean_spatial_std_dev())
    });
    tbp_bench::print_table(
        &format!("Figure {sigma_fig} — temperature σ [°C] vs threshold ({package} package)"),
        &header,
        &sigma_rows,
    );
    let miss_rows = tbp_bench::pivot_threshold_policy(reports, |r| {
        r.summary()
            .map_or(f64::NAN, |s| s.qos.deadline_misses as f64)
    });
    tbp_bench::print_table(
        &format!("Figure {miss_fig} — deadline misses vs threshold ({package} package)"),
        &header,
        &miss_rows,
    );
}

fn print_migration_rate(reports: &[&RunReport]) {
    let of_package = |package: PackageKind| -> Vec<&RunReport> {
        reports
            .iter()
            .copied()
            .filter(|r| r.package == Some(package))
            .collect()
    };
    let mobile = of_package(PackageKind::MobileEmbedded);
    let hiperf = of_package(PackageKind::HighPerformance);
    let rows: Vec<Vec<String>> = mobile
        .iter()
        .zip(&hiperf)
        .map(|(m, h)| {
            let ms = m.summary().expect("simulation report");
            let hs = h.summary().expect("simulation report");
            vec![
                format!("{:.0}", m.threshold.unwrap_or(f64::NAN)),
                format!("{:.2}", ms.migrations_per_second()),
                format!("{:.0}", ms.migrated_kib_per_second()),
                format!("{:.2}", hs.migrations_per_second()),
                format!("{:.0}", hs.migrated_kib_per_second()),
            ]
        })
        .collect();
    tbp_bench::print_table(
        "Figure 11 — migrations per second vs threshold (thermal balancing policy)",
        &[
            "threshold [°C]",
            "mobile [1/s]",
            "mobile [KiB/s]",
            "high-perf [1/s]",
            "high-perf [KiB/s]",
        ],
        &rows,
    );
}

fn print_queue_capacity(reports: &[&RunReport]) {
    let rows: Vec<Vec<String>> = reports
        .iter()
        .filter_map(|r| {
            let s = r.summary()?;
            Some(vec![
                format!("{}", r.queue_capacity.unwrap_or(0)),
                format!("{}", s.qos.deadline_misses),
                format!("{}", s.qos.min_queue_level),
                format!("{:.1}", s.qos.mean_queue_level),
                format!("{}", s.migration.migrations),
            ])
        })
        .collect();
    tbp_bench::print_table(
        "Queue capacity sweep (thermal balancing, 1 °C threshold, high-performance package)",
        &[
            "queue size [frames]",
            "deadline misses",
            "min queue level",
            "mean queue level",
            "migrations",
        ],
        &rows,
    );
}

fn spread_of(temps: &[Celsius]) -> f64 {
    temps
        .iter()
        .map(|c| c.as_celsius())
        .fold(f64::MIN, f64::max)
        - temps
            .iter()
            .map(|c| c.as_celsius())
            .fold(f64::MAX, f64::min)
}

/// The two trace-based narratives; they need intermediate temperatures, so
/// they build their simulations from specs and step them directly.
fn warmup_and_transient() {
    // N1: warm-up gradient.
    let mut sim = tbp_core::experiments::warmup_gradient_spec()
        .build()
        .expect("warm-up sim builds");
    sim.run_for(Seconds::new(12.5)).expect("warm-up runs");
    let temps = sim.core_temperatures();
    println!("\n== Narrative N1 — DVFS-only warm-up (12.5 s, mobile package) ==");
    println!(
        "core temperatures: {:.1} / {:.1} / {:.1} °C, gradient {:.1} °C (paper: ~10 °C)",
        temps[0].as_celsius(),
        temps[1].as_celsius(),
        temps[2].as_celsius(),
        spread_of(&temps)
    );

    // N2: balancing transient after enabling the policy at 3 °C.
    let config = ExperimentConfig {
        package: PackageKind::MobileEmbedded,
        policy: PolicyKind::ThermalBalancing,
        threshold: 3.0,
        warmup: Seconds::new(12.5),
        duration: Seconds::new(10.0),
    };
    let mut sim = config
        .to_spec("balance-transient")
        .build()
        .expect("transient sim builds");
    sim.run_for(Seconds::new(12.5)).expect("warm-up runs");
    let spread_before = spread_of(&sim.core_temperatures());
    let mut balanced_after = None;
    let mut above_time = 0.0;
    let step = 0.1;
    let mut t = 0.0;
    while t < 10.0 {
        sim.run_for(Seconds::new(step)).expect("transient runs");
        t += step;
        let temps = sim.core_temperatures();
        let mean = temps.iter().map(|c| c.as_celsius()).sum::<f64>() / temps.len() as f64;
        let max = temps
            .iter()
            .map(|c| c.as_celsius())
            .fold(f64::MIN, f64::max);
        if max > mean + 3.0 {
            above_time += step;
        }
        if balanced_after.is_none() && spread_of(&temps) <= 2.0 * 3.0 {
            balanced_after = Some(t);
        }
    }
    println!("\n== Narrative N2 — balancing transient (threshold 3 °C, mobile package) ==");
    println!(
        "spread before enabling the policy: {spread_before:.1} °C; balanced (spread ≤ 6 °C) after {} s (paper: < 1 s); time above upper threshold {above_time:.1} s (paper: < 0.4 s)",
        balanced_after
            .map(|t| format!("{t:.1}"))
            .unwrap_or_else(|| "more than 10".into()),
    );
    let summary = sim.summary();
    println!(
        "migrations during the transient: {} ({} KiB)",
        summary.migration.migrations,
        summary.migration.bytes.as_kib()
    );
}
