//! Runs every experiment of the paper's evaluation section in sequence and
//! prints the regenerated tables/figures. `EXPERIMENTS.md` records the output
//! of this binary next to the paper's reported values.
//!
//! Run with `TBP_DURATION=<seconds>` to shorten or lengthen the measured
//! window (default 20 s of simulated time per configuration).

use tbp_arch::core::CoreId;
use tbp_arch::freq::{Frequency, OperatingPoint, Voltage};
use tbp_arch::power::{ComponentKind, CoreClass, PowerModel};
use tbp_arch::units::{Bytes, Celsius, Seconds};
use tbp_core::experiments::{
    build_sdr_simulation, run_migration_rate_sweep, run_threshold_sweep, ExperimentConfig,
    PolicyKind,
};
use tbp_os::migration::{MigrationCostModel, MigrationStrategy};
use tbp_streaming::pipeline::PipelineConfig;
use tbp_streaming::sdr::SdrBenchmark;
use tbp_thermal::package::PackageKind;

fn main() {
    let duration = tbp_bench::measured_duration();
    table1_power();
    table2_mapping();
    fig2_migration_cost();
    let mobile = tbp_bench::timed("mobile sweep", || {
        run_threshold_sweep(PackageKind::MobileEmbedded, duration).expect("mobile sweep")
    });
    let hiperf = tbp_bench::timed("high-performance sweep", || {
        run_threshold_sweep(PackageKind::HighPerformance, duration).expect("hi-perf sweep")
    });
    print_sweep_figures(&mobile, "mobile embedded", 7, 8);
    print_sweep_figures(&hiperf, "high-performance", 9, 10);
    fig11_migrations(duration);
    warmup_and_transient();
    queue_size_sweep(duration);
}

fn table1_power() {
    let model = PowerModel::new();
    let reference = OperatingPoint::new(Frequency::from_mhz(500.0), Voltage::new(1.2));
    let t = Celsius::new(60.0);
    let rows = vec![
        (
            "RISC32-streaming (Conf1)".to_string(),
            model
                .core_power(CoreClass::Risc32Streaming, reference, 1.0, t)
                .expect("valid utilization"),
        ),
        (
            "RISC32-ARM11 (Conf2)".to_string(),
            model
                .core_power(CoreClass::Risc32Arm11, reference, 1.0, t)
                .expect("valid utilization"),
        ),
        (
            "DCache 8kB/2way".to_string(),
            model
                .component_power(ComponentKind::DCache, reference, 1.0, t)
                .expect("valid utilization"),
        ),
        (
            "ICache 8kB/DM".to_string(),
            model
                .component_power(ComponentKind::ICache, reference, 1.0, t)
                .expect("valid utilization"),
        ),
        (
            "Memory 32kB".to_string(),
            model
                .component_power(ComponentKind::Memory32k, reference, 1.0, t)
                .expect("valid utilization"),
        ),
    ];
    let rows: Vec<Vec<String>> = rows
        .into_iter()
        .map(|(name, power)| vec![name, format!("{power}")])
        .collect();
    tbp_bench::print_table(
        "Table 1 — component power at 500 MHz (0.09 µm)",
        &["component", "max power"],
        &rows,
    );
}

fn table2_mapping() {
    let sdr = SdrBenchmark::paper_default();
    let rows: Vec<Vec<String>> = sdr
        .mapping()
        .iter()
        .map(|entry| {
            vec![
                format!("Core {} ({:.0} MHz)", entry.core.index() + 1, entry.core_frequency_mhz),
                entry.name.clone(),
                format!("{:.1}", entry.load_percent),
                format!("{:.3}", entry.fse_load()),
            ]
        })
        .collect();
    tbp_bench::print_table(
        "Table 2 — SDR application mapping",
        &["core / freq.", "task", "load [%]", "FSE load"],
        &rows,
    );
}

fn fig2_migration_cost() {
    let model = MigrationCostModel::paper_default();
    let sizes_kib = [64u64, 128, 192, 256, 384, 512, 768, 1024];
    let rows: Vec<Vec<String>> = sizes_kib
        .iter()
        .map(|&kib| {
            let size = Bytes::from_kib(kib);
            let repl = model.cycles(MigrationStrategy::TaskReplication, size);
            let recr = model.cycles(MigrationStrategy::TaskRecreation, size);
            vec![
                format!("{kib}"),
                format!("{:.0}", repl / 1e3),
                format!("{:.0}", recr / 1e3),
                format!("{:.2}", recr / repl),
            ]
        })
        .collect();
    tbp_bench::print_table(
        "Figure 2 — migration cost vs task size (kcycles)",
        &["task size [KiB]", "replication", "re-creation", "ratio"],
        &rows,
    );
}

fn print_sweep_figures(
    points: &[tbp_core::experiments::SweepPoint],
    package: &str,
    sigma_fig: u32,
    miss_fig: u32,
) {
    let sigma_rows = tbp_bench::sweep_table(points, |p| p.summary.mean_spatial_std_dev());
    tbp_bench::print_table(
        &format!("Figure {sigma_fig} — temperature σ [°C] vs threshold ({package} package)"),
        &["threshold [°C]", "thermal-balancing", "stop-and-go", "energy-balancing"],
        &sigma_rows,
    );
    let miss_rows = tbp_bench::sweep_table(points, |p| p.summary.qos.deadline_misses as f64);
    tbp_bench::print_table(
        &format!("Figure {miss_fig} — deadline misses vs threshold ({package} package)"),
        &["threshold [°C]", "thermal-balancing", "stop-and-go", "energy-balancing"],
        &miss_rows,
    );
}

fn fig11_migrations(duration: Seconds) {
    let points = tbp_bench::timed("fig11", || {
        run_migration_rate_sweep(duration).expect("fig11 sweep")
    });
    // First half is mobile, second half high-performance (see experiments.rs).
    let half = points.len() / 2;
    let rows: Vec<Vec<String>> = (0..half)
        .map(|i| {
            vec![
                format!("{:.0}", points[i].threshold),
                format!("{:.2}", points[i].summary.migrations_per_second()),
                format!("{:.2}", points[half + i].summary.migrations_per_second()),
                format!("{:.0}", points[half + i].summary.migrated_kib_per_second()),
            ]
        })
        .collect();
    tbp_bench::print_table(
        "Figure 11 — migrations per second vs threshold",
        &[
            "threshold [°C]",
            "mobile [1/s]",
            "high-perf [1/s]",
            "high-perf [KiB/s]",
        ],
        &rows,
    );
}

fn warmup_and_transient() {
    // N1: warm-up gradient.
    let warm_cfg = ExperimentConfig {
        package: PackageKind::MobileEmbedded,
        policy: PolicyKind::DvfsOnly,
        threshold: 3.0,
        warmup: Seconds::new(0.0),
        duration: Seconds::new(12.5),
    };
    let mut sim = build_sdr_simulation(&warm_cfg).expect("warm-up sim builds");
    sim.run_for(Seconds::new(12.5)).expect("warm-up runs");
    let temps = sim.core_temperatures();
    let spread = temps.iter().map(|c| c.as_celsius()).fold(f64::MIN, f64::max)
        - temps.iter().map(|c| c.as_celsius()).fold(f64::MAX, f64::min);
    println!("\n== Narrative N1 — DVFS-only warm-up (12.5 s, mobile package) ==");
    println!(
        "core temperatures: {:.1} / {:.1} / {:.1} °C, gradient {spread:.1} °C (paper: ~10 °C)",
        temps[0].as_celsius(),
        temps[1].as_celsius(),
        temps[2].as_celsius()
    );

    // N2: balancing transient after enabling the policy at 3 °C.
    let cfg = ExperimentConfig {
        package: PackageKind::MobileEmbedded,
        policy: PolicyKind::ThermalBalancing,
        threshold: 3.0,
        warmup: Seconds::new(12.5),
        duration: Seconds::new(10.0),
    };
    let mut sim = build_sdr_simulation(&cfg).expect("transient sim builds");
    sim.run_for(Seconds::new(12.5)).expect("warm-up runs");
    let spread_before = spread_of(&sim.core_temperatures());
    // Find how long it takes for the spread to fall inside 2*threshold.
    let mut balanced_after = None;
    let mut above_time = 0.0;
    let step = 0.1;
    let mut t = 0.0;
    while t < 10.0 {
        sim.run_for(Seconds::new(step)).expect("transient runs");
        t += step;
        let temps = sim.core_temperatures();
        let mean = temps.iter().map(|c| c.as_celsius()).sum::<f64>() / temps.len() as f64;
        let max = temps.iter().map(|c| c.as_celsius()).fold(f64::MIN, f64::max);
        if max > mean + 3.0 {
            above_time += step;
        }
        if balanced_after.is_none() && spread_of(&temps) <= 2.0 * 3.0 {
            balanced_after = Some(t);
        }
    }
    println!("\n== Narrative N2 — balancing transient (threshold 3 °C, mobile package) ==");
    println!(
        "spread before enabling the policy: {spread_before:.1} °C; balanced (spread ≤ 6 °C) after {} s (paper: < 1 s); time above upper threshold {above_time:.1} s (paper: < 0.4 s)",
        balanced_after
            .map(|t| format!("{t:.1}"))
            .unwrap_or_else(|| "more than 10".into()),
    );
    let summary = sim.summary();
    println!(
        "migrations during the transient: {} ({} KiB)",
        summary.migration.migrations,
        summary.migration.bytes.as_kib()
    );
}

fn spread_of(temps: &[Celsius]) -> f64 {
    temps.iter().map(|c| c.as_celsius()).fold(f64::MIN, f64::max)
        - temps.iter().map(|c| c.as_celsius()).fold(f64::MAX, f64::min)
}

fn queue_size_sweep(duration: Seconds) {
    println!("\n== Narrative N3 — minimum queue size sustaining thermal balancing ==");
    let mut rows = Vec::new();
    for queue_capacity in [1usize, 2, 3, 5, 8, 11, 16] {
        let sdr = SdrBenchmark::paper_default().with_pipeline_config(PipelineConfig {
            queue_capacity,
            prefill: queue_capacity / 2,
            ..PipelineConfig::paper_default()
        });
        let mut sim = tbp_core::sim::SimulationBuilder::new()
            .with_package(tbp_thermal::package::Package::high_performance())
            .with_workload(tbp_core::sim::builder::Workload::Sdr(sdr))
            .with_threshold(1.0)
            .with_config(tbp_core::sim::SimulationConfig {
                warmup: Seconds::new(3.0),
                metrics_threshold: 1.0,
                ..tbp_core::sim::SimulationConfig::paper_default()
            })
            .build()
            .expect("queue sweep sim builds");
        sim.run_for(Seconds::new(3.0) + duration).expect("queue sweep runs");
        let summary = sim.summary();
        rows.push(vec![
            format!("{queue_capacity}"),
            format!("{}", summary.qos.deadline_misses),
            format!("{}", summary.qos.min_queue_level),
            format!("{}", summary.migration.migrations),
        ]);
    }
    tbp_bench::print_table(
        "queue capacity sweep (thermal balancing, 1 °C threshold, high-performance package)",
        &["queue size [frames]", "deadline misses", "min queue level", "migrations"],
        &rows,
    );
    let _ = CoreId(0);
}
