//! Table 1: maximum power of the emulated components at 500 MHz (0.09 µm)
//! and the scaled 266 MHz point, via the Scenario API's analytic table
//! support.

use tbp_core::experiments::table1_power_spec;

fn main() {
    let Some(batch) = tbp_bench::run_cli("table1", &[table1_power_spec()]) else {
        return;
    };
    if tbp_bench::emit_structured(&batch) {
        return;
    }
    tbp_bench::print_table_report(batch.reports[0].table().expect("analytic outcome"));
}
