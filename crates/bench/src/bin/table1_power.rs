//! Table 1: maximum power of the emulated components at 500 MHz (0.09 µm)
//! and the scaled 266 MHz point, via the Scenario API's analytic table
//! support.

use tbp_core::experiments::table1_power_spec;
use tbp_core::scenario::Runner;

fn main() {
    let batch = Runner::new()
        .run_spec(&table1_power_spec())
        .expect("analytic scenario runs");
    if tbp_bench::emit_structured(&batch) {
        return;
    }
    tbp_bench::print_table_report(batch.reports[0].table().expect("analytic outcome"));
}
