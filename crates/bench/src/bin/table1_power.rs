//! Table 1: maximum power of the emulated components at 500 MHz (0.09 µm),
//! plus the derived dynamic/leakage split and DVFS scaling the simulator
//! actually uses.

use tbp_arch::freq::{Frequency, OperatingPoint, Voltage};
use tbp_arch::power::{ComponentKind, CoreClass, PowerModel};
use tbp_arch::units::{Celsius, Watts};

fn main() {
    let model = PowerModel::new();
    let reference = OperatingPoint::new(Frequency::from_mhz(500.0), Voltage::new(1.2));
    let half = OperatingPoint::new(Frequency::from_mhz(266.0), Voltage::new(1.0));
    let t = Celsius::new(60.0);

    let components: Vec<(String, Watts, Watts)> = vec![
        (
            "RISC32-streaming (Conf1)".into(),
            model.core_power(CoreClass::Risc32Streaming, reference, 1.0, t).expect("valid"),
            model.core_power(CoreClass::Risc32Streaming, half, 1.0, t).expect("valid"),
        ),
        (
            "RISC32-ARM11 (Conf2)".into(),
            model.core_power(CoreClass::Risc32Arm11, reference, 1.0, t).expect("valid"),
            model.core_power(CoreClass::Risc32Arm11, half, 1.0, t).expect("valid"),
        ),
        (
            "DCache 8kB/2way".into(),
            model.component_power(ComponentKind::DCache, reference, 1.0, t).expect("valid"),
            model.component_power(ComponentKind::DCache, half, 1.0, t).expect("valid"),
        ),
        (
            "ICache 8kB/DM".into(),
            model.component_power(ComponentKind::ICache, reference, 1.0, t).expect("valid"),
            model.component_power(ComponentKind::ICache, half, 1.0, t).expect("valid"),
        ),
        (
            "Memory 32kB".into(),
            model.component_power(ComponentKind::Memory32k, reference, 1.0, t).expect("valid"),
            model.component_power(ComponentKind::Memory32k, half, 1.0, t).expect("valid"),
        ),
    ];
    let rows: Vec<Vec<String>> = components
        .into_iter()
        .map(|(name, max, scaled)| vec![name, format!("{max}"), format!("{scaled}")])
        .collect();
    tbp_bench::print_table(
        "Table 1 — component power in 0.09 µm CMOS",
        &["component", "max power @500 MHz/1.2 V", "power @266 MHz/1.0 V"],
        &rows,
    );
}
