//! Joins a distributed sweep: lease-taking worker over TCP.
//!
//! Loads the same scenario files as the coordinator (the handshake verifies
//! agreement via the batch content digest), connects, and runs leased
//! scenarios through the ordinary runner — with the same `--cache-dir` /
//! `--lanes` configuration a local `run_scenario` would use, so results are
//! byte-identical and a crashed worker's completed scenarios are free on
//! re-execution:
//!
//! ```sh
//! cargo run --release -p tbp-bench --bin sweep_worker -- \
//!     scenarios/90_dag_sweep.toml --connect 127.0.0.1:4750 --cache-dir .tbp-cache
//! ```
//!
//! Flags:
//!
//! * `--connect <host:port>` (required) — the coordinator's address.
//! * `--cache-dir <dir>` / `--lanes <n>` — runner configuration, exactly as
//!   in `run_scenario`.
//! * `--name <s>` — worker name in coordinator diagnostics (default
//!   `worker`).
//! * `--heartbeat <s>` — heartbeat period while computing or idle (default
//!   0.5; keep well under the coordinator's lease timeout).
//! * `--retries <n>` — consecutive failed connection attempts tolerated
//!   before giving up (default 5); the budget resets after every successful
//!   handshake.
//! * `--backoff-base <ms>` / `--backoff-cap <ms>` — reconnect backoff
//!   envelope (defaults 100 / 5000).
//! * `--seed <n>` — jitter seed; give each worker its own to spread
//!   reconnect stampedes.
//! * `--local-fallback` — when the coordinator stays unreachable through the
//!   whole retry budget, run the entire batch locally instead of failing.
//! * `--fault <spec>` — deterministic fault injection, e.g.
//!   `corrupt=3,kill-at-lease=2` (see `FaultPlan::parse`); `kill-at-lease`
//!   aborts the whole process, exactly like `kill -9`.
//! * `--metrics <file>` / `--metrics-prom <file>` — live `sweepd.worker_*`
//!   (and cache) instruments as JSONL heartbeat / Prometheus dump.

use std::path::PathBuf;
use std::time::Duration;

use tbp_bench::{fail, fail_usage, MetricsOutputs};
use tbp_core::scenario::{CacheMetrics, FsCache, Runner};
use tbp_sweepd::{FaultPlan, Worker, WorkerConfig, WorkerMetrics, WorkerOutcome};

fn main() {
    tbp_bench::exit_cleanly_on_panic();
    let cli = Cli::parse(std::env::args().skip(1));
    let specs = tbp_bench::load_scenarios(&cli.paths);
    let obs = match (&cli.metrics, &cli.metrics_prom) {
        (None, None) => None,
        (metrics, prom) => Some(
            MetricsOutputs::start(metrics.as_deref(), prom.as_deref())
                .unwrap_or_else(|e| fail(format!("cannot create metrics file: {e}"))),
        ),
    };
    let mut runner = Runner::new();
    if let Some(lanes) = cli.lanes {
        runner = runner.with_lanes(lanes);
    }
    if let Some(dir) = &cli.cache_dir {
        let mut cache = FsCache::open(dir)
            .unwrap_or_else(|e| fail(format!("cannot open cache dir {}: {e}", dir.display())));
        if let Some(obs) = &obs {
            cache = cache.with_metrics(CacheMetrics::register(obs.registry()));
        }
        runner = runner.with_cache(cache);
    }
    let config = WorkerConfig {
        name: cli.name,
        heartbeat: cli.heartbeat,
        backoff_base: cli.backoff_base,
        backoff_cap: cli.backoff_cap,
        max_retries: cli.retries,
        seed: cli.seed,
        fault: cli.fault,
        local_fallback: cli.local_fallback,
        ..WorkerConfig::default()
    };
    let mut worker = Worker::new(&cli.connect, &specs, runner, config)
        .unwrap_or_else(|e| fail(format!("cannot prepare worker: {e}")));
    if let Some(obs) = &obs {
        worker = worker.with_metrics(WorkerMetrics::register(obs.registry()));
    }
    match worker.run() {
        Ok(WorkerOutcome::Served { results }) => {
            if let Some(obs) = obs {
                obs.finish();
            }
            eprintln!("[worker] batch complete, delivered {results} results");
        }
        Ok(WorkerOutcome::Killed { at_lease }) => {
            // Crash semantics all the way: no metrics dump, no flushing —
            // the process dies as abruptly as `kill -9` would take it.
            eprintln!("[worker] fault plan kill at lease {at_lease}");
            std::process::abort();
        }
        Ok(WorkerOutcome::Stalled { at_lease }) => {
            if let Some(obs) = obs {
                obs.finish();
            }
            fail(format!("fault plan stalled the worker at lease {at_lease}"));
        }
        Ok(WorkerOutcome::LocalBatch(batch)) => {
            if let Some(obs) = obs {
                obs.finish();
            }
            eprintln!(
                "[worker] coordinator unreachable at {}: ran the batch locally",
                cli.connect
            );
            if tbp_bench::emit_structured(&batch) {
                return;
            }
            for spec in &specs {
                let reports = batch.group(&spec.name);
                if reports.is_empty() {
                    continue;
                }
                if let Some(table) = reports[0].table() {
                    tbp_bench::print_table_report(table);
                } else {
                    tbp_bench::print_table(
                        &spec.name,
                        &tbp_bench::SUMMARY_HEADER,
                        &tbp_bench::summary_rows(&reports),
                    );
                }
            }
        }
        Err(e) => {
            if let Some(obs) = obs {
                obs.finish();
            }
            fail(e);
        }
    }
}

const USAGE: &str = "usage: sweep_worker <scenario.toml>... --connect <host:port> \
                     [--cache-dir <dir>] [--lanes <n>] [--name <s>] [--heartbeat <s>] \
                     [--retries <n>] [--backoff-base <ms>] [--backoff-cap <ms>] [--seed <n>] \
                     [--local-fallback] [--fault <spec>] [--json|--csv] \
                     [--metrics <file>] [--metrics-prom <file>]";

struct Cli {
    paths: Vec<PathBuf>,
    connect: String,
    cache_dir: Option<PathBuf>,
    lanes: Option<usize>,
    name: String,
    heartbeat: Duration,
    retries: u32,
    backoff_base: Duration,
    backoff_cap: Duration,
    seed: u64,
    fault: FaultPlan,
    local_fallback: bool,
    metrics: Option<PathBuf>,
    metrics_prom: Option<PathBuf>,
}

impl Cli {
    fn parse(args: impl Iterator<Item = String>) -> Cli {
        let defaults = WorkerConfig::default();
        let mut cli = Cli {
            paths: Vec::new(),
            connect: String::new(),
            cache_dir: None,
            lanes: None,
            name: defaults.name,
            heartbeat: defaults.heartbeat,
            retries: defaults.max_retries,
            backoff_base: defaults.backoff_base,
            backoff_cap: defaults.backoff_cap,
            seed: defaults.seed,
            fault: FaultPlan::none(),
            local_fallback: false,
            metrics: None,
            metrics_prom: None,
        };
        let mut connect = None;
        let mut args = args;
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--connect" => connect = Some(flag_value(&mut args, "--connect")),
                "--cache-dir" => {
                    cli.cache_dir = Some(PathBuf::from(flag_value(&mut args, "--cache-dir")));
                }
                "--lanes" => {
                    cli.lanes = Some(parse_number(&flag_value(&mut args, "--lanes"), "--lanes"));
                }
                "--name" => cli.name = flag_value(&mut args, "--name"),
                "--heartbeat" => {
                    cli.heartbeat = parse_seconds(&flag_value(&mut args, "--heartbeat"));
                }
                "--retries" => {
                    cli.retries =
                        parse_number::<u32>(&flag_value(&mut args, "--retries"), "--retries");
                }
                "--backoff-base" => {
                    cli.backoff_base = Duration::from_millis(parse_number(
                        &flag_value(&mut args, "--backoff-base"),
                        "--backoff-base",
                    ));
                }
                "--backoff-cap" => {
                    cli.backoff_cap = Duration::from_millis(parse_number(
                        &flag_value(&mut args, "--backoff-cap"),
                        "--backoff-cap",
                    ));
                }
                "--seed" => {
                    cli.seed = parse_number::<u64>(&flag_value(&mut args, "--seed"), "--seed");
                }
                "--fault" => {
                    let spec = flag_value(&mut args, "--fault");
                    cli.fault = FaultPlan::parse(&spec).unwrap_or_else(|e| fail_usage(e));
                }
                "--local-fallback" => cli.local_fallback = true,
                "--metrics" => {
                    cli.metrics = Some(PathBuf::from(flag_value(&mut args, "--metrics")));
                }
                "--metrics-prom" => {
                    cli.metrics_prom = Some(PathBuf::from(flag_value(&mut args, "--metrics-prom")));
                }
                "--json" | "--csv" => {}
                other if other.starts_with("--") => {
                    fail_usage(format!("unknown flag `{other}`\n{USAGE}"))
                }
                other => cli.paths.push(PathBuf::from(other)),
            }
        }
        if cli.paths.is_empty() {
            fail_usage(USAGE);
        }
        let Some(connect) = connect else {
            fail_usage(format!("--connect is required\n{USAGE}"));
        };
        cli.connect = connect;
        cli
    }
}

fn flag_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    match args.next() {
        Some(v) if !v.starts_with("--") => v,
        _ => fail_usage(format!("{flag} needs a value\n{USAGE}")),
    }
}

fn parse_seconds(value: &str) -> Duration {
    match value.parse::<f64>() {
        Ok(secs) if secs.is_finite() && secs > 0.0 => Duration::from_secs_f64(secs),
        _ => fail_usage(format!(
            "expected a positive duration in seconds, got `{value}`"
        )),
    }
}

fn parse_number<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| fail_usage(format!("{flag} needs a number, got `{value}`")))
}
