//! Figure 9: temperature standard deviation vs. threshold for the three
//! policies on the high-performance package (6× faster thermal dynamics),
//! via the Scenario API.
//!
//! Expected shape (paper): energy balancing performs very poorly; the
//! modified Stop&Go achieves a lower deviation than the thermal balancing
//! policy (it pins the hot core harder) but at the price of many more
//! deadline misses (Figure 10).

use tbp_core::experiments::threshold_sweep_spec;
use tbp_thermal::package::PackageKind;

fn main() {
    let spec = threshold_sweep_spec(PackageKind::HighPerformance, tbp_bench::measured_duration());
    let Some(batch) = tbp_bench::run_cli("fig9", std::slice::from_ref(&spec)) else {
        return;
    };
    if tbp_bench::emit_structured(&batch) {
        return;
    }
    let reports = batch.group(&spec.name);
    let mut header = vec!["threshold [°C]"];
    header.extend(tbp_bench::policy_columns(&reports));
    let rows = tbp_bench::pivot_threshold_policy(&reports, |r| {
        r.summary().map_or(f64::NAN, |s| s.mean_spatial_std_dev())
    });
    tbp_bench::print_table(
        "Figure 9 — temperature σ [°C] vs threshold (high-performance package)",
        &header,
        &rows,
    );
}
