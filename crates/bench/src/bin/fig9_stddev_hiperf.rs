//! Figure 9: temperature standard deviation vs. threshold for the three
//! policies on the high-performance package (6× faster thermal dynamics).
//!
//! Expected shape (paper): energy balancing performs very poorly; the
//! modified Stop&Go achieves a lower deviation than the thermal balancing
//! policy (it pins the hot core harder) but at the price of many more
//! deadline misses (Figure 10).

use tbp_core::experiments::run_threshold_sweep;
use tbp_thermal::package::PackageKind;

fn main() {
    let duration = tbp_bench::measured_duration();
    let points = tbp_bench::timed("fig9", || {
        run_threshold_sweep(PackageKind::HighPerformance, duration).expect("sweep runs")
    });
    let rows = tbp_bench::sweep_table(&points, |p| p.summary.mean_spatial_std_dev());
    tbp_bench::print_table(
        "Figure 9 — temperature σ [°C] vs threshold (high-performance package)",
        &["threshold [°C]", "thermal-balancing", "stop-and-go", "energy-balancing"],
        &rows,
    );
}
