//! Figure 2: migration cost (processor cycles) as a function of the task size
//! for the task-replication and task-recreation back-ends.
//!
//! Expected shape (paper): recreation sits above replication by a roughly
//! constant offset (code reload from the file system) and has a larger slope
//! that grows with the task size (bus contention).

use tbp_arch::units::Bytes;
use tbp_os::migration::{MigrationCostModel, MigrationStrategy};

fn main() {
    let model = MigrationCostModel::paper_default();
    let sizes_kib = [64u64, 96, 128, 192, 256, 384, 512, 640, 768, 896, 1024];
    let rows: Vec<Vec<String>> = sizes_kib
        .iter()
        .map(|&kib| {
            let size = Bytes::from_kib(kib);
            let repl = model.cycles(MigrationStrategy::TaskReplication, size);
            let recr = model.cycles(MigrationStrategy::TaskRecreation, size);
            let repl_slope = model.slope_at(MigrationStrategy::TaskReplication, size);
            let recr_slope = model.slope_at(MigrationStrategy::TaskRecreation, size);
            vec![
                format!("{kib}"),
                format!("{:.0}", repl / 1e3),
                format!("{:.0}", recr / 1e3),
                format!("{repl_slope:.2}"),
                format!("{recr_slope:.2}"),
            ]
        })
        .collect();
    tbp_bench::print_table(
        "Figure 2 — migration cost vs task size",
        &[
            "task size [KiB]",
            "replication [kcycles]",
            "re-creation [kcycles]",
            "repl. slope [cyc/B]",
            "recr. slope [cyc/B]",
        ],
        &rows,
    );
    println!(
        "\nReplication of the 64 KiB minimum transfer costs {:.2} ms of CPU time at 500 MHz.",
        model.cycles(MigrationStrategy::TaskReplication, Bytes::from_kib(64)) / 500e6 * 1e3
    );
}
