//! Figure 2: migration cost (processor cycles) as a function of the task size
//! for the task-replication and task-recreation back-ends, via the Scenario
//! API's analytic table support.
//!
//! Expected shape (paper): recreation sits above replication by a roughly
//! constant offset (code reload from the file system) and has a larger slope
//! that grows with the task size (bus contention).

use tbp_arch::units::Bytes;
use tbp_core::experiments::fig2_migration_cost_spec;
use tbp_os::migration::{MigrationCostModel, MigrationStrategy};

fn main() {
    let Some(batch) = tbp_bench::run_cli("fig2", &[fig2_migration_cost_spec()]) else {
        return;
    };
    if tbp_bench::emit_structured(&batch) {
        return;
    }
    tbp_bench::print_table_report(batch.reports[0].table().expect("analytic outcome"));
    let model = MigrationCostModel::paper_default();
    println!(
        "\nReplication of the 64 KiB minimum transfer costs {:.2} ms of CPU time at 500 MHz.",
        model.cycles(MigrationStrategy::TaskReplication, Bytes::from_kib(64)) / 500e6 * 1e3
    );
}
