//! Table 2: the SDR task set, its initial (energy-balanced) mapping onto the
//! three cores and the frequency the DVFS governor actually picks for that
//! mapping.

use tbp_arch::core::CoreId;
use tbp_arch::freq::DvfsScale;
use tbp_os::governor::DvfsGovernor;
use tbp_streaming::sdr::SdrBenchmark;

fn main() {
    let sdr = SdrBenchmark::paper_default();
    let rows: Vec<Vec<String>> = sdr
        .mapping()
        .iter()
        .map(|entry| {
            vec![
                format!(
                    "Core {} ({:.0} MHz)",
                    entry.core.index() + 1,
                    entry.core_frequency_mhz
                ),
                entry.name.clone(),
                format!("{:.1}", entry.load_percent),
                format!("{:.3}", entry.fse_load()),
            ]
        })
        .collect();
    tbp_bench::print_table(
        "Table 2 — SDR application mapping",
        &["core / freq.", "task", "load [%]", "FSE load"],
        &rows,
    );

    // Per-core totals plus the frequency the governor would select.
    let governor = DvfsGovernor::new(DvfsScale::paper_default());
    let rows: Vec<Vec<String>> = (0..3)
        .map(|core| {
            let fse: f64 = sdr
                .mapping()
                .iter()
                .filter(|e| e.core == CoreId(core))
                .map(|e| e.fse_load())
                .sum();
            let util: f64 = sdr
                .mapping()
                .iter()
                .filter(|e| e.core == CoreId(core))
                .map(|e| e.load_percent)
                .sum();
            vec![
                format!("Core {}", core + 1),
                format!("{util:.1}"),
                format!("{fse:.3}"),
                format!("{}", governor.frequency_for(fse)),
            ]
        })
        .collect();
    tbp_bench::print_table(
        "Per-core totals and governor frequency selection",
        &["core", "Table 2 load [%]", "total FSE", "governor frequency"],
        &rows,
    );
}
