//! Table 2: the SDR task set, its initial (energy-balanced) mapping onto the
//! three cores and the frequency the DVFS governor actually picks for that
//! mapping, via the Scenario API's analytic table support.

use tbp_arch::core::CoreId;
use tbp_arch::freq::DvfsScale;
use tbp_core::experiments::table2_mapping_spec;
use tbp_os::governor::DvfsGovernor;
use tbp_streaming::sdr::SdrBenchmark;

fn main() {
    let Some(batch) = tbp_bench::run_cli("table2", &[table2_mapping_spec()]) else {
        return;
    };
    if tbp_bench::emit_structured(&batch) {
        return;
    }
    tbp_bench::print_table_report(batch.reports[0].table().expect("analytic outcome"));

    // Per-core totals plus the frequency the governor would select.
    let sdr = SdrBenchmark::paper_default();
    let governor = DvfsGovernor::new(DvfsScale::paper_default());
    let rows: Vec<Vec<String>> = (0..3)
        .map(|core| {
            let fse: f64 = sdr
                .mapping()
                .iter()
                .filter(|e| e.core == CoreId(core))
                .map(|e| e.fse_load())
                .sum();
            let util: f64 = sdr
                .mapping()
                .iter()
                .filter(|e| e.core == CoreId(core))
                .map(|e| e.load_percent)
                .sum();
            vec![
                format!("Core {}", core + 1),
                format!("{util:.1}"),
                format!("{fse:.3}"),
                format!("{}", governor.frequency_for(fse)),
            ]
        })
        .collect();
    tbp_bench::print_table(
        "Per-core totals and governor frequency selection",
        &[
            "core",
            "Table 2 load [%]",
            "total FSE",
            "governor frequency",
        ],
        &rows,
    );
}
