//! Narrative experiment N2: the transient after enabling the policy, built
//! from a scenario spec.
//!
//! The paper reports that after the unbalanced warm-up, enabling the
//! migration-based policy with a ±3 °C band balances the temperatures of all
//! cores within one second of SDR execution, and that the hottest core stays
//! above the upper threshold for less than 400 ms.

use tbp_arch::units::{Celsius, Seconds};
use tbp_core::scenario::ScenarioSpec;
use tbp_thermal::package::PackageKind;

fn spread(temps: &[Celsius]) -> f64 {
    temps
        .iter()
        .map(|c| c.as_celsius())
        .fold(f64::MIN, f64::max)
        - temps
            .iter()
            .map(|c| c.as_celsius())
            .fold(f64::MAX, f64::min)
}

fn main() {
    let threshold = 3.0;
    let spec = ScenarioSpec::new("balance-transient")
        .with_package(PackageKind::MobileEmbedded)
        .with_policy("thermal-balancing", threshold)
        .with_schedule(12.5, 10.0);
    let mut sim = spec.build().expect("simulation builds");
    sim.run_for(Seconds::new(12.5)).expect("warm-up runs");
    let before = sim.core_temperatures();
    println!(
        "After the 12.5 s DVFS-only warm-up: {:.1} / {:.1} / {:.1} °C (spread {:.1} °C)",
        before[0].as_celsius(),
        before[1].as_celsius(),
        before[2].as_celsius(),
        spread(&before)
    );

    let mut rows = Vec::new();
    let mut balanced_at = None;
    let mut above_time = 0.0;
    let step = 0.05;
    let mut t = 0.0;
    while t < 10.0 {
        sim.run_for(Seconds::new(step)).expect("transient runs");
        t += step;
        let temps = sim.core_temperatures();
        let mean = temps.iter().map(|c| c.as_celsius()).sum::<f64>() / temps.len() as f64;
        let max = temps
            .iter()
            .map(|c| c.as_celsius())
            .fold(f64::MIN, f64::max);
        if max > mean + threshold {
            above_time += step;
        }
        if balanced_at.is_none() && spread(&temps) <= 2.0 * threshold {
            balanced_at = Some(t);
        }
        if ((t * 20.0).round() as u64).is_multiple_of(10) {
            rows.push(vec![
                format!("{t:.1}"),
                format!("{:.2}", temps[0].as_celsius()),
                format!("{:.2}", temps[1].as_celsius()),
                format!("{:.2}", temps[2].as_celsius()),
                format!("{:.2}", spread(&temps)),
            ]);
        }
    }
    tbp_bench::print_table(
        "Balancing transient (threshold 3 °C, mobile package)",
        &[
            "t after enable [s]",
            "core0 [°C]",
            "core1 [°C]",
            "core2 [°C]",
            "spread [°C]",
        ],
        &rows[..rows.len().min(12)],
    );
    let summary = sim.summary();
    println!(
        "\nBalanced (spread ≤ {:.0} °C) after {} s   [paper: < 1 s]",
        2.0 * threshold,
        balanced_at
            .map(|t| format!("{t:.2}"))
            .unwrap_or_else(|| "more than 10".into())
    );
    println!("Hottest core above the upper threshold for {above_time:.2} s   [paper: < 0.4 s]");
    println!(
        "Migrations in the measured window: {} ({:.0} KiB moved, {} deadline misses)",
        summary.migration.migrations,
        summary.migration.bytes.as_kib(),
        summary.qos.deadline_misses
    );
}
