//! Figure 7: temperature standard deviation vs. threshold for the three
//! policies on the mobile embedded package.
//!
//! Expected shape (paper): the deviation grows with the threshold; the
//! thermal balancing policy achieves the lowest deviation because it acts on
//! both hot and cold cores, Stop&Go is intermediate, and energy balancing is
//! flat (it never reacts to temperature).

use tbp_core::experiments::run_threshold_sweep;
use tbp_thermal::package::PackageKind;

fn main() {
    let duration = tbp_bench::measured_duration();
    let points = tbp_bench::timed("fig7", || {
        run_threshold_sweep(PackageKind::MobileEmbedded, duration).expect("sweep runs")
    });
    let rows = tbp_bench::sweep_table(&points, |p| p.summary.mean_spatial_std_dev());
    tbp_bench::print_table(
        "Figure 7 — temperature σ [°C] vs threshold (mobile embedded package)",
        &["threshold [°C]", "thermal-balancing", "stop-and-go", "energy-balancing"],
        &rows,
    );
}
