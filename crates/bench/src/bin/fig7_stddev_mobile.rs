//! Figure 7: temperature standard deviation vs. threshold for the three
//! policies on the mobile embedded package, via the Scenario API.
//!
//! Expected shape (paper): the deviation grows with the threshold; the
//! thermal balancing policy achieves the lowest deviation because it acts on
//! both hot and cold cores, Stop&Go is intermediate, and energy balancing is
//! flat (it never reacts to temperature).

use tbp_core::experiments::threshold_sweep_spec;
use tbp_thermal::package::PackageKind;

fn main() {
    let spec = threshold_sweep_spec(PackageKind::MobileEmbedded, tbp_bench::measured_duration());
    let Some(batch) = tbp_bench::run_cli("fig7", std::slice::from_ref(&spec)) else {
        return;
    };
    if tbp_bench::emit_structured(&batch) {
        return;
    }
    let reports = batch.group(&spec.name);
    let mut header = vec!["threshold [°C]"];
    header.extend(tbp_bench::policy_columns(&reports));
    let rows = tbp_bench::pivot_threshold_policy(&reports, |r| {
        r.summary().map_or(f64::NAN, |s| s.mean_spatial_std_dev())
    });
    tbp_bench::print_table(
        "Figure 7 — temperature σ [°C] vs threshold (mobile embedded package)",
        &header,
        &rows,
    );
}
