//! Measures hot-loop throughput and writes the machine-readable perf
//! trajectory file `BENCH_PR4.json`.
//!
//! The headline benchmark is the steady-state [`Simulation::step`] rate of
//! the paper's default setup (mobile package, forward Euler, SDR pipeline)
//! after the 8 s warm-up — exactly the loop every sweep point spends almost
//! all of its time in. Three secondary cases (high-performance package, RK4
//! solver, DAG workload) and the end-to-end wall time of the scenario batch
//! complete the picture.
//!
//! The committed `BENCH_PR4.json` records both the **pre-PR baseline**
//! (measured on the same machine at the merge base, hard-coded below) and
//! the **current** numbers, so the speedup is self-describing. Absolute
//! numbers are machine-dependent; CI only asserts the file parses and
//! `steps_per_sec > 0`, while the ≥3× acceptance ratio is checked on the
//! machine that committed the file.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p tbp-bench --bin perf_report [-- --quick] [--out FILE]
//! ```
//!
//! `--quick` shortens every measurement (CI smoke); `--out` overrides the
//! output path (default `BENCH_PR4.json` in the current directory).

use std::time::Instant;

use serde::Serialize;
use tbp_arch::platform::PlatformConfig;
use tbp_arch::units::Seconds;
use tbp_core::scenario::Runner;
use tbp_core::sim::builder::Workload;
use tbp_core::sim::{Simulation, SimulationBuilder, SimulationConfig};
use tbp_thermal::package::Package;
use tbp_thermal::solver::SolverKind;

/// Baseline measured at the pre-PR4 merge base (commit 8405dd0, "Workload
/// subsystem"), same machine, same `--quick`-less settings: the steady-state
/// step rate of the mobile/euler/sdr hot loop before the compiled thermal
/// kernel and the reusable step workspaces landed. Best of repeated runs
/// (the generous end of the observed 542k–626k steps/s range, so the
/// recorded speedup is a lower bound).
const BASELINE_COMMIT: &str = "8405dd0 (pre-PR4 main)";
/// Pre-PR4 steps/second of the headline `mobile_euler_sdr` case.
const BASELINE_STEPS_PER_SEC: f64 = 626_408.0;
/// Pre-PR4 nanoseconds per step of the headline case.
const BASELINE_NS_PER_STEP: f64 = 1_596.4;

/// One measured benchmark case.
#[derive(Debug, Serialize)]
struct CaseReport {
    /// Case name (`package_solver_workload`).
    name: String,
    /// Steady-state `Simulation::step` calls per second.
    steps_per_sec: f64,
    /// Mean nanoseconds per step.
    ns_per_step: f64,
    /// Number of timed steps.
    steps: u64,
}

/// The whole perf trajectory entry this binary writes.
#[derive(Debug, Serialize)]
struct PerfReport {
    pr: u32,
    benchmark: String,
    baseline: Baseline,
    current: Current,
    /// `current.steps_per_sec / baseline.steps_per_sec` of the headline case.
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct Baseline {
    commit: String,
    steps_per_sec: f64,
    ns_per_step: f64,
}

#[derive(Debug, Serialize)]
struct Current {
    /// Headline case (mobile package, forward Euler, SDR pipeline).
    steps_per_sec: f64,
    ns_per_step: f64,
    /// All measured cases, including the headline.
    cases: Vec<CaseReport>,
    /// Wall-clock seconds of the scenario batch (`reproduce_all` equivalent,
    /// 2 s measured window, cold cache). Negative when the scenario
    /// directory was not found.
    reproduce_all_wall_s: f64,
    /// Whether `--quick` shortened the measurements.
    quick: bool,
}

fn build_sim(package: Package, solver: SolverKind, workload: Workload) -> Simulation {
    SimulationBuilder::new()
        .with_platform(PlatformConfig::paper_default())
        .with_package(package)
        .with_solver(solver)
        .with_workload(workload)
        .with_config(SimulationConfig {
            // The measured loop is the steady-state step: no tracing, and the
            // paper's 8 s warm-up is run before the clock starts.
            trace_interval: None,
            ..SimulationConfig::paper_default()
        })
        .build()
        .expect("perf_report simulation builds")
}

/// Warm the simulation past its warm-up phase, then time `steps` steps per
/// trial and keep the fastest trial — the least-interference estimate on
/// shared/virtualised machines, where scheduler steal inflates wall time by
/// double-digit percent between runs.
fn measure_case(name: &str, mut sim: Simulation, steps: u64, trials: u32) -> CaseReport {
    sim.run_for(Seconds::new(9.0)).expect("warm-up runs");
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let start = Instant::now();
        for _ in 0..steps {
            sim.step().expect("steady-state step");
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    CaseReport {
        name: name.to_string(),
        steps_per_sec: steps as f64 / best,
        ns_per_step: best * 1e9 / steps as f64,
        steps,
    }
}

/// Wall time of the full scenario batch (2 s measured window, no cache).
fn measure_reproduce_all() -> f64 {
    let dir = tbp_bench::scenarios_dir();
    let specs = match tbp_core::scenario::load_dir(&dir) {
        Ok(specs) if !specs.is_empty() => specs
            .into_iter()
            .map(|spec| {
                if spec.analysis.is_some() {
                    spec
                } else {
                    tbp_bench::override_duration(spec, Seconds::new(2.0))
                }
            })
            .collect::<Vec<_>>(),
        _ => {
            eprintln!(
                "perf_report: no scenarios under {}; skipping end-to-end timing",
                dir.display()
            );
            return -1.0;
        }
    };
    let runner = Runner::new();
    let start = Instant::now();
    runner.run(&specs).expect("scenario batch runs");
    start.elapsed().as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR4.json".to_string());

    let steps: u64 = if quick { 20_000 } else { 100_000 };
    let trials: u32 = if quick { 2 } else { 8 };

    let headline = measure_case(
        "mobile_euler_sdr",
        build_sim(
            Package::mobile_embedded(),
            SolverKind::ForwardEuler,
            Workload::sdr(),
        ),
        steps,
        trials,
    );
    eprintln!(
        "perf_report: {} {:.0} steps/s ({:.0} ns/step)",
        headline.name, headline.steps_per_sec, headline.ns_per_step
    );
    let secondary = [
        (
            "hiperf_euler_sdr",
            Package::high_performance(),
            SolverKind::ForwardEuler,
            Workload::sdr(),
        ),
        (
            "mobile_rk4_sdr",
            Package::mobile_embedded(),
            SolverKind::RungeKutta4,
            Workload::sdr(),
        ),
        (
            "mobile_euler_dag",
            Package::mobile_embedded(),
            SolverKind::ForwardEuler,
            Workload::generated("dag"),
        ),
    ];
    let mut cases = vec![CaseReport {
        name: headline.name.clone(),
        steps_per_sec: headline.steps_per_sec,
        ns_per_step: headline.ns_per_step,
        steps: headline.steps,
    }];
    for (name, package, solver, workload) in secondary {
        let case = measure_case(
            name,
            build_sim(package, solver, workload),
            steps / 2,
            trials,
        );
        eprintln!(
            "perf_report: {} {:.0} steps/s ({:.0} ns/step)",
            case.name, case.steps_per_sec, case.ns_per_step
        );
        cases.push(case);
    }

    let reproduce_all_wall_s = measure_reproduce_all();
    if reproduce_all_wall_s >= 0.0 {
        eprintln!("perf_report: scenario batch (2 s window) took {reproduce_all_wall_s:.2} s");
    }

    let report = PerfReport {
        pr: 4,
        benchmark: "hot_loop/mobile_euler_sdr steady-state Simulation::step".to_string(),
        baseline: Baseline {
            commit: BASELINE_COMMIT.to_string(),
            steps_per_sec: BASELINE_STEPS_PER_SEC,
            ns_per_step: BASELINE_NS_PER_STEP,
        },
        speedup: headline.steps_per_sec / BASELINE_STEPS_PER_SEC,
        current: Current {
            steps_per_sec: headline.steps_per_sec,
            ns_per_step: headline.ns_per_step,
            cases,
            reproduce_all_wall_s,
            quick,
        },
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("perf report written");
    eprintln!(
        "perf_report: wrote {out_path} (speedup {:.2}x over {BASELINE_COMMIT})",
        report.speedup
    );
}
