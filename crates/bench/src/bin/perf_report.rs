//! Measures hot-loop throughput and writes the machine-readable perf
//! trajectory file `BENCH_PR4.json`.
//!
//! The headline benchmark is the steady-state [`Simulation::step`] rate of
//! the paper's default setup (mobile package, forward Euler, SDR pipeline)
//! after the 8 s warm-up — exactly the loop every sweep point spends almost
//! all of its time in. Three secondary cases (high-performance package, RK4
//! solver, DAG workload) and the end-to-end wall time of the scenario batch
//! complete the picture.
//!
//! The committed `BENCH_PR4.json` records both the **pre-PR baseline**
//! (measured on the same machine at the merge base, hard-coded below) and
//! the **current** numbers, so the speedup is self-describing. Absolute
//! numbers are machine-dependent; CI only asserts the file parses and
//! `steps_per_sec > 0`, while the ≥3× acceptance ratio is checked on the
//! machine that committed the file.
//!
//! Since PR 7 the binary additionally measures **lane scaling** — the
//! aggregate throughput of [`LaneBatch::step`] at 1, 2, 4 and 8 lanes — and
//! writes it to `BENCH_PR7.json`. Only the thermal phase vectorises across
//! lanes (the power model's per-task `exp2` calls are not bit-identically
//! vectorisable), so the scaling headroom per config is its thermal fraction;
//! the coarse-step configs, whose larger time step buys proportionally more
//! solver sub-steps per `step`, are where the batched engine shines.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p tbp-bench --bin perf_report \
//!     [-- --quick] [--out FILE] [--lanes-out FILE]
//! ```
//!
//! `--quick` shortens every measurement (CI smoke); `--out` overrides the
//! hot-loop output path (default `BENCH_PR4.json`), `--lanes-out` the
//! lane-scaling output path (default `BENCH_PR7.json`).

use std::time::Instant;

use serde::Serialize;
use tbp_arch::platform::PlatformConfig;
use tbp_arch::units::Seconds;
use tbp_core::scenario::Runner;
use tbp_core::sim::builder::Workload;
use tbp_core::sim::{LaneBatch, Simulation, SimulationBuilder, SimulationConfig};
use tbp_thermal::package::Package;
use tbp_thermal::solver::SolverKind;

/// Baseline measured at the pre-PR4 merge base (commit 8405dd0, "Workload
/// subsystem"), same machine, same `--quick`-less settings: the steady-state
/// step rate of the mobile/euler/sdr hot loop before the compiled thermal
/// kernel and the reusable step workspaces landed. Best of repeated runs
/// (the generous end of the observed 542k–626k steps/s range, so the
/// recorded speedup is a lower bound).
const BASELINE_COMMIT: &str = "8405dd0 (pre-PR4 main)";
/// Pre-PR4 steps/second of the headline `mobile_euler_sdr` case.
const BASELINE_STEPS_PER_SEC: f64 = 626_408.0;
/// Pre-PR4 nanoseconds per step of the headline case.
const BASELINE_NS_PER_STEP: f64 = 1_596.4;

/// One measured benchmark case.
#[derive(Debug, Serialize)]
struct CaseReport {
    /// Case name (`package_solver_workload`).
    name: String,
    /// Steady-state `Simulation::step` calls per second.
    steps_per_sec: f64,
    /// Mean nanoseconds per step.
    ns_per_step: f64,
    /// Number of timed steps.
    steps: u64,
}

/// The whole perf trajectory entry this binary writes.
#[derive(Debug, Serialize)]
struct PerfReport {
    pr: u32,
    benchmark: String,
    baseline: Baseline,
    current: Current,
    /// `current.steps_per_sec / baseline.steps_per_sec` of the headline case.
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct Baseline {
    commit: String,
    steps_per_sec: f64,
    ns_per_step: f64,
}

#[derive(Debug, Serialize)]
struct Current {
    /// Headline case (mobile package, forward Euler, SDR pipeline).
    steps_per_sec: f64,
    ns_per_step: f64,
    /// All measured cases, including the headline.
    cases: Vec<CaseReport>,
    /// Wall-clock seconds of the scenario batch (`reproduce_all` equivalent,
    /// 2 s measured window, cold cache). Negative when the scenario
    /// directory was not found.
    reproduce_all_wall_s: f64,
    /// Whether `--quick` shortened the measurements.
    quick: bool,
}

/// One lane count's worth of lane-scaling measurement.
#[derive(Debug, Serialize)]
struct LanePoint {
    /// Lanes stepped in lockstep.
    lanes: usize,
    /// Aggregate simulation steps per second across all lanes.
    agg_steps_per_sec: f64,
    /// Mean nanoseconds per per-lane step (batch time / (steps × lanes)).
    ns_per_lane_step: f64,
}

/// Lane scaling of one configuration.
#[derive(Debug, Serialize)]
struct LaneCaseReport {
    /// Config name (`package_solver_workload[_platform][_step]`).
    name: String,
    /// Cores of the simulated platform (3 is the paper's).
    cores: usize,
    /// Co-simulation time step in milliseconds.
    time_step_ms: f64,
    /// Plain `Simulation::step` throughput (no batch wrapper) — the honest
    /// un-batched reference point. A 1-lane batch delegates to exactly this
    /// path, so `points[0]` and this should agree up to measurement noise.
    solo_steps_per_sec: f64,
    /// Batched throughput at 1, 2, 4 and 8 lanes.
    points: Vec<LanePoint>,
    /// Aggregate 8-lane throughput over the measured 1-lane batch — the
    /// acceptance metric ("8 lanes vs 1 lane").
    speedup_8x: f64,
    /// Aggregate 8-lane throughput over the solo baseline.
    speedup_8x_vs_solo: f64,
}

/// The lane-scaling trajectory entry written to `BENCH_PR7.json`.
#[derive(Debug, Serialize)]
struct LaneScalingReport {
    pr: u32,
    benchmark: String,
    /// SIMD path the kernel dispatched to on this machine.
    simd: String,
    /// Name of the config whose `speedup_8x` is the acceptance headline.
    headline: String,
    /// That config's aggregate 8-lane speedup over its solo baseline.
    headline_speedup_8x: f64,
    /// Per-config scaling curves.
    cases: Vec<LaneCaseReport>,
    /// Whether `--quick` shortened the measurements.
    quick: bool,
}

fn build_sim(package: Package, solver: SolverKind, workload: Workload) -> Simulation {
    SimulationBuilder::new()
        .with_platform(PlatformConfig::paper_default())
        .with_package(package)
        .with_solver(solver)
        .with_workload(workload)
        .with_config(SimulationConfig {
            // The measured loop is the steady-state step: no tracing, and the
            // paper's 8 s warm-up is run before the clock starts.
            trace_interval: None,
            ..SimulationConfig::paper_default()
        })
        .build()
        .expect("perf_report simulation builds")
}

/// Warm the simulation past its warm-up phase, then time `steps` steps per
/// trial and keep the fastest trial — the least-interference estimate on
/// shared/virtualised machines, where scheduler steal inflates wall time by
/// double-digit percent between runs.
fn measure_case(name: &str, mut sim: Simulation, steps: u64, trials: u32) -> CaseReport {
    sim.run_for(Seconds::new(9.0)).expect("warm-up runs");
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let start = Instant::now();
        for _ in 0..steps {
            sim.step().expect("steady-state step");
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    CaseReport {
        name: name.to_string(),
        steps_per_sec: steps as f64 / best,
        ns_per_step: best * 1e9 / steps as f64,
        steps,
    }
}

/// Wall time of the full scenario batch (2 s measured window, no cache).
fn measure_reproduce_all() -> f64 {
    let dir = tbp_bench::scenarios_dir();
    let specs = match tbp_core::scenario::load_dir(&dir) {
        Ok(specs) if !specs.is_empty() => specs
            .into_iter()
            .map(|spec| {
                if spec.analysis.is_some() {
                    spec
                } else {
                    tbp_bench::override_duration(spec, Seconds::new(2.0))
                }
            })
            .collect::<Vec<_>>(),
        _ => {
            eprintln!(
                "perf_report: no scenarios under {}; skipping end-to-end timing",
                dir.display()
            );
            return -1.0;
        }
    };
    let runner = Runner::new();
    let start = Instant::now();
    runner.run(&specs).expect("scenario batch runs");
    start.elapsed().as_secs_f64()
}

/// Builds one lane of a lane-scaling config. The policy period is stretched
/// to the time step when the step is coarser than the requested period
/// (the config would otherwise fail validation); everything else matches the
/// hot-loop cases.
fn build_lane_sim(
    package: Package,
    solver: SolverKind,
    step_ms: f64,
    cores: usize,
    policy_ms: f64,
) -> Simulation {
    SimulationBuilder::new()
        .with_platform(PlatformConfig::paper_default().with_cores(cores))
        .with_package(package)
        .with_solver(solver)
        .with_workload(Workload::sdr())
        .with_config(SimulationConfig {
            trace_interval: None,
            time_step: Seconds::from_millis(step_ms),
            policy_period: Seconds::from_millis(policy_ms.max(step_ms).max(10.0)),
            ..SimulationConfig::paper_default()
        })
        .build()
        .expect("lane-scaling simulation builds")
}

/// Steady-state plain `Simulation::step` throughput — the solo baseline.
fn measure_solo_rate(build: &dyn Fn() -> Simulation, steps: u64, trials: u32) -> f64 {
    let mut sim = build();
    sim.run_for(Seconds::new(9.0)).expect("warm-up runs");
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let start = Instant::now();
        for _ in 0..steps {
            sim.step().expect("steady-state step");
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    steps as f64 / best
}

/// Steady-state `LaneBatch::step` throughput at one lane count.
fn measure_lane_point(
    build: &dyn Fn() -> Simulation,
    lanes: usize,
    steps: u64,
    trials: u32,
) -> LanePoint {
    let sims: Vec<Simulation> = (0..lanes).map(|_| build()).collect();
    let mut batch = LaneBatch::new(sims).expect("lane batch forms");
    let warm_steps = (9.0 / batch.time_step().as_secs()).ceil() as u64;
    batch.run_steps(warm_steps).expect("warm-up runs");
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let start = Instant::now();
        batch.run_steps(steps).expect("steady-state batch steps");
        best = best.min(start.elapsed().as_secs_f64());
    }
    LanePoint {
        lanes,
        agg_steps_per_sec: (lanes as u64 * steps) as f64 / best,
        ns_per_lane_step: best * 1e9 / (lanes as u64 * steps) as f64,
    }
}

/// Measures one config's full scaling curve (solo baseline + 1/2/4/8 lanes).
#[allow(clippy::too_many_arguments)]
fn measure_lane_case(
    name: &str,
    package: Package,
    solver: SolverKind,
    step_ms: f64,
    cores: usize,
    policy_ms: f64,
    steps: u64,
    trials: u32,
) -> LaneCaseReport {
    let build = move || build_lane_sim(package.clone(), solver, step_ms, cores, policy_ms);
    let solo = measure_solo_rate(&build, steps, trials);
    let points: Vec<LanePoint> = [1, 2, 4, 8]
        .into_iter()
        .map(|lanes| measure_lane_point(&build, lanes, steps, trials))
        .collect();
    let agg_1 = points.first().expect("1-lane point").agg_steps_per_sec;
    let agg_8 = points.last().expect("8-lane point").agg_steps_per_sec;
    let case = LaneCaseReport {
        name: name.to_string(),
        cores,
        time_step_ms: step_ms,
        solo_steps_per_sec: solo,
        speedup_8x: agg_8 / agg_1,
        speedup_8x_vs_solo: agg_8 / solo,
        points,
    };
    eprint!(
        "perf_report: {:<22} solo {:>9.0} steps/s |",
        case.name, case.solo_steps_per_sec
    );
    for p in &case.points {
        eprint!(" {}L {:>9.0}", p.lanes, p.agg_steps_per_sec);
    }
    eprintln!(
        " | 8-lane speedup {:.2}x (vs solo {:.2}x)",
        case.speedup_8x, case.speedup_8x_vs_solo
    );
    case
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR4.json".to_string());
    let lanes_out_path = args
        .iter()
        .position(|a| a == "--lanes-out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR7.json".to_string());

    let steps: u64 = if quick { 20_000 } else { 100_000 };
    let trials: u32 = if quick { 2 } else { 8 };

    let headline = measure_case(
        "mobile_euler_sdr",
        build_sim(
            Package::mobile_embedded(),
            SolverKind::ForwardEuler,
            Workload::sdr(),
        ),
        steps,
        trials,
    );
    eprintln!(
        "perf_report: {} {:.0} steps/s ({:.0} ns/step)",
        headline.name, headline.steps_per_sec, headline.ns_per_step
    );
    let secondary = [
        (
            "hiperf_euler_sdr",
            Package::high_performance(),
            SolverKind::ForwardEuler,
            Workload::sdr(),
        ),
        (
            "mobile_rk4_sdr",
            Package::mobile_embedded(),
            SolverKind::RungeKutta4,
            Workload::sdr(),
        ),
        (
            "mobile_euler_dag",
            Package::mobile_embedded(),
            SolverKind::ForwardEuler,
            Workload::generated("dag"),
        ),
    ];
    let mut cases = vec![CaseReport {
        name: headline.name.clone(),
        steps_per_sec: headline.steps_per_sec,
        ns_per_step: headline.ns_per_step,
        steps: headline.steps,
    }];
    for (name, package, solver, workload) in secondary {
        let case = measure_case(
            name,
            build_sim(package, solver, workload),
            steps / 2,
            trials,
        );
        eprintln!(
            "perf_report: {} {:.0} steps/s ({:.0} ns/step)",
            case.name, case.steps_per_sec, case.ns_per_step
        );
        cases.push(case);
    }

    let reproduce_all_wall_s = measure_reproduce_all();
    if reproduce_all_wall_s >= 0.0 {
        eprintln!("perf_report: scenario batch (2 s window) took {reproduce_all_wall_s:.2} s");
    }

    let report = PerfReport {
        pr: 4,
        benchmark: "hot_loop/mobile_euler_sdr steady-state Simulation::step".to_string(),
        baseline: Baseline {
            commit: BASELINE_COMMIT.to_string(),
            steps_per_sec: BASELINE_STEPS_PER_SEC,
            ns_per_step: BASELINE_NS_PER_STEP,
        },
        speedup: headline.steps_per_sec / BASELINE_STEPS_PER_SEC,
        current: Current {
            steps_per_sec: headline.steps_per_sec,
            ns_per_step: headline.ns_per_step,
            cases,
            reproduce_all_wall_s,
            quick,
        },
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("perf report written");
    eprintln!(
        "perf_report: wrote {out_path} (speedup {:.2}x over {BASELINE_COMMIT})",
        report.speedup
    );

    // Lane scaling (PR 7). The coarse-step and large-platform rows spend most
    // of each step in the solver sub-steps, which is the only phase that
    // vectorises across lanes — they are where batching pays. The headline is
    // the 32-core RK4 50 ms row: a thermal-dominated config (sub-step count
    // scales with the step, node count with the floorplan) where the lane
    // kernel's SIMD gather shows through the per-lane bookkeeping.
    let lane_steps = if quick { 2_000 } else { 20_000 };
    let lane_trials = if quick { 2 } else { 5 };
    let simd = LaneBatch::new(vec![build_lane_sim(
        Package::mobile_embedded(),
        SolverKind::ForwardEuler,
        5.0,
        3,
        10.0,
    )])
    .expect("probe batch forms")
    .simd_label()
    .to_string();
    eprintln!("perf_report: lane scaling (SIMD path: {simd})");
    let lane_configs: [(&str, Package, SolverKind, f64, usize, f64, u64); 8] = [
        (
            "mobile_euler_sdr",
            Package::mobile_embedded(),
            SolverKind::ForwardEuler,
            5.0,
            3,
            10.0,
            lane_steps,
        ),
        (
            "hiperf_euler_sdr",
            Package::high_performance(),
            SolverKind::ForwardEuler,
            5.0,
            3,
            10.0,
            lane_steps,
        ),
        (
            "mobile_rk4_sdr",
            Package::mobile_embedded(),
            SolverKind::RungeKutta4,
            5.0,
            3,
            10.0,
            lane_steps,
        ),
        (
            "hiperf_rk4_sdr",
            Package::high_performance(),
            SolverKind::RungeKutta4,
            5.0,
            3,
            10.0,
            lane_steps,
        ),
        (
            "hiperf_euler_sdr_20ms",
            Package::high_performance(),
            SolverKind::ForwardEuler,
            20.0,
            3,
            20.0,
            lane_steps / 4,
        ),
        (
            "hiperf_rk4_sdr_20ms",
            Package::high_performance(),
            SolverKind::RungeKutta4,
            20.0,
            3,
            20.0,
            lane_steps / 4,
        ),
        (
            "hiperf_rk4_sdr_16c_20ms",
            Package::high_performance(),
            SolverKind::RungeKutta4,
            20.0,
            16,
            100.0,
            lane_steps / 4,
        ),
        (
            "hiperf_rk4_sdr_32c_50ms",
            Package::high_performance(),
            SolverKind::RungeKutta4,
            50.0,
            32,
            100.0,
            lane_steps / 8,
        ),
    ];
    let lane_cases: Vec<LaneCaseReport> = lane_configs
        .into_iter()
        .map(
            |(name, package, solver, step_ms, cores, policy_ms, steps)| {
                measure_lane_case(
                    name,
                    package,
                    solver,
                    step_ms,
                    cores,
                    policy_ms,
                    steps,
                    lane_trials,
                )
            },
        )
        .collect();
    let headline_name = "hiperf_rk4_sdr_32c_50ms";
    let headline_speedup = lane_cases
        .iter()
        .find(|c| c.name == headline_name)
        .expect("headline lane config measured")
        .speedup_8x;
    let lane_report = LaneScalingReport {
        pr: 7,
        benchmark: "lane_scaling aggregate LaneBatch::step throughput at 1/2/4/8 lanes vs the 1-lane batch and solo Simulation::step"
            .to_string(),
        simd,
        headline: headline_name.to_string(),
        headline_speedup_8x: headline_speedup,
        cases: lane_cases,
        quick,
    };
    let json = serde_json::to_string_pretty(&lane_report).expect("lane report serializes");
    std::fs::write(&lanes_out_path, json + "\n").expect("lane report written");
    eprintln!(
        "perf_report: wrote {lanes_out_path} (headline {headline_name} \
         8-lane speedup {headline_speedup:.2}x)"
    );
}
