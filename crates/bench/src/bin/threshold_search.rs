//! Closed-loop threshold search over one *running* simulation.
//!
//! The paper sweeps the balancing threshold as a static per-run knob
//! (Figures 7–11): every grid point is a cold restart. This binary instead
//! drives the search the way a dynamic stream engine would — it builds a
//! single simulation, warms it up once, and then retunes the threshold
//! through live reconfiguration (`Simulation::apply_delta`), measuring each
//! candidate over a settle + measurement window. A grid pass over the
//! paper's 1–4 °C range is followed by bisection refinement around the
//! incumbent.
//!
//! The emitted report is deterministic: repeated runs produce byte-identical
//! JSON (nothing wall-clock-dependent is recorded), which the CI
//! reconfiguration smoke job asserts.
//!
//! ```sh
//! cargo run --release -p tbp-bench --bin threshold_search -- \
//!     --package hiperf --refine 2 --json
//! ```
//!
//! Flags: `--package mobile|hiperf`, `--grid a,b,c`, `--refine N`,
//! `--warmup S`, `--settle S`, `--window S`, `--json`/`--csv` (or
//! `TBP_FORMAT`), `--out FILE` (always JSON).

use serde::Serialize;

use tbp_arch::units::Seconds;
use tbp_core::scenario::{ScenarioSpec, SpecDelta};
use tbp_core::sim::Simulation;
use tbp_thermal::package::PackageKind;

/// One evaluated threshold candidate.
#[derive(Debug, Clone, Serialize)]
struct Evaluation {
    /// Candidate threshold (°C).
    threshold: f64,
    /// Mean spatial standard deviation over the measurement window (°C).
    sigma_spatial_c: f64,
    /// Mean spatial spread (hottest − coolest) over the window (°C).
    mean_spread_c: f64,
    /// Migrations completed during the window.
    migrations: u64,
    /// Deadline misses during the window.
    deadline_misses: u64,
}

/// The full search report (JSON output).
#[derive(Debug, Serialize)]
struct SearchReport {
    objective: String,
    package: String,
    policy: String,
    warmup_s: f64,
    settle_s: f64,
    window_s: f64,
    grid: Vec<f64>,
    refinements: usize,
    /// Every evaluation, in the order the live swaps were applied.
    evaluations: Vec<Evaluation>,
    /// Live reconfigurations applied to the single simulation.
    swaps: u64,
    best: Evaluation,
}

struct Options {
    package: PackageKind,
    grid: Vec<f64>,
    refinements: usize,
    warmup: f64,
    settle: f64,
    window: f64,
    out: Option<String>,
}

fn main() {
    let options = parse_options();
    let spec = ScenarioSpec::new("threshold-search")
        .with_package(options.package)
        .with_policy("thermal-balancing", options.grid[0])
        .with_schedule(options.warmup, 0.0);
    let mut sim = spec.build().expect("search scenario builds");
    tbp_bench::timed("threshold search", || {
        sim.run_for(Seconds::new(options.warmup))
            .expect("warm-up runs");

        let mut evaluations: Vec<Evaluation> = Vec::new();
        for &threshold in &options.grid {
            evaluations.push(evaluate(&mut sim, threshold, &options));
        }
        for _ in 0..options.refinements {
            for candidate in bracket_midpoints(&evaluations) {
                evaluations.push(evaluate(&mut sim, candidate, &options));
            }
        }

        let best = best_of(&evaluations).clone();
        let report = SearchReport {
            objective: "minimize mean spatial σ over the measurement window \
                        (ties: lower threshold)"
                .to_string(),
            package: format!("{:?}", options.package),
            policy: "thermal-balancing".to_string(),
            warmup_s: options.warmup,
            settle_s: options.settle,
            window_s: options.window,
            grid: options.grid.clone(),
            refinements: options.refinements,
            swaps: sim.reconfigs_applied(),
            best,
            evaluations,
        };
        assert!(
            report.swaps >= 3,
            "a search must exercise at least 3 live swaps (got {})",
            report.swaps
        );
        emit(&report, &options);
    });
}

/// Retunes the running simulation to `threshold` (one live swap), lets it
/// settle, then measures one window.
fn evaluate(sim: &mut Simulation, threshold: f64, options: &Options) -> Evaluation {
    sim.apply_delta(&SpecDelta::new().with_threshold(threshold))
        .expect("threshold delta applies");
    sim.run_for(Seconds::new(options.settle))
        .expect("settle runs");

    let migrations_before = sim.os().migration().totals().migrations;
    let misses_before = sim.pipeline().map(|p| p.qos().deadline_misses).unwrap_or(0);
    // Sample the sensors at their refresh period across the window; the
    // window metrics are computed here (not from the cumulative collector)
    // so every candidate is scored on its own slice of the run.
    let sample = Seconds::from_millis(10.0);
    let samples = (options.window / sample.as_secs()).round().max(1.0) as u64;
    let mut sigma_acc = 0.0;
    let mut spread_acc = 0.0;
    for _ in 0..samples {
        sim.run_for(sample).expect("window step runs");
        let temps = sim.sensor_readings();
        let n = temps.len() as f64;
        let mean = temps.iter().map(|t| t.as_celsius()).sum::<f64>() / n;
        let variance = temps
            .iter()
            .map(|t| (t.as_celsius() - mean).powi(2))
            .sum::<f64>()
            / n;
        sigma_acc += variance.sqrt();
        let max = temps
            .iter()
            .map(|t| t.as_celsius())
            .fold(f64::MIN, f64::max);
        let min = temps
            .iter()
            .map(|t| t.as_celsius())
            .fold(f64::MAX, f64::min);
        spread_acc += max - min;
    }
    Evaluation {
        threshold,
        sigma_spatial_c: sigma_acc / samples as f64,
        mean_spread_c: spread_acc / samples as f64,
        migrations: sim.os().migration().totals().migrations - migrations_before,
        deadline_misses: sim.pipeline().map(|p| p.qos().deadline_misses).unwrap_or(0)
            - misses_before,
    }
}

/// The objective: smallest window σ, ties broken towards the lower
/// threshold (cheaper control effort at equal balance).
fn best_of(evaluations: &[Evaluation]) -> &Evaluation {
    evaluations
        .iter()
        .min_by(|a, b| {
            a.sigma_spatial_c
                .total_cmp(&b.sigma_spatial_c)
                .then(a.threshold.total_cmp(&b.threshold))
        })
        .expect("at least one evaluation")
}

/// Bisection step: midpoints between the incumbent and its nearest evaluated
/// neighbours on either side, skipping candidates already evaluated (within
/// 1e-9 °C).
fn bracket_midpoints(evaluations: &[Evaluation]) -> Vec<f64> {
    let mut thresholds: Vec<f64> = evaluations.iter().map(|e| e.threshold).collect();
    thresholds.sort_by(f64::total_cmp);
    let best = best_of(evaluations).threshold;
    let i = thresholds
        .iter()
        .position(|&t| t == best)
        .expect("best is evaluated");
    let mut candidates = Vec::new();
    if i > 0 {
        candidates.push((thresholds[i - 1] + best) / 2.0);
    }
    if i + 1 < thresholds.len() {
        candidates.push((best + thresholds[i + 1]) / 2.0);
    }
    candidates.retain(|c| thresholds.iter().all(|t| (t - c).abs() > 1e-9));
    candidates
}

fn emit(report: &SearchReport, options: &Options) {
    let json = serde_json::to_string_pretty(report).expect("report serializes");
    if let Some(path) = &options.out {
        std::fs::write(path, format!("{json}\n")).expect("report file writes");
        eprintln!("[threshold_search] wrote {path}");
    }
    match tbp_bench::report_format() {
        tbp_bench::ReportFormat::Json => println!("{json}"),
        tbp_bench::ReportFormat::Csv => {
            println!("threshold_c,sigma_spatial_c,mean_spread_c,migrations,deadline_misses");
            for e in &report.evaluations {
                println!(
                    "{},{:.4},{:.4},{},{}",
                    e.threshold,
                    e.sigma_spatial_c,
                    e.mean_spread_c,
                    e.migrations,
                    e.deadline_misses
                );
            }
        }
        tbp_bench::ReportFormat::Table => {
            let rows: Vec<Vec<String>> = report
                .evaluations
                .iter()
                .map(|e| {
                    vec![
                        format!("{:.3}", e.threshold),
                        format!("{:.4}", e.sigma_spatial_c),
                        format!("{:.3}", e.mean_spread_c),
                        e.migrations.to_string(),
                        e.deadline_misses.to_string(),
                    ]
                })
                .collect();
            tbp_bench::print_table(
                &format!(
                    "Closed-loop threshold search ({} package, {} live swaps)",
                    report.package, report.swaps
                ),
                &[
                    "threshold [°C]",
                    "σ [°C]",
                    "spread [°C]",
                    "migrations",
                    "misses",
                ],
                &rows,
            );
            println!(
                "\nbest threshold: {:.3} °C (σ = {:.4} °C, {} migrations in the window)",
                report.best.threshold, report.best.sigma_spatial_c, report.best.migrations
            );
        }
    }
}

fn parse_options() -> Options {
    let mut options = Options {
        package: PackageKind::MobileEmbedded,
        grid: vec![1.0, 2.0, 3.0, 4.0],
        refinements: 2,
        warmup: 8.0,
        settle: 1.0,
        window: 3.0,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--package" => {
                options.package = match value("--package").as_str() {
                    "mobile" => PackageKind::MobileEmbedded,
                    "hiperf" => PackageKind::HighPerformance,
                    other => panic!("unknown package `{other}` (use mobile|hiperf)"),
                }
            }
            "--grid" => {
                options.grid = value("--grid")
                    .split(',')
                    .map(|t| {
                        let t: f64 = t.trim().parse().expect("--grid takes numbers");
                        assert!(t.is_finite() && t > 0.0, "grid thresholds must be positive");
                        t
                    })
                    .collect();
                assert!(!options.grid.is_empty(), "--grid needs at least one value");
            }
            "--refine" => {
                options.refinements = value("--refine")
                    .parse()
                    .expect("--refine takes an integer")
            }
            "--warmup" => {
                options.warmup = value("--warmup").parse().expect("--warmup takes seconds")
            }
            "--settle" => {
                options.settle = value("--settle").parse().expect("--settle takes seconds")
            }
            "--window" => {
                options.window = value("--window").parse().expect("--window takes seconds")
            }
            "--out" => options.out = Some(value("--out")),
            "--json" | "--csv" => {} // handled by tbp_bench::report_format
            other => panic!("unknown flag `{other}`"),
        }
    }
    options
}
