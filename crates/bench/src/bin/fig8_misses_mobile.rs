//! Figure 8: frame deadline misses vs. threshold for the three policies on
//! the mobile embedded package.
//!
//! Expected shape (paper): the thermal balancing policy misses few frames (and
//! only at the smallest threshold), Stop&Go misses many because halted cores
//! starve the pipeline, energy balancing misses none (it never perturbs the
//! schedule).

use tbp_core::experiments::run_threshold_sweep;
use tbp_thermal::package::PackageKind;

fn main() {
    let duration = tbp_bench::measured_duration();
    let points = tbp_bench::timed("fig8", || {
        run_threshold_sweep(PackageKind::MobileEmbedded, duration).expect("sweep runs")
    });
    let rows = tbp_bench::sweep_table(&points, |p| p.summary.qos.deadline_misses as f64);
    tbp_bench::print_table(
        "Figure 8 — deadline misses vs threshold (mobile embedded package)",
        &["threshold [°C]", "thermal-balancing", "stop-and-go", "energy-balancing"],
        &rows,
    );
    let rows = tbp_bench::sweep_table(&points, |p| p.summary.qos.miss_rate() * 100.0);
    tbp_bench::print_table(
        "Deadline miss rate [%]",
        &["threshold [°C]", "thermal-balancing", "stop-and-go", "energy-balancing"],
        &rows,
    );
}
