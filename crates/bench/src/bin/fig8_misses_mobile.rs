//! Figure 8: frame deadline misses vs. threshold for the three policies on
//! the mobile embedded package, via the Scenario API.
//!
//! Expected shape (paper): the thermal balancing policy misses few frames (and
//! only at the smallest threshold), Stop&Go misses many because halted cores
//! starve the pipeline, energy balancing misses none (it never perturbs the
//! schedule).

use tbp_core::experiments::threshold_sweep_spec;
use tbp_thermal::package::PackageKind;

fn main() {
    let spec = threshold_sweep_spec(PackageKind::MobileEmbedded, tbp_bench::measured_duration());
    let Some(batch) = tbp_bench::run_cli("fig8", std::slice::from_ref(&spec)) else {
        return;
    };
    if tbp_bench::emit_structured(&batch) {
        return;
    }
    let reports = batch.group(&spec.name);
    let mut header = vec!["threshold [°C]"];
    header.extend(tbp_bench::policy_columns(&reports));
    let rows = tbp_bench::pivot_threshold_policy(&reports, |r| {
        r.summary()
            .map_or(f64::NAN, |s| s.qos.deadline_misses as f64)
    });
    tbp_bench::print_table(
        "Figure 8 — deadline misses vs threshold (mobile embedded package)",
        &header,
        &rows,
    );
    let rows = tbp_bench::pivot_threshold_policy(&reports, |r| {
        r.summary().map_or(f64::NAN, |s| s.qos.miss_rate() * 100.0)
    });
    tbp_bench::print_table("Deadline miss rate [%]", &header, &rows);
}
