//! Interactive terminal explorer for binary trace files (`.tbptrace`).
//!
//! ```text
//! cargo run --release -p tbp-bench --bin trace_tui -- <file.tbptrace>
//!     [--follow]             # tail a still-running trace live
//!     [--metrics <jsonl>]    # show the run's heartbeat in the status bar
//!     [--window <seconds>]   # initial windowed-stats window
//!     [--render-once]        # print one frame to stdout and exit (headless)
//!     [--width <cols>] [--height <rows>]
//! ```
//!
//! The explorer state and every pane render through the pure
//! [`Explorer`]/[`Frame`] model in `tbp-obs` — no I/O or clocks in the
//! rendering path — so `--render-once` is deterministic byte-for-byte (the
//! CI `obs-live-smoke` job diffs two renders) and the interactive loop is
//! just: poll inputs, fold them into the state, print the next frame.
//!
//! Key bindings: `1`/`2`/`3` select the detail / heatmap / windows pane
//! (`Tab`/`→` next, `←` previous), `↑`/`k` and `↓`/`j` move the track
//! selection, `+`/`-` double/halve the stats window, `q`/`Esc` quits.
//!
//! With `--follow` the file is tailed through [`TraceTailer`]: an
//! incomplete final chunk means "the writer is still running", completed
//! chunks stream in live, and the status bar flips from LIVE to post-hoc
//! when the end chunk lands. `--metrics` points at the JSONL heartbeat the
//! batch binaries write via `--metrics`; the last two snapshot lines give
//! done/total scenarios, cache hits/misses and the aggregate steps/s.
//!
//! Raw terminal mode is entered via `stty` and restored on exit (including
//! panics unwinding through the guard); when stdin is not a terminal the
//! binary degrades to `--render-once`.

use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use tbp_obs::tui::{Explorer, Frame, Heartbeat, Key};
use tbp_obs::{MetricsSnapshot, TraceData, TraceError, TraceReader, TraceTailer};

fn main() {
    let cli = Cli::parse(std::env::args().skip(1));
    let label = cli
        .file
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| cli.file.display().to_string());
    if cli.render_once {
        render_once(&cli, &label);
        return;
    }
    match RawMode::enter() {
        Some(raw) => interactive(&cli, &label, raw),
        None => {
            // Not a terminal (pipe, CI, redirect): fall back to one frame.
            render_once(&cli, &label);
        }
    }
}

struct Cli {
    file: PathBuf,
    follow: bool,
    render_once: bool,
    window: Option<f64>,
    metrics: Option<PathBuf>,
    width: usize,
    height: usize,
}

impl Cli {
    fn parse(args: impl Iterator<Item = String>) -> Cli {
        let mut file = None;
        let mut follow = false;
        let mut render_once = false;
        let mut window = None;
        let mut metrics = None;
        let mut width = 100usize;
        let mut height = 30usize;
        let mut args = args.peekable();
        fn value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
            match args.next() {
                Some(v) if !v.starts_with("--") => v,
                _ => panic!("{flag} needs a value"),
            }
        }
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--follow" => follow = true,
                "--render-once" => render_once = true,
                "--window" => {
                    let v = value(&mut args, "--window");
                    let secs: f64 = v
                        .parse()
                        .unwrap_or_else(|_| panic!("--window needs seconds, got `{v}`"));
                    assert!(
                        secs.is_finite() && secs > 0.0,
                        "--window must be positive, got {secs}"
                    );
                    window = Some(secs);
                }
                "--metrics" => metrics = Some(PathBuf::from(value(&mut args, "--metrics"))),
                "--width" => {
                    width = value(&mut args, "--width")
                        .parse()
                        .expect("--width parses as columns");
                }
                "--height" => {
                    height = value(&mut args, "--height")
                        .parse()
                        .expect("--height parses as rows");
                }
                other if other.starts_with("--") => panic!("unknown flag `{other}`"),
                other => {
                    assert!(file.is_none(), "more than one trace file given");
                    file = Some(PathBuf::from(other));
                }
            }
        }
        Cli {
            file: file.unwrap_or_else(|| {
                panic!(
                    "usage: trace_tui <file.tbptrace> [--follow] [--metrics <jsonl>] \
                     [--window <s>] [--render-once] [--width <cols>] [--height <rows>]"
                )
            }),
            follow,
            render_once,
            window,
            metrics,
            width,
            height,
        }
    }
}

/// Builds the explorer state shared by both entry points: the trace (read
/// whole, or tailed as far as it goes for a torn file), the initial window
/// and the heartbeat.
fn build_explorer(cli: &Cli, label: &str) -> Explorer {
    let (data, live) = load_trace(&cli.file);
    let mut explorer = Explorer::new(label, data);
    explorer.set_live(live && cli.follow);
    if let Some(window) = cli.window {
        explorer.set_window(window);
    }
    if let Some(path) = &cli.metrics {
        explorer.set_heartbeat(read_heartbeat(path));
    }
    explorer
}

/// Reads the trace; a torn final chunk (writer still running) yields the
/// complete prefix and `live = true` instead of an error.
fn load_trace(path: &Path) -> (TraceData, bool) {
    match TraceReader::read_file(path) {
        Ok(data) => (data, false),
        Err(TraceError::TruncatedTail { .. }) => {
            let mut tailer = TraceTailer::open(path)
                .unwrap_or_else(|e| panic!("cannot open trace {}: {e}", path.display()));
            tailer
                .poll()
                .unwrap_or_else(|e| panic!("cannot read trace {}: {e}", path.display()));
            let ended = tailer.ended();
            (tailer.data().clone(), !ended)
        }
        Err(e) => panic!("cannot read trace {}: {e}", path.display()),
    }
}

fn render_once(cli: &Cli, label: &str) {
    let explorer = build_explorer(cli, label);
    print!("{}", explorer.render_string(cli.width, cli.height));
}

fn interactive(cli: &Cli, label: &str, raw: RawMode) {
    const FRAME_INTERVAL: Duration = Duration::from_millis(100);
    const REFRESH_INTERVAL: Duration = Duration::from_millis(500);
    let mut explorer = build_explorer(cli, label);
    let mut tailer = cli
        .follow
        .then(|| TraceTailer::open(&cli.file).ok())
        .flatten();
    let keys = spawn_key_reader();
    let mut frame = Frame::new(cli.width, cli.height);
    let mut last_render = String::new();
    let mut last_refresh = Instant::now() - REFRESH_INTERVAL;
    let out = std::io::stdout();
    loop {
        // 1. Fold every pending key into the state; `false` means quit.
        let mut quit = false;
        while let Ok(key) = keys.try_recv() {
            if !explorer.handle_key(key) {
                quit = true;
            }
        }
        if quit {
            break;
        }
        // 2. Refresh live inputs at a gentler cadence than the frame rate.
        if last_refresh.elapsed() >= REFRESH_INTERVAL {
            last_refresh = Instant::now();
            if let Some(active) = &mut tailer {
                if let Ok(progress) = active.poll() {
                    if progress.new_records > 0 || progress.ended {
                        explorer.set_data(active.data().clone());
                    }
                    explorer.set_live(!progress.ended);
                    if progress.ended {
                        tailer = None;
                    }
                }
            }
            if let Some(path) = &cli.metrics {
                explorer.set_heartbeat(read_heartbeat(path));
            }
        }
        // 3. Redraw only when the frame actually changed.
        explorer.render_to(&mut frame);
        let rendered = frame.render();
        if rendered != last_render {
            // Raw mode: home the cursor and repaint; \n needs \r too.
            let mut text = String::with_capacity(rendered.len() + 64);
            text.push_str("\x1b[2J\x1b[H");
            for line in rendered.lines() {
                text.push_str(line);
                text.push_str("\r\n");
            }
            let mut lock = out.lock();
            let _ = lock.write_all(text.as_bytes());
            let _ = lock.flush();
            last_render = rendered;
        }
        std::thread::sleep(FRAME_INTERVAL);
    }
    drop(raw); // restore the terminal before any further stdout writes
}

/// Reads raw stdin bytes on a background thread and decodes them into
/// [`Key`]s: `ESC [ A/B/C/D` arrow sequences, Tab, Esc and printables.
fn spawn_key_reader() -> mpsc::Receiver<Key> {
    let (tx, rx) = mpsc::channel();
    std::thread::Builder::new()
        .name("tbp-tui-input".into())
        .spawn(move || {
            let mut stdin = std::io::stdin().lock();
            let mut buf = [0u8; 1];
            let mut pending_esc = false;
            let mut in_csi = false;
            while stdin.read_exact(&mut buf).is_ok() {
                let byte = buf[0];
                if in_csi {
                    in_csi = false;
                    let key = match byte {
                        b'A' => Some(Key::Up),
                        b'B' => Some(Key::Down),
                        b'C' => Some(Key::Right),
                        b'D' => Some(Key::Left),
                        _ => None,
                    };
                    if let Some(key) = key {
                        if tx.send(key).is_err() {
                            return;
                        }
                    }
                    continue;
                }
                if pending_esc {
                    pending_esc = false;
                    if byte == b'[' {
                        in_csi = true;
                        continue;
                    }
                    if tx.send(Key::Esc).is_err() {
                        return;
                    }
                    // fall through: decode this byte on its own
                }
                let key = match byte {
                    0x1b => {
                        pending_esc = true;
                        continue;
                    }
                    b'\t' => Key::Tab,
                    b if b.is_ascii_graphic() || b == b' ' => Key::Char(b as char),
                    _ => continue,
                };
                if tx.send(key).is_err() {
                    return;
                }
            }
        })
        .expect("input thread spawns");
    rx
}

/// The run heartbeat from a `--metrics` JSONL file: the last snapshot gives
/// the totals, the last two give the steps/s delta.
fn read_heartbeat(path: &Path) -> Option<Heartbeat> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut snapshots: Vec<MetricsSnapshot> = text
        .lines()
        .filter(|line| !line.trim().is_empty())
        .filter_map(|line| MetricsSnapshot::parse(line).ok())
        .collect();
    let last = snapshots.pop()?;
    let steps_per_s = snapshots
        .last()
        .map(|prev| {
            let dt = last.elapsed_s - prev.elapsed_s;
            let steps = last
                .counter("sim.steps")
                .unwrap_or(0)
                .saturating_sub(prev.counter("sim.steps").unwrap_or(0));
            if dt > 1e-9 {
                steps as f64 / dt
            } else {
                0.0
            }
        })
        .unwrap_or(0.0);
    Some(Heartbeat {
        done: last.counter("runner.scenarios_completed").unwrap_or(0),
        total: last.gauge("runner.scenarios_total").unwrap_or(0.0) as u64,
        hits: last.counter("runner.cache_hits").unwrap_or(0),
        misses: last.counter("runner.cache_misses").unwrap_or(0),
        steps_per_s,
    })
}

/// Saved terminal settings, restored on drop. `enter` returns `None` when
/// stdin is not a terminal (stty fails), letting the caller degrade to a
/// single headless render.
struct RawMode {
    saved: String,
}

impl RawMode {
    fn enter() -> Option<RawMode> {
        let saved = std::process::Command::new("stty")
            .arg("-g")
            .stdin(std::process::Stdio::inherit())
            .output()
            .ok()
            .filter(|out| out.status.success())
            .map(|out| String::from_utf8_lossy(&out.stdout).trim().to_string())?;
        let entered = std::process::Command::new("stty")
            .args(["raw", "-echo"])
            .stdin(std::process::Stdio::inherit())
            .status()
            .map(|status| status.success())
            .unwrap_or(false);
        entered.then_some(RawMode { saved })
    }
}

impl Drop for RawMode {
    fn drop(&mut self) {
        let _ = std::process::Command::new("stty")
            .arg(&self.saved)
            .stdin(std::process::Stdio::inherit())
            .status();
        // Leave the alternate drawing region on a fresh line.
        let _ = writeln!(std::io::stdout());
    }
}
