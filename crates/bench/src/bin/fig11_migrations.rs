//! Figure 11: migrations per second performed by the thermal balancing
//! policy, for both packages, as a function of the threshold, via the
//! Scenario API.
//!
//! Expected shape (paper): the migration rate decreases as the threshold
//! grows and is higher for the high-performance package; at roughly three
//! migrations per second and 64 kB per migration the overhead is about
//! 192 kB/s of shared-memory traffic, i.e. negligible.

use tbp_core::experiments::migration_rate_sweep_spec;
use tbp_core::scenario::RunReport;
use tbp_thermal::package::PackageKind;

fn main() {
    let spec = migration_rate_sweep_spec(tbp_bench::measured_duration());
    let Some(batch) = tbp_bench::run_cli("fig11", std::slice::from_ref(&spec)) else {
        return;
    };
    if tbp_bench::emit_structured(&batch) {
        return;
    }
    let reports = batch.group(&spec.name);
    let of_package = |package: PackageKind| -> Vec<&RunReport> {
        reports
            .iter()
            .copied()
            .filter(|r| r.package == Some(package))
            .collect()
    };
    let mobile = of_package(PackageKind::MobileEmbedded);
    let hiperf = of_package(PackageKind::HighPerformance);
    let rows: Vec<Vec<String>> = mobile
        .iter()
        .zip(&hiperf)
        .map(|(m, h)| {
            let ms = m.summary().expect("simulation report");
            let hs = h.summary().expect("simulation report");
            vec![
                format!("{:.0}", m.threshold.unwrap_or(f64::NAN)),
                format!("{:.2}", ms.migrations_per_second()),
                format!("{:.0}", ms.migrated_kib_per_second()),
                format!("{:.2}", hs.migrations_per_second()),
                format!("{:.0}", hs.migrated_kib_per_second()),
            ]
        })
        .collect();
    tbp_bench::print_table(
        "Figure 11 — migrations per second vs threshold (thermal balancing policy)",
        &[
            "threshold [°C]",
            "mobile [1/s]",
            "mobile [KiB/s]",
            "high-perf [1/s]",
            "high-perf [KiB/s]",
        ],
        &rows,
    );
}
