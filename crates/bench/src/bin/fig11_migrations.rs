//! Figure 11: migrations per second performed by the thermal balancing
//! policy, for both packages, as a function of the threshold.
//!
//! Expected shape (paper): the migration rate decreases as the threshold
//! grows and is higher for the high-performance package; at roughly three
//! migrations per second and 64 kB per migration the overhead is about
//! 192 kB/s of shared-memory traffic, i.e. negligible.

use tbp_core::experiments::run_migration_rate_sweep;

fn main() {
    let duration = tbp_bench::measured_duration();
    let points = tbp_bench::timed("fig11", || {
        run_migration_rate_sweep(duration).expect("sweep runs")
    });
    let half = points.len() / 2;
    let rows: Vec<Vec<String>> = (0..half)
        .map(|i| {
            let mobile = &points[i].summary;
            let hiperf = &points[half + i].summary;
            vec![
                format!("{:.0}", points[i].threshold),
                format!("{:.2}", mobile.migrations_per_second()),
                format!("{:.0}", mobile.migrated_kib_per_second()),
                format!("{:.2}", hiperf.migrations_per_second()),
                format!("{:.0}", hiperf.migrated_kib_per_second()),
            ]
        })
        .collect();
    tbp_bench::print_table(
        "Figure 11 — migrations per second vs threshold (thermal balancing policy)",
        &[
            "threshold [°C]",
            "mobile [1/s]",
            "mobile [KiB/s]",
            "high-perf [1/s]",
            "high-perf [KiB/s]",
        ],
        &rows,
    );
}
