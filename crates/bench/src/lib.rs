//! # tbp-bench — experiment harness for the DATE 2008 reproduction
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` at the workspace root for the experiment index), and the
//! Criterion benches in `benches/` time the simulation and policy kernels.
//!
//! The binaries print plain-text tables with the same rows/series the paper
//! reports; `reproduce_all` runs every experiment in sequence and is what
//! `EXPERIMENTS.md` is generated from.

#![deny(missing_docs)]

use std::time::Instant;

use tbp_arch::units::Seconds;
use tbp_core::experiments::SweepPoint;

/// Measured duration used by the figure experiments (seconds of simulated
/// time after the warm-up). Override with the `TBP_DURATION` environment
/// variable (e.g. `TBP_DURATION=5` for a quick pass).
pub fn measured_duration() -> Seconds {
    let secs = std::env::var("TBP_DURATION")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(20.0);
    Seconds::new(secs.max(1.0))
}

/// Prints a table header followed by aligned rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats sweep points as a threshold-indexed table of one metric per
/// policy, mirroring the layout of Figures 7–10.
pub fn sweep_table(points: &[SweepPoint], metric: impl Fn(&SweepPoint) -> f64) -> Vec<Vec<String>> {
    use std::collections::BTreeMap;
    let mut thresholds: Vec<f64> = points.iter().map(|p| p.threshold).collect();
    thresholds.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    thresholds.dedup();
    let mut policies: Vec<&'static str> = Vec::new();
    for p in points {
        if !policies.contains(&p.policy.label()) {
            policies.push(p.policy.label());
        }
    }
    let mut by_key: BTreeMap<(String, String), f64> = BTreeMap::new();
    for p in points {
        by_key.insert(
            (p.policy.label().to_string(), format!("{:.1}", p.threshold)),
            metric(p),
        );
    }
    thresholds
        .iter()
        .map(|t| {
            let mut row = vec![format!("{t:.0}")];
            for policy in &policies {
                let v = by_key
                    .get(&(policy.to_string(), format!("{t:.1}")))
                    .copied()
                    .unwrap_or(f64::NAN);
                row.push(format!("{v:.3}"));
            }
            row
        })
        .collect()
}

/// Runs a closure, printing how long it took in wall-clock time.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let result = f();
    eprintln!("[{label}] completed in {:.2} s", start.elapsed().as_secs_f64());
    result
}
