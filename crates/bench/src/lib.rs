//! # tbp-bench — experiment harness for the DATE 2008 reproduction
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper by
//! building a [`ScenarioSpec`] (or loading
//! one from the workspace's `scenarios/` directory), handing it to the
//! parallel [`Runner`] and rendering the
//! returned [`BatchReport`]. `reproduce_all` runs the whole evaluation from
//! the TOML scenario files.
//!
//! All binaries accept `--json` / `--csv` (or `TBP_FORMAT=json|csv`) to emit
//! the structured reports instead of plain-text tables, and honour
//! `TBP_DURATION=<seconds>` to shorten the measured window.
//!
//! Binaries that execute batches additionally accept (see [`run_cli`]):
//!
//! * `--cache-dir <dir>` (or `TBP_CACHE_DIR`) — memoize run reports in a
//!   content-addressed filesystem cache; warm re-runs simulate nothing.
//! * `--shard i/k` (or `TBP_SHARD`) — execute only the i-th of k contiguous
//!   shards of the batch and print a partial report (JSON) on stdout.
//! * `--lanes <n>` (or `TBP_LANES`) — step up to `n` compatible simulation
//!   misses in lockstep through one SIMD lane batch; output is byte-identical
//!   to `--lanes 1`.
//! * `--merge <file>...` — skip execution, merge previously emitted partial
//!   reports back into the full batch and render it as usual.
//! * `--metrics <file>` (or `TBP_METRICS`) — append a JSONL
//!   [`MetricsSnapshot`](tbp_obs::MetricsSnapshot) heartbeat line every
//!   ~500 ms while the batch runs (plus a final line), for live dashboards
//!   and `trace_tui`'s status bar.
//! * `--metrics-prom <file>` (or `TBP_METRICS_PROM`) — write a one-shot
//!   Prometheus-style exposition of the final metric values on completion.
//! * `--progress` (or `TBP_PROGRESS=1`) — print a `[progress]` line to
//!   stderr every ~500 ms (done/total, cache hits/misses, elapsed,
//!   aggregate steps/s). Off by default so existing stderr greps stay
//!   stable.
//!
//! None of the observability flags change what the binaries compute:
//! reports, CSVs and cache entries stay byte-identical with them on.

#![deny(missing_docs)]

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tbp_arch::units::Seconds;
use tbp_core::experiments::SweepPoint;
use tbp_core::scenario::{
    BatchReport, CacheMetrics, FsCache, PartialReport, RunReport, Runner, RunnerMetrics,
    ScenarioSpec, ShardPlan,
};
use tbp_obs::{MetricsRegistry, SnapshotEmitter};

/// Measured duration used by the figure experiments (seconds of simulated
/// time after the warm-up). Override with the `TBP_DURATION` environment
/// variable (e.g. `TBP_DURATION=5` for a quick pass).
pub fn measured_duration() -> Seconds {
    let secs = std::env::var("TBP_DURATION")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(20.0);
    Seconds::new(secs.max(1.0))
}

/// Output format of a bench binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFormat {
    /// Human-readable tables (the default).
    Table,
    /// The batch's JSON report on stdout.
    Json,
    /// The batch's CSV report on stdout.
    Csv,
}

/// The output format selected by `--json`/`--csv` or `TBP_FORMAT`.
pub fn report_format() -> ReportFormat {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--json") {
        return ReportFormat::Json;
    }
    if args.iter().any(|a| a == "--csv") {
        return ReportFormat::Csv;
    }
    match std::env::var("TBP_FORMAT").as_deref() {
        Ok("json") => ReportFormat::Json,
        Ok("csv") => ReportFormat::Csv,
        _ => ReportFormat::Table,
    }
}

/// Emits the batch in the selected structured format, returning `true` when
/// it did (callers then skip their table rendering).
pub fn emit_structured(batch: &BatchReport) -> bool {
    match report_format() {
        ReportFormat::Json => {
            println!("{}", batch.to_json());
            true
        }
        ReportFormat::Csv => {
            print!("{}", batch.to_csv());
            true
        }
        ReportFormat::Table => false,
    }
}

/// Prints a table header followed by aligned rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Prints an analytic table report.
pub fn print_table_report(table: &tbp_core::scenario::TableReport) {
    let header: Vec<&str> = table.header.iter().map(String::as_str).collect();
    print_table(&table.title, &header, &table.rows);
}

/// The distinct policies of a report group, in first-appearance order.
pub fn policy_columns<'a>(reports: &[&'a RunReport]) -> Vec<&'a str> {
    let mut policies: Vec<&str> = Vec::new();
    for report in reports {
        if let Some(policy) = report.policy.as_deref() {
            if !policies.contains(&policy) {
                policies.push(policy);
            }
        }
    }
    policies
}

/// Pivots simulation reports into a threshold-indexed table with one metric
/// column per policy — the layout of Figures 7–10.
pub fn pivot_threshold_policy(
    reports: &[&RunReport],
    metric: impl Fn(&RunReport) -> f64,
) -> Vec<Vec<String>> {
    let mut thresholds: Vec<f64> = reports.iter().filter_map(|r| r.threshold).collect();
    thresholds.sort_by(|a, b| a.partial_cmp(b).expect("thresholds are finite"));
    thresholds.dedup();
    let policies = policy_columns(reports);
    thresholds
        .iter()
        .map(|&threshold| {
            let mut row = vec![format!("{threshold:.0}")];
            for policy in &policies {
                let value = reports
                    .iter()
                    .find(|r| {
                        r.policy.as_deref() == Some(*policy) && r.threshold == Some(threshold)
                    })
                    .map(|r| metric(r))
                    .unwrap_or(f64::NAN);
                row.push(format!("{value:.3}"));
            }
            row
        })
        .collect()
}

/// One summary row per simulation report (generic fallback rendering).
pub fn summary_rows(reports: &[&RunReport]) -> Vec<Vec<String>> {
    reports
        .iter()
        .filter_map(|report| {
            let summary = report.summary()?;
            Some(vec![
                report.scenario.clone(),
                format!("{:.3}", summary.mean_spatial_std_dev()),
                format!("{:.2}", summary.mean_spread()),
                format!("{}", summary.qos.deadline_misses),
                format!("{:.2}", summary.migrations_per_second()),
                format!("{:.0}", summary.migrated_kib_per_second()),
            ])
        })
        .collect()
}

/// Header matching [`summary_rows`].
pub const SUMMARY_HEADER: [&str; 6] = [
    "scenario",
    "σ [°C]",
    "spread [°C]",
    "misses",
    "migrations/s",
    "KiB/s",
];

/// Formats sweep points as a threshold-indexed table of one metric per
/// policy (legacy layout over [`SweepPoint`]s).
pub fn sweep_table(points: &[SweepPoint], metric: impl Fn(&SweepPoint) -> f64) -> Vec<Vec<String>> {
    use std::collections::BTreeMap;
    let mut thresholds: Vec<f64> = points.iter().map(|p| p.threshold).collect();
    thresholds.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    thresholds.dedup();
    let mut policies: Vec<&'static str> = Vec::new();
    for p in points {
        if !policies.contains(&p.policy.label()) {
            policies.push(p.policy.label());
        }
    }
    let mut by_key: BTreeMap<(String, String), f64> = BTreeMap::new();
    for p in points {
        by_key.insert(
            (p.policy.label().to_string(), format!("{:.1}", p.threshold)),
            metric(p),
        );
    }
    thresholds
        .iter()
        .map(|t| {
            let mut row = vec![format!("{t:.0}")];
            for policy in &policies {
                let v = by_key
                    .get(&(policy.to_string(), format!("{t:.1}")))
                    .copied()
                    .unwrap_or(f64::NAN);
                row.push(format!("{v:.3}"));
            }
            row
        })
        .collect()
}

/// Batch-level CLI options shared by the bench binaries: caching, sharding
/// and partial-report merging.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BatchCli {
    /// Cache directory (`--cache-dir <dir>` or `TBP_CACHE_DIR`).
    pub cache_dir: Option<PathBuf>,
    /// Shard to execute (`--shard i/k` or `TBP_SHARD=i/k`).
    pub shard: Option<ShardPlan>,
    /// Directory for per-run binary traces (`--trace-dir <dir>` or
    /// `TBP_TRACE_DIR`).
    pub trace_dir: Option<PathBuf>,
    /// Lanes per batched simulation step (`--lanes <n>` or `TBP_LANES`);
    /// `None` means the classic one-simulation-per-run path.
    pub lanes: Option<usize>,
    /// Partial-report files to merge instead of executing (`--merge <f>...`).
    pub merge: Vec<PathBuf>,
    /// JSONL metrics heartbeat file (`--metrics <file>` or `TBP_METRICS`).
    pub metrics: Option<PathBuf>,
    /// One-shot Prometheus exposition file on completion
    /// (`--metrics-prom <file>` or `TBP_METRICS_PROM`).
    pub metrics_prom: Option<PathBuf>,
    /// Whether to print periodic `[progress]` lines to stderr
    /// (`--progress` or `TBP_PROGRESS=1`).
    pub progress: bool,
}

impl BatchCli {
    /// Whether the binary should merge partials instead of executing runs.
    pub fn is_merge(&self) -> bool {
        !self.merge.is_empty()
    }

    /// Whether any live-observability output was requested.
    pub fn wants_observability(&self) -> bool {
        self.metrics.is_some() || self.metrics_prom.is_some() || self.progress
    }
}

/// Parses the batch-level flags from the process arguments and environment.
///
/// A `--merge` invocation executes nothing, so combining it with `--shard`
/// or `--cache-dir` is rejected as a usage error rather than silently
/// ignoring the execution flags. The `TBP_CACHE_DIR`/`TBP_SHARD` environment
/// fallbacks are not applied in merge mode (a globally exported cache dir
/// must not break merge invocations).
///
/// # Panics
///
/// Panics with a usage message on malformed flags (a missing value after
/// `--cache-dir`/`--shard`/`--merge`, an unparsable shard, or `--merge`
/// combined with the execution flags).
pub fn batch_cli() -> BatchCli {
    let mut cli = parse_batch_cli(std::env::args().skip(1));
    if cli.is_merge() {
        return cli;
    }
    if cli.cache_dir.is_none() {
        if let Ok(dir) = std::env::var("TBP_CACHE_DIR") {
            cli.cache_dir = Some(PathBuf::from(dir));
        }
    }
    if cli.shard.is_none() {
        if let Ok(shard) = std::env::var("TBP_SHARD") {
            cli.shard = Some(ShardPlan::parse(&shard).expect("TBP_SHARD parses"));
        }
    }
    if cli.trace_dir.is_none() {
        if let Ok(dir) = std::env::var("TBP_TRACE_DIR") {
            cli.trace_dir = Some(PathBuf::from(dir));
        }
    }
    if cli.lanes.is_none() {
        if let Ok(lanes) = std::env::var("TBP_LANES") {
            cli.lanes = Some(lanes.parse().expect("TBP_LANES parses as a lane count"));
        }
    }
    if cli.metrics.is_none() {
        if let Ok(path) = std::env::var("TBP_METRICS") {
            cli.metrics = Some(PathBuf::from(path));
        }
    }
    if cli.metrics_prom.is_none() {
        if let Ok(path) = std::env::var("TBP_METRICS_PROM") {
            cli.metrics_prom = Some(PathBuf::from(path));
        }
    }
    if !cli.progress {
        if let Ok(value) = std::env::var("TBP_PROGRESS") {
            cli.progress = !matches!(value.as_str(), "" | "0");
        }
    }
    cli
}

fn parse_batch_cli(args: impl Iterator<Item = String>) -> BatchCli {
    let mut cli = BatchCli::default();
    // A flag's value must not itself look like a flag: `--cache-dir --csv`
    // is a forgotten value, not a directory named `--csv`.
    fn flag_value(args: &mut impl Iterator<Item = String>, flag: &str, what: &str) -> String {
        match args.next() {
            Some(value) if !value.starts_with("--") => value,
            _ => panic!("{flag} needs {what}"),
        }
    }
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cache-dir" => {
                let dir = flag_value(&mut args, "--cache-dir", "a directory");
                cli.cache_dir = Some(PathBuf::from(dir));
            }
            "--shard" => {
                let spec = flag_value(&mut args, "--shard", "an i/k value, e.g. 2/4");
                cli.shard = Some(ShardPlan::parse(&spec).expect("--shard value parses"));
            }
            "--trace-dir" => {
                let dir = flag_value(&mut args, "--trace-dir", "a directory");
                cli.trace_dir = Some(PathBuf::from(dir));
            }
            "--lanes" => {
                let lanes = flag_value(&mut args, "--lanes", "a lane count, e.g. 4");
                cli.lanes = Some(lanes.parse().expect("--lanes value parses"));
            }
            "--metrics" => {
                let path = flag_value(&mut args, "--metrics", "a file path");
                cli.metrics = Some(PathBuf::from(path));
            }
            "--metrics-prom" => {
                let path = flag_value(&mut args, "--metrics-prom", "a file path");
                cli.metrics_prom = Some(PathBuf::from(path));
            }
            "--progress" => {
                cli.progress = true;
            }
            "--merge" => {
                while let Some(path) = args.peek() {
                    if path.starts_with("--") {
                        break;
                    }
                    cli.merge.push(PathBuf::from(args.next().expect("peeked")));
                }
                assert!(
                    !cli.merge.is_empty(),
                    "--merge needs at least one partial-report file"
                );
            }
            _ => {}
        }
    }
    assert!(
        !(cli.is_merge()
            && (cli.shard.is_some()
                || cli.cache_dir.is_some()
                || cli.trace_dir.is_some()
                || cli.wants_observability())),
        "--merge executes nothing and cannot be combined with --shard, --cache-dir, \
         --trace-dir, --metrics, --metrics-prom or --progress"
    );
    cli
}

/// Executes `specs` honouring the batch-level flags, returning the batch to
/// render — or `None` in shard mode, where the partial report has already
/// been printed to stdout and the caller should simply exit.
///
/// * default — run the whole batch (optionally through the cache).
/// * `--shard i/k` — run one shard, print its [`PartialReport`] JSON.
/// * `--lanes <n>` — batch up to `n` compatible simulations per lockstep
///   group (byte-identical to the default path; applies to shards too).
/// * `--merge <file>...` — execute nothing; merge the partials instead.
///
/// With `--cache-dir`, a `[cache] hits=… misses=…` line is printed to stderr
/// after execution (the cached-reproduce CI job greps for `misses=0`).
///
/// # Panics
///
/// Panics with a descriptive message when a run fails, a partial file cannot
/// be read, or the partials do not merge — matching the fail-fast style of
/// the bench binaries.
pub fn run_cli(label: &str, specs: &[ScenarioSpec]) -> Option<BatchReport> {
    run_cli_with(&batch_cli(), label, specs)
}

/// [`run_cli`] with an already-parsed [`BatchCli`] — for binaries that also
/// need the options themselves (and must not parse the CLI twice).
///
/// # Panics
///
/// See [`run_cli`].
pub fn run_cli_with(cli: &BatchCli, label: &str, specs: &[ScenarioSpec]) -> Option<BatchReport> {
    if cli.is_merge() {
        let partials: Vec<PartialReport> = cli
            .merge
            .iter()
            .map(|path| {
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| panic!("cannot read partial {}: {e}", path.display()));
                PartialReport::from_json_str(&text)
                    .unwrap_or_else(|e| panic!("{}: {e}", path.display()))
            })
            .collect();
        // The partials must describe the batch *this* invocation would run,
        // or the rendered tables would silently pose as the local
        // configuration's results.
        let expected = tbp_core::scenario::batch_digest(specs)
            .expect("local specs expand to a digestible batch")
            .to_hex();
        if let Some(partial) = partials.iter().find(|p| p.batch != expected) {
            panic!(
                "partial reports were produced from a different batch than this \
                 invocation describes (digest {} vs local {expected}); check \
                 TBP_DURATION, TBP_SCENARIOS and the scenario files",
                partial.batch
            );
        }
        let batch = PartialReport::merge(partials)
            .unwrap_or_else(|e| panic!("partial reports do not merge: {e}"));
        return Some(batch);
    }
    let obs = LiveObs::start(cli);
    let mut runner = Runner::new();
    if let Some(lanes) = cli.lanes {
        runner = runner.with_lanes(lanes);
    }
    if let Some(dir) = &cli.trace_dir {
        runner = runner.with_trace_dir(dir.clone());
    }
    if let Some(obs) = &obs {
        runner = runner.with_metrics(RunnerMetrics::register(&obs.registry));
    }
    if let Some(dir) = &cli.cache_dir {
        let mut cache = FsCache::open(dir)
            .unwrap_or_else(|e| panic!("cannot open cache dir {}: {e}", dir.display()));
        if let Some(obs) = &obs {
            cache = cache.with_metrics(CacheMetrics::register(&obs.registry));
        }
        runner = runner.with_cache(cache);
    }
    if let Some(plan) = cli.shard {
        let partial = timed(label, || {
            runner
                .run_shard(specs, plan)
                .unwrap_or_else(|e| panic!("shard {plan} failed: {e}"))
        });
        eprintln!(
            "[shard {plan}] runs {}..{} of {}",
            partial.start,
            partial.start + partial.reports.len(),
            partial.total
        );
        if let Some(obs) = obs {
            obs.finish();
        }
        report_cache_stats(&runner, cli);
        println!("{}", partial.to_json());
        return None;
    }
    let batch = timed(label, || {
        runner
            .run(specs)
            .unwrap_or_else(|e| panic!("batch failed: {e}"))
    });
    if let Some(obs) = obs {
        obs.finish();
    }
    report_cache_stats(&runner, cli);
    Some(batch)
}

/// Live observability for one batch execution: the shared metrics registry
/// plus the background outputs requested on the CLI — a JSONL heartbeat
/// emitter, a `[progress]` stderr ticker and a Prometheus dump on
/// completion. Purely additive: attaching it never changes the reports.
struct LiveObs {
    registry: MetricsRegistry,
    started: Instant,
    emitter: Option<SnapshotEmitter>,
    progress: Option<ProgressTicker>,
    prom_path: Option<PathBuf>,
}

struct ProgressTicker {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl LiveObs {
    /// Interval between heartbeat lines and progress ticks.
    const INTERVAL: Duration = Duration::from_millis(500);

    fn start(cli: &BatchCli) -> Option<LiveObs> {
        if !cli.wants_observability() {
            return None;
        }
        let registry = MetricsRegistry::new();
        let emitter = cli.metrics.as_ref().map(|path| {
            SnapshotEmitter::spawn(registry.clone(), path, Self::INTERVAL)
                .unwrap_or_else(|e| panic!("cannot create metrics file {}: {e}", path.display()))
        });
        let progress = cli
            .progress
            .then(|| spawn_progress(registry.clone(), Self::INTERVAL));
        Some(LiveObs {
            registry,
            started: Instant::now(),
            emitter,
            progress,
            prom_path: cli.metrics_prom.clone(),
        })
    }

    /// Stops the background threads (each writes a final line) and dumps the
    /// Prometheus exposition when requested.
    fn finish(self) {
        if let Some(progress) = self.progress {
            progress.stop.store(true, Ordering::Relaxed);
            if let Some(handle) = progress.handle {
                let _ = handle.join();
            }
        }
        if let Some(emitter) = self.emitter {
            if let Err(e) = emitter.finish() {
                eprintln!("[metrics] heartbeat write failed: {e}");
            }
        }
        if let Some(path) = &self.prom_path {
            let elapsed = self.started.elapsed().as_secs_f64();
            let text = self.registry.snapshot(elapsed).to_prometheus();
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("[metrics] cannot write {}: {e}", path.display());
            }
        }
    }
}

/// Starts the `[progress]` stderr ticker: one line per interval and a final
/// line when stopped. Steps/s is the delta of the aggregate `sim.steps`
/// counter over the tick, covering every concurrent worker and lane.
fn spawn_progress(registry: MetricsRegistry, interval: Duration) -> ProgressTicker {
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("tbp-progress".into())
        .spawn(move || {
            let start = Instant::now();
            let tick = Duration::from_millis(20);
            let mut last_steps = 0u64;
            let mut last_at = start;
            loop {
                let deadline = Instant::now() + interval;
                let mut stopping = false;
                while Instant::now() < deadline {
                    if thread_stop.load(Ordering::Relaxed) {
                        stopping = true;
                        break;
                    }
                    std::thread::sleep(tick);
                }
                let snap = registry.snapshot(start.elapsed().as_secs_f64());
                let steps = snap.counter("sim.steps").unwrap_or(0);
                let now = Instant::now();
                let dt = now.duration_since(last_at).as_secs_f64().max(1e-9);
                let steps_per_s = steps.saturating_sub(last_steps) as f64 / dt;
                last_steps = steps;
                last_at = now;
                eprintln!(
                    "[progress] {}/{} hits={} misses={} elapsed={:.1}s steps/s={:.0}",
                    snap.counter("runner.scenarios_completed").unwrap_or(0),
                    snap.gauge("runner.scenarios_total").unwrap_or(0.0) as u64,
                    snap.counter("runner.cache_hits").unwrap_or(0),
                    snap.counter("runner.cache_misses").unwrap_or(0),
                    now.duration_since(start).as_secs_f64(),
                    steps_per_s,
                );
                if stopping {
                    return;
                }
            }
        })
        .expect("progress thread spawns");
    ProgressTicker {
        stop,
        handle: Some(handle),
    }
}

fn report_cache_stats(runner: &Runner, cli: &BatchCli) {
    if cli.cache_dir.is_some() {
        let stats = runner.stats();
        eprintln!(
            "[cache] hits={} misses={} (simulated={} analytic={})",
            stats.cache_hits,
            stats.misses(),
            stats.simulated,
            stats.analytic
        );
    }
}

/// Runs a closure, printing how long it took in wall-clock time.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let result = f();
    eprintln!(
        "[{label}] completed in {:.2} s",
        start.elapsed().as_secs_f64()
    );
    result
}

/// The workspace's `scenarios/` directory (override with `TBP_SCENARIOS`).
pub fn scenarios_dir() -> std::path::PathBuf {
    match std::env::var("TBP_SCENARIOS") {
        Ok(dir) => std::path::PathBuf::from(dir),
        Err(_) => std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios"),
    }
}

/// Applies the `TBP_DURATION` override to a loaded scenario's measured
/// duration.
pub fn override_duration(
    spec: tbp_core::scenario::ScenarioSpec,
    duration: Seconds,
) -> tbp_core::scenario::ScenarioSpec {
    let warmup = spec.schedule().warmup.as_secs();
    spec.with_schedule(warmup, duration.as_secs())
}

/// Loads scenario TOML files the way every batch binary does, applying the
/// `TBP_DURATION` override to each non-analysis spec *when the variable is
/// set* (an unset variable leaves the files' own schedules untouched).
///
/// A file that cannot be read or parsed is a runtime failure: the process
/// exits via [`fail`] with a one-line diagnostic naming the file.
pub fn load_scenarios(paths: &[PathBuf]) -> Vec<ScenarioSpec> {
    let duration = std::env::var("TBP_DURATION")
        .ok()
        .map(|_| measured_duration());
    paths
        .iter()
        .map(|path| {
            let spec = tbp_core::scenario::load_toml_file(path)
                .unwrap_or_else(|e| fail(format!("cannot load scenario {}: {e}", path.display())));
            match duration {
                Some(duration) if spec.analysis.is_none() => override_duration(spec, duration),
                _ => spec,
            }
        })
        .collect()
}

/// Exit code for runtime failures (missing file, failed run, unreachable
/// coordinator). See [`fail`].
pub const EXIT_FAILURE: i32 = 1;

/// Exit code for usage errors (unknown flag, missing argument, malformed
/// value). See [`fail_usage`].
pub const EXIT_USAGE: i32 = 2;

/// Prints a one-line `error:` diagnostic to stderr and exits with
/// [`EXIT_FAILURE`] — the binaries' runtime-failure path (a file that does
/// not exist, a coordinator that never answers).
pub fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(EXIT_FAILURE);
}

/// Prints a one-line `error:` diagnostic to stderr and exits with
/// [`EXIT_USAGE`] — the binaries' bad-invocation path (unknown flag, missing
/// value, malformed spec).
pub fn fail_usage(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(EXIT_USAGE);
}

/// Converts any panic reaching the top of a binary into a one-line `error:`
/// diagnostic and a [`EXIT_USAGE`] exit.
///
/// The shared flag parsers (behind [`batch_cli`] and friends) report bad
/// invocations by panicking — convenient in tests (`#[should_panic]`), but a
/// binary must not greet a typo with a backtrace. Binaries call this first
/// thing in `main`; explicit runtime failures still use [`fail`] and keep
/// exit code [`EXIT_FAILURE`].
pub fn exit_cleanly_on_panic() {
    std::panic::set_hook(Box::new(|info| {
        let msg = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| info.payload().downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "unexpected internal failure".to_string());
        eprintln!("error: {msg}");
        std::process::exit(EXIT_USAGE);
    }));
}

/// The metrics half of the batch runner's live observability, public for
/// binaries (the `sweep_coord` /
/// `sweep_worker` pair) whose instrumented subject is not a [`Runner`] batch:
/// a shared registry plus the `--metrics` JSONL heartbeat emitter and the
/// `--metrics-prom` completion dump. Attaching it never changes what the
/// binary computes.
pub struct MetricsOutputs {
    registry: MetricsRegistry,
    started: Instant,
    emitter: Option<SnapshotEmitter>,
    prom_path: Option<PathBuf>,
}

impl MetricsOutputs {
    /// Creates the registry and starts the requested background outputs:
    /// `metrics` appends a JSONL snapshot every ~500 ms, `prom` receives a
    /// one-shot Prometheus exposition in [`finish`](Self::finish).
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the JSONL file cannot be created.
    pub fn start(
        metrics: Option<&std::path::Path>,
        prom: Option<&std::path::Path>,
    ) -> std::io::Result<MetricsOutputs> {
        let registry = MetricsRegistry::new();
        let emitter = match metrics {
            Some(path) => Some(SnapshotEmitter::spawn(
                registry.clone(),
                path,
                Duration::from_millis(500),
            )?),
            None => None,
        };
        Ok(MetricsOutputs {
            registry,
            started: Instant::now(),
            emitter,
            prom_path: prom.map(|p| p.to_path_buf()),
        })
    }

    /// The registry to hang instruments off (e.g.
    /// [`CoordMetrics::register`](tbp_sweepd::CoordMetrics::register)).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Stops the heartbeat emitter (which writes a final line) and dumps the
    /// Prometheus exposition when requested. Failures are reported to stderr
    /// but not fatal — observability never sinks a finished run.
    pub fn finish(self) {
        if let Some(emitter) = self.emitter {
            if let Err(e) = emitter.finish() {
                eprintln!("[metrics] heartbeat write failed: {e}");
            }
        }
        if let Some(path) = &self.prom_path {
            let elapsed = self.started.elapsed().as_secs_f64();
            let text = self.registry.snapshot(elapsed).to_prometheus();
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("[metrics] cannot write {}: {e}", path.display());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> BatchCli {
        parse_batch_cli(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn no_batch_flags_parse_to_defaults() {
        assert_eq!(parse(&[]), BatchCli::default());
        // Unrelated flags (--json/--csv and friends) are ignored here.
        assert_eq!(parse(&["--csv", "whatever"]), BatchCli::default());
    }

    #[test]
    fn cache_dir_and_shard_take_one_value_each() {
        let cli = parse(&["--cache-dir", "cache/", "--shard", "2/4"]);
        assert_eq!(
            cli.cache_dir.as_deref(),
            Some(std::path::Path::new("cache/"))
        );
        let plan = cli.shard.expect("shard parsed");
        assert_eq!((plan.index(), plan.count()), (2, 4));
        assert!(!cli.is_merge());
        // A repeated flag follows last-wins.
        let cli = parse(&["--shard", "1/4", "--shard", "3/4"]);
        assert_eq!(cli.shard.expect("shard parsed").index(), 3);
    }

    #[test]
    fn trace_dir_takes_one_value() {
        let cli = parse(&["--trace-dir", "traces/"]);
        assert_eq!(
            cli.trace_dir.as_deref(),
            Some(std::path::Path::new("traces/"))
        );
    }

    #[test]
    #[should_panic(expected = "--trace-dir needs a directory")]
    fn trace_dir_rejects_a_missing_value() {
        parse(&["--trace-dir"]);
    }

    #[test]
    fn lanes_takes_one_numeric_value() {
        assert_eq!(parse(&["--lanes", "4"]).lanes, Some(4));
        assert_eq!(parse(&[]).lanes, None);
    }

    #[test]
    #[should_panic(expected = "--lanes value parses")]
    fn lanes_rejects_a_non_numeric_value() {
        parse(&["--lanes", "many"]);
    }

    #[test]
    fn merge_consumes_files_until_the_next_flag() {
        let cli = parse(&["--merge", "a.json", "b.json", "--csv"]);
        assert_eq!(
            cli.merge,
            vec![PathBuf::from("a.json"), PathBuf::from("b.json")]
        );
        assert!(cli.is_merge());
    }

    #[test]
    #[should_panic(expected = "--cache-dir needs a directory")]
    fn cache_dir_rejects_a_flag_as_its_value() {
        parse(&["--cache-dir", "--csv"]);
    }

    #[test]
    #[should_panic(expected = "--shard needs an i/k value")]
    fn shard_rejects_a_missing_value() {
        parse(&["--shard"]);
    }

    #[test]
    #[should_panic(expected = "--merge needs at least one partial-report file")]
    fn merge_rejects_an_empty_file_list() {
        parse(&["--merge", "--csv"]);
    }

    #[test]
    #[should_panic(expected = "cannot be combined")]
    fn merge_rejects_execution_flags() {
        parse(&["--shard", "2/3", "--merge", "a.json"]);
    }

    #[test]
    fn metrics_flags_take_one_value_each() {
        let cli = parse(&["--metrics", "m.jsonl", "--metrics-prom", "m.prom"]);
        assert_eq!(
            cli.metrics.as_deref(),
            Some(std::path::Path::new("m.jsonl"))
        );
        assert_eq!(
            cli.metrics_prom.as_deref(),
            Some(std::path::Path::new("m.prom"))
        );
        assert!(cli.wants_observability());
        assert!(!parse(&[]).wants_observability());
    }

    #[test]
    fn progress_is_a_bare_flag_and_off_by_default() {
        assert!(parse(&["--progress"]).progress);
        assert!(!parse(&[]).progress);
    }

    #[test]
    #[should_panic(expected = "--metrics needs a file path")]
    fn metrics_rejects_a_flag_as_its_value() {
        parse(&["--metrics", "--csv"]);
    }

    #[test]
    #[should_panic(expected = "cannot be combined")]
    fn merge_rejects_observability_flags() {
        parse(&["--progress", "--merge", "a.json"]);
    }
}
