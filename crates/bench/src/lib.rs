//! # tbp-bench — experiment harness for the DATE 2008 reproduction
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper by
//! building a [`ScenarioSpec`](tbp_core::scenario::ScenarioSpec) (or loading
//! one from the workspace's `scenarios/` directory), handing it to the
//! parallel [`Runner`](tbp_core::scenario::Runner) and rendering the
//! returned [`BatchReport`]. `reproduce_all` runs the whole evaluation from
//! the TOML scenario files.
//!
//! All binaries accept `--json` / `--csv` (or `TBP_FORMAT=json|csv`) to emit
//! the structured reports instead of plain-text tables, and honour
//! `TBP_DURATION=<seconds>` to shorten the measured window.

#![deny(missing_docs)]

use std::time::Instant;

use tbp_arch::units::Seconds;
use tbp_core::experiments::SweepPoint;
use tbp_core::scenario::{BatchReport, RunReport};

/// Measured duration used by the figure experiments (seconds of simulated
/// time after the warm-up). Override with the `TBP_DURATION` environment
/// variable (e.g. `TBP_DURATION=5` for a quick pass).
pub fn measured_duration() -> Seconds {
    let secs = std::env::var("TBP_DURATION")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(20.0);
    Seconds::new(secs.max(1.0))
}

/// Output format of a bench binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFormat {
    /// Human-readable tables (the default).
    Table,
    /// The batch's JSON report on stdout.
    Json,
    /// The batch's CSV report on stdout.
    Csv,
}

/// The output format selected by `--json`/`--csv` or `TBP_FORMAT`.
pub fn report_format() -> ReportFormat {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--json") {
        return ReportFormat::Json;
    }
    if args.iter().any(|a| a == "--csv") {
        return ReportFormat::Csv;
    }
    match std::env::var("TBP_FORMAT").as_deref() {
        Ok("json") => ReportFormat::Json,
        Ok("csv") => ReportFormat::Csv,
        _ => ReportFormat::Table,
    }
}

/// Emits the batch in the selected structured format, returning `true` when
/// it did (callers then skip their table rendering).
pub fn emit_structured(batch: &BatchReport) -> bool {
    match report_format() {
        ReportFormat::Json => {
            println!("{}", batch.to_json());
            true
        }
        ReportFormat::Csv => {
            print!("{}", batch.to_csv());
            true
        }
        ReportFormat::Table => false,
    }
}

/// Prints a table header followed by aligned rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Prints an analytic table report.
pub fn print_table_report(table: &tbp_core::scenario::TableReport) {
    let header: Vec<&str> = table.header.iter().map(String::as_str).collect();
    print_table(&table.title, &header, &table.rows);
}

/// The distinct policies of a report group, in first-appearance order.
pub fn policy_columns<'a>(reports: &[&'a RunReport]) -> Vec<&'a str> {
    let mut policies: Vec<&str> = Vec::new();
    for report in reports {
        if let Some(policy) = report.policy.as_deref() {
            if !policies.contains(&policy) {
                policies.push(policy);
            }
        }
    }
    policies
}

/// Pivots simulation reports into a threshold-indexed table with one metric
/// column per policy — the layout of Figures 7–10.
pub fn pivot_threshold_policy(
    reports: &[&RunReport],
    metric: impl Fn(&RunReport) -> f64,
) -> Vec<Vec<String>> {
    let mut thresholds: Vec<f64> = reports.iter().filter_map(|r| r.threshold).collect();
    thresholds.sort_by(|a, b| a.partial_cmp(b).expect("thresholds are finite"));
    thresholds.dedup();
    let policies = policy_columns(reports);
    thresholds
        .iter()
        .map(|&threshold| {
            let mut row = vec![format!("{threshold:.0}")];
            for policy in &policies {
                let value = reports
                    .iter()
                    .find(|r| {
                        r.policy.as_deref() == Some(*policy) && r.threshold == Some(threshold)
                    })
                    .map(|r| metric(r))
                    .unwrap_or(f64::NAN);
                row.push(format!("{value:.3}"));
            }
            row
        })
        .collect()
}

/// One summary row per simulation report (generic fallback rendering).
pub fn summary_rows(reports: &[&RunReport]) -> Vec<Vec<String>> {
    reports
        .iter()
        .filter_map(|report| {
            let summary = report.summary()?;
            Some(vec![
                report.scenario.clone(),
                format!("{:.3}", summary.mean_spatial_std_dev()),
                format!("{:.2}", summary.mean_spread()),
                format!("{}", summary.qos.deadline_misses),
                format!("{:.2}", summary.migrations_per_second()),
                format!("{:.0}", summary.migrated_kib_per_second()),
            ])
        })
        .collect()
}

/// Header matching [`summary_rows`].
pub const SUMMARY_HEADER: [&str; 6] = [
    "scenario",
    "σ [°C]",
    "spread [°C]",
    "misses",
    "migrations/s",
    "KiB/s",
];

/// Formats sweep points as a threshold-indexed table of one metric per
/// policy (legacy layout over [`SweepPoint`]s).
pub fn sweep_table(points: &[SweepPoint], metric: impl Fn(&SweepPoint) -> f64) -> Vec<Vec<String>> {
    use std::collections::BTreeMap;
    let mut thresholds: Vec<f64> = points.iter().map(|p| p.threshold).collect();
    thresholds.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    thresholds.dedup();
    let mut policies: Vec<&'static str> = Vec::new();
    for p in points {
        if !policies.contains(&p.policy.label()) {
            policies.push(p.policy.label());
        }
    }
    let mut by_key: BTreeMap<(String, String), f64> = BTreeMap::new();
    for p in points {
        by_key.insert(
            (p.policy.label().to_string(), format!("{:.1}", p.threshold)),
            metric(p),
        );
    }
    thresholds
        .iter()
        .map(|t| {
            let mut row = vec![format!("{t:.0}")];
            for policy in &policies {
                let v = by_key
                    .get(&(policy.to_string(), format!("{t:.1}")))
                    .copied()
                    .unwrap_or(f64::NAN);
                row.push(format!("{v:.3}"));
            }
            row
        })
        .collect()
}

/// Runs a closure, printing how long it took in wall-clock time.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let result = f();
    eprintln!(
        "[{label}] completed in {:.2} s",
        start.elapsed().as_secs_f64()
    );
    result
}

/// The workspace's `scenarios/` directory (override with `TBP_SCENARIOS`).
pub fn scenarios_dir() -> std::path::PathBuf {
    match std::env::var("TBP_SCENARIOS") {
        Ok(dir) => std::path::PathBuf::from(dir),
        Err(_) => std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios"),
    }
}

/// Applies the `TBP_DURATION` override to a loaded scenario's measured
/// duration.
pub fn override_duration(
    spec: tbp_core::scenario::ScenarioSpec,
    duration: Seconds,
) -> tbp_core::scenario::ScenarioSpec {
    let warmup = spec.schedule().warmup.as_secs();
    spec.with_schedule(warmup, duration.as_secs())
}
