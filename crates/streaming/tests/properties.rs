//! Property-based tests of the streaming framework's data structures.

use proptest::prelude::*;

use tbp_arch::units::Seconds;
use tbp_os::task::TaskId;
use tbp_streaming::frame::{Frame, FrameId};
use tbp_streaming::graph::{PipelineGraph, StageDescriptor};
use tbp_streaming::pipeline::{PipelineConfig, PipelineRuntime};
use tbp_streaming::queue::FrameQueue;
use tbp_streaming::sdr::kernels::{FirFilter, WeightedMixer};
use tbp_streaming::workload::{SplitMix64, SyntheticWorkload, WorkloadSpec};
use tbp_streaming::workloads::{WorkloadParams, WorkloadRegistry};

proptest! {
    /// Queues never exceed their capacity, never report negative occupancy,
    /// and account every push as either stored or overflowed.
    #[test]
    fn queue_accounting_is_exact(capacity in 1usize..64, ops in proptest::collection::vec(any::<bool>(), 1..200)) {
        let mut queue = FrameQueue::new(capacity).unwrap();
        let mut pushes = 0u64;
        let mut pops = 0u64;
        for (i, op) in ops.iter().enumerate() {
            if *op {
                queue.push(Frame::new(FrameId(i as u64), Seconds::ZERO));
                pushes += 1;
            } else {
                if queue.pop().is_some() {
                    pops += 1;
                }
            }
            prop_assert!(queue.len() <= capacity);
        }
        let stats = queue.stats();
        prop_assert_eq!(stats.pushed + stats.overflows, pushes);
        prop_assert_eq!(stats.popped, pops);
        prop_assert_eq!(queue.len() as u64, stats.pushed - stats.popped);
    }

    /// Any linear chain of stages is a valid graph whose topological order
    /// preserves the chain order.
    #[test]
    fn chains_are_valid_pipelines(len in 2usize..12) {
        let mut graph = PipelineGraph::new();
        let ids: Vec<_> = (0..len)
            .map(|i| {
                graph
                    .add_stage(StageDescriptor::new(&format!("s{i}"), TaskId(i), 1e5))
                    .unwrap()
            })
            .collect();
        for pair in ids.windows(2) {
            graph.connect(pair[0], pair[1]).unwrap();
        }
        prop_assert!(graph.validate().is_ok());
        let order = graph.topological_order().unwrap();
        prop_assert_eq!(order, ids);
    }

    /// A pipeline fed exactly its required cycle budget never misses a
    /// deadline, for any queue capacity and any start-up buffering of at
    /// least one frame (with zero pre-buffering the very first deadline can
    /// legitimately fall inside the pipeline's fill latency).
    #[test]
    fn provisioned_pipelines_never_miss(capacity in 2usize..16, prefill_frac in 0.2f64..=1.0) {
        let mut graph = PipelineGraph::new();
        let a = graph.add_stage(StageDescriptor::new("a", TaskId(0), 1e6)).unwrap();
        let b = graph.add_stage(StageDescriptor::new("b", TaskId(1), 1e6)).unwrap();
        graph.connect(a, b).unwrap();
        let prefill = ((capacity as f64 * prefill_frac) as usize).clamp(1, capacity);
        let config = PipelineConfig {
            frame_period: Seconds::from_millis(25.0),
            queue_capacity: capacity,
            prefill,
        };
        let mut runtime = PipelineRuntime::new(graph, config).unwrap();
        // 5 ms steps, 2e5 cycles per step = 1e6 cycles per 25 ms period.
        for _ in 0..2_000 {
            runtime.step(Seconds::from_millis(5.0), &[2e5, 2e5]);
        }
        prop_assert_eq!(runtime.qos().deadline_misses, 0);
        prop_assert!(runtime.qos().frames_delivered > 0);
    }

    /// Synthetic workloads always respect their specification.
    #[test]
    fn synthetic_workloads_respect_their_spec(seed in any::<u64>(), tasks in 1usize..20, cores in 1usize..8) {
        let spec = WorkloadSpec {
            num_tasks: tasks,
            num_cores: cores,
            total_fse_load: 0.4 * cores as f64,
            seed,
            ..WorkloadSpec::default_mixed()
        };
        let workload = SyntheticWorkload::generate(&spec).unwrap();
        prop_assert_eq!(workload.tasks.len(), tasks);
        for (task, core) in workload.tasks.iter().zip(&workload.placement) {
            prop_assert!(task.validate().is_ok());
            prop_assert!(core.index() < cores);
        }
        let total = workload.total_fse_load();
        prop_assert!(total <= 0.4 * cores as f64 + 1e-6);
    }

    /// Every registered generator is a pure function of its parameters:
    /// the same seed reproduces the identical workload (task set, placement
    /// and pipeline plan), and every output passes structural validation.
    #[test]
    fn generators_are_deterministic_and_valid(seed in any::<u64>(), cores in 3usize..8) {
        let registry = WorkloadRegistry::with_builtins();
        let params = WorkloadParams { seed, num_cores: cores, ..WorkloadParams::default() };
        for name in registry.names() {
            let a = registry.generate(&name, &params).unwrap();
            let b = registry.generate(&name, &params).unwrap();
            prop_assert_eq!(&a, &b, "generator `{}` must be deterministic", name);
            prop_assert!(a.validate().is_ok());
            for core in &a.placement {
                prop_assert!(core.index() < cores);
            }
        }
    }

    /// Seeded generators produce *different* workloads for different seeds
    /// (the SDR benchmark and the idle workload are fully specified and
    /// legitimately seed-independent).
    #[test]
    fn seeded_generators_differ_across_seeds(seed in any::<u64>()) {
        let registry = WorkloadRegistry::with_builtins();
        let base = WorkloadParams::default();
        // Always a different seed: the offset is in 1..=1000, never zero.
        let other = WorkloadParams {
            seed: base.seed.wrapping_add(1 + seed % 1000),
            ..base.clone()
        };
        for name in ["synthetic", "video-analytics", "dag"] {
            let a = registry.generate(name, &base).unwrap();
            let b = registry.generate(name, &other).unwrap();
            prop_assert_ne!(a, b, "generator `{}` must depend on the seed", name);
        }
    }

    /// Generated DAG pipelines are acyclic with positive per-stage loads and
    /// cycle counts, for any depth/width/skew combination.
    #[test]
    fn generated_dags_are_acyclic_with_positive_loads(
        seed in any::<u64>(),
        depth in 1usize..5,
        width in 1usize..6,
        skew in 0.0f64..2.0,
    ) {
        let registry = WorkloadRegistry::with_builtins();
        let mut params = WorkloadParams { seed, ..WorkloadParams::default() };
        params.dag.depth = Some(depth);
        params.dag.width = Some(width);
        params.dag.skew = Some(skew);
        let generated = registry.generate("dag", &params).unwrap();
        prop_assert_eq!(generated.tasks.len(), depth * width + 2);
        for task in &generated.tasks {
            prop_assert!(task.fse_load > 0.0 && task.fse_load <= 1.0);
        }
        let plan = generated.pipeline.as_ref().unwrap();
        prop_assert!(plan.graph.topological_order().is_ok(), "DAG must be acyclic");
        prop_assert_eq!(plan.graph.sources().len(), 1);
        prop_assert_eq!(plan.graph.sinks().len(), 1);
        for stage in plan.graph.stages() {
            prop_assert!(stage.cycles_per_frame > 0.0);
            prop_assert!(stage.task.index() < generated.tasks.len());
        }
    }

    /// The deterministic PRNG stays inside [0, 1) and is reproducible.
    #[test]
    fn splitmix_is_reproducible(seed in any::<u64>()) {
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        for _ in 0..32 {
            let va = a.next_f64();
            prop_assert!((0.0..1.0).contains(&va));
            prop_assert_eq!(va, b.next_f64());
        }
    }

    /// DSP sanity: a FIR low-pass has unit DC gain and the mixer is linear in
    /// its inputs.
    #[test]
    fn fir_dc_gain_and_mixer_linearity(gain in 0.1f64..4.0, level in 0.1f64..2.0) {
        let mut fir = FirFilter::low_pass(0.2, 31);
        let dc: Vec<f64> = vec![level; 400];
        let out = fir.process_block(&dc);
        let settled = out.last().copied().unwrap();
        prop_assert!((settled - level).abs() < 1e-6 * level.max(1.0) + 1e-9);

        let mixer = WeightedMixer::new(vec![gain]);
        let mixed = mixer.mix(&[vec![level, 2.0 * level]]);
        prop_assert!((mixed[0] - gain * level).abs() < 1e-12);
        prop_assert!((mixed[1] - gain * 2.0 * level).abs() < 1e-12);
    }
}
