//! Pipeline graphs: stages connected by queues.
//!
//! A streaming application is a directed acyclic graph of stages. Each stage
//! is backed by an OS task (so it runs on whichever core that task currently
//! occupies) and needs a fixed number of processor cycles per frame. Edges
//! become bounded message queues at run time.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

use tbp_os::task::TaskId;

use crate::error::StreamError;

/// Identifier of a pipeline stage.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct StageId(pub usize);

impl StageId {
    /// Index of the stage as a `usize`.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stage{}", self.0)
    }
}

/// Static description of a pipeline stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageDescriptor {
    /// Human-readable name (e.g. `LPF`, `DEMOD`).
    pub name: String,
    /// The OS task executing this stage.
    pub task: TaskId,
    /// Processor cycles (at the maximum frequency) needed to process one
    /// frame.
    pub cycles_per_frame: f64,
}

impl StageDescriptor {
    /// Creates a stage descriptor.
    pub fn new(name: &str, task: TaskId, cycles_per_frame: f64) -> Self {
        StageDescriptor {
            name: name.to_string(),
            task,
            cycles_per_frame,
        }
    }
}

/// A directed acyclic graph of pipeline stages.
///
/// ```
/// use tbp_streaming::graph::{PipelineGraph, StageDescriptor};
/// use tbp_os::task::TaskId;
///
/// # fn main() -> Result<(), tbp_streaming::StreamError> {
/// let mut graph = PipelineGraph::new();
/// let a = graph.add_stage(StageDescriptor::new("producer", TaskId(0), 1_000.0))?;
/// let b = graph.add_stage(StageDescriptor::new("consumer", TaskId(1), 2_000.0))?;
/// graph.connect(a, b)?;
/// graph.validate()?;
/// assert_eq!(graph.sources(), vec![a]);
/// assert_eq!(graph.sinks(), vec![b]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PipelineGraph {
    stages: Vec<StageDescriptor>,
    edges: Vec<(StageId, StageId)>,
}

impl PipelineGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        PipelineGraph::default()
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Returns `true` when the graph has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// All stage descriptors, indexed by stage id.
    pub fn stages(&self) -> &[StageDescriptor] {
        &self.stages
    }

    /// All edges (producer, consumer).
    pub fn edges(&self) -> &[(StageId, StageId)] {
        &self.edges
    }

    /// The descriptor of a stage.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::UnknownStage`] for an out-of-range id.
    pub fn stage(&self, id: StageId) -> Result<&StageDescriptor, StreamError> {
        self.stages
            .get(id.index())
            .ok_or(StreamError::UnknownStage(id))
    }

    /// Adds a stage and returns its identifier.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InvalidConfig`] for a non-positive
    /// cycles-per-frame figure.
    pub fn add_stage(&mut self, descriptor: StageDescriptor) -> Result<StageId, StreamError> {
        if !(descriptor.cycles_per_frame.is_finite() && descriptor.cycles_per_frame > 0.0) {
            return Err(StreamError::InvalidConfig(format!(
                "cycles per frame of `{}` must be positive",
                descriptor.name
            )));
        }
        self.stages.push(descriptor);
        Ok(StageId(self.stages.len() - 1))
    }

    /// Connects `from` to `to` with a queue.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::UnknownStage`] for out-of-range ids and
    /// [`StreamError::InvalidGraph`] for self-loops or duplicate edges.
    pub fn connect(&mut self, from: StageId, to: StageId) -> Result<(), StreamError> {
        if from.index() >= self.stages.len() {
            return Err(StreamError::UnknownStage(from));
        }
        if to.index() >= self.stages.len() {
            return Err(StreamError::UnknownStage(to));
        }
        if from == to {
            return Err(StreamError::InvalidGraph("self-loop".into()));
        }
        if self.edges.contains(&(from, to)) {
            return Err(StreamError::InvalidGraph(format!(
                "duplicate edge {from} -> {to}"
            )));
        }
        self.edges.push((from, to));
        Ok(())
    }

    /// Stages with no incoming edge (fed by the external input).
    pub fn sources(&self) -> Vec<StageId> {
        (0..self.stages.len())
            .map(StageId)
            .filter(|&s| !self.edges.iter().any(|&(_, to)| to == s))
            .collect()
    }

    /// Stages with no outgoing edge (feeding the external consumer).
    pub fn sinks(&self) -> Vec<StageId> {
        (0..self.stages.len())
            .map(StageId)
            .filter(|&s| !self.edges.iter().any(|&(from, _)| from == s))
            .collect()
    }

    /// Stages feeding directly into `stage`.
    pub fn predecessors(&self, stage: StageId) -> Vec<StageId> {
        self.edges
            .iter()
            .filter(|&&(_, to)| to == stage)
            .map(|&(from, _)| from)
            .collect()
    }

    /// Stages fed directly by `stage`.
    pub fn successors(&self, stage: StageId) -> Vec<StageId> {
        self.edges
            .iter()
            .filter(|&&(from, _)| from == stage)
            .map(|&(_, to)| to)
            .collect()
    }

    /// A topological ordering of the stages.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InvalidGraph`] when the graph contains a cycle.
    pub fn topological_order(&self) -> Result<Vec<StageId>, StreamError> {
        let n = self.stages.len();
        let mut in_degree = vec![0usize; n];
        for &(_, to) in &self.edges {
            in_degree[to.index()] += 1;
        }
        let mut queue: VecDeque<StageId> = (0..n)
            .map(StageId)
            .filter(|s| in_degree[s.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(stage) = queue.pop_front() {
            order.push(stage);
            for succ in self.successors(stage) {
                in_degree[succ.index()] -= 1;
                if in_degree[succ.index()] == 0 {
                    queue.push_back(succ);
                }
            }
        }
        if order.len() != n {
            return Err(StreamError::InvalidGraph(
                "pipeline graph contains a cycle".into(),
            ));
        }
        Ok(order)
    }

    /// Validates the graph: non-empty, acyclic, with at least one source and
    /// one sink.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InvalidGraph`] when any condition is violated.
    pub fn validate(&self) -> Result<(), StreamError> {
        if self.stages.is_empty() {
            return Err(StreamError::InvalidGraph("no stages".into()));
        }
        self.topological_order()?;
        if self.sources().is_empty() {
            return Err(StreamError::InvalidGraph("no source stage".into()));
        }
        if self.sinks().is_empty() {
            return Err(StreamError::InvalidGraph("no sink stage".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> (PipelineGraph, StageId, StageId, StageId) {
        let mut g = PipelineGraph::new();
        let a = g
            .add_stage(StageDescriptor::new("a", TaskId(0), 1e3))
            .unwrap();
        let b = g
            .add_stage(StageDescriptor::new("b", TaskId(1), 1e3))
            .unwrap();
        let c = g
            .add_stage(StageDescriptor::new("c", TaskId(2), 1e3))
            .unwrap();
        g.connect(a, b).unwrap();
        g.connect(b, c).unwrap();
        (g, a, b, c)
    }

    #[test]
    fn stage_bookkeeping() {
        let (g, a, b, c) = chain();
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
        assert!(PipelineGraph::new().is_empty());
        assert_eq!(g.stage(a).unwrap().name, "a");
        assert!(g.stage(StageId(9)).is_err());
        assert_eq!(g.stages().len(), 3);
        assert_eq!(g.edges().len(), 2);
        assert_eq!(g.sources(), vec![a]);
        assert_eq!(g.sinks(), vec![c]);
        assert_eq!(g.predecessors(b), vec![a]);
        assert_eq!(g.successors(b), vec![c]);
        assert_eq!(StageId(2).to_string(), "stage2");
        assert_eq!(StageId(2).index(), 2);
    }

    #[test]
    fn invalid_stages_and_edges_rejected() {
        let mut g = PipelineGraph::new();
        assert!(g
            .add_stage(StageDescriptor::new("bad", TaskId(0), 0.0))
            .is_err());
        assert!(g
            .add_stage(StageDescriptor::new("bad", TaskId(0), f64::NAN))
            .is_err());
        let a = g
            .add_stage(StageDescriptor::new("a", TaskId(0), 1.0))
            .unwrap();
        let b = g
            .add_stage(StageDescriptor::new("b", TaskId(1), 1.0))
            .unwrap();
        assert!(g.connect(a, StageId(9)).is_err());
        assert!(g.connect(StageId(9), b).is_err());
        assert!(g.connect(a, a).is_err());
        g.connect(a, b).unwrap();
        assert!(g.connect(a, b).is_err());
    }

    #[test]
    fn topological_order_and_cycle_detection() {
        let (g, a, b, c) = chain();
        assert_eq!(g.topological_order().unwrap(), vec![a, b, c]);
        assert!(g.validate().is_ok());

        let mut cyclic = g.clone();
        cyclic.connect(c, a).unwrap();
        assert!(cyclic.topological_order().is_err());
        assert!(cyclic.validate().is_err());

        assert!(PipelineGraph::new().validate().is_err());
    }

    #[test]
    fn fork_join_topology() {
        // a -> {b, c} -> d, like DEMOD feeding the parallel BPF bank.
        let mut g = PipelineGraph::new();
        let a = g
            .add_stage(StageDescriptor::new("a", TaskId(0), 1.0))
            .unwrap();
        let b = g
            .add_stage(StageDescriptor::new("b", TaskId(1), 1.0))
            .unwrap();
        let c = g
            .add_stage(StageDescriptor::new("c", TaskId(2), 1.0))
            .unwrap();
        let d = g
            .add_stage(StageDescriptor::new("d", TaskId(3), 1.0))
            .unwrap();
        g.connect(a, b).unwrap();
        g.connect(a, c).unwrap();
        g.connect(b, d).unwrap();
        g.connect(c, d).unwrap();
        assert!(g.validate().is_ok());
        assert_eq!(g.sources(), vec![a]);
        assert_eq!(g.sinks(), vec![d]);
        assert_eq!(g.predecessors(d).len(), 2);
        let order = g.topological_order().unwrap();
        assert_eq!(order[0], a);
        assert_eq!(order[3], d);
    }
}
