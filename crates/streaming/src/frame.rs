//! Frames flowing through the pipeline.

use serde::{Deserialize, Serialize};
use std::fmt;

use tbp_arch::units::Seconds;

/// Identifier of a frame, assigned sequentially by the source.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct FrameId(pub u64);

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame{}", self.0)
    }
}

/// A unit of streaming work: one block of samples moving through the
/// pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Sequential identifier.
    pub id: FrameId,
    /// Simulated time at which the source produced the frame.
    pub produced_at: Seconds,
}

impl Frame {
    /// Creates a frame.
    pub fn new(id: FrameId, produced_at: Seconds) -> Self {
        Frame { id, produced_at }
    }

    /// Age of the frame at time `now`.
    pub fn age_at(&self, now: Seconds) -> Seconds {
        now.saturating_sub(self.produced_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_identity_and_age() {
        let f = Frame::new(FrameId(3), Seconds::from_millis(20.0));
        assert_eq!(f.id, FrameId(3));
        assert_eq!(f.id.to_string(), "frame3");
        assert!((f.age_at(Seconds::from_millis(50.0)).as_millis() - 30.0).abs() < 1e-9);
        // Age never goes negative.
        assert_eq!(f.age_at(Seconds::from_millis(10.0)), Seconds::ZERO);
    }
}
