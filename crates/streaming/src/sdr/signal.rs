//! FM test-signal generation.
//!
//! The examples exercise the SDR pipeline end-to-end on synthetic input: an
//! FM-modulated carrier whose baseband message is a sum of audio tones. The
//! generator produces the I/Q samples the low-pass filter and demodulator
//! consume.

use std::f64::consts::PI;

/// Generator of an FM-modulated I/Q stream.
#[derive(Debug, Clone, PartialEq)]
pub struct FmSignalGenerator {
    sample_rate: f64,
    deviation: f64,
    message_tones: Vec<(f64, f64)>,
    phase: f64,
    sample_index: u64,
}

impl FmSignalGenerator {
    /// Creates a generator.
    ///
    /// * `sample_rate` — samples per second of the produced I/Q stream;
    /// * `deviation` — peak frequency deviation of the FM modulation in Hz;
    /// * `message_tones` — `(frequency, amplitude)` pairs of the baseband
    ///   message (amplitudes should sum to at most 1).
    ///
    /// # Panics
    ///
    /// Panics if the sample rate or deviation is not positive.
    pub fn new(sample_rate: f64, deviation: f64, message_tones: Vec<(f64, f64)>) -> Self {
        assert!(sample_rate > 0.0, "sample rate must be positive");
        assert!(deviation > 0.0, "deviation must be positive");
        FmSignalGenerator {
            sample_rate,
            deviation,
            message_tones,
            phase: 0.0,
            sample_index: 0,
        }
    }

    /// A generator resembling a mono FM broadcast: 48 kHz sampling, 5 kHz
    /// deviation, a 1 kHz + 3 kHz message.
    pub fn broadcast_default() -> Self {
        FmSignalGenerator::new(48_000.0, 5_000.0, vec![(1_000.0, 0.6), (3_000.0, 0.3)])
    }

    /// The configured sample rate.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// The instantaneous baseband message value at sample index `n`.
    pub fn message_at(&self, n: u64) -> f64 {
        let t = n as f64 / self.sample_rate;
        self.message_tones
            .iter()
            .map(|(f, a)| a * (2.0 * PI * f * t).sin())
            .sum()
    }

    /// Generates the next I/Q sample.
    pub fn next_sample(&mut self) -> (f64, f64) {
        let message = self.message_at(self.sample_index);
        self.sample_index += 1;
        let freq = self.deviation * message;
        self.phase += 2.0 * PI * freq / self.sample_rate;
        // Keep the phase bounded for numerical hygiene on long runs.
        if self.phase > 2.0 * PI {
            self.phase -= 2.0 * PI;
        } else if self.phase < -2.0 * PI {
            self.phase += 2.0 * PI;
        }
        (self.phase.cos(), self.phase.sin())
    }

    /// Generates a block of `n` I/Q samples.
    pub fn block(&mut self, n: usize) -> Vec<(f64, f64)> {
        (0..n).map(|_| self.next_sample()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sdr::kernels::FmDemodulator;

    #[test]
    fn samples_have_unit_magnitude() {
        let mut generator = FmSignalGenerator::broadcast_default();
        assert_eq!(generator.sample_rate(), 48_000.0);
        for (i, q) in generator.block(1_000) {
            let mag = (i * i + q * q).sqrt();
            assert!((mag - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn demodulating_recovers_the_message() {
        let mut generator = FmSignalGenerator::new(48_000.0, 5_000.0, vec![(500.0, 0.8)]);
        let iq = generator.block(9_600); // 200 ms
        let mut demod = FmDemodulator::new();
        let out = demod.process_block(&iq);
        // The demodulated output should correlate strongly with the original
        // message (up to a constant scale factor 2π·dev/fs).
        let scale = 2.0 * PI * 5_000.0 / 48_000.0;
        let mut num = 0.0;
        let mut den = 0.0;
        for (n, &o) in out.iter().enumerate().skip(10) {
            let expected = scale * generator.message_at(n as u64);
            num += (o - expected).abs();
            den += expected.abs();
        }
        assert!(
            num / den < 0.05,
            "relative demodulation error {}",
            num / den
        );
    }

    #[test]
    #[should_panic(expected = "sample rate")]
    fn rejects_bad_sample_rate() {
        let _ = FmSignalGenerator::new(0.0, 1.0, vec![]);
    }

    #[test]
    #[should_panic(expected = "deviation")]
    fn rejects_bad_deviation() {
        let _ = FmSignalGenerator::new(48_000.0, 0.0, vec![]);
    }
}
