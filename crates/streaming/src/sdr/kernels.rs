//! DSP kernels of the SDR pipeline.
//!
//! The co-simulation drives the pipeline with abstract loads, but the crate
//! also ships working signal-processing kernels so the examples can run the
//! radio end-to-end on generated samples: a windowed-sinc FIR low-pass filter
//! (LPF), a quadrature FM discriminator (DEMOD), biquad band-pass filters
//! (BPF) and the weighted-sum consumer (Σ).

use std::f64::consts::PI;

/// A finite-impulse-response filter applied by direct convolution.
#[derive(Debug, Clone, PartialEq)]
pub struct FirFilter {
    taps: Vec<f64>,
    state: Vec<f64>,
}

impl FirFilter {
    /// Designs a low-pass filter with the given normalised cutoff
    /// (`cutoff` = f_c / f_s, in `(0, 0.5)`) and number of taps, using a
    /// Hamming-windowed sinc.
    ///
    /// # Panics
    ///
    /// Panics if `taps` is zero or `cutoff` is outside `(0, 0.5)`.
    pub fn low_pass(cutoff: f64, taps: usize) -> Self {
        assert!(taps > 0, "FIR filter needs at least one tap");
        assert!(
            cutoff > 0.0 && cutoff < 0.5,
            "normalised cutoff must be in (0, 0.5)"
        );
        let m = (taps - 1) as f64;
        let mut coeffs = Vec::with_capacity(taps);
        for n in 0..taps {
            let x = n as f64 - m / 2.0;
            let sinc = if x.abs() < 1e-12 {
                2.0 * cutoff
            } else {
                (2.0 * PI * cutoff * x).sin() / (PI * x)
            };
            let window = 0.54 - 0.46 * (2.0 * PI * n as f64 / m.max(1.0)).cos();
            coeffs.push(sinc * window);
        }
        // Normalise to unit DC gain.
        let sum: f64 = coeffs.iter().sum();
        if sum.abs() > 1e-12 {
            for c in &mut coeffs {
                *c /= sum;
            }
        }
        FirFilter {
            state: vec![0.0; coeffs.len()],
            taps: coeffs,
        }
    }

    /// The filter coefficients.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Filters one sample.
    pub fn process_sample(&mut self, sample: f64) -> f64 {
        self.state.rotate_right(1);
        self.state[0] = sample;
        self.taps.iter().zip(&self.state).map(|(t, s)| t * s).sum()
    }

    /// Filters a block of samples into a new vector.
    pub fn process_block(&mut self, samples: &[f64]) -> Vec<f64> {
        samples.iter().map(|&s| self.process_sample(s)).collect()
    }

    /// Clears the filter state.
    pub fn reset(&mut self) {
        self.state.iter_mut().for_each(|s| *s = 0.0);
    }
}

/// Quadrature FM discriminator: recovers the instantaneous frequency of an
/// I/Q stream, which is the demodulated audio for an FM signal.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FmDemodulator {
    prev_i: f64,
    prev_q: f64,
}

impl FmDemodulator {
    /// Creates a demodulator with zeroed history.
    pub fn new() -> Self {
        FmDemodulator::default()
    }

    /// Demodulates one I/Q sample pair, returning the instantaneous phase
    /// increment (proportional to the modulating signal).
    pub fn process_sample(&mut self, i: f64, q: f64) -> f64 {
        // d/dt arg(z) approximated by arg(z[n] * conj(z[n-1])).
        let re = i * self.prev_i + q * self.prev_q;
        let im = q * self.prev_i - i * self.prev_q;
        self.prev_i = i;
        self.prev_q = q;
        im.atan2(re)
    }

    /// Demodulates a block of I/Q pairs.
    pub fn process_block(&mut self, iq: &[(f64, f64)]) -> Vec<f64> {
        iq.iter().map(|&(i, q)| self.process_sample(i, q)).collect()
    }
}

/// A biquad band-pass filter (constant-skirt-gain RBJ design).
#[derive(Debug, Clone, PartialEq)]
pub struct BandPassFilter {
    b0: f64,
    b1: f64,
    b2: f64,
    a1: f64,
    a2: f64,
    x1: f64,
    x2: f64,
    y1: f64,
    y2: f64,
}

impl BandPassFilter {
    /// Designs a band-pass biquad centred at the normalised frequency
    /// `center` (= f_0 / f_s) with the given quality factor.
    ///
    /// # Panics
    ///
    /// Panics if `center` is outside `(0, 0.5)` or `q` is not positive.
    pub fn new(center: f64, q: f64) -> Self {
        assert!(center > 0.0 && center < 0.5, "centre must be in (0, 0.5)");
        assert!(q > 0.0, "Q must be positive");
        let w0 = 2.0 * PI * center;
        let alpha = w0.sin() / (2.0 * q);
        let a0 = 1.0 + alpha;
        BandPassFilter {
            b0: alpha / a0,
            b1: 0.0,
            b2: -alpha / a0,
            a1: -2.0 * w0.cos() / a0,
            a2: (1.0 - alpha) / a0,
            x1: 0.0,
            x2: 0.0,
            y1: 0.0,
            y2: 0.0,
        }
    }

    /// Filters one sample.
    pub fn process_sample(&mut self, x: f64) -> f64 {
        let y = self.b0 * x + self.b1 * self.x1 + self.b2 * self.x2
            - self.a1 * self.y1
            - self.a2 * self.y2;
        self.x2 = self.x1;
        self.x1 = x;
        self.y2 = self.y1;
        self.y1 = y;
        y
    }

    /// Filters a block of samples.
    pub fn process_block(&mut self, samples: &[f64]) -> Vec<f64> {
        samples.iter().map(|&s| self.process_sample(s)).collect()
    }

    /// Clears the filter state.
    pub fn reset(&mut self) {
        self.x1 = 0.0;
        self.x2 = 0.0;
        self.y1 = 0.0;
        self.y2 = 0.0;
    }
}

/// The Σ consumer: mixes the equalised bands with per-band gains.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedMixer {
    gains: Vec<f64>,
}

impl WeightedMixer {
    /// Creates a mixer with one gain per band.
    ///
    /// # Panics
    ///
    /// Panics if `gains` is empty.
    pub fn new(gains: Vec<f64>) -> Self {
        assert!(!gains.is_empty(), "mixer needs at least one band");
        WeightedMixer { gains }
    }

    /// The per-band gains.
    pub fn gains(&self) -> &[f64] {
        &self.gains
    }

    /// Mixes aligned blocks (one block per band) into a single output block.
    /// Bands shorter than the longest block contribute zeros beyond their
    /// end; extra bands beyond the configured gains are ignored.
    pub fn mix(&self, bands: &[Vec<f64>]) -> Vec<f64> {
        let len = bands.iter().map(|b| b.len()).max().unwrap_or(0);
        let mut out = vec![0.0; len];
        for (band, gain) in bands.iter().zip(&self.gains) {
            for (o, &s) in out.iter_mut().zip(band) {
                *o += gain * s;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, sample_rate: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * PI * freq * i as f64 / sample_rate).sin())
            .collect()
    }

    fn rms(samples: &[f64]) -> f64 {
        (samples.iter().map(|s| s * s).sum::<f64>() / samples.len() as f64).sqrt()
    }

    #[test]
    fn low_pass_keeps_low_and_attenuates_high_frequencies() {
        let sample_rate = 48_000.0;
        let mut lpf = FirFilter::low_pass(0.1, 63); // cutoff at 4.8 kHz
        let low = tone(1_000.0, sample_rate, 4_000);
        let low_out = lpf.process_block(&low);
        lpf.reset();
        let high = tone(15_000.0, sample_rate, 4_000);
        let high_out = lpf.process_block(&high);
        // Skip the transient when measuring.
        let low_gain = rms(&low_out[500..]) / rms(&low[500..]);
        let high_gain = rms(&high_out[500..]) / rms(&high[500..]);
        assert!(low_gain > 0.9, "passband gain was {low_gain}");
        assert!(high_gain < 0.1, "stopband gain was {high_gain}");
        assert_eq!(lpf.taps().len(), 63);
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn low_pass_rejects_bad_cutoff() {
        let _ = FirFilter::low_pass(0.7, 31);
    }

    #[test]
    fn fm_demodulator_recovers_constant_frequency() {
        // An I/Q tone at a constant frequency offset demodulates to a
        // constant value proportional to that offset.
        let sample_rate = 48_000.0;
        let offset = 3_000.0;
        let mut demod = FmDemodulator::new();
        let iq: Vec<(f64, f64)> = (0..2_000)
            .map(|n| {
                let phase = 2.0 * PI * offset * n as f64 / sample_rate;
                (phase.cos(), phase.sin())
            })
            .collect();
        let out = demod.process_block(&iq);
        let expected = 2.0 * PI * offset / sample_rate;
        for &v in &out[10..] {
            assert!((v - expected).abs() < 1e-6, "got {v}, expected {expected}");
        }
    }

    #[test]
    fn fm_demodulator_tracks_modulation_sign() {
        let sample_rate = 48_000.0;
        let mut demod = FmDemodulator::new();
        // Negative frequency offset -> negative output.
        let iq: Vec<(f64, f64)> = (0..500)
            .map(|n| {
                let phase = -2.0 * PI * 2_000.0 * n as f64 / sample_rate;
                (phase.cos(), phase.sin())
            })
            .collect();
        let out = demod.process_block(&iq);
        assert!(out[100] < 0.0);
    }

    #[test]
    fn band_pass_selects_its_band() {
        let sample_rate = 48_000.0;
        let mut bpf = BandPassFilter::new(2_000.0 / sample_rate, 1.0);
        let in_band = tone(2_000.0, sample_rate, 4_000);
        let in_band_out = bpf.process_block(&in_band);
        bpf.reset();
        let out_of_band = tone(12_000.0, sample_rate, 4_000);
        let out_of_band_out = bpf.process_block(&out_of_band);
        let g_in = rms(&in_band_out[1000..]) / rms(&in_band[1000..]);
        let g_out = rms(&out_of_band_out[1000..]) / rms(&out_of_band[1000..]);
        assert!(g_in > 0.7, "in-band gain {g_in}");
        assert!(g_out < 0.3, "out-of-band gain {g_out}");
        assert!(g_in > 3.0 * g_out);
    }

    #[test]
    #[should_panic(expected = "Q must be positive")]
    fn band_pass_rejects_bad_q() {
        let _ = BandPassFilter::new(0.1, 0.0);
    }

    #[test]
    fn mixer_applies_gains() {
        let mixer = WeightedMixer::new(vec![1.0, 0.5, 0.25]);
        assert_eq!(mixer.gains().len(), 3);
        let bands = vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![4.0, 4.0]];
        let out = mixer.mix(&bands);
        assert_eq!(out, vec![3.0, 3.0]);
        // Ragged bands are padded with silence.
        let ragged = vec![vec![1.0, 1.0, 1.0], vec![2.0]];
        let out = mixer.mix(&ragged);
        assert_eq!(out, vec![2.0, 1.0, 1.0]);
        assert!(mixer.mix(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one band")]
    fn mixer_rejects_empty_gains() {
        let _ = WeightedMixer::new(vec![]);
    }
}
