//! The Software Defined FM Radio benchmark (Figure 6 / Table 2).
//!
//! The application digests PCM samples of a radio signal: a low-pass filter
//! (LPF) cuts frequencies beyond the radio bandwidth, a demodulator (DEMOD)
//! shifts the signal to baseband, a bank of parallel band-pass filters
//! (BPF1..BPF3) equalises the audio, and a consumer (Σ) mixes the bands with
//! different gains into the final output.
//!
//! [`SdrBenchmark`] packages the task set, the Table 2 loads, the paper's
//! initial energy-balanced mapping onto three cores and the pipeline graph.
//! The [`kernels`] and [`signal`] sub-modules provide real DSP code so the
//! examples can process an actual FM signal rather than synthetic load only.

pub mod kernels;
pub mod signal;

use serde::{Deserialize, Serialize};

use tbp_arch::core::CoreId;
use tbp_arch::units::{Bytes, Seconds};
use tbp_os::task::TaskDescriptor;

use crate::error::StreamError;
use crate::graph::{PipelineGraph, StageDescriptor};
use crate::pipeline::PipelineConfig;

/// Maximum frequency of the paper's DVFS scale, used to convert Table 2
/// utilisations into full-speed-equivalent loads.
const F_MAX_MHZ: f64 = 533.0;

/// One row of Table 2: a task, the core it is initially mapped to, the
/// frequency of that core and the utilisation ("Load [%]") the paper lists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SdrMappingEntry {
    /// Task name (`LPF`, `DEMOD`, `BPF1`, `BPF2`, `BPF3`, `SUM`).
    pub name: String,
    /// Core the task is initially mapped to.
    pub core: CoreId,
    /// Frequency (MHz) of that core in the energy-balanced configuration.
    pub core_frequency_mhz: f64,
    /// Utilisation of the task at that frequency, as listed in Table 2 (%).
    pub load_percent: f64,
}

impl SdrMappingEntry {
    /// The task's full-speed-equivalent load (fraction of a 533 MHz core).
    pub fn fse_load(&self) -> f64 {
        self.load_percent / 100.0 * self.core_frequency_mhz / F_MAX_MHZ
    }
}

/// The SDR benchmark: tasks, mapping and pipeline graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SdrBenchmark {
    mapping: Vec<SdrMappingEntry>,
    context_size: Bytes,
    checkpoint_period: Seconds,
    pipeline: PipelineConfig,
}

impl SdrBenchmark {
    /// The benchmark exactly as configured in Table 2 of the paper:
    ///
    /// | core / freq.        | task  | load  |
    /// |---------------------|-------|-------|
    /// | Core 1 (533 MHz)    | BPF1  | 36.7 %|
    /// |                     | DEMOD | 28.3 %|
    /// | Core 2 (266 MHz)    | BPF2  | 60.9 %|
    /// |                     | Σ     |  6.2 %|
    /// | Core 3 (266 MHz)    | BPF3  | 60.9 %|
    /// |                     | LPF   | 18.8 %|
    ///
    /// with 64 kB migratable contexts (the OS minimum allocation), 50 ms
    /// checkpoints and the default 25 ms / 11-frame pipeline configuration.
    pub fn paper_default() -> Self {
        let mapping = vec![
            SdrMappingEntry {
                name: "BPF1".into(),
                core: CoreId(0),
                core_frequency_mhz: 533.0,
                load_percent: 36.7,
            },
            SdrMappingEntry {
                name: "DEMOD".into(),
                core: CoreId(0),
                core_frequency_mhz: 533.0,
                load_percent: 28.3,
            },
            SdrMappingEntry {
                name: "BPF2".into(),
                core: CoreId(1),
                core_frequency_mhz: 266.0,
                load_percent: 60.9,
            },
            SdrMappingEntry {
                name: "SUM".into(),
                core: CoreId(1),
                core_frequency_mhz: 266.0,
                load_percent: 6.2,
            },
            SdrMappingEntry {
                name: "BPF3".into(),
                core: CoreId(2),
                core_frequency_mhz: 266.0,
                load_percent: 60.9,
            },
            SdrMappingEntry {
                name: "LPF".into(),
                core: CoreId(2),
                core_frequency_mhz: 266.0,
                load_percent: 18.8,
            },
        ];
        SdrBenchmark {
            mapping,
            context_size: Bytes::from_kib(64),
            checkpoint_period: Seconds::from_millis(50.0),
            pipeline: PipelineConfig::paper_default(),
        }
    }

    /// Overrides the pipeline configuration (frame period, queue sizes).
    pub fn with_pipeline_config(mut self, config: PipelineConfig) -> Self {
        self.pipeline = config;
        self
    }

    /// Overrides the migratable context size of every task.
    pub fn with_context_size(mut self, size: Bytes) -> Self {
        self.context_size = size;
        self
    }

    /// Overrides the checkpoint period of every task.
    pub fn with_checkpoint_period(mut self, period: Seconds) -> Self {
        self.checkpoint_period = period;
        self
    }

    /// The Table 2 mapping.
    pub fn mapping(&self) -> &[SdrMappingEntry] {
        &self.mapping
    }

    /// The pipeline configuration.
    pub fn pipeline_config(&self) -> &PipelineConfig {
        &self.pipeline
    }

    /// OS task descriptors for every SDR task, in [`mapping`](Self::mapping)
    /// order (so the task spawned from entry *i* implements stage *i*).
    pub fn tasks(&self) -> Vec<TaskDescriptor> {
        self.mapping
            .iter()
            .map(|entry| {
                TaskDescriptor::new(&entry.name, entry.fse_load(), self.context_size)
                    .with_checkpoint_period(self.checkpoint_period)
            })
            .collect()
    }

    /// Cores the tasks are initially mapped to, in the same order as
    /// [`tasks`](Self::tasks).
    pub fn initial_placement(&self) -> Vec<CoreId> {
        self.mapping.iter().map(|entry| entry.core).collect()
    }

    /// Total full-speed-equivalent load of the application.
    pub fn total_fse_load(&self) -> f64 {
        self.mapping.iter().map(|e| e.fse_load()).sum()
    }

    /// Builds the Figure 6 pipeline graph. `task_ids[i]` must be the OS task
    /// spawned from the *i*-th entry of [`tasks`](Self::tasks).
    ///
    /// The graph is `LPF → DEMOD → {BPF1, BPF2, BPF3} → Σ`.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InvalidConfig`] when fewer than six task ids are
    /// provided.
    pub fn build_graph(
        &self,
        task_ids: &[tbp_os::task::TaskId],
    ) -> Result<PipelineGraph, StreamError> {
        if task_ids.len() < self.mapping.len() {
            return Err(StreamError::InvalidConfig(format!(
                "need {} task ids, got {}",
                self.mapping.len(),
                task_ids.len()
            )));
        }
        // Cycles per frame derived from the FSE load: a task with load L
        // consumes L * f_max cycles per second, i.e. L * f_max * period per
        // frame.
        let period = self.pipeline.frame_period.as_secs();
        let cpf = |idx: usize| self.mapping[idx].fse_load() * F_MAX_MHZ * 1e6 * period;

        let mut graph = PipelineGraph::new();
        // Mapping order: 0 BPF1, 1 DEMOD, 2 BPF2, 3 SUM, 4 BPF3, 5 LPF.
        let bpf1 = graph.add_stage(StageDescriptor::new("BPF1", task_ids[0], cpf(0)))?;
        let demod = graph.add_stage(StageDescriptor::new("DEMOD", task_ids[1], cpf(1)))?;
        let bpf2 = graph.add_stage(StageDescriptor::new("BPF2", task_ids[2], cpf(2)))?;
        let sum = graph.add_stage(StageDescriptor::new("SUM", task_ids[3], cpf(3)))?;
        let bpf3 = graph.add_stage(StageDescriptor::new("BPF3", task_ids[4], cpf(4)))?;
        let lpf = graph.add_stage(StageDescriptor::new("LPF", task_ids[5], cpf(5)))?;

        graph.connect(lpf, demod)?;
        graph.connect(demod, bpf1)?;
        graph.connect(demod, bpf2)?;
        graph.connect(demod, bpf3)?;
        graph.connect(bpf1, sum)?;
        graph.connect(bpf2, sum)?;
        graph.connect(bpf3, sum)?;
        graph.validate()?;
        Ok(graph)
    }
}

impl Default for SdrBenchmark {
    fn default() -> Self {
        SdrBenchmark::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbp_os::task::TaskId;

    #[test]
    fn table2_mapping_is_reproduced() {
        let sdr = SdrBenchmark::paper_default();
        assert_eq!(sdr.mapping().len(), 6);
        let bpf1 = &sdr.mapping()[0];
        assert_eq!(bpf1.name, "BPF1");
        assert_eq!(bpf1.core, CoreId(0));
        assert!((bpf1.load_percent - 36.7).abs() < 1e-9);
        assert!((bpf1.core_frequency_mhz - 533.0).abs() < 1e-9);
        // Core 1's tasks sum to 65 % utilisation at 533 MHz.
        let core0_util: f64 = sdr
            .mapping()
            .iter()
            .filter(|e| e.core == CoreId(0))
            .map(|e| e.load_percent)
            .sum();
        assert!((core0_util - 65.0).abs() < 1e-9);
        // Cores 2 and 3 both carry 67.1 % at 266 MHz.
        for core in [CoreId(1), CoreId(2)] {
            let util: f64 = sdr
                .mapping()
                .iter()
                .filter(|e| e.core == core)
                .map(|e| e.load_percent)
                .sum();
            assert!(util > 65.0 && util < 80.0);
        }
        assert_eq!(SdrBenchmark::default(), sdr);
    }

    #[test]
    fn fse_loads_are_frequency_scaled() {
        let sdr = SdrBenchmark::paper_default();
        // BPF1 runs at the maximum frequency: FSE = 36.7 %.
        assert!((sdr.mapping()[0].fse_load() - 0.367).abs() < 1e-9);
        // BPF2 runs at 266 MHz: FSE = 60.9 % * 266/533 ≈ 30.4 %.
        assert!((sdr.mapping()[2].fse_load() - 0.304).abs() < 0.01);
        // Total FSE fits on 3 cores with DVFS (< 3.0) but not on one core.
        let total = sdr.total_fse_load();
        assert!(total > 1.0 && total < 1.6);
    }

    #[test]
    fn tasks_and_placement_are_consistent() {
        let sdr = SdrBenchmark::paper_default();
        let tasks = sdr.tasks();
        let placement = sdr.initial_placement();
        assert_eq!(tasks.len(), 6);
        assert_eq!(placement.len(), 6);
        for (task, entry) in tasks.iter().zip(sdr.mapping()) {
            assert_eq!(task.name, entry.name);
            assert!((task.fse_load - entry.fse_load()).abs() < 1e-12);
            assert_eq!(task.context_size, Bytes::from_kib(64));
            assert!(task.migratable);
        }
        let custom = SdrBenchmark::paper_default()
            .with_context_size(Bytes::from_kib(128))
            .with_checkpoint_period(Seconds::from_millis(20.0));
        assert_eq!(custom.tasks()[0].context_size, Bytes::from_kib(128));
        assert_eq!(
            custom.tasks()[0].checkpoint_period,
            Seconds::from_millis(20.0)
        );
    }

    #[test]
    fn graph_matches_figure6_topology() {
        let sdr = SdrBenchmark::paper_default();
        let ids: Vec<TaskId> = (0..6).map(TaskId).collect();
        let graph = sdr.build_graph(&ids).unwrap();
        assert_eq!(graph.len(), 6);
        // LPF is the only source, SUM the only sink.
        let sources = graph.sources();
        let sinks = graph.sinks();
        assert_eq!(sources.len(), 1);
        assert_eq!(sinks.len(), 1);
        assert_eq!(graph.stage(sources[0]).unwrap().name, "LPF");
        assert_eq!(graph.stage(sinks[0]).unwrap().name, "SUM");
        // The SUM stage joins the three BPF branches.
        assert_eq!(graph.predecessors(sinks[0]).len(), 3);
        // Cycles per frame follow the FSE loads (BPF2 ≈ BPF3 > DEMOD > SUM).
        let cpf = |name: &str| {
            graph
                .stages()
                .iter()
                .find(|s| s.name == name)
                .unwrap()
                .cycles_per_frame
        };
        assert!(cpf("BPF1") > cpf("DEMOD"));
        assert!(cpf("DEMOD") > cpf("SUM"));
        assert!((cpf("BPF2") - cpf("BPF3")).abs() < 1e-6);
        // Too few task ids is an error.
        assert!(sdr.build_graph(&ids[..3]).is_err());
    }

    #[test]
    fn pipeline_config_override() {
        let cfg = PipelineConfig {
            frame_period: Seconds::from_millis(40.0),
            queue_capacity: 5,
            prefill: 2,
        };
        let sdr = SdrBenchmark::paper_default().with_pipeline_config(cfg);
        assert_eq!(sdr.pipeline_config().queue_capacity, 5);
        let ids: Vec<TaskId> = (0..6).map(TaskId).collect();
        let graph = sdr.build_graph(&ids).unwrap();
        // Longer frame period -> proportionally more cycles per frame.
        let default_graph = SdrBenchmark::paper_default().build_graph(&ids).unwrap();
        let ratio = graph.stages()[0].cycles_per_frame / default_graph.stages()[0].cycles_per_frame;
        assert!((ratio - 40.0 / 25.0).abs() < 1e-9);
    }
}
