//! Bounded inter-task frame queues.
//!
//! "Communication among tasks is done using message queues, each task reads
//! data from its input queue and sends the results to the output queue"
//! (Section 5.1). The queue depth is the knob that decides whether the
//! pipeline can ride out a migration freeze: the paper reports that a queue
//! size of 11 frames was the minimum that sustained thermal balancing without
//! QoS loss.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

use crate::error::StreamError;
use crate::frame::Frame;

/// Occupancy statistics of a queue, tracked over its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct QueueStats {
    /// Total frames pushed.
    pub pushed: u64,
    /// Total frames popped.
    pub popped: u64,
    /// Pushes rejected because the queue was full.
    pub overflows: u64,
    /// Pops attempted while the queue was empty.
    pub underflows: u64,
    /// Minimum occupancy observed after the first push.
    pub min_level: usize,
    /// Maximum occupancy observed.
    pub max_level: usize,
}

/// A bounded FIFO of frames.
///
/// ```
/// use tbp_streaming::queue::FrameQueue;
/// use tbp_streaming::frame::{Frame, FrameId};
/// use tbp_arch::units::Seconds;
///
/// # fn main() -> Result<(), tbp_streaming::StreamError> {
/// let mut q = FrameQueue::new(4)?;
/// q.push(Frame::new(FrameId(0), Seconds::ZERO));
/// assert_eq!(q.len(), 1);
/// assert!(q.pop().is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameQueue {
    capacity: usize,
    frames: VecDeque<Frame>,
    stats: QueueStats,
    seen_first_push: bool,
}

impl FrameQueue {
    /// Creates a queue holding at most `capacity` frames.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InvalidConfig`] for a zero capacity.
    pub fn new(capacity: usize) -> Result<Self, StreamError> {
        if capacity == 0 {
            return Err(StreamError::InvalidConfig(
                "queue capacity must be at least 1".into(),
            ));
        }
        Ok(FrameQueue {
            capacity,
            frames: VecDeque::with_capacity(capacity),
            stats: QueueStats::default(),
            seen_first_push: false,
        })
    }

    /// Maximum number of frames the queue can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Returns `true` when the queue holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Returns `true` when the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.frames.len() >= self.capacity
    }

    /// Lifetime statistics of the queue.
    pub fn stats(&self) -> &QueueStats {
        &self.stats
    }

    /// Pushes a frame. Returns `false` (and counts an overflow) when the
    /// queue is full.
    pub fn push(&mut self, frame: Frame) -> bool {
        if self.is_full() {
            self.stats.overflows += 1;
            return false;
        }
        self.frames.push_back(frame);
        self.stats.pushed += 1;
        self.seen_first_push = true;
        self.stats.max_level = self.stats.max_level.max(self.frames.len());
        true
    }

    /// Pops the oldest frame. Counts an underflow when the queue is empty.
    pub fn pop(&mut self) -> Option<Frame> {
        match self.frames.pop_front() {
            Some(frame) => {
                self.stats.popped += 1;
                if self.seen_first_push {
                    self.stats.min_level = self.stats.min_level.min(self.frames.len());
                }
                Some(frame)
            }
            None => {
                self.stats.underflows += 1;
                None
            }
        }
    }

    /// Peeks at the oldest frame without removing it.
    pub fn front(&self) -> Option<&Frame> {
        self.frames.front()
    }

    /// Pre-fills the queue with `count` frames (clamped to capacity), as the
    /// start-up phase of a streaming application would before real-time
    /// consumption begins.
    pub fn prefill(&mut self, count: usize) {
        use crate::frame::FrameId;
        use tbp_arch::units::Seconds;
        for i in 0..count.min(self.capacity - self.frames.len()) {
            self.push(Frame::new(FrameId(u64::MAX - i as u64), Seconds::ZERO));
        }
        // Pre-fill establishes the baseline occupancy for min-level tracking.
        self.stats.min_level = self.frames.len();
    }

    /// Empties the queue and resets its statistics.
    pub fn reset(&mut self) {
        self.frames.clear();
        self.stats = QueueStats::default();
        self.seen_first_push = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameId;
    use tbp_arch::units::Seconds;

    fn frame(i: u64) -> Frame {
        Frame::new(FrameId(i), Seconds::ZERO)
    }

    #[test]
    fn zero_capacity_rejected() {
        assert!(FrameQueue::new(0).is_err());
    }

    #[test]
    fn push_pop_fifo_order() {
        let mut q = FrameQueue::new(3).unwrap();
        assert!(q.is_empty());
        assert!(!q.is_full());
        assert_eq!(q.capacity(), 3);
        assert!(q.push(frame(1)));
        assert!(q.push(frame(2)));
        assert_eq!(q.front().unwrap().id, FrameId(1));
        assert_eq!(q.pop().unwrap().id, FrameId(1));
        assert_eq!(q.pop().unwrap().id, FrameId(2));
        assert!(q.pop().is_none());
        assert_eq!(q.stats().pushed, 2);
        assert_eq!(q.stats().popped, 2);
        assert_eq!(q.stats().underflows, 1);
    }

    #[test]
    fn overflow_is_counted_and_rejected() {
        let mut q = FrameQueue::new(2).unwrap();
        assert!(q.push(frame(1)));
        assert!(q.push(frame(2)));
        assert!(q.is_full());
        assert!(!q.push(frame(3)));
        assert_eq!(q.stats().overflows, 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn level_tracking() {
        let mut q = FrameQueue::new(8).unwrap();
        q.prefill(4);
        assert_eq!(q.len(), 4);
        assert_eq!(q.stats().min_level, 4);
        q.pop();
        q.pop();
        assert_eq!(q.stats().min_level, 2);
        q.push(frame(1));
        q.push(frame(2));
        q.push(frame(3));
        assert_eq!(q.stats().max_level, 5);
        // Prefill never exceeds capacity.
        let mut small = FrameQueue::new(2).unwrap();
        small.prefill(10);
        assert_eq!(small.len(), 2);
    }

    #[test]
    fn reset_clears_state() {
        let mut q = FrameQueue::new(4).unwrap();
        q.push(frame(1));
        q.pop();
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.stats().pushed, 0);
        assert_eq!(q.stats().underflows, 0);
    }
}
