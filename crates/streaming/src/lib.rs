//! # tbp-streaming — streaming pipeline framework and SDR benchmark
//!
//! The paper evaluates its thermal balancing policy with a Software Defined
//! FM Radio (SDR) application: a software pipeline of tasks connected by
//! message queues, where the digitalised PCM radio signal flows through a
//! low-pass filter, an FM demodulator, a bank of parallel band-pass filters
//! and a final consumer that mixes the equalised bands (Figure 6). Quality of
//! service is measured in **frame deadline misses**: the consumer must deliver
//! one audio frame per frame period, and "if the queue of the last stage gets
//! empty a deadline miss occurs" (Section 5).
//!
//! This crate provides:
//!
//! * [`graph`] — pipeline graphs of stages connected by bounded queues;
//! * [`queue`] — the bounded frame queues with occupancy statistics (used to
//!   find the minimum queue size that sustains migration, 11 frames in the
//!   paper);
//! * [`pipeline`] — [`pipeline::PipelineRuntime`], which converts the cycles
//!   each task executed (reported by [`tbp-os`](tbp_os)) into processed
//!   frames and tracks deadline misses;
//! * [`sdr`] — the SDR benchmark: the Table 2 task set and mapping, plus real
//!   DSP kernels (FIR low-pass, FM discriminator, band-pass biquads, weighted
//!   mixer) and an FM signal generator so the examples process actual audio;
//! * [`workload`] — synthetic task-set generation for stress tests;
//! * [`workloads`] — the pluggable workload-generation subsystem: a
//!   [`workloads::WorkloadGenerator`] trait, a name → generator
//!   [`workloads::WorkloadRegistry`] mirroring the policy registry, and the
//!   built-in `sdr`, `synthetic`, `video-analytics` and `dag` generators.
//!
//! # Example
//!
//! ```
//! use tbp_streaming::sdr::SdrBenchmark;
//!
//! let sdr = SdrBenchmark::paper_default();
//! // Six tasks: LPF, DEMOD, BPF1..3, SUM.
//! assert_eq!(sdr.tasks().len(), 6);
//! // Table 2 maps them onto three cores.
//! assert_eq!(sdr.mapping().iter().map(|m| m.core.index()).max(), Some(2));
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod error;
pub mod frame;
pub mod graph;
pub mod pipeline;
pub mod queue;
pub mod sdr;
pub mod workload;
pub mod workloads;

pub use error::StreamError;
pub use graph::{PipelineGraph, StageId};
pub use pipeline::{ArrivalProcess, PipelineRuntime};
pub use sdr::SdrBenchmark;
pub use workloads::{GeneratedWorkload, WorkloadGenerator, WorkloadParams, WorkloadRegistry};
