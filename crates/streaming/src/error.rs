//! Error type for the streaming framework.

use std::error::Error;
use std::fmt;

use tbp_os::OsError;

use crate::graph::StageId;

/// Errors produced by the streaming pipeline framework.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// A stage identifier referenced a stage that does not exist.
    UnknownStage(StageId),
    /// The pipeline graph is malformed (cycle, missing source/sink, ...).
    InvalidGraph(String),
    /// A configuration value is invalid (zero frame period, zero queue size,
    /// ...).
    InvalidConfig(String),
    /// A workload generator name did not resolve in the registry.
    UnknownGenerator {
        /// The name that failed to resolve.
        name: String,
        /// The names the registry does know, sorted.
        known: Vec<String>,
    },
    /// The underlying OS layer reported an error.
    Os(OsError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::UnknownStage(id) => write!(f, "unknown pipeline stage {id}"),
            StreamError::InvalidGraph(msg) => write!(f, "invalid pipeline graph: {msg}"),
            StreamError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            StreamError::UnknownGenerator { name, known } => write!(
                f,
                "unknown workload generator `{name}` (known: {})",
                known.join(", ")
            ),
            StreamError::Os(e) => write!(f, "OS error: {e}"),
        }
    }
}

impl Error for StreamError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StreamError::Os(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OsError> for StreamError {
    fn from(value: OsError) -> Self {
        StreamError::Os(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbp_os::task::TaskId;

    #[test]
    fn display_and_source() {
        assert!(StreamError::UnknownStage(StageId(2))
            .to_string()
            .contains('2'));
        assert!(StreamError::InvalidGraph("cycle".into())
            .to_string()
            .contains("cycle"));
        assert!(StreamError::InvalidConfig("bad".into())
            .to_string()
            .contains("bad"));
        let wrapped: StreamError = OsError::UnknownTask(TaskId(1)).into();
        assert!(Error::source(&wrapped).is_some());
        assert!(Error::source(&StreamError::InvalidGraph("x".into())).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StreamError>();
    }
}
