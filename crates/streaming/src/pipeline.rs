//! Pipeline runtime: frames, credits and deadline accounting.
//!
//! [`PipelineRuntime`] is the streaming half of the co-simulation loop. Every
//! step it receives the number of cycles each OS task actually executed
//! (computed by [`tbp-os`](tbp_os) from the core's frequency, utilisation and
//! any migration freezes) and converts them into processed frames:
//!
//! * the external producer deposits one new frame into every source stage's
//!   input queue each frame period;
//! * a stage consumes one frame from each of its input queues, spends
//!   `cycles_per_frame` of its credit, and emits one frame into each output
//!   queue;
//! * the external real-time consumer pops one frame from every sink stage's
//!   output queue each frame period — **a deadline miss is recorded whenever
//!   that queue is empty**, exactly the QoS metric of the paper.

use serde::{Deserialize, Serialize};

use tbp_arch::units::Seconds;

use crate::error::StreamError;
use crate::frame::{Frame, FrameId};
use crate::graph::{PipelineGraph, StageId};
use crate::queue::FrameQueue;

/// How the external producer injects frames at frame-period boundaries.
///
/// The default [`Uniform`](ArrivalProcess::Uniform) process deposits exactly
/// one frame per period — the constant-rate assumption of the paper's SDR
/// evaluation. The other processes model the arrival patterns that stress
/// reconfiguration machinery in stream engines: bursts that fill queues
/// faster than the consumer drains them, and phased rate changes that shift
/// the sustained load between epochs. All processes are deterministic, so
/// runs remain exactly reproducible.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// One frame per frame period (the paper's constant-rate producer).
    #[default]
    Uniform,
    /// `burst` frames arrive together every `every` periods, nothing in
    /// between. With `burst == every` the mean rate matches [`Uniform`]
    /// while the instantaneous rate stresses the queues.
    ///
    /// [`Uniform`]: ArrivalProcess::Uniform
    Bursty {
        /// Frames deposited at each burst boundary.
        burst: usize,
        /// Periods between two bursts.
        every: usize,
    },
    /// The mean arrival rate (frames per period) switches between phases:
    /// phase `p` lasts `periods_per_phase` periods at `rates[p]` frames per
    /// period, cycling through `rates`. Fractional rates accumulate exactly
    /// (a rate of 0.5 deposits a frame every second period).
    Phased {
        /// Periods each phase lasts.
        periods_per_phase: u64,
        /// Frames per period of each phase, cycled through in order.
        rates: Vec<f64>,
    },
}

impl ArrivalProcess {
    /// Largest burst size / per-period rate [`validate`](Self::validate)
    /// accepts. The producer pushes this many frames in a loop at a period
    /// boundary, so an unbounded value would let one boundary monopolise
    /// the simulation; 100 000 frames per period is far beyond any sane
    /// overload experiment while keeping a boundary cheap.
    pub const MAX_FRAMES_PER_PERIOD: usize = 100_000;

    /// Validates the process parameters.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InvalidConfig`] for a zero burst size or
    /// interval, an empty phase table, a non-finite/negative rate, or a
    /// burst/rate exceeding [`MAX_FRAMES_PER_PERIOD`](Self::MAX_FRAMES_PER_PERIOD).
    pub fn validate(&self) -> Result<(), StreamError> {
        match self {
            ArrivalProcess::Uniform => Ok(()),
            ArrivalProcess::Bursty { burst, every } => {
                if *burst == 0 || *every == 0 {
                    return Err(StreamError::InvalidConfig(
                        "bursty arrivals need a positive burst size and interval".into(),
                    ));
                }
                if *burst > Self::MAX_FRAMES_PER_PERIOD {
                    return Err(StreamError::InvalidConfig(format!(
                        "burst of {burst} frames exceeds the {} frames-per-period limit",
                        Self::MAX_FRAMES_PER_PERIOD
                    )));
                }
                Ok(())
            }
            ArrivalProcess::Phased {
                periods_per_phase,
                rates,
            } => {
                if *periods_per_phase == 0 {
                    return Err(StreamError::InvalidConfig(
                        "phased arrivals need at least one period per phase".into(),
                    ));
                }
                if rates.is_empty() {
                    return Err(StreamError::InvalidConfig(
                        "phased arrivals need at least one rate".into(),
                    ));
                }
                if rates.iter().any(|r| !r.is_finite() || *r < 0.0) {
                    return Err(StreamError::InvalidConfig(
                        "phased arrival rates must be finite and non-negative".into(),
                    ));
                }
                if rates
                    .iter()
                    .any(|r| *r > Self::MAX_FRAMES_PER_PERIOD as f64)
                {
                    return Err(StreamError::InvalidConfig(format!(
                        "phased arrival rates must not exceed {} frames per period",
                        Self::MAX_FRAMES_PER_PERIOD
                    )));
                }
                Ok(())
            }
        }
    }

    /// Number of frames the producer deposits at period boundary `boundary`
    /// (0-based). `carry` accumulates fractional phased rates between
    /// boundaries; pass the same accumulator on every call and reset it to
    /// zero together with the boundary counter.
    pub fn frames_at(&self, boundary: u64, carry: &mut f64) -> usize {
        match self {
            ArrivalProcess::Uniform => 1,
            ArrivalProcess::Bursty { burst, every } => {
                if boundary.is_multiple_of(*every as u64) {
                    *burst
                } else {
                    0
                }
            }
            ArrivalProcess::Phased {
                periods_per_phase,
                rates,
            } => {
                let phase = ((boundary / periods_per_phase) as usize) % rates.len();
                let due = rates[phase] + *carry;
                let whole = due.floor();
                *carry = due - whole;
                whole as usize
            }
        }
    }

    /// Mean arrival rate in frames per period.
    pub fn mean_rate(&self) -> f64 {
        match self {
            ArrivalProcess::Uniform => 1.0,
            ArrivalProcess::Bursty { burst, every } => *burst as f64 / *every as f64,
            ArrivalProcess::Phased { rates, .. } => {
                if rates.is_empty() {
                    0.0
                } else {
                    rates.iter().sum::<f64>() / rates.len() as f64
                }
            }
        }
    }
}

/// Configuration of a pipeline runtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Interval between two frames at the input and the output.
    pub frame_period: Seconds,
    /// Capacity of every inter-stage queue (and of the external input/output
    /// queues).
    pub queue_capacity: usize,
    /// Number of frames pre-filled into every queue before real-time
    /// consumption starts (start-up buffering).
    pub prefill: usize,
}

impl PipelineConfig {
    /// The configuration used throughout the paper-style experiments: 25 ms
    /// frame period (40 frames/s audio blocks), 11-frame queues (the minimum
    /// the paper found sustainable), half-filled at start-up.
    pub fn paper_default() -> Self {
        PipelineConfig {
            frame_period: Seconds::from_millis(25.0),
            queue_capacity: 11,
            prefill: 5,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InvalidConfig`] for a non-positive frame period
    /// or a zero queue capacity, or a prefill exceeding the capacity.
    pub fn validate(&self) -> Result<(), StreamError> {
        if self.frame_period.is_zero() {
            return Err(StreamError::InvalidConfig(
                "frame period must be positive".into(),
            ));
        }
        if self.queue_capacity == 0 {
            return Err(StreamError::InvalidConfig(
                "queue capacity must be at least 1".into(),
            ));
        }
        if self.prefill > self.queue_capacity {
            return Err(StreamError::InvalidConfig(format!(
                "prefill {} exceeds queue capacity {}",
                self.prefill, self.queue_capacity
            )));
        }
        Ok(())
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig::paper_default()
    }
}

/// QoS statistics accumulated by the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct QosReport {
    /// Frames successfully delivered to the external consumer.
    pub frames_delivered: u64,
    /// Deadlines at which the consumer found the final queue empty.
    pub deadline_misses: u64,
    /// Frames injected by the external producer.
    pub frames_produced: u64,
    /// Frames dropped at the input because a source queue was full.
    pub input_drops: u64,
}

impl QosReport {
    /// Fraction of consumer deadlines that were missed.
    pub fn miss_rate(&self) -> f64 {
        let total = self.frames_delivered + self.deadline_misses;
        if total == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / total as f64
        }
    }
}

/// The running state of a pipeline mapped onto the OS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineRuntime {
    graph: PipelineGraph,
    config: PipelineConfig,
    order: Vec<StageId>,
    /// One queue per graph edge, in the same order as `graph.edges()`.
    edge_queues: Vec<FrameQueue>,
    /// External input queue of every source stage (parallel to `sources`).
    sources: Vec<StageId>,
    input_queues: Vec<FrameQueue>,
    /// External output queue of every sink stage (parallel to `sinks`).
    sinks: Vec<StageId>,
    output_queues: Vec<FrameQueue>,
    /// Unspent cycle credit per stage.
    credits: Vec<f64>,
    /// Indices into `edge_queues` of every edge feeding each stage, derived
    /// from the graph at construction so the per-frame hot path does not
    /// rebuild (and reallocate) them.
    stage_in_edges: Vec<Vec<usize>>,
    /// Indices into `edge_queues` of every edge leaving each stage.
    stage_out_edges: Vec<Vec<usize>>,
    /// Index into `sources`/`input_queues` of each stage, when it is a source.
    stage_source: Vec<Option<usize>>,
    /// Index into `sinks`/`output_queues` of each stage, when it is a sink.
    stage_sink: Vec<Option<usize>>,
    /// External producer behaviour at period boundaries.
    arrivals: ArrivalProcess,
    /// 0-based index of the next period boundary.
    boundary_index: u64,
    /// Fractional-frame accumulator of phased arrival rates.
    arrival_carry: f64,
    elapsed: Seconds,
    next_period_boundary: Seconds,
    next_frame_id: u64,
    qos: QosReport,
}

impl PipelineRuntime {
    /// Instantiates a runtime for `graph` with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InvalidGraph`] when the graph fails
    /// [`PipelineGraph::validate`] and [`StreamError::InvalidConfig`] when the
    /// configuration is invalid.
    pub fn new(graph: PipelineGraph, config: PipelineConfig) -> Result<Self, StreamError> {
        graph.validate()?;
        config.validate()?;
        let order = graph.topological_order()?;
        let sources = graph.sources();
        let sinks = graph.sinks();
        let mut edge_queues = Vec::with_capacity(graph.edges().len());
        for _ in graph.edges() {
            let mut q = FrameQueue::new(config.queue_capacity)?;
            q.prefill(config.prefill);
            edge_queues.push(q);
        }
        let mut input_queues = Vec::with_capacity(sources.len());
        for _ in &sources {
            let mut q = FrameQueue::new(config.queue_capacity)?;
            q.prefill(config.prefill);
            input_queues.push(q);
        }
        let mut output_queues = Vec::with_capacity(sinks.len());
        for _ in &sinks {
            let mut q = FrameQueue::new(config.queue_capacity)?;
            q.prefill(config.prefill);
            output_queues.push(q);
        }
        let credits = vec![0.0; graph.len()];
        let mut stage_in_edges: Vec<Vec<usize>> = vec![Vec::new(); graph.len()];
        let mut stage_out_edges: Vec<Vec<usize>> = vec![Vec::new(); graph.len()];
        for (i, &(from, to)) in graph.edges().iter().enumerate() {
            stage_out_edges[from.index()].push(i);
            stage_in_edges[to.index()].push(i);
        }
        let mut stage_source = vec![None; graph.len()];
        for (i, s) in sources.iter().enumerate() {
            stage_source[s.index()] = Some(i);
        }
        let mut stage_sink = vec![None; graph.len()];
        for (i, s) in sinks.iter().enumerate() {
            stage_sink[s.index()] = Some(i);
        }
        Ok(PipelineRuntime {
            graph,
            config,
            order,
            edge_queues,
            sources,
            input_queues,
            sinks,
            output_queues,
            credits,
            stage_in_edges,
            stage_out_edges,
            stage_source,
            stage_sink,
            arrivals: ArrivalProcess::Uniform,
            boundary_index: 0,
            arrival_carry: 0.0,
            elapsed: Seconds::ZERO,
            next_period_boundary: config.frame_period,
            next_frame_id: 0,
            qos: QosReport::default(),
        })
    }

    /// Replaces the external producer's arrival process (uniform by default).
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InvalidConfig`] when the process parameters are
    /// invalid.
    pub fn with_arrivals(mut self, arrivals: ArrivalProcess) -> Result<Self, StreamError> {
        arrivals.validate()?;
        self.arrivals = arrivals;
        self.boundary_index = 0;
        self.arrival_carry = 0.0;
        Ok(self)
    }

    /// The external producer's arrival process.
    pub fn arrivals(&self) -> &ArrivalProcess {
        &self.arrivals
    }

    /// The pipeline graph.
    pub fn graph(&self) -> &PipelineGraph {
        &self.graph
    }

    /// The runtime configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// QoS statistics accumulated so far.
    pub fn qos(&self) -> &QosReport {
        &self.qos
    }

    /// Simulated time processed so far.
    pub fn elapsed(&self) -> Seconds {
        self.elapsed
    }

    /// Current occupancy of the queue on the edge with the given index (in
    /// [`PipelineGraph::edges`] order).
    pub fn edge_queue_level(&self, edge_index: usize) -> Option<usize> {
        self.edge_queues.get(edge_index).map(|q| q.len())
    }

    /// Number of edge queues (one per graph edge) — the index bound of
    /// [`edge_queue_level`](Self::edge_queue_level), used by observability
    /// consumers to register one queue-depth track per edge.
    pub fn num_queues(&self) -> usize {
        self.edge_queues.len()
    }

    /// Minimum occupancy ever observed across all queues — the paper's
    /// "minimum queue size to sustain migration" figure is derived from this.
    pub fn min_queue_level(&self) -> usize {
        self.all_queues()
            .map(|q| q.stats().min_level)
            .min()
            .unwrap_or(0)
    }

    /// Mean occupancy across all queues right now.
    pub fn mean_queue_level(&self) -> f64 {
        let (sum, count) = self
            .all_queues()
            .fold((0usize, 0usize), |(s, c), q| (s + q.len(), c + 1));
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }

    fn all_queues(&self) -> impl Iterator<Item = &FrameQueue> {
        self.edge_queues
            .iter()
            .chain(self.input_queues.iter())
            .chain(self.output_queues.iter())
    }

    /// Advances the pipeline by `dt`. `executed_cycles` maps each OS task id
    /// to the cycles it executed during the interval (the
    /// [`MposStepReport::executed_cycles`](tbp_os::mpos::MposStepReport)
    /// vector can be passed directly).
    pub fn step(&mut self, dt: Seconds, executed_cycles: &[f64]) {
        // 1. Credit stages with the cycles their backing task executed.
        for (i, stage) in self.graph.stages().iter().enumerate() {
            let cycles = executed_cycles
                .get(stage.task.index())
                .copied()
                .unwrap_or(0.0);
            self.credits[i] += cycles;
            // Cap unused credit at two frames' worth: a stage cannot catch up
            // arbitrarily fast after being starved of input.
            let cap = 2.0 * stage.cycles_per_frame;
            if self.credits[i] > cap {
                self.credits[i] = cap;
            }
        }

        // 2. Let every stage process as many frames as credit and queues allow.
        self.process_stages();

        // 3. Handle frame-period boundaries that fall inside this step.
        self.elapsed += dt;
        while self.next_period_boundary.as_secs() <= self.elapsed.as_secs() + 1e-12 {
            self.on_period_boundary();
            self.next_period_boundary += self.config.frame_period;
            // Processing right after injecting input keeps single-step
            // latency low when credits are plentiful.
            self.process_stages();
        }
    }

    fn process_stages(&mut self) {
        // Iterate by position so the (fixed) topological order is not cloned
        // on a path that runs at least once per simulation step.
        for i in 0..self.order.len() {
            let stage_id = self.order[i];
            loop {
                if !self.try_process_one_frame(stage_id) {
                    break;
                }
            }
        }
    }

    /// Attempts to process a single frame on `stage`. Returns `true` on
    /// success. Input/output queue indices come from the per-stage adjacency
    /// tables built at construction, so the hot path performs no allocations.
    fn try_process_one_frame(&mut self, stage: StageId) -> bool {
        let idx = stage.index();
        let cycles_needed = self.graph.stages()[idx].cycles_per_frame;
        if self.credits[idx] + 1e-9 < cycles_needed {
            return false;
        }
        let external_input = self.stage_source[idx];
        // Check availability of one frame on every input.
        for &e in &self.stage_in_edges[idx] {
            if self.edge_queues[e].is_empty() {
                return false;
            }
        }
        if let Some(src_idx) = external_input {
            if self.input_queues[src_idx].is_empty() {
                return false;
            }
        }
        // Check space on every output.
        let external_output = self.stage_sink[idx];
        for &e in &self.stage_out_edges[idx] {
            if self.edge_queues[e].is_full() {
                return false;
            }
        }
        if let Some(sink_idx) = external_output {
            if self.output_queues[sink_idx].is_full() {
                return false;
            }
        }
        // Consume inputs.
        let mut forwarded: Option<Frame> = None;
        for &e in &self.stage_in_edges[idx] {
            forwarded = self.edge_queues[e].pop();
        }
        if let Some(src_idx) = external_input {
            forwarded = self.input_queues[src_idx].pop();
        }
        let out_frame = forwarded.unwrap_or(Frame::new(FrameId(self.next_frame_id), self.elapsed));
        // Produce outputs.
        for &e in &self.stage_out_edges[idx] {
            self.edge_queues[e].push(out_frame);
        }
        if let Some(sink_idx) = external_output {
            self.output_queues[sink_idx].push(out_frame);
        }
        self.credits[idx] -= cycles_needed;
        true
    }

    fn on_period_boundary(&mut self) {
        // External producer deposits frames into every source queue as the
        // arrival process dictates (one per period for the uniform default).
        let incoming = self
            .arrivals
            .frames_at(self.boundary_index, &mut self.arrival_carry);
        self.boundary_index += 1;
        for q in &mut self.input_queues {
            for _ in 0..incoming {
                let frame = Frame::new(FrameId(self.next_frame_id), self.elapsed);
                self.next_frame_id += 1;
                self.qos.frames_produced += 1;
                if !q.push(frame) {
                    self.qos.input_drops += 1;
                }
            }
        }
        // External real-time consumer pops from every sink queue.
        for q in &mut self.output_queues {
            if q.pop().is_some() {
                self.qos.frames_delivered += 1;
            } else {
                self.qos.deadline_misses += 1;
            }
        }
    }

    /// Resets queues, credits, clocks and QoS counters (the graph and
    /// configuration are kept).
    pub fn reset(&mut self) {
        for q in self
            .edge_queues
            .iter_mut()
            .chain(self.input_queues.iter_mut())
            .chain(self.output_queues.iter_mut())
        {
            q.reset();
            q.prefill(self.config.prefill);
        }
        self.credits.iter_mut().for_each(|c| *c = 0.0);
        self.boundary_index = 0;
        self.arrival_carry = 0.0;
        self.elapsed = Seconds::ZERO;
        self.next_period_boundary = self.config.frame_period;
        self.next_frame_id = 0;
        self.qos = QosReport::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::StageDescriptor;
    use tbp_os::task::TaskId;

    /// A 3-stage chain where each stage needs 1e6 cycles per frame and is
    /// backed by tasks 0..2.
    fn chain_runtime(config: PipelineConfig) -> PipelineRuntime {
        let mut g = PipelineGraph::new();
        let a = g
            .add_stage(StageDescriptor::new("a", TaskId(0), 1e6))
            .unwrap();
        let b = g
            .add_stage(StageDescriptor::new("b", TaskId(1), 1e6))
            .unwrap();
        let c = g
            .add_stage(StageDescriptor::new("c", TaskId(2), 1e6))
            .unwrap();
        g.connect(a, b).unwrap();
        g.connect(b, c).unwrap();
        PipelineRuntime::new(g, config).unwrap()
    }

    /// Cycle budget that lets every stage process exactly one frame per
    /// 25 ms period when fed every 5 ms (1e6 cycles / 5 steps).
    fn per_step_cycles() -> Vec<f64> {
        vec![2e5, 2e5, 2e5]
    }

    #[test]
    fn config_validation() {
        assert!(PipelineConfig::paper_default().validate().is_ok());
        assert!(PipelineConfig::default().validate().is_ok());
        let bad = PipelineConfig {
            frame_period: Seconds::ZERO,
            ..PipelineConfig::paper_default()
        };
        assert!(bad.validate().is_err());
        let bad = PipelineConfig {
            queue_capacity: 0,
            ..PipelineConfig::paper_default()
        };
        assert!(bad.validate().is_err());
        let bad = PipelineConfig {
            prefill: 99,
            ..PipelineConfig::paper_default()
        };
        assert!(bad.validate().is_err());
        // Runtime constructor surfaces the same errors.
        let mut g = PipelineGraph::new();
        g.add_stage(StageDescriptor::new("a", TaskId(0), 1.0))
            .unwrap();
        assert!(PipelineRuntime::new(g, bad).is_err());
        assert!(
            PipelineRuntime::new(PipelineGraph::new(), PipelineConfig::paper_default()).is_err()
        );
    }

    #[test]
    fn sufficient_cycles_mean_no_deadline_misses() {
        let mut rt = chain_runtime(PipelineConfig::paper_default());
        let cycles = per_step_cycles();
        // Run 10 simulated seconds in 5 ms steps.
        for _ in 0..2_000 {
            rt.step(Seconds::from_millis(5.0), &cycles);
        }
        let qos = rt.qos();
        assert!(qos.frames_delivered > 300);
        assert_eq!(
            qos.deadline_misses, 0,
            "well-provisioned pipeline must not miss"
        );
        assert_eq!(qos.miss_rate(), 0.0);
        assert!(qos.frames_produced >= qos.frames_delivered);
        assert!(rt.elapsed().as_secs() > 9.9);
        assert!(rt.mean_queue_level() > 0.0);
        assert!(rt.edge_queue_level(0).is_some());
        assert!(rt.edge_queue_level(9).is_none());
    }

    #[test]
    fn starved_pipeline_misses_deadlines() {
        let mut rt = chain_runtime(PipelineConfig::paper_default());
        // Stage b gets no cycles at all: the sink queue drains its prefill and
        // then every deadline is missed.
        let cycles = vec![2e5, 0.0, 2e5];
        for _ in 0..2_000 {
            rt.step(Seconds::from_millis(5.0), &cycles);
        }
        assert!(rt.qos().deadline_misses > 100);
        assert!(rt.qos().miss_rate() > 0.5);
    }

    #[test]
    fn short_stall_is_absorbed_by_queues() {
        let mut rt = chain_runtime(PipelineConfig::paper_default());
        let cycles = per_step_cycles();
        let stalled = vec![2e5, 0.0, 2e5];
        // 2 s of normal operation.
        for _ in 0..400 {
            rt.step(Seconds::from_millis(5.0), &cycles);
        }
        // 50 ms stall of the middle stage (shorter than the buffered frames).
        for _ in 0..10 {
            rt.step(Seconds::from_millis(5.0), &stalled);
        }
        // Recovery.
        for _ in 0..400 {
            rt.step(Seconds::from_millis(5.0), &cycles);
        }
        assert_eq!(
            rt.qos().deadline_misses,
            0,
            "a 50 ms stall must be hidden by 5 prefilled frames"
        );
        // The stall is visible in the minimum queue level.
        assert!(rt.min_queue_level() < PipelineConfig::paper_default().prefill);
    }

    #[test]
    fn long_stall_causes_misses_proportional_to_its_length() {
        let mut rt = chain_runtime(PipelineConfig::paper_default());
        let cycles = per_step_cycles();
        let stalled = vec![2e5, 0.0, 2e5];
        for _ in 0..400 {
            rt.step(Seconds::from_millis(5.0), &cycles);
        }
        // A 500 ms stall exceeds the buffering (5 frames * 25 ms = 125 ms).
        for _ in 0..100 {
            rt.step(Seconds::from_millis(5.0), &stalled);
        }
        let misses_after_stall = rt.qos().deadline_misses;
        assert!(
            (10..=20).contains(&misses_after_stall),
            "500 ms stall with 125 ms of buffering should miss ~15 deadlines, got {misses_after_stall}"
        );
        // Recovery stops the bleeding.
        for _ in 0..400 {
            rt.step(Seconds::from_millis(5.0), &cycles);
        }
        let total = rt.qos().deadline_misses;
        assert!(total - misses_after_stall <= 6);
    }

    #[test]
    fn fork_join_requires_all_branches() {
        // a -> {b, c} -> d; if branch c is starved, d cannot assemble output.
        let mut g = PipelineGraph::new();
        let a = g
            .add_stage(StageDescriptor::new("a", TaskId(0), 1e6))
            .unwrap();
        let b = g
            .add_stage(StageDescriptor::new("b", TaskId(1), 1e6))
            .unwrap();
        let c = g
            .add_stage(StageDescriptor::new("c", TaskId(2), 1e6))
            .unwrap();
        let d = g
            .add_stage(StageDescriptor::new("d", TaskId(3), 1e6))
            .unwrap();
        g.connect(a, b).unwrap();
        g.connect(a, c).unwrap();
        g.connect(b, d).unwrap();
        g.connect(c, d).unwrap();
        let mut rt = PipelineRuntime::new(g, PipelineConfig::paper_default()).unwrap();
        let healthy = vec![2e5; 4];
        for _ in 0..1_000 {
            rt.step(Seconds::from_millis(5.0), &healthy);
        }
        assert_eq!(rt.qos().deadline_misses, 0);
        let c_starved = vec![2e5, 2e5, 0.0, 2e5];
        for _ in 0..1_000 {
            rt.step(Seconds::from_millis(5.0), &c_starved);
        }
        assert!(rt.qos().deadline_misses > 50);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut rt = chain_runtime(PipelineConfig::paper_default());
        for _ in 0..200 {
            rt.step(Seconds::from_millis(5.0), &[0.0, 0.0, 0.0]);
        }
        assert!(rt.qos().deadline_misses > 0);
        rt.reset();
        assert_eq!(rt.qos().deadline_misses, 0);
        assert_eq!(rt.qos().frames_delivered, 0);
        assert_eq!(rt.elapsed(), Seconds::ZERO);
        assert!(rt.mean_queue_level() > 0.0);
    }

    #[test]
    fn arrival_process_validation_and_rates() {
        assert!(ArrivalProcess::Uniform.validate().is_ok());
        assert!(ArrivalProcess::Bursty { burst: 0, every: 1 }
            .validate()
            .is_err());
        assert!(ArrivalProcess::Bursty { burst: 1, every: 0 }
            .validate()
            .is_err());
        assert!(ArrivalProcess::Phased {
            periods_per_phase: 0,
            rates: vec![1.0]
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::Phased {
            periods_per_phase: 5,
            rates: Vec::new()
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::Phased {
            periods_per_phase: 5,
            rates: vec![-1.0]
        }
        .validate()
        .is_err());
        // Absurd magnitudes are rejected rather than looping for hours.
        assert!(ArrivalProcess::Bursty {
            burst: ArrivalProcess::MAX_FRAMES_PER_PERIOD + 1,
            every: 1
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::Phased {
            periods_per_phase: 1,
            rates: vec![1e15]
        }
        .validate()
        .is_err());
        assert_eq!(ArrivalProcess::Uniform.mean_rate(), 1.0);
        assert!((ArrivalProcess::Bursty { burst: 3, every: 6 }.mean_rate() - 0.5).abs() < 1e-12);
        let phased = ArrivalProcess::Phased {
            periods_per_phase: 10,
            rates: vec![1.5, 0.5],
        };
        assert!((phased.mean_rate() - 1.0).abs() < 1e-12);
        assert_eq!(ArrivalProcess::default(), ArrivalProcess::Uniform);
    }

    #[test]
    fn bursty_arrivals_deposit_in_bursts_and_sustain_the_mean_rate() {
        let rt = chain_runtime(PipelineConfig::paper_default());
        let mut rt = rt
            .with_arrivals(ArrivalProcess::Bursty { burst: 2, every: 2 })
            .unwrap();
        assert_eq!(
            rt.arrivals(),
            &ArrivalProcess::Bursty { burst: 2, every: 2 }
        );
        let cycles = per_step_cycles();
        for _ in 0..2_000 {
            rt.step(Seconds::from_millis(5.0), &cycles);
        }
        let qos = rt.qos();
        // Mean input rate is one frame per period, so a well-provisioned
        // chain still delivers everything once the prefill absorbs the
        // burst shape.
        assert!(qos.frames_delivered > 300);
        assert_eq!(qos.deadline_misses, 0, "burst=every keeps the mean rate");
        // Bursts of 2 every 2 periods: the boundary count is even.
        assert_eq!(qos.frames_produced % 2, 0);
    }

    #[test]
    fn phased_arrivals_accumulate_fractional_rates_exactly() {
        let process = ArrivalProcess::Phased {
            periods_per_phase: 4,
            rates: vec![1.5, 0.5],
        };
        let mut carry = 0.0;
        let counts: Vec<usize> = (0..8).map(|b| process.frames_at(b, &mut carry)).collect();
        // Phase 0 (rate 1.5): 1, 2, 1, 2 — phase 1 (rate 0.5): 0, 1, 0, 1.
        assert_eq!(counts, vec![1, 2, 1, 2, 0, 1, 0, 1]);
        assert_eq!(counts.iter().sum::<usize>(), 8);
        // A runtime driven by an overloaded phase records input drops
        // rather than inventing capacity.
        let rt = chain_runtime(PipelineConfig {
            queue_capacity: 2,
            prefill: 1,
            ..PipelineConfig::paper_default()
        });
        let mut rt = rt
            .with_arrivals(ArrivalProcess::Phased {
                periods_per_phase: 10,
                rates: vec![3.0],
            })
            .unwrap();
        for _ in 0..1_000 {
            rt.step(Seconds::from_millis(5.0), &per_step_cycles());
        }
        assert!(rt.qos().input_drops > 0);
    }

    #[test]
    fn reset_restores_the_arrival_clock() {
        let rt = chain_runtime(PipelineConfig::paper_default());
        let mut rt = rt
            .with_arrivals(ArrivalProcess::Bursty { burst: 3, every: 3 })
            .unwrap();
        for _ in 0..500 {
            rt.step(Seconds::from_millis(5.0), &per_step_cycles());
        }
        let produced = rt.qos().frames_produced;
        assert!(produced > 0);
        rt.reset();
        assert_eq!(rt.qos().frames_produced, 0);
        for _ in 0..500 {
            rt.step(Seconds::from_millis(5.0), &per_step_cycles());
        }
        assert_eq!(
            rt.qos().frames_produced,
            produced,
            "reset must restart the burst pattern from boundary 0"
        );
    }

    #[test]
    fn missing_task_cycles_default_to_zero() {
        let mut rt = chain_runtime(PipelineConfig::paper_default());
        // Passing a shorter executed-cycles vector starves the unmapped tasks
        // instead of panicking.
        for _ in 0..600 {
            rt.step(Seconds::from_millis(5.0), &[2e5]);
        }
        assert!(rt.qos().deadline_misses > 0);
        assert_eq!(rt.config().queue_capacity, 11);
        assert_eq!(rt.graph().len(), 3);
    }
}
