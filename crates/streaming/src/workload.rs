//! Synthetic workload generation.
//!
//! Beyond the SDR benchmark, the policy benches need configurable task sets:
//! many small tasks, a few heavy ones, unbalanced initial mappings. The
//! generator is deterministic (seeded with a SplitMix64 PRNG) so every
//! experiment is reproducible without an external `rand` dependency in the
//! library itself.

use serde::{Deserialize, Serialize};

use tbp_arch::core::CoreId;
use tbp_arch::units::{Bytes, Seconds};
use tbp_os::task::TaskDescriptor;

use crate::error::StreamError;

/// A deterministic SplitMix64 pseudo-random number generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` (returns 0 for `n == 0`).
    ///
    /// Uses bitmask rejection sampling rather than a bare modulo: masking to
    /// the smallest power of two covering `n` and rejecting out-of-range
    /// draws makes every value exactly equally likely, where `next_u64() % n`
    /// over-weights small values whenever `n` does not divide `2^64`. The
    /// expected number of draws is below 2 for any `n`.
    pub fn below(&mut self, n: usize) -> usize {
        self.below_u64(n as u64) as usize
    }

    /// Uniform integer in `[0, n)` over the full `u64` range (returns 0 for
    /// `n == 0`). See [`below`](Self::below) for the sampling scheme.
    pub fn below_u64(&mut self, n: u64) -> u64 {
        if n <= 1 {
            return 0;
        }
        // Smallest all-ones mask covering n-1; candidates land in
        // [0, 2^k) with 2^k < 2n, so fewer than half are rejected.
        let mask = u64::MAX >> (n - 1).leading_zeros();
        loop {
            let candidate = self.next_u64() & mask;
            if candidate < n {
                return candidate;
            }
        }
    }
}

/// Parameters of a synthetic workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of tasks to generate.
    pub num_tasks: usize,
    /// Number of cores to scatter them over.
    pub num_cores: usize,
    /// Total full-speed-equivalent load of the task set (split unevenly).
    pub total_fse_load: f64,
    /// Smallest context size generated.
    pub min_context: Bytes,
    /// Largest context size generated.
    pub max_context: Bytes,
    /// PRNG seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A moderately loaded 8-task / 3-core workload.
    pub fn default_mixed() -> Self {
        WorkloadSpec {
            num_tasks: 8,
            num_cores: 3,
            total_fse_load: 1.4,
            min_context: Bytes::from_kib(64),
            max_context: Bytes::from_kib(512),
            seed: 0xC0FFEE,
        }
    }

    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InvalidConfig`] for zero tasks/cores, a
    /// non-positive load, or inverted context bounds.
    pub fn validate(&self) -> Result<(), StreamError> {
        if self.num_tasks == 0 {
            return Err(StreamError::InvalidConfig("need at least one task".into()));
        }
        if self.num_cores == 0 {
            return Err(StreamError::InvalidConfig("need at least one core".into()));
        }
        if !(self.total_fse_load.is_finite() && self.total_fse_load > 0.0) {
            return Err(StreamError::InvalidConfig(
                "total FSE load must be positive".into(),
            ));
        }
        if self.min_context > self.max_context || self.min_context == Bytes::ZERO {
            return Err(StreamError::InvalidConfig(
                "context size bounds are invalid".into(),
            ));
        }
        Ok(())
    }
}

/// A generated synthetic workload: tasks plus an initial placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticWorkload {
    /// Generated task descriptors.
    pub tasks: Vec<TaskDescriptor>,
    /// Initial core of each task (greedy least-loaded placement).
    pub placement: Vec<CoreId>,
}

impl SyntheticWorkload {
    /// Generates a workload from a specification.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InvalidConfig`] when the specification is
    /// invalid.
    pub fn generate(spec: &WorkloadSpec) -> Result<Self, StreamError> {
        spec.validate()?;
        let mut rng = SplitMix64::new(spec.seed);
        // Split the total load into random positive shares.
        let mut shares: Vec<f64> = (0..spec.num_tasks).map(|_| rng.range(0.2, 1.0)).collect();
        let sum: f64 = shares.iter().sum();
        for s in &mut shares {
            *s = (*s / sum * spec.total_fse_load).min(1.0);
        }
        let mut tasks = Vec::with_capacity(spec.num_tasks);
        for (i, &load) in shares.iter().enumerate() {
            let span = spec.max_context.as_u64() - spec.min_context.as_u64();
            let context = Bytes::new(spec.min_context.as_u64() + rng.below_u64(span + 1));
            let checkpoint = Seconds::from_millis(rng.range(20.0, 80.0));
            tasks.push(
                TaskDescriptor::new(&format!("synthetic{i}"), load, context)
                    .with_checkpoint_period(checkpoint),
            );
        }
        // Greedy least-loaded placement (a reasonable energy-balanced start).
        let mut core_loads = vec![0.0f64; spec.num_cores];
        let mut placement = Vec::with_capacity(spec.num_tasks);
        let mut order: Vec<usize> = (0..spec.num_tasks).collect();
        order.sort_by(|&a, &b| {
            tasks[b]
                .fse_load
                .partial_cmp(&tasks[a].fse_load)
                .expect("loads are finite")
        });
        let mut assigned = vec![CoreId(0); spec.num_tasks];
        for &i in &order {
            let (core, _) = core_loads
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("loads are finite"))
                .expect("at least one core");
            core_loads[core] += tasks[i].fse_load;
            assigned[i] = CoreId(core);
        }
        placement.extend(assigned);
        Ok(SyntheticWorkload { tasks, placement })
    }

    /// Total FSE load of the generated tasks.
    pub fn total_fse_load(&self) -> f64 {
        self.tasks.iter().map(|t| t.fse_load).sum()
    }

    /// FSE load initially mapped to each core.
    pub fn per_core_load(&self, num_cores: usize) -> Vec<f64> {
        let mut loads = vec![0.0; num_cores];
        for (task, core) in self.tasks.iter().zip(&self.placement) {
            if core.index() < num_cores {
                loads[core.index()] += task.fse_load;
            }
        }
        loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_uniformish() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut rng = SplitMix64::new(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02);
        assert!(rng.range(2.0, 3.0) >= 2.0);
        assert!(rng.below(10) < 10);
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    fn below_is_exact_and_unbiased() {
        // Degenerate ranges.
        let mut rng = SplitMix64::new(99);
        assert_eq!(rng.below(0), 0);
        assert_eq!(rng.below(1), 0);
        // Rejection sampling keeps every residue equally likely even for a
        // range that does not divide 2^64 (a bare modulo would skew low).
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.below(3)] += 1;
        }
        for &count in &counts {
            assert!(
                (f64::from(count) / 10_000.0 - 1.0).abs() < 0.05,
                "residues should be uniform: {counts:?}"
            );
        }
        // Bounds hold for awkward and power-of-two ranges alike.
        for n in [2usize, 7, 8, 1000, usize::MAX] {
            for _ in 0..64 {
                assert!(rng.below(n) < n);
            }
        }
        assert!(rng.below_u64(u64::MAX) < u64::MAX);
    }

    #[test]
    fn spec_validation() {
        assert!(WorkloadSpec::default_mixed().validate().is_ok());
        let mut bad = WorkloadSpec::default_mixed();
        bad.num_tasks = 0;
        assert!(bad.validate().is_err());
        let mut bad = WorkloadSpec::default_mixed();
        bad.num_cores = 0;
        assert!(bad.validate().is_err());
        let mut bad = WorkloadSpec::default_mixed();
        bad.total_fse_load = 0.0;
        assert!(bad.validate().is_err());
        let mut bad = WorkloadSpec::default_mixed();
        bad.min_context = Bytes::from_mib(4);
        assert!(bad.validate().is_err());
        assert!(SyntheticWorkload::generate(&bad).is_err());
    }

    #[test]
    fn generation_respects_spec() {
        let spec = WorkloadSpec::default_mixed();
        let workload = SyntheticWorkload::generate(&spec).unwrap();
        assert_eq!(workload.tasks.len(), 8);
        assert_eq!(workload.placement.len(), 8);
        assert!((workload.total_fse_load() - 1.4).abs() < 1e-6);
        for task in &workload.tasks {
            assert!(task.validate().is_ok());
            assert!(task.context_size >= spec.min_context);
            assert!(task.context_size <= spec.max_context);
        }
        for core in &workload.placement {
            assert!(core.index() < 3);
        }
        // Deterministic for the same seed.
        let again = SyntheticWorkload::generate(&spec).unwrap();
        assert_eq!(workload, again);
        // Different seed, different workload.
        let other = SyntheticWorkload::generate(&WorkloadSpec { seed: 1, ..spec }).unwrap();
        assert_ne!(workload, other);
    }

    #[test]
    fn placement_is_roughly_balanced() {
        let spec = WorkloadSpec {
            num_tasks: 30,
            num_cores: 3,
            total_fse_load: 2.0,
            ..WorkloadSpec::default_mixed()
        };
        let workload = SyntheticWorkload::generate(&spec).unwrap();
        let loads = workload.per_core_load(3);
        let max = loads.iter().cloned().fold(0.0, f64::max);
        let min = loads.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max - min < 0.3,
            "greedy placement should be balanced: {loads:?}"
        );
    }
}
