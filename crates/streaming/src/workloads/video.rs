//! The `video-analytics` generator: decode → detect → track → sink chains,
//! one per camera stream, plus a pinned telemetry task.
//!
//! Promoted from the hand-rolled pipeline the `custom_pipeline` example used
//! to build: the canonical "not SDR" streaming workload, with a heavy
//! detector stage that makes thermal balancing earn its keep.

use serde::{Deserialize, Serialize};

use tbp_arch::units::{Bytes, Seconds};
use tbp_os::task::{TaskDescriptor, TaskId};

use crate::error::StreamError;
use crate::graph::{PipelineGraph, StageDescriptor};
use crate::pipeline::{ArrivalProcess, PipelineConfig};
use crate::workload::SplitMix64;
use crate::workloads::{
    cycles_per_frame, greedy_placement, jittered_load, GeneratedWorkload, PipelinePlan,
    WorkloadGenerator, WorkloadParams,
};

/// Knobs of the video-analytics workload. Every field is optional; absent
/// knobs fall back to the defaults listed on [`ResolvedVideoKnobs`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct VideoKnobs {
    /// Number of parallel camera streams (each its own 4-stage chain).
    pub streams: Option<usize>,
    /// Frames per second of every stream.
    pub fps: Option<f64>,
    /// Full-speed-equivalent load of the decode stage.
    pub decode_load: Option<f64>,
    /// Full-speed-equivalent load of the detect stage (the heavy one).
    pub detect_load: Option<f64>,
    /// Full-speed-equivalent load of the track stage.
    pub track_load: Option<f64>,
    /// Full-speed-equivalent load of the sink (encode) stage.
    pub sink_load: Option<f64>,
    /// Load of the pinned background telemetry task (0 disables it).
    pub telemetry_load: Option<f64>,
    /// Migratable context size of every stage task, in KiB.
    pub context_kib: Option<u64>,
    /// Seeded per-stage load jitter as a fraction of the base load
    /// (stage loads are drawn from `base * (1 ± jitter)`).
    pub load_jitter: Option<f64>,
}

impl VideoKnobs {
    /// Applies the defaults, producing concrete knob values.
    pub fn resolve(&self) -> ResolvedVideoKnobs {
        ResolvedVideoKnobs {
            streams: self.streams.unwrap_or(1),
            fps: self.fps.unwrap_or(30.0),
            decode_load: self.decode_load.unwrap_or(0.18),
            detect_load: self.detect_load.unwrap_or(0.55),
            track_load: self.track_load.unwrap_or(0.35),
            sink_load: self.sink_load.unwrap_or(0.30),
            telemetry_load: self.telemetry_load.unwrap_or(0.05),
            context_kib: self.context_kib.unwrap_or(128),
            load_jitter: self.load_jitter.unwrap_or(0.08),
        }
    }
}

/// [`VideoKnobs`] with all defaults applied.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedVideoKnobs {
    /// Parallel camera streams (default 1).
    pub streams: usize,
    /// Frames per second (default 30).
    pub fps: f64,
    /// Decode-stage load (default 0.18).
    pub decode_load: f64,
    /// Detect-stage load (default 0.55).
    pub detect_load: f64,
    /// Track-stage load (default 0.35).
    pub track_load: f64,
    /// Sink-stage load (default 0.30).
    pub sink_load: f64,
    /// Pinned telemetry load (default 0.05; 0 disables the task).
    pub telemetry_load: f64,
    /// Per-task context size in KiB (default 128).
    pub context_kib: u64,
    /// Seeded load jitter fraction (default 0.08).
    pub load_jitter: f64,
}

impl ResolvedVideoKnobs {
    /// Validates the resolved knob values.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InvalidConfig`] naming the offending knob.
    pub fn validate(&self) -> Result<(), StreamError> {
        if self.streams == 0 {
            return Err(StreamError::InvalidConfig(
                "video workload needs at least one stream".into(),
            ));
        }
        if !(self.fps.is_finite() && self.fps > 0.0) {
            return Err(StreamError::InvalidConfig(
                "video fps must be positive".into(),
            ));
        }
        for (name, load) in [
            ("decode_load", self.decode_load),
            ("detect_load", self.detect_load),
            ("track_load", self.track_load),
            ("sink_load", self.sink_load),
        ] {
            if !(load.is_finite() && load > 0.0 && load <= 1.0) {
                return Err(StreamError::InvalidConfig(format!(
                    "video {name} must be in (0, 1], got {load}"
                )));
            }
        }
        if !(self.telemetry_load.is_finite() && (0.0..=1.0).contains(&self.telemetry_load)) {
            return Err(StreamError::InvalidConfig(
                "video telemetry_load must be in [0, 1]".into(),
            ));
        }
        if self.context_kib == 0 {
            return Err(StreamError::InvalidConfig(
                "video context_kib must be positive".into(),
            ));
        }
        if !(self.load_jitter.is_finite() && (0.0..0.9).contains(&self.load_jitter)) {
            return Err(StreamError::InvalidConfig(
                "video load_jitter must be in [0, 0.9)".into(),
            ));
        }
        Ok(())
    }
}

/// Generates per-stream decode → detect → track → sink chains with seeded
/// per-stage load jitter, a pinned telemetry task, and a greedy
/// least-loaded placement of the migratable stages.
#[derive(Debug, Clone, Copy, Default)]
pub struct VideoAnalyticsGenerator;

impl WorkloadGenerator for VideoAnalyticsGenerator {
    fn name(&self) -> &str {
        "video-analytics"
    }

    fn generate(&self, params: &WorkloadParams) -> Result<GeneratedWorkload, StreamError> {
        params.validate()?;
        let knobs = params.video.resolve();
        knobs.validate()?;
        let mut rng = SplitMix64::new(params.seed);
        let frame_period = Seconds::new(1.0 / knobs.fps);
        let context = Bytes::from_kib(knobs.context_kib);

        let stage_bases = [
            ("decode", knobs.decode_load),
            ("detect", knobs.detect_load),
            ("track", knobs.track_load),
            ("sink", knobs.sink_load),
        ];
        let mut tasks = Vec::new();
        let mut graph = PipelineGraph::new();
        for stream in 0..knobs.streams {
            let mut previous: Option<crate::graph::StageId> = None;
            for (stage_name, base) in stage_bases {
                let load = jittered_load(&mut rng, base, knobs.load_jitter);
                let name = if knobs.streams == 1 {
                    stage_name.to_string()
                } else {
                    format!("cam{stream}.{stage_name}")
                };
                let index = tasks.len();
                tasks.push(TaskDescriptor::new(&name, load, context));
                let cycles = cycles_per_frame(load, frame_period);
                let stage = graph.add_stage(StageDescriptor::new(&name, TaskId(index), cycles))?;
                if let Some(prev) = previous {
                    graph.connect(prev, stage)?;
                }
                previous = Some(stage);
            }
        }
        let mut placement = greedy_placement(&tasks, params.num_cores);
        if knobs.telemetry_load > 0.0 {
            // Background telemetry: pinned to the last core, outside the
            // stage graph (it produces no frames, only heat).
            tasks.push(
                TaskDescriptor::new("telemetry", knobs.telemetry_load, Bytes::from_kib(64))
                    .pinned(),
            );
            placement.push(tbp_arch::core::CoreId(params.num_cores - 1));
        }
        let config = params.apply_queue_overrides(PipelineConfig {
            frame_period,
            queue_capacity: 8,
            prefill: 4,
        });
        Ok(GeneratedWorkload {
            tasks,
            placement,
            pipeline: Some(PipelinePlan {
                graph,
                config,
                arrivals: ArrivalProcess::Uniform,
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn video_generator_builds_chains_per_stream() {
        let mut params = WorkloadParams::default();
        params.video.streams = Some(2);
        params.video.detect_load = Some(0.4);
        let generated = VideoAnalyticsGenerator.generate(&params).unwrap();
        generated.validate().expect("valid workload");
        // 2 streams × 4 stages + telemetry.
        assert_eq!(generated.tasks.len(), 9);
        let plan = generated.pipeline.as_ref().expect("video streams");
        assert_eq!(plan.graph.len(), 8);
        assert_eq!(plan.graph.sources().len(), 2);
        assert_eq!(plan.graph.sinks().len(), 2);
        assert!((plan.config.frame_period.as_secs() - 1.0 / 30.0).abs() < 1e-12);
        // Telemetry is pinned and not a stage.
        let telemetry = generated.tasks.last().unwrap();
        assert_eq!(telemetry.name, "telemetry");
        assert!(!telemetry.migratable);
    }

    #[test]
    fn video_generator_is_deterministic_and_seed_sensitive() {
        let params = WorkloadParams::default();
        let a = VideoAnalyticsGenerator.generate(&params).unwrap();
        let b = VideoAnalyticsGenerator.generate(&params).unwrap();
        assert_eq!(a, b);
        let other = VideoAnalyticsGenerator
            .generate(&WorkloadParams { seed: 42, ..params })
            .unwrap();
        assert_ne!(a, other, "load jitter must depend on the seed");
    }

    #[test]
    fn video_knob_validation() {
        let mut params = WorkloadParams::default();
        params.video.streams = Some(0);
        assert!(VideoAnalyticsGenerator.generate(&params).is_err());
        let mut params = WorkloadParams::default();
        params.video.detect_load = Some(1.5);
        assert!(VideoAnalyticsGenerator.generate(&params).is_err());
        let mut params = WorkloadParams::default();
        params.video.fps = Some(0.0);
        assert!(VideoAnalyticsGenerator.generate(&params).is_err());
        let mut params = WorkloadParams::default();
        params.video.telemetry_load = Some(0.0);
        let generated = VideoAnalyticsGenerator.generate(&params).unwrap();
        assert!(generated.tasks.iter().all(|t| t.name != "telemetry"));
    }
}
