//! The `dag` generator: parameterised fork-join pipelines.
//!
//! A source stage fans out into `width` parallel branches of `depth` stages
//! each, which join again at a sink — the generalisation of the SDR graph's
//! DEMOD → BPF bank → Σ shape. Knobs skew the load across branches, jitter
//! it per stage, and drive the external producer with uniform, bursty or
//! phased arrivals, which is exactly the workload structure (topology,
//! phase changes, bursts) that stresses reconfiguration machinery in stream
//! engines.

use serde::{Deserialize, Serialize};

use tbp_arch::units::{Bytes, Seconds};
use tbp_os::task::{TaskDescriptor, TaskId};

use crate::error::StreamError;
use crate::graph::{PipelineGraph, StageDescriptor, StageId};
use crate::pipeline::{ArrivalProcess, PipelineConfig};
use crate::workload::SplitMix64;
use crate::workloads::{
    cycles_per_frame, greedy_placement, jittered_load, GeneratedWorkload, PipelinePlan,
    WorkloadGenerator, WorkloadParams,
};

/// Which arrival process the generated pipeline's producer follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrivalKind {
    /// One frame per period (the paper's constant-rate producer).
    Uniform,
    /// `burst` frames every `burst` periods (same mean rate, bursty shape).
    Bursty,
    /// The rate alternates between high and low phases.
    Phased,
}

/// Knobs of the fork-join DAG workload. Every field is optional; absent
/// knobs fall back to the defaults listed on [`ResolvedDagKnobs`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DagKnobs {
    /// Stages per branch.
    pub depth: Option<usize>,
    /// Parallel branches between the fork and the join.
    pub width: Option<usize>,
    /// Load skew across branches: branch *b* carries a share proportional
    /// to `(1 + skew)^-b`. 0 is perfectly balanced.
    pub skew: Option<f64>,
    /// Total full-speed-equivalent load of the whole task set.
    pub total_load: Option<f64>,
    /// Frames per second at the source.
    pub fps: Option<f64>,
    /// Seeded per-stage load jitter as a fraction of the stage's share.
    pub load_jitter: Option<f64>,
    /// Migratable context size of every stage task, in KiB.
    pub context_kib: Option<u64>,
    /// Arrival process shape (default uniform).
    pub arrivals: Option<ArrivalKind>,
    /// Burst length in frames (bursty arrivals).
    pub burst: Option<usize>,
    /// Number of rate phases the producer cycles through (phased arrivals).
    pub phases: Option<usize>,
    /// Periods each phase lasts (phased arrivals).
    pub phase_periods: Option<u64>,
    /// Rate amplitude of the phases: rates alternate `1 ± amplitude`
    /// frames per period (phased arrivals).
    pub phase_amplitude: Option<f64>,
}

impl DagKnobs {
    /// Applies the defaults, producing concrete knob values.
    pub fn resolve(&self) -> ResolvedDagKnobs {
        ResolvedDagKnobs {
            depth: self.depth.unwrap_or(3),
            width: self.width.unwrap_or(3),
            skew: self.skew.unwrap_or(0.5),
            total_load: self.total_load.unwrap_or(1.2),
            fps: self.fps.unwrap_or(40.0),
            load_jitter: self.load_jitter.unwrap_or(0.10),
            context_kib: self.context_kib.unwrap_or(96),
            arrivals: self.arrivals.unwrap_or(ArrivalKind::Uniform),
            burst: self.burst.unwrap_or(4),
            phases: self.phases.unwrap_or(2),
            phase_periods: self.phase_periods.unwrap_or(200),
            phase_amplitude: self.phase_amplitude.unwrap_or(0.5),
        }
    }
}

/// [`DagKnobs`] with all defaults applied.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedDagKnobs {
    /// Stages per branch (default 3).
    pub depth: usize,
    /// Parallel branches (default 3).
    pub width: usize,
    /// Cross-branch load skew (default 0.5).
    pub skew: f64,
    /// Total FSE load (default 1.2).
    pub total_load: f64,
    /// Source frame rate (default 40).
    pub fps: f64,
    /// Per-stage load jitter fraction (default 0.10).
    pub load_jitter: f64,
    /// Per-task context size in KiB (default 96).
    pub context_kib: u64,
    /// Arrival shape (default uniform).
    pub arrivals: ArrivalKind,
    /// Burst length (default 4).
    pub burst: usize,
    /// Phase count (default 2).
    pub phases: usize,
    /// Periods per phase (default 200).
    pub phase_periods: u64,
    /// Phase rate amplitude (default 0.5).
    pub phase_amplitude: f64,
}

impl ResolvedDagKnobs {
    /// Validates the resolved knob values.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InvalidConfig`] naming the offending knob.
    pub fn validate(&self) -> Result<(), StreamError> {
        if self.depth == 0 || self.width == 0 {
            return Err(StreamError::InvalidConfig(
                "dag depth and width must be at least 1".into(),
            ));
        }
        if !(self.skew.is_finite() && self.skew >= 0.0) {
            return Err(StreamError::InvalidConfig(
                "dag skew must be finite and non-negative".into(),
            ));
        }
        if !(self.total_load.is_finite() && self.total_load > 0.0) {
            return Err(StreamError::InvalidConfig(
                "dag total_load must be positive".into(),
            ));
        }
        if !(self.fps.is_finite() && self.fps > 0.0) {
            return Err(StreamError::InvalidConfig(
                "dag fps must be positive".into(),
            ));
        }
        if !(self.load_jitter.is_finite() && (0.0..0.9).contains(&self.load_jitter)) {
            return Err(StreamError::InvalidConfig(
                "dag load_jitter must be in [0, 0.9)".into(),
            ));
        }
        if self.context_kib == 0 {
            return Err(StreamError::InvalidConfig(
                "dag context_kib must be positive".into(),
            ));
        }
        if self.burst == 0 {
            return Err(StreamError::InvalidConfig(
                "dag burst must be at least 1".into(),
            ));
        }
        if self.phases == 0 || self.phase_periods == 0 {
            return Err(StreamError::InvalidConfig(
                "dag phases and phase_periods must be at least 1".into(),
            ));
        }
        if !(self.phase_amplitude.is_finite() && (0.0..1.0).contains(&self.phase_amplitude)) {
            return Err(StreamError::InvalidConfig(
                "dag phase_amplitude must be in [0, 1)".into(),
            ));
        }
        Ok(())
    }

    /// The arrival process the knobs describe.
    pub fn arrival_process(&self) -> ArrivalProcess {
        match self.arrivals {
            ArrivalKind::Uniform => ArrivalProcess::Uniform,
            // Same mean rate as uniform, delivered in bursts.
            ArrivalKind::Bursty => ArrivalProcess::Bursty {
                burst: self.burst,
                every: self.burst,
            },
            ArrivalKind::Phased => ArrivalProcess::Phased {
                periods_per_phase: self.phase_periods,
                rates: (0..self.phases)
                    .map(|p| {
                        if p % 2 == 0 {
                            1.0 + self.phase_amplitude
                        } else {
                            1.0 - self.phase_amplitude
                        }
                    })
                    .collect(),
            },
        }
    }
}

/// Generates fork-join pipelines: `source → width × depth branch stages →
/// sink`, with skewed branch loads, seeded per-stage jitter and a
/// configurable arrival process.
#[derive(Debug, Clone, Copy, Default)]
pub struct DagGenerator;

impl WorkloadGenerator for DagGenerator {
    fn name(&self) -> &str {
        "dag"
    }

    fn generate(&self, params: &WorkloadParams) -> Result<GeneratedWorkload, StreamError> {
        params.validate()?;
        let knobs = params.dag.resolve();
        knobs.validate()?;
        let mut rng = SplitMix64::new(params.seed);
        let frame_period = Seconds::new(1.0 / knobs.fps);
        let context = Bytes::from_kib(knobs.context_kib);
        let jitter = |rng: &mut SplitMix64, base: f64| -> f64 {
            jittered_load(rng, base, knobs.load_jitter)
        };

        // Load split: 5 % each for source and sink, the rest shared across
        // the branches with geometric skew.
        let endpoint_share = 0.05 * knobs.total_load;
        let branch_budget = knobs.total_load - 2.0 * endpoint_share;
        let ratio = 1.0 / (1.0 + knobs.skew);
        let weights: Vec<f64> = (0..knobs.width).map(|b| ratio.powi(b as i32)).collect();
        let weight_sum: f64 = weights.iter().sum();

        let mut tasks: Vec<TaskDescriptor> = Vec::new();
        let mut graph = PipelineGraph::new();
        let add = |tasks: &mut Vec<TaskDescriptor>,
                   graph: &mut PipelineGraph,
                   name: &str,
                   load: f64|
         -> Result<StageId, StreamError> {
            let index = tasks.len();
            tasks.push(TaskDescriptor::new(name, load, context));
            let cycles = cycles_per_frame(load, frame_period);
            graph.add_stage(StageDescriptor::new(name, TaskId(index), cycles))
        };

        let source_load = jitter(&mut rng, endpoint_share);
        let source = add(&mut tasks, &mut graph, "source", source_load)?;
        let mut branch_tails = Vec::with_capacity(knobs.width);
        for (branch, weight) in weights.iter().enumerate() {
            let per_stage = branch_budget * weight / weight_sum / knobs.depth as f64;
            let mut previous = source;
            for stage in 0..knobs.depth {
                let load = jitter(&mut rng, per_stage);
                let name = format!("b{branch}s{stage}");
                let id = add(&mut tasks, &mut graph, &name, load)?;
                graph.connect(previous, id)?;
                previous = id;
            }
            branch_tails.push(previous);
        }
        let sink_load = jitter(&mut rng, endpoint_share);
        let sink = add(&mut tasks, &mut graph, "sink", sink_load)?;
        for tail in branch_tails {
            graph.connect(tail, sink)?;
        }

        let placement = greedy_placement(&tasks, params.num_cores);
        let config = params.apply_queue_overrides(PipelineConfig {
            frame_period,
            queue_capacity: 11,
            prefill: 5,
        });
        Ok(GeneratedWorkload {
            tasks,
            placement,
            pipeline: Some(PipelinePlan {
                graph,
                config,
                arrivals: knobs.arrival_process(),
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dag_generator_builds_fork_join_topologies() {
        let mut params = WorkloadParams::default();
        params.dag.depth = Some(2);
        params.dag.width = Some(4);
        let generated = DagGenerator.generate(&params).unwrap();
        generated.validate().expect("valid workload");
        // source + 4×2 branch stages + sink.
        assert_eq!(generated.tasks.len(), 10);
        let plan = generated.pipeline.as_ref().expect("dag streams");
        assert_eq!(plan.graph.sources().len(), 1);
        assert_eq!(plan.graph.sinks().len(), 1);
        assert!(
            plan.graph.topological_order().is_ok(),
            "DAG must be acyclic"
        );
        // The join has one predecessor per branch.
        let sink = plan.graph.sinks()[0];
        assert_eq!(plan.graph.predecessors(sink).len(), 4);
        // Total load tracks the knob (jitter stays within ±10 %).
        let total = generated.total_fse_load();
        assert!(
            (total - 1.2).abs() < 0.2,
            "total load {total} far from knob"
        );
    }

    #[test]
    fn dag_skew_orders_branch_loads() {
        let mut params = WorkloadParams::default();
        params.dag.skew = Some(1.0);
        params.dag.load_jitter = Some(0.0);
        params.dag.depth = Some(1);
        let generated = DagGenerator.generate(&params).unwrap();
        // With skew 1 and no jitter, each branch carries half the previous
        // one's load.
        let b0 = generated.tasks.iter().find(|t| t.name == "b0s0").unwrap();
        let b1 = generated.tasks.iter().find(|t| t.name == "b1s0").unwrap();
        let b2 = generated.tasks.iter().find(|t| t.name == "b2s0").unwrap();
        assert!((b0.fse_load / b1.fse_load - 2.0).abs() < 1e-9);
        assert!((b1.fse_load / b2.fse_load - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dag_generator_is_deterministic_and_seed_sensitive() {
        let params = WorkloadParams::default();
        let a = DagGenerator.generate(&params).unwrap();
        let b = DagGenerator.generate(&params).unwrap();
        assert_eq!(a, b);
        let other = DagGenerator
            .generate(&WorkloadParams {
                seed: 123,
                ..params
            })
            .unwrap();
        assert_ne!(a, other);
    }

    #[test]
    fn dag_arrival_knobs_map_to_processes() {
        let mut params = WorkloadParams::default();
        params.dag.arrivals = Some(ArrivalKind::Bursty);
        params.dag.burst = Some(5);
        let plan = DagGenerator.generate(&params).unwrap().pipeline.unwrap();
        assert_eq!(plan.arrivals, ArrivalProcess::Bursty { burst: 5, every: 5 });
        assert!((plan.arrivals.mean_rate() - 1.0).abs() < 1e-12);

        let mut params = WorkloadParams::default();
        params.dag.arrivals = Some(ArrivalKind::Phased);
        params.dag.phases = Some(3);
        params.dag.phase_amplitude = Some(0.25);
        params.dag.phase_periods = Some(50);
        let plan = DagGenerator.generate(&params).unwrap().pipeline.unwrap();
        match &plan.arrivals {
            ArrivalProcess::Phased {
                periods_per_phase,
                rates,
            } => {
                assert_eq!(*periods_per_phase, 50);
                assert_eq!(rates, &vec![1.25, 0.75, 1.25]);
            }
            other => panic!("expected phased arrivals, got {other:?}"),
        }
    }

    #[test]
    fn dag_knob_validation() {
        for bad in [
            DagKnobs {
                depth: Some(0),
                ..DagKnobs::default()
            },
            DagKnobs {
                width: Some(0),
                ..DagKnobs::default()
            },
            DagKnobs {
                skew: Some(-1.0),
                ..DagKnobs::default()
            },
            DagKnobs {
                total_load: Some(0.0),
                ..DagKnobs::default()
            },
            DagKnobs {
                fps: Some(f64::NAN),
                ..DagKnobs::default()
            },
            DagKnobs {
                phase_amplitude: Some(1.0),
                ..DagKnobs::default()
            },
            DagKnobs {
                burst: Some(0),
                ..DagKnobs::default()
            },
        ] {
            let params = WorkloadParams {
                dag: bad,
                ..WorkloadParams::default()
            };
            assert!(DagGenerator.generate(&params).is_err());
        }
    }
}
