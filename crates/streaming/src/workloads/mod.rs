//! Pluggable workload generation.
//!
//! The paper evaluates thermal balancing on a single benchmark (the SDR
//! pipeline), but its claim is about streaming computing in general. This
//! module turns "which application runs" into a first-class, extensible
//! axis, mirroring how policies work:
//!
//! * [`WorkloadGenerator`] — a deterministic, seeded factory producing a
//!   [`GeneratedWorkload`]: OS task descriptors, an initial placement, and
//!   (for pipeline workloads) a [`PipelinePlan`] with the stage graph and an
//!   [`ArrivalProcess`];
//! * [`WorkloadRegistry`] — a name → generator registry, mirroring the
//!   policy registry in `tbp-core`: scenario files select workloads by
//!   string name, and third-party generators register without touching any
//!   core code;
//! * four built-in generators: [`sdr`](SdrGenerator) (the paper's
//!   benchmark), [`synthetic`](SyntheticGenerator) (flat seeded task sets),
//!   [`video-analytics`](VideoAnalyticsGenerator) (decode → detect → track
//!   → sink chains per camera stream), and [`dag`](DagGenerator)
//!   (parameterised fork-join pipelines with depth/width/skew knobs, phased
//!   load changes and bursty arrivals), plus the trivial
//!   [`idle`](IdleGenerator) workload.
//!
//! Generators are pure functions of their [`WorkloadParams`]: the same
//! parameters always produce byte-identical task sets and graphs, so cached
//! scenario reports stay valid and experiments stay reproducible.
//!
//! ```
//! use tbp_streaming::workloads::{WorkloadParams, WorkloadRegistry};
//!
//! let registry = WorkloadRegistry::with_builtins();
//! let generated = registry
//!     .generate("video-analytics", &WorkloadParams::default())
//!     .expect("builtin generator");
//! // One decode→detect→track→sink chain plus a pinned telemetry task.
//! assert_eq!(generated.tasks.len(), 5);
//! assert!(generated.pipeline.is_some());
//! ```

mod dag;
mod sdr;
mod synthetic;
mod video;

pub use dag::{ArrivalKind, DagGenerator, DagKnobs, ResolvedDagKnobs};
pub use sdr::SdrGenerator;
pub use synthetic::SyntheticGenerator;
pub use video::{ResolvedVideoKnobs, VideoAnalyticsGenerator, VideoKnobs};

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use tbp_arch::core::CoreId;
use tbp_os::task::{TaskDescriptor, TaskId};

use crate::error::StreamError;
use crate::graph::{PipelineGraph, StageDescriptor};
use crate::pipeline::{ArrivalProcess, PipelineConfig};
use crate::workload::WorkloadSpec;

/// Maximum core frequency (Hz) of the paper's DVFS scale, used to convert
/// full-speed-equivalent loads into cycles per frame.
pub const F_MAX_HZ: f64 = 533e6;

/// Inputs of a workload generator: the shared knobs every generator reads
/// (seed, core count, queue sizing) plus the per-family knob tables.
///
/// A generator only reads the knobs it understands — the `synthetic` table
/// is ignored by the `dag` generator and vice versa — so one parameter
/// value can drive any registered generator, which is what lets scenario
/// sweeps iterate over workload kinds without per-kind plumbing.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadParams {
    /// PRNG seed: the same seed always reproduces the same workload.
    pub seed: u64,
    /// Number of cores the initial placement targets (the simulation
    /// builder overrides this with the actual platform core count).
    pub num_cores: usize,
    /// Inter-stage queue capacity override (pipeline workloads).
    pub queue_capacity: Option<usize>,
    /// Start-up buffering override in frames (pipeline workloads).
    pub prefill: Option<usize>,
    /// Knobs of the `synthetic` flat-task-set generator.
    pub synthetic: WorkloadSpec,
    /// Knobs of the `video-analytics` generator.
    pub video: VideoKnobs,
    /// Knobs of the `dag` fork-join generator.
    pub dag: DagKnobs,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            seed: 0xC0FFEE,
            num_cores: 3,
            queue_capacity: None,
            prefill: None,
            synthetic: WorkloadSpec::default_mixed(),
            video: VideoKnobs::default(),
            dag: DagKnobs::default(),
        }
    }
}

impl WorkloadParams {
    /// Validates the shared knobs.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InvalidConfig`] for a zero core count or a
    /// prefill exceeding the queue capacity.
    pub fn validate(&self) -> Result<(), StreamError> {
        if self.num_cores == 0 {
            return Err(StreamError::InvalidConfig(
                "workload needs at least one core".into(),
            ));
        }
        if let (Some(prefill), Some(capacity)) = (self.prefill, self.queue_capacity) {
            if prefill > capacity {
                return Err(StreamError::InvalidConfig(format!(
                    "prefill {prefill} exceeds queue capacity {capacity}"
                )));
            }
        }
        Ok(())
    }

    /// Applies the queue sizing overrides to a pipeline configuration.
    pub fn apply_queue_overrides(&self, mut config: PipelineConfig) -> PipelineConfig {
        if let Some(capacity) = self.queue_capacity {
            config.queue_capacity = capacity;
            config.prefill = self.prefill.unwrap_or(capacity / 2);
        } else if let Some(prefill) = self.prefill {
            config.prefill = prefill;
        }
        config
    }
}

/// The streaming half of a generated workload: the stage graph (stages
/// reference tasks *by index* into [`GeneratedWorkload::tasks`]), the
/// pipeline configuration and the external arrival process.
///
/// Task indices rather than live [`TaskId`]s keep generation pure: ids only
/// exist once the OS spawns the tasks, at which point
/// [`instantiate`](Self::instantiate) rebinds the graph.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelinePlan {
    /// The stage graph; `StageDescriptor::task` holds `TaskId(i)` where `i`
    /// indexes [`GeneratedWorkload::tasks`].
    pub graph: PipelineGraph,
    /// Frame period and queue sizing.
    pub config: PipelineConfig,
    /// External producer behaviour.
    pub arrivals: ArrivalProcess,
}

impl PipelinePlan {
    /// Rebinds the plan's task indices to the ids the OS actually assigned:
    /// `ids[i]` must be the task spawned from the *i*-th generated
    /// descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InvalidConfig`] when a stage references an
    /// index outside `ids`.
    pub fn instantiate(&self, ids: &[TaskId]) -> Result<PipelineGraph, StreamError> {
        let mut graph = PipelineGraph::new();
        for stage in self.graph.stages() {
            let index = stage.task.index();
            let id = *ids.get(index).ok_or_else(|| {
                StreamError::InvalidConfig(format!(
                    "stage `{}` references task index {index}, but only {} tasks were spawned",
                    stage.name,
                    ids.len()
                ))
            })?;
            graph.add_stage(StageDescriptor::new(
                &stage.name,
                id,
                stage.cycles_per_frame,
            ))?;
        }
        for &(from, to) in self.graph.edges() {
            graph.connect(from, to)?;
        }
        graph.validate()?;
        Ok(graph)
    }
}

/// A fully generated workload: task descriptors, their initial placement and
/// (for streaming workloads) the pipeline plan.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedWorkload {
    /// OS task descriptors, in spawn order.
    pub tasks: Vec<TaskDescriptor>,
    /// Initial core of each task (parallel to `tasks`).
    pub placement: Vec<CoreId>,
    /// The stage graph and arrival process, when the workload streams.
    pub pipeline: Option<PipelinePlan>,
}

impl GeneratedWorkload {
    /// Checks the structural invariants every generator must uphold: one
    /// placement per task, valid task descriptors, and — when a pipeline is
    /// present — an acyclic graph whose stages reference existing tasks with
    /// positive per-frame cycle counts.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InvalidConfig`] or
    /// [`StreamError::InvalidGraph`] naming the violated invariant.
    pub fn validate(&self) -> Result<(), StreamError> {
        if self.tasks.len() != self.placement.len() {
            return Err(StreamError::InvalidConfig(format!(
                "{} tasks but {} placements",
                self.tasks.len(),
                self.placement.len()
            )));
        }
        for task in &self.tasks {
            task.validate()
                .map_err(|e| StreamError::InvalidConfig(format!("task `{}`: {e}", task.name)))?;
        }
        if let Some(plan) = &self.pipeline {
            plan.graph.validate()?;
            plan.config.validate()?;
            plan.arrivals.validate()?;
            for stage in plan.graph.stages() {
                if stage.task.index() >= self.tasks.len() {
                    return Err(StreamError::InvalidConfig(format!(
                        "stage `{}` references task index {} of {}",
                        stage.name,
                        stage.task.index(),
                        self.tasks.len()
                    )));
                }
                if !(stage.cycles_per_frame.is_finite() && stage.cycles_per_frame > 0.0) {
                    return Err(StreamError::InvalidConfig(format!(
                        "stage `{}` has non-positive cycles per frame",
                        stage.name
                    )));
                }
            }
        } else if self.tasks.is_empty() {
            // Idle workloads are the only legitimately empty ones.
        }
        Ok(())
    }

    /// Total full-speed-equivalent load of the generated tasks.
    pub fn total_fse_load(&self) -> f64 {
        self.tasks.iter().map(|t| t.fse_load).sum()
    }
}

/// A deterministic workload factory resolved by name through a
/// [`WorkloadRegistry`].
///
/// Implementations must be pure: the same [`WorkloadParams`] must always
/// produce the same [`GeneratedWorkload`] (scenario caching and shard
/// merging rely on it).
pub trait WorkloadGenerator: Send + Sync {
    /// The registry name of the generator (e.g. `"video-analytics"`).
    fn name(&self) -> &str;

    /// Generates the workload for the given parameters.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError`] when the parameters are invalid for this
    /// generator.
    fn generate(&self, params: &WorkloadParams) -> Result<GeneratedWorkload, StreamError>;
}

/// The trivial workload: no tasks at all (an idle platform, useful for
/// thermal calibration).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdleGenerator;

impl WorkloadGenerator for IdleGenerator {
    fn name(&self) -> &str {
        "idle"
    }

    fn generate(&self, params: &WorkloadParams) -> Result<GeneratedWorkload, StreamError> {
        params.validate()?;
        Ok(GeneratedWorkload {
            tasks: Vec::new(),
            placement: Vec::new(),
            pipeline: None,
        })
    }
}

/// Registry mapping workload names to generators, mirroring the policy
/// registry: scenario files select workloads by string name and third-party
/// generators register without touching core code.
pub struct WorkloadRegistry {
    generators: BTreeMap<String, Arc<dyn WorkloadGenerator>>,
}

impl WorkloadRegistry {
    /// An empty registry (no names resolve).
    pub fn empty() -> Self {
        WorkloadRegistry {
            generators: BTreeMap::new(),
        }
    }

    /// A registry pre-populated with the built-in generators: `sdr`,
    /// `synthetic`, `video-analytics`, `dag` and `idle`.
    pub fn with_builtins() -> Self {
        let mut registry = WorkloadRegistry::empty();
        registry.register(SdrGenerator);
        registry.register(SyntheticGenerator);
        registry.register(VideoAnalyticsGenerator);
        registry.register(DagGenerator);
        registry.register(IdleGenerator);
        registry
    }

    /// The shared process-wide registry with the built-in generators.
    ///
    /// Custom generators cannot be added here; build your own registry with
    /// [`with_builtins`](Self::with_builtins) + [`register`](Self::register)
    /// and hand it to the simulation builder instead.
    pub fn global() -> Arc<WorkloadRegistry> {
        static GLOBAL: OnceLock<Arc<WorkloadRegistry>> = OnceLock::new();
        GLOBAL
            .get_or_init(|| Arc::new(WorkloadRegistry::with_builtins()))
            .clone()
    }

    /// Registers (or replaces) a generator under its own name.
    pub fn register(&mut self, generator: impl WorkloadGenerator + 'static) {
        self.register_arc(Arc::new(generator));
    }

    /// Registers (or replaces) an already-shared generator.
    pub fn register_arc(&mut self, generator: Arc<dyn WorkloadGenerator>) {
        self.generators
            .insert(generator.name().to_string(), generator);
    }

    /// Whether `name` resolves.
    pub fn contains(&self, name: &str) -> bool {
        self.generators.contains_key(name)
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.generators.keys().cloned().collect()
    }

    /// Generates the workload `name` describes, validating the result.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::UnknownGenerator`] when the name is not
    /// registered, or whatever error the generator reports; a generator
    /// producing a structurally invalid workload is also an error.
    pub fn generate(
        &self,
        name: &str,
        params: &WorkloadParams,
    ) -> Result<GeneratedWorkload, StreamError> {
        let generator = self
            .generators
            .get(name)
            .ok_or_else(|| StreamError::UnknownGenerator {
                name: name.to_string(),
                known: self.names(),
            })?;
        let workload = generator.generate(params)?;
        workload.validate()?;
        Ok(workload)
    }
}

impl fmt::Debug for WorkloadRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkloadRegistry")
            .field("names", &self.names())
            .finish()
    }
}

impl Default for WorkloadRegistry {
    fn default() -> Self {
        WorkloadRegistry::with_builtins()
    }
}

/// A load drawn from `base * (1 ± jitter)`, clamped into the valid task-load
/// range `(0, 1]` — the seeded per-stage variation the video and DAG
/// generators share.
pub(crate) fn jittered_load(rng: &mut crate::workload::SplitMix64, base: f64, jitter: f64) -> f64 {
    let factor = 1.0 + jitter * (2.0 * rng.next_f64() - 1.0);
    (base * factor).clamp(1e-4, 1.0)
}

/// Processor cycles per frame of a stage with the given full-speed-equivalent
/// load at the given frame period: a task with load `L` consumes
/// `L * f_max` cycles per second.
pub(crate) fn cycles_per_frame(load: f64, frame_period: tbp_arch::units::Seconds) -> f64 {
    load * F_MAX_HZ * frame_period.as_secs()
}

/// Greedy least-loaded placement: heaviest task first onto the currently
/// lightest core — the energy-balanced starting point the paper's Table 2
/// mapping also approximates.
pub(crate) fn greedy_placement(tasks: &[TaskDescriptor], num_cores: usize) -> Vec<CoreId> {
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by(|&a, &b| {
        tasks[b]
            .fse_load
            .partial_cmp(&tasks[a].fse_load)
            .expect("loads are finite")
    });
    let mut core_loads = vec![0.0f64; num_cores.max(1)];
    let mut placement = vec![CoreId(0); tasks.len()];
    for &i in &order {
        let (core, _) = core_loads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("loads are finite"))
            .expect("at least one core");
        core_loads[core] += tasks[i].fse_load;
        placement[i] = CoreId(core);
    }
    placement
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbp_arch::units::Bytes;

    #[test]
    fn registry_resolves_builtins_by_name() {
        let registry = WorkloadRegistry::with_builtins();
        assert_eq!(
            registry.names(),
            vec![
                "dag".to_string(),
                "idle".to_string(),
                "sdr".to_string(),
                "synthetic".to_string(),
                "video-analytics".to_string(),
            ]
        );
        let params = WorkloadParams::default();
        for name in registry.names() {
            let workload = registry
                .generate(&name, &params)
                .expect("builtin generates");
            workload.validate().expect("builtin output is valid");
        }
        assert!(registry.contains("dag"));
        assert!(!registry.contains("nope"));
        assert!(format!("{registry:?}").contains("video-analytics"));
    }

    #[test]
    fn unknown_generators_error_with_known_names() {
        let registry = WorkloadRegistry::with_builtins();
        let err = registry
            .generate("does-not-exist", &WorkloadParams::default())
            .unwrap_err();
        match &err {
            StreamError::UnknownGenerator { name, known } => {
                assert_eq!(name, "does-not-exist");
                assert_eq!(known.len(), 5);
            }
            other => panic!("expected UnknownGenerator, got {other:?}"),
        }
        assert!(err.to_string().contains("sdr"));
    }

    #[test]
    fn third_party_generators_register_by_name() {
        struct TinyGenerator;
        impl WorkloadGenerator for TinyGenerator {
            fn name(&self) -> &str {
                "tiny"
            }
            fn generate(&self, params: &WorkloadParams) -> Result<GeneratedWorkload, StreamError> {
                params.validate()?;
                let tasks = vec![TaskDescriptor::new("only", 0.1, Bytes::from_kib(64))];
                let placement = greedy_placement(&tasks, params.num_cores);
                Ok(GeneratedWorkload {
                    tasks,
                    placement,
                    pipeline: None,
                })
            }
        }
        let mut registry = WorkloadRegistry::with_builtins();
        registry.register(TinyGenerator);
        let workload = registry
            .generate("tiny", &WorkloadParams::default())
            .expect("registered generator runs");
        assert_eq!(workload.tasks.len(), 1);
    }

    #[test]
    fn global_registry_is_shared() {
        let a = WorkloadRegistry::global();
        let b = WorkloadRegistry::global();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.contains("video-analytics"));
    }

    #[test]
    fn params_validation_and_queue_overrides() {
        let mut params = WorkloadParams::default();
        assert!(params.validate().is_ok());
        params.num_cores = 0;
        assert!(params.validate().is_err());
        let params = WorkloadParams {
            queue_capacity: Some(4),
            prefill: Some(9),
            ..WorkloadParams::default()
        };
        assert!(params.validate().is_err());
        let params = WorkloadParams {
            queue_capacity: Some(8),
            prefill: None,
            ..WorkloadParams::default()
        };
        let config = params.apply_queue_overrides(PipelineConfig::paper_default());
        assert_eq!(config.queue_capacity, 8);
        assert_eq!(config.prefill, 4);
        let params = WorkloadParams {
            queue_capacity: None,
            prefill: Some(2),
            ..WorkloadParams::default()
        };
        let config = params.apply_queue_overrides(PipelineConfig::paper_default());
        assert_eq!(config.queue_capacity, 11);
        assert_eq!(config.prefill, 2);
    }

    #[test]
    fn plan_instantiation_rebinds_task_indices() {
        let registry = WorkloadRegistry::with_builtins();
        let generated = registry
            .generate("video-analytics", &WorkloadParams::default())
            .unwrap();
        let plan = generated.pipeline.expect("video workload streams");
        // Spawn order shifted by 10: stage tasks must follow.
        let ids: Vec<TaskId> = (10..10 + generated.tasks.len()).map(TaskId).collect();
        let graph = plan.instantiate(&ids).expect("plan instantiates");
        assert!(graph.stages().iter().all(|s| s.task.index() >= 10));
        // Too few ids is an error, not a panic.
        assert!(plan.instantiate(&ids[..1]).is_err());
    }

    #[test]
    fn generated_workload_validation_catches_mismatches() {
        let mut workload = GeneratedWorkload {
            tasks: vec![TaskDescriptor::new("t", 0.2, Bytes::from_kib(64))],
            placement: Vec::new(),
            pipeline: None,
        };
        assert!(workload.validate().is_err());
        workload.placement = vec![CoreId(0)];
        assert!(workload.validate().is_ok());
        assert!((workload.total_fse_load() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn greedy_placement_balances_loads() {
        let tasks: Vec<TaskDescriptor> = (0..12)
            .map(|i| {
                TaskDescriptor::new(&format!("t{i}"), 0.1 + 0.02 * i as f64, Bytes::from_kib(64))
            })
            .collect();
        let placement = greedy_placement(&tasks, 3);
        let mut loads = [0.0f64; 3];
        for (task, core) in tasks.iter().zip(&placement) {
            loads[core.index()] += task.fse_load;
        }
        let max = loads.iter().cloned().fold(0.0, f64::max);
        let min = loads.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max - min < 0.15, "loads should be balanced: {loads:?}");
    }
}
