//! The `sdr` generator: the paper's Software Defined Radio benchmark as a
//! registry workload.

use tbp_os::task::TaskId;

use crate::error::StreamError;
use crate::pipeline::ArrivalProcess;
use crate::sdr::SdrBenchmark;
use crate::workloads::{GeneratedWorkload, PipelinePlan, WorkloadGenerator, WorkloadParams};

/// Wraps [`SdrBenchmark::paper_default`] (Table 2 task set, Figure 6 graph,
/// energy-balanced 3-core mapping) behind the [`WorkloadGenerator`] trait.
///
/// The SDR benchmark is fully specified by the paper, so the generator
/// ignores the seed; only the shared queue-sizing knobs apply.
#[derive(Debug, Clone, Copy, Default)]
pub struct SdrGenerator;

impl WorkloadGenerator for SdrGenerator {
    fn name(&self) -> &str {
        "sdr"
    }

    fn generate(&self, params: &WorkloadParams) -> Result<GeneratedWorkload, StreamError> {
        params.validate()?;
        let mut sdr = SdrBenchmark::paper_default();
        let config = params.apply_queue_overrides(*sdr.pipeline_config());
        sdr = sdr.with_pipeline_config(config);
        let tasks = sdr.tasks();
        let placement = sdr.initial_placement();
        let highest_core = placement.iter().map(|c| c.index()).max().unwrap_or(0);
        if params.num_cores <= highest_core {
            return Err(StreamError::InvalidConfig(format!(
                "the SDR mapping needs {} cores, platform has {}",
                highest_core + 1,
                params.num_cores
            )));
        }
        // The plan references tasks by index; `tasks()` order matches the
        // stage order `build_graph` expects.
        let indices: Vec<TaskId> = (0..tasks.len()).map(TaskId).collect();
        let graph = sdr.build_graph(&indices)?;
        Ok(GeneratedWorkload {
            tasks,
            placement,
            pipeline: Some(PipelinePlan {
                graph,
                config,
                arrivals: ArrivalProcess::Uniform,
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sdr_generator_reproduces_the_paper_benchmark() {
        let generated = SdrGenerator
            .generate(&WorkloadParams::default())
            .expect("paper benchmark generates");
        generated.validate().expect("valid workload");
        assert_eq!(generated.tasks.len(), 6);
        let plan = generated.pipeline.as_ref().expect("SDR streams");
        assert_eq!(plan.graph.len(), 6);
        assert_eq!(plan.config.queue_capacity, 11);
        assert_eq!(plan.arrivals, ArrivalProcess::Uniform);
        // Seed does not matter: the benchmark is fully paper-specified.
        let other = SdrGenerator
            .generate(&WorkloadParams {
                seed: 1,
                ..WorkloadParams::default()
            })
            .unwrap();
        assert_eq!(generated, other);
    }

    #[test]
    fn sdr_generator_applies_queue_overrides_and_core_bounds() {
        let generated = SdrGenerator
            .generate(&WorkloadParams {
                queue_capacity: Some(16),
                ..WorkloadParams::default()
            })
            .unwrap();
        let plan = generated.pipeline.unwrap();
        assert_eq!(plan.config.queue_capacity, 16);
        assert_eq!(plan.config.prefill, 8);
        // Table 2 maps onto three cores; fewer is an error.
        assert!(SdrGenerator
            .generate(&WorkloadParams {
                num_cores: 2,
                ..WorkloadParams::default()
            })
            .is_err());
    }
}
