//! The `synthetic` generator: seeded flat task sets without a pipeline.

use crate::error::StreamError;
use crate::workload::SyntheticWorkload;
use crate::workloads::{GeneratedWorkload, WorkloadGenerator, WorkloadParams};

/// Wraps [`SyntheticWorkload::generate`] behind the [`WorkloadGenerator`]
/// trait: a seeded set of independent tasks with uneven loads and a greedy
/// least-loaded initial placement, no stage graph (and therefore no QoS
/// accounting) — the stress-test workload of the policy benches.
///
/// The shared `seed`/`num_cores` parameters override the corresponding
/// fields of the `synthetic` knob table, so sweeping the shared seed axis
/// re-rolls this workload like any other.
#[derive(Debug, Clone, Copy, Default)]
pub struct SyntheticGenerator;

impl WorkloadGenerator for SyntheticGenerator {
    fn name(&self) -> &str {
        "synthetic"
    }

    fn generate(&self, params: &WorkloadParams) -> Result<GeneratedWorkload, StreamError> {
        params.validate()?;
        let mut spec = params.synthetic.clone();
        spec.seed = params.seed;
        spec.num_cores = params.num_cores;
        let workload = SyntheticWorkload::generate(&spec)?;
        Ok(GeneratedWorkload {
            tasks: workload.tasks,
            placement: workload.placement,
            pipeline: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_generator_is_seeded_and_flat() {
        let params = WorkloadParams::default();
        let a = SyntheticGenerator.generate(&params).unwrap();
        let b = SyntheticGenerator.generate(&params).unwrap();
        assert_eq!(a, b, "same seed must reproduce the same workload");
        a.validate().expect("valid workload");
        assert_eq!(a.tasks.len(), 8);
        assert!(a.pipeline.is_none());
        let other = SyntheticGenerator
            .generate(&WorkloadParams {
                seed: 7,
                ..params.clone()
            })
            .unwrap();
        assert_ne!(a, other, "different seeds must differ");
        // The shared core count overrides the knob table's.
        let narrow = SyntheticGenerator
            .generate(&WorkloadParams {
                num_cores: 1,
                ..params
            })
            .unwrap();
        assert!(narrow.placement.iter().all(|c| c.index() == 0));
    }
}
