//! Instruction and data cache models.
//!
//! The emulated tiles carry an 8 kB two-way data cache and an 8 kB
//! direct-mapped instruction cache (Table 1). For the purposes of the thermal
//! study the caches matter as *power sources co-located with their core on the
//! floorplan*; this module models their activity (which follows the core's
//! utilisation) and a simple hit/miss accounting used to derive bus traffic.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::core::CoreId;
use crate::error::ArchError;
use crate::freq::OperatingPoint;
use crate::power::{ComponentKind, PowerModel};
use crate::units::{Bytes, Celsius, Watts};

/// Kind of cache within a tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CacheKind {
    /// Instruction cache (8 kB, direct mapped).
    Instruction,
    /// Data cache (8 kB, 2-way set associative).
    Data,
}

impl CacheKind {
    /// The Table 1 power component corresponding to this cache kind.
    pub fn component(self) -> ComponentKind {
        match self {
            CacheKind::Instruction => ComponentKind::ICache,
            CacheKind::Data => ComponentKind::DCache,
        }
    }

    /// Default capacity of the cache (both are 8 kB in the paper).
    pub fn default_capacity(self) -> Bytes {
        Bytes::from_kib(8)
    }
}

impl fmt::Display for CacheKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheKind::Instruction => write!(f, "I-cache"),
            CacheKind::Data => write!(f, "D-cache"),
        }
    }
}

/// Geometry and behaviour parameters of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Which cache this is.
    pub kind: CacheKind,
    /// Total capacity.
    pub capacity: Bytes,
    /// Cache line size in bytes.
    pub line_size: Bytes,
    /// Associativity (1 = direct mapped).
    pub associativity: usize,
    /// Steady-state miss ratio used to derive refill traffic on the bus.
    pub miss_ratio: f64,
}

impl CacheConfig {
    /// The paper's 8 kB direct-mapped instruction cache.
    pub fn paper_icache() -> Self {
        CacheConfig {
            kind: CacheKind::Instruction,
            capacity: Bytes::from_kib(8),
            line_size: Bytes::new(32),
            associativity: 1,
            miss_ratio: 0.02,
        }
    }

    /// The paper's 8 kB 2-way data cache.
    pub fn paper_dcache() -> Self {
        CacheConfig {
            kind: CacheKind::Data,
            capacity: Bytes::from_kib(8),
            line_size: Bytes::new(32),
            associativity: 2,
            miss_ratio: 0.05,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] for zero sizes, zero
    /// associativity, or a miss ratio outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), ArchError> {
        if self.capacity == Bytes::ZERO {
            return Err(ArchError::InvalidConfig(
                "cache capacity must be > 0".into(),
            ));
        }
        if self.line_size == Bytes::ZERO {
            return Err(ArchError::InvalidConfig(
                "cache line size must be > 0".into(),
            ));
        }
        if self.associativity == 0 {
            return Err(ArchError::InvalidConfig(
                "cache associativity must be >= 1".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.miss_ratio) {
            return Err(ArchError::InvalidConfig(format!(
                "cache miss ratio {} must be in [0, 1]",
                self.miss_ratio
            )));
        }
        Ok(())
    }

    /// Number of cache lines.
    pub fn num_lines(&self) -> u64 {
        self.capacity.as_u64() / self.line_size.as_u64().max(1)
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.num_lines() / self.associativity.max(1) as u64
    }
}

/// Run-time cache state attached to a core.
///
/// Activity tracks the owning core's utilisation: a cache serving a busy core
/// toggles proportionally more of its arrays. Misses generate refill traffic
/// that the platform routes over the shared bus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cache {
    owner: CoreId,
    config: CacheConfig,
    accesses: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache owned by `owner`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] when the configuration is invalid.
    pub fn new(owner: CoreId, config: CacheConfig) -> Result<Self, ArchError> {
        config.validate()?;
        Ok(Cache {
            owner,
            config,
            accesses: 0,
            misses: 0,
        })
    }

    /// The core this cache belongs to.
    pub fn owner(&self) -> CoreId {
        self.owner
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Total accesses recorded so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Observed miss ratio (falls back to the configured ratio before any
    /// access has been recorded).
    pub fn observed_miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            self.config.miss_ratio
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Records `accesses` cache accesses, using the configured miss ratio to
    /// derive misses, and returns the refill traffic generated on the bus.
    pub fn record_accesses(&mut self, accesses: u64) -> Bytes {
        let misses = (accesses as f64 * self.config.miss_ratio).round() as u64;
        self.accesses = self.accesses.saturating_add(accesses);
        self.misses = self.misses.saturating_add(misses);
        Bytes::new(misses.saturating_mul(self.config.line_size.as_u64()))
    }

    /// Estimated accesses produced by a core executing `task_cycles` cycles.
    ///
    /// Instruction caches are probed roughly every cycle; data caches on a
    /// load/store-heavy streaming workload are probed about every third
    /// cycle.
    pub fn accesses_for_cycles(&self, task_cycles: f64) -> u64 {
        let per_cycle = match self.config.kind {
            CacheKind::Instruction => 1.0,
            CacheKind::Data => 0.35,
        };
        (task_cycles * per_cycle).max(0.0) as u64
    }

    /// Instantaneous power of the cache given the owning core's operating
    /// point and utilisation.
    pub fn power(
        &self,
        model: &PowerModel,
        point: OperatingPoint,
        core_utilization: f64,
        temperature: Celsius,
    ) -> Watts {
        model
            .component_power(
                self.config.kind.component(),
                point,
                core_utilization.clamp(0.0, 1.0),
                temperature,
            )
            .expect("clamped utilization is always valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::{Frequency, Voltage};

    #[test]
    fn paper_configs_are_valid_and_sized() {
        let i = CacheConfig::paper_icache();
        let d = CacheConfig::paper_dcache();
        assert!(i.validate().is_ok());
        assert!(d.validate().is_ok());
        assert_eq!(i.capacity, Bytes::from_kib(8));
        assert_eq!(d.associativity, 2);
        assert_eq!(i.associativity, 1);
        assert_eq!(i.num_lines(), 256);
        assert_eq!(i.num_sets(), 256);
        assert_eq!(d.num_sets(), 128);
        assert_eq!(
            CacheKind::Instruction.default_capacity(),
            Bytes::from_kib(8)
        );
        assert_eq!(CacheKind::Data.component(), ComponentKind::DCache);
        assert_eq!(CacheKind::Instruction.component(), ComponentKind::ICache);
        assert_eq!(CacheKind::Data.to_string(), "D-cache");
        assert_eq!(CacheKind::Instruction.to_string(), "I-cache");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = CacheConfig::paper_dcache();
        c.capacity = Bytes::ZERO;
        assert!(c.validate().is_err());
        let mut c = CacheConfig::paper_dcache();
        c.line_size = Bytes::ZERO;
        assert!(c.validate().is_err());
        let mut c = CacheConfig::paper_dcache();
        c.associativity = 0;
        assert!(c.validate().is_err());
        let mut c = CacheConfig::paper_dcache();
        c.miss_ratio = 1.5;
        assert!(c.validate().is_err());
        assert!(Cache::new(CoreId(0), c).is_err());
    }

    #[test]
    fn record_accesses_accumulates_and_reports_traffic() {
        let mut cache = Cache::new(CoreId(0), CacheConfig::paper_dcache()).unwrap();
        assert_eq!(cache.owner(), CoreId(0));
        let traffic = cache.record_accesses(1000);
        // 5 % of 1000 = 50 misses * 32 B lines = 1600 B.
        assert_eq!(traffic, Bytes::new(1600));
        assert_eq!(cache.accesses(), 1000);
        assert_eq!(cache.misses(), 50);
        assert!((cache.observed_miss_ratio() - 0.05).abs() < 1e-9);
        let fresh = Cache::new(CoreId(0), CacheConfig::paper_icache()).unwrap();
        assert!((fresh.observed_miss_ratio() - 0.02).abs() < 1e-9);
    }

    #[test]
    fn access_estimation_differs_by_kind() {
        let icache = Cache::new(CoreId(0), CacheConfig::paper_icache()).unwrap();
        let dcache = Cache::new(CoreId(0), CacheConfig::paper_dcache()).unwrap();
        let cycles = 1_000_000.0;
        assert!(icache.accesses_for_cycles(cycles) > dcache.accesses_for_cycles(cycles));
        assert_eq!(icache.accesses_for_cycles(-5.0), 0);
    }

    #[test]
    fn cache_power_follows_core_activity() {
        let model = PowerModel::new();
        let cache = Cache::new(CoreId(0), CacheConfig::paper_dcache()).unwrap();
        let point = OperatingPoint::new(Frequency::from_mhz(500.0), Voltage::new(1.2));
        let t = Celsius::new(60.0);
        let busy = cache.power(&model, point, 1.0, t).as_watts();
        let idle = cache.power(&model, point, 0.0, t).as_watts();
        assert!(busy > idle);
        // At full activity and the reference point the cache hits its Table 1
        // maximum power.
        assert!((busy - 0.043).abs() < 1e-9);
        // Out-of-range utilisation is clamped, not an error.
        let clamped = cache.power(&model, point, 2.0, t).as_watts();
        assert!((clamped - busy).abs() < 1e-12);
        assert_eq!(cache.config().kind, CacheKind::Data);
    }
}
