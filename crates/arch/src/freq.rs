//! Frequencies, voltages and discrete DVFS operating points.
//!
//! Each processor in the paper's platform can independently scale its
//! frequency and voltage (Section 3). Table 2 of the paper maps the SDR tasks
//! onto cores running at 533 MHz and 266 MHz; the power figures of Table 1 are
//! given at 500 MHz. This module models the discrete operating-point scale a
//! core can choose from and the corresponding supply voltages.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::ArchError;

/// A clock frequency, stored in hertz.
///
/// ```
/// use tbp_arch::freq::Frequency;
/// let f = Frequency::from_mhz(533.0);
/// assert_eq!(f.as_mhz(), 533.0);
/// assert!(f > Frequency::from_mhz(266.0));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Frequency(u64);

impl Frequency {
    /// Zero frequency (halted core).
    pub const ZERO: Frequency = Frequency(0);

    /// Creates a frequency from hertz.
    pub fn from_hz(hz: u64) -> Self {
        Frequency(hz)
    }

    /// Creates a frequency from megahertz.
    pub fn from_mhz(mhz: f64) -> Self {
        Frequency((mhz * 1e6).round() as u64)
    }

    /// Value in hertz.
    pub fn as_hz(self) -> u64 {
        self.0
    }

    /// Value in megahertz.
    pub fn as_mhz(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Value in gigahertz.
    pub fn as_ghz(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Ratio of this frequency to another (used for load scaling).
    ///
    /// Returns 0 when `other` is zero.
    pub fn ratio_to(self, other: Frequency) -> f64 {
        if other.0 == 0 {
            0.0
        } else {
            self.0 as f64 / other.0 as f64
        }
    }

    /// Number of cycles elapsed in `seconds` at this frequency.
    pub fn cycles_in(self, seconds: f64) -> f64 {
        self.0 as f64 * seconds
    }

    /// Time needed to execute `cycles` cycles at this frequency, in seconds.
    ///
    /// Returns `f64::INFINITY` for a halted (zero-frequency) core.
    pub fn time_for_cycles(self, cycles: f64) -> f64 {
        if self.0 == 0 {
            f64::INFINITY
        } else {
            cycles / self.0 as f64
        }
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} MHz", self.as_mhz())
    }
}

/// A supply voltage in volts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Voltage(f64);

impl Voltage {
    /// Creates a voltage from volts.
    pub fn new(volts: f64) -> Self {
        Voltage(volts)
    }

    /// Value in volts.
    pub fn as_volts(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Voltage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} V", self.0)
    }
}

/// A (frequency, voltage) pair a core can run at.
///
/// The dynamic power of a CMOS circuit scales as `f · V²`; the operating
/// point carries both values so the power model can apply the scaling without
/// guessing the voltage associated with a frequency.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Clock frequency of the point.
    pub frequency: Frequency,
    /// Supply voltage of the point.
    pub voltage: Voltage,
}

impl OperatingPoint {
    /// Creates an operating point.
    pub fn new(frequency: Frequency, voltage: Voltage) -> Self {
        OperatingPoint { frequency, voltage }
    }

    /// Dynamic-power scaling factor of this point relative to a reference
    /// point: `(f/f_ref) · (V/V_ref)²`.
    pub fn dynamic_scale(&self, reference: &OperatingPoint) -> f64 {
        if reference.frequency.as_hz() == 0 || reference.voltage.as_volts() == 0.0 {
            return 0.0;
        }
        let f_ratio = self.frequency.ratio_to(reference.frequency);
        let v_ratio = self.voltage.as_volts() / reference.voltage.as_volts();
        f_ratio * v_ratio * v_ratio
    }
}

impl fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.frequency, self.voltage)
    }
}

/// An ordered, discrete set of operating points (a DVFS scale).
///
/// The scale is kept sorted by ascending frequency. The governor in `tbp-os`
/// picks the smallest level whose frequency covers the core's full-speed
/// -equivalent (FSE) load.
///
/// ```
/// use tbp_arch::freq::{DvfsScale, Frequency};
/// let scale = DvfsScale::paper_default();
/// // Table 2 uses 533 MHz and 266 MHz levels.
/// assert!(scale.contains(Frequency::from_mhz(533.0)));
/// assert!(scale.contains(Frequency::from_mhz(266.0)));
/// let level = scale.level_for_load(0.45).unwrap();
/// assert!(level.frequency.as_mhz() >= 0.45 * scale.max_frequency().as_mhz());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsScale {
    points: Vec<OperatingPoint>,
}

impl DvfsScale {
    /// Builds a scale from a list of operating points.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] when `points` is empty or contains
    /// a zero-frequency level (halting is modelled separately from DVFS).
    pub fn new(mut points: Vec<OperatingPoint>) -> Result<Self, ArchError> {
        if points.is_empty() {
            return Err(ArchError::InvalidConfig(
                "DVFS scale needs at least one operating point".into(),
            ));
        }
        if points.iter().any(|p| p.frequency.as_hz() == 0) {
            return Err(ArchError::InvalidConfig(
                "DVFS scale must not contain a 0 Hz level".into(),
            ));
        }
        points.sort_by_key(|p| p.frequency);
        points.dedup_by_key(|p| p.frequency);
        Ok(DvfsScale { points })
    }

    /// The DVFS scale used throughout the paper's experiments: multiples of
    /// 133 MHz, topping out at 533 MHz, with a linear voltage ramp from 0.8 V
    /// to 1.2 V (representative 90 nm values).
    pub fn paper_default() -> Self {
        let levels_mhz = [133.0, 266.0, 400.0, 533.0];
        let v_min = 0.8;
        let v_max = 1.2;
        let f_max = *levels_mhz.last().expect("non-empty");
        let points = levels_mhz
            .iter()
            .map(|&mhz| {
                let v = v_min + (v_max - v_min) * (mhz / f_max);
                OperatingPoint::new(Frequency::from_mhz(mhz), Voltage::new(v))
            })
            .collect();
        DvfsScale::new(points).expect("paper scale is valid")
    }

    /// All operating points in ascending frequency order.
    pub fn points(&self) -> &[OperatingPoint] {
        &self.points
    }

    /// Number of levels in the scale.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the scale has no levels (never true after
    /// construction, provided for completeness).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Highest frequency of the scale.
    pub fn max_frequency(&self) -> Frequency {
        self.points.last().expect("scale is never empty").frequency
    }

    /// Lowest frequency of the scale.
    pub fn min_frequency(&self) -> Frequency {
        self.points.first().expect("scale is never empty").frequency
    }

    /// Highest operating point of the scale.
    pub fn max_point(&self) -> OperatingPoint {
        *self.points.last().expect("scale is never empty")
    }

    /// Returns `true` when `frequency` is one of the scale's levels.
    pub fn contains(&self, frequency: Frequency) -> bool {
        self.points.iter().any(|p| p.frequency == frequency)
    }

    /// Returns the operating point for an exact frequency level.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::UnsupportedFrequency`] when the frequency is not a
    /// level of this scale.
    pub fn point_for(&self, frequency: Frequency) -> Result<OperatingPoint, ArchError> {
        self.points
            .iter()
            .copied()
            .find(|p| p.frequency == frequency)
            .ok_or(ArchError::UnsupportedFrequency(frequency.as_hz()))
    }

    /// Smallest operating point whose frequency covers `load` (a fraction of
    /// the maximum frequency, i.e. a full-speed-equivalent utilisation).
    ///
    /// Loads above 1.0 saturate at the maximum level. Returns `None` only for
    /// negative loads.
    pub fn level_for_load(&self, load: f64) -> Option<OperatingPoint> {
        if load < 0.0 {
            return None;
        }
        let required_hz = load.min(1.0) * self.max_frequency().as_hz() as f64;
        self.points
            .iter()
            .copied()
            .find(|p| p.frequency.as_hz() as f64 + 1e-9 >= required_hz)
            .or_else(|| self.points.last().copied())
    }

    /// The level immediately above `frequency`, if any.
    pub fn next_above(&self, frequency: Frequency) -> Option<OperatingPoint> {
        self.points
            .iter()
            .copied()
            .find(|p| p.frequency > frequency)
    }

    /// The level immediately below `frequency`, if any.
    pub fn next_below(&self, frequency: Frequency) -> Option<OperatingPoint> {
        self.points
            .iter()
            .rev()
            .copied()
            .find(|p| p.frequency < frequency)
    }
}

impl Default for DvfsScale {
    fn default() -> Self {
        DvfsScale::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_conversions() {
        let f = Frequency::from_mhz(533.0);
        assert_eq!(f.as_hz(), 533_000_000);
        assert!((f.as_mhz() - 533.0).abs() < 1e-9);
        assert!((f.as_ghz() - 0.533).abs() < 1e-9);
        assert_eq!(format!("{f}"), "533 MHz");
    }

    #[test]
    fn frequency_cycles_and_time() {
        let f = Frequency::from_mhz(100.0);
        assert!((f.cycles_in(0.001) - 100_000.0).abs() < 1e-6);
        assert!((f.time_for_cycles(100_000.0) - 0.001).abs() < 1e-12);
        assert!(Frequency::ZERO.time_for_cycles(1.0).is_infinite());
        assert_eq!(Frequency::from_mhz(266.0).ratio_to(Frequency::ZERO), 0.0);
        assert!(
            (Frequency::from_mhz(266.0).ratio_to(Frequency::from_mhz(533.0)) - 0.499).abs() < 1e-3
        );
    }

    #[test]
    fn operating_point_dynamic_scale() {
        let high = OperatingPoint::new(Frequency::from_mhz(500.0), Voltage::new(1.2));
        let half = OperatingPoint::new(Frequency::from_mhz(250.0), Voltage::new(1.2));
        assert!((half.dynamic_scale(&high) - 0.5).abs() < 1e-9);
        let lower_v = OperatingPoint::new(Frequency::from_mhz(500.0), Voltage::new(0.6));
        assert!((lower_v.dynamic_scale(&high) - 0.25).abs() < 1e-9);
        let zero_ref = OperatingPoint::new(Frequency::ZERO, Voltage::new(0.0));
        assert_eq!(high.dynamic_scale(&zero_ref), 0.0);
        assert!(format!("{high}").contains("MHz"));
    }

    #[test]
    fn scale_construction_rejects_bad_input() {
        assert!(DvfsScale::new(vec![]).is_err());
        let zero = OperatingPoint::new(Frequency::ZERO, Voltage::new(1.0));
        assert!(DvfsScale::new(vec![zero]).is_err());
    }

    #[test]
    fn scale_sorts_and_dedups() {
        let p1 = OperatingPoint::new(Frequency::from_mhz(400.0), Voltage::new(1.1));
        let p2 = OperatingPoint::new(Frequency::from_mhz(133.0), Voltage::new(0.9));
        let p3 = OperatingPoint::new(Frequency::from_mhz(400.0), Voltage::new(1.1));
        let scale = DvfsScale::new(vec![p1, p2, p3]).unwrap();
        assert_eq!(scale.len(), 2);
        assert_eq!(scale.min_frequency(), Frequency::from_mhz(133.0));
        assert_eq!(scale.max_frequency(), Frequency::from_mhz(400.0));
        assert!(!scale.is_empty());
    }

    #[test]
    fn paper_default_levels() {
        let scale = DvfsScale::paper_default();
        assert_eq!(scale.len(), 4);
        assert!(scale.contains(Frequency::from_mhz(533.0)));
        assert!(scale.contains(Frequency::from_mhz(266.0)));
        assert_eq!(scale.max_point().frequency, Frequency::from_mhz(533.0));
        assert_eq!(DvfsScale::default(), scale);
    }

    #[test]
    fn level_for_load_picks_smallest_sufficient_level() {
        let scale = DvfsScale::paper_default();
        // 0.2 load -> 133 MHz covers 133/533 = 0.2495, enough.
        assert_eq!(
            scale.level_for_load(0.2).unwrap().frequency,
            Frequency::from_mhz(133.0)
        );
        // 0.45 load requires >= 239.85 MHz -> 266 MHz.
        assert_eq!(
            scale.level_for_load(0.45).unwrap().frequency,
            Frequency::from_mhz(266.0)
        );
        // 0.9 -> 533 MHz.
        assert_eq!(
            scale.level_for_load(0.9).unwrap().frequency,
            Frequency::from_mhz(533.0)
        );
        // Saturation above 1.0.
        assert_eq!(
            scale.level_for_load(1.7).unwrap().frequency,
            Frequency::from_mhz(533.0)
        );
        assert!(scale.level_for_load(-0.1).is_none());
    }

    #[test]
    fn neighbours_and_lookup() {
        let scale = DvfsScale::paper_default();
        assert_eq!(
            scale
                .next_above(Frequency::from_mhz(266.0))
                .unwrap()
                .frequency,
            Frequency::from_mhz(400.0)
        );
        assert_eq!(
            scale
                .next_below(Frequency::from_mhz(266.0))
                .unwrap()
                .frequency,
            Frequency::from_mhz(133.0)
        );
        assert!(scale.next_above(Frequency::from_mhz(533.0)).is_none());
        assert!(scale.next_below(Frequency::from_mhz(133.0)).is_none());
        assert!(scale.point_for(Frequency::from_mhz(400.0)).is_ok());
        assert_eq!(
            scale.point_for(Frequency::from_mhz(999.0)),
            Err(ArchError::UnsupportedFrequency(999_000_000))
        );
    }
}
