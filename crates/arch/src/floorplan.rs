//! Floorplan description (Figure 5 of the paper).
//!
//! The thermal model needs to know where each power source sits on the die:
//! two blocks that are adjacent exchange heat laterally, and a block's area
//! determines its thermal capacitance. The paper's emulated MPSoC floorplan
//! places the three processor tiles in a row, each with its I-cache and
//! D-cache next to it, with the shared memory at one end — which is exactly
//! why core 2 and core 3 reach different temperatures at the same frequency
//! (core 3 sits next to the cooler shared-memory block and spreads heat
//! better).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

use crate::core::CoreId;
use crate::error::ArchError;

/// What a floorplan block contains, used to route per-component power to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockKind {
    /// A processor core (with the owning core id).
    Core(CoreId),
    /// The instruction cache of a core.
    ICache(CoreId),
    /// The data cache of a core.
    DCache(CoreId),
    /// The private memory of a core.
    PrivateMemory(CoreId),
    /// The single shared memory.
    SharedMemory,
    /// Interconnect / peripheral area (semaphores, interrupt controller).
    Interconnect,
}

impl BlockKind {
    /// The core this block belongs to, if any.
    pub fn owner(&self) -> Option<CoreId> {
        match self {
            BlockKind::Core(id)
            | BlockKind::ICache(id)
            | BlockKind::DCache(id)
            | BlockKind::PrivateMemory(id) => Some(*id),
            BlockKind::SharedMemory | BlockKind::Interconnect => None,
        }
    }

    /// Returns `true` when the block is a processor core.
    pub fn is_core(&self) -> bool {
        matches!(self, BlockKind::Core(_))
    }
}

impl fmt::Display for BlockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockKind::Core(id) => write!(f, "{id}"),
            BlockKind::ICache(id) => write!(f, "{id}.icache"),
            BlockKind::DCache(id) => write!(f, "{id}.dcache"),
            BlockKind::PrivateMemory(id) => write!(f, "{id}.mem"),
            BlockKind::SharedMemory => write!(f, "shared_mem"),
            BlockKind::Interconnect => write!(f, "interconnect"),
        }
    }
}

/// An axis-aligned rectangle on the die, in millimetres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// X coordinate of the lower-left corner (mm).
    pub x: f64,
    /// Y coordinate of the lower-left corner (mm).
    pub y: f64,
    /// Width (mm).
    pub width: f64,
    /// Height (mm).
    pub height: f64,
}

impl Rect {
    /// Creates a rectangle.
    pub fn new(x: f64, y: f64, width: f64, height: f64) -> Self {
        Rect {
            x,
            y,
            width,
            height,
        }
    }

    /// Area in mm².
    pub fn area_mm2(&self) -> f64 {
        self.width * self.height
    }

    /// Area in m².
    pub fn area_m2(&self) -> f64 {
        self.area_mm2() * 1e-6
    }

    /// Centre point (mm).
    pub fn center(&self) -> (f64, f64) {
        (self.x + self.width / 2.0, self.y + self.height / 2.0)
    }

    /// Returns `true` when this rectangle overlaps `other` with non-zero
    /// area.
    pub fn overlaps(&self, other: &Rect) -> bool {
        let x_overlap = self.x < other.x + other.width && other.x < self.x + self.width;
        let y_overlap = self.y < other.y + other.height && other.y < self.y + self.height;
        x_overlap && y_overlap
    }

    /// Length (mm) of the boundary shared with `other` (zero when the
    /// rectangles do not touch).
    pub fn shared_edge_length(&self, other: &Rect) -> f64 {
        const EPS: f64 = 1e-9;
        // Vertical adjacency (share a horizontal edge).
        let x_lo = self.x.max(other.x);
        let x_hi = (self.x + self.width).min(other.x + other.width);
        let x_span = (x_hi - x_lo).max(0.0);
        let touch_y = ((self.y + self.height) - other.y).abs() < EPS
            || ((other.y + other.height) - self.y).abs() < EPS;
        // Horizontal adjacency (share a vertical edge).
        let y_lo = self.y.max(other.y);
        let y_hi = (self.y + self.height).min(other.y + other.height);
        let y_span = (y_hi - y_lo).max(0.0);
        let touch_x = ((self.x + self.width) - other.x).abs() < EPS
            || ((other.x + other.width) - self.x).abs() < EPS;
        let mut shared: f64 = 0.0;
        if touch_y && x_span > EPS {
            shared = shared.max(x_span);
        }
        if touch_x && y_span > EPS {
            shared = shared.max(y_span);
        }
        shared
    }

    /// Euclidean distance between block centres (mm).
    pub fn center_distance(&self, other: &Rect) -> f64 {
        let (ax, ay) = self.center();
        let (bx, by) = other.center();
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }
}

/// A named block of the floorplan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Unique name of the block (e.g. `core0`, `core1.dcache`).
    pub name: String,
    /// What the block contains.
    pub kind: BlockKind,
    /// Position and size on the die.
    pub rect: Rect,
}

impl Block {
    /// Creates a block named after its kind.
    pub fn new(kind: BlockKind, rect: Rect) -> Self {
        Block {
            name: kind.to_string(),
            kind,
            rect,
        }
    }
}

/// A complete floorplan: a set of non-overlapping blocks.
///
/// ```
/// use tbp_arch::floorplan::Floorplan;
/// let plan = Floorplan::paper_3core();
/// assert_eq!(plan.core_blocks().count(), 3);
/// assert!(plan.total_area_mm2() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Floorplan {
    blocks: Vec<Block>,
    by_name: BTreeMap<String, usize>,
}

impl Floorplan {
    /// Builds a floorplan from blocks.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidFloorplan`] when blocks overlap, have
    /// non-positive dimensions, or share a name.
    pub fn new(blocks: Vec<Block>) -> Result<Self, ArchError> {
        if blocks.is_empty() {
            return Err(ArchError::InvalidFloorplan("no blocks".into()));
        }
        for block in &blocks {
            if block.rect.width <= 0.0 || block.rect.height <= 0.0 {
                return Err(ArchError::InvalidFloorplan(format!(
                    "block `{}` has non-positive dimensions",
                    block.name
                )));
            }
        }
        for (i, a) in blocks.iter().enumerate() {
            for b in blocks.iter().skip(i + 1) {
                if a.rect.overlaps(&b.rect) {
                    return Err(ArchError::InvalidFloorplan(format!(
                        "blocks `{}` and `{}` overlap",
                        a.name, b.name
                    )));
                }
            }
        }
        let mut by_name = BTreeMap::new();
        for (i, block) in blocks.iter().enumerate() {
            if by_name.insert(block.name.clone(), i).is_some() {
                return Err(ArchError::InvalidFloorplan(format!(
                    "duplicate block name `{}`",
                    block.name
                )));
            }
        }
        Ok(Floorplan { blocks, by_name })
    }

    /// The 3-core floorplan of Figure 5: three processor tiles in a row, each
    /// tile stacking core + caches + private memory, and the shared memory
    /// plus interconnect at the right-hand end, adjacent to the last tile.
    pub fn paper_3core() -> Self {
        Floorplan::homogeneous_tiles(3).expect("3-core paper floorplan is valid")
    }

    /// A generic `n`-tile floorplan with the same tile geometry as the paper's
    /// 3-core arrangement (used for the scalability ablation).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidFloorplan`] when `n` is zero.
    pub fn homogeneous_tiles(n: usize) -> Result<Self, ArchError> {
        if n == 0 {
            return Err(ArchError::InvalidFloorplan(
                "floorplan needs at least one tile".into(),
            ));
        }
        // Tile geometry (mm). A tile is 3 mm wide and 4 mm tall:
        //   +-----------------+  y=4
        //   |   private mem   |       (3.0 x 1.0)
        //   +--------+--------+  y=3
        //   | icache | dcache |       (1.5 x 1.0 each)
        //   +--------+--------+  y=2
        //   |      core       |       (3.0 x 2.0)
        //   +-----------------+  y=0
        const TILE_W: f64 = 3.0;
        let mut blocks = Vec::new();
        for i in 0..n {
            let x0 = i as f64 * TILE_W;
            let id = CoreId(i);
            blocks.push(Block::new(
                BlockKind::Core(id),
                Rect::new(x0, 0.0, 3.0, 2.0),
            ));
            blocks.push(Block::new(
                BlockKind::ICache(id),
                Rect::new(x0, 2.0, 1.5, 1.0),
            ));
            blocks.push(Block::new(
                BlockKind::DCache(id),
                Rect::new(x0 + 1.5, 2.0, 1.5, 1.0),
            ));
            blocks.push(Block::new(
                BlockKind::PrivateMemory(id),
                Rect::new(x0, 3.0, 3.0, 1.0),
            ));
        }
        // Shared memory and interconnect column at the right end.
        let x_end = n as f64 * TILE_W;
        blocks.push(Block::new(
            BlockKind::SharedMemory,
            Rect::new(x_end, 0.0, 2.0, 2.0),
        ));
        blocks.push(Block::new(
            BlockKind::Interconnect,
            Rect::new(x_end, 2.0, 2.0, 2.0),
        ));
        Floorplan::new(blocks)
    }

    /// All blocks in insertion order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` when the floorplan has no blocks (never true after
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Index of the block with the given name.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::UnknownBlock`] when no block has that name.
    pub fn index_of(&self, name: &str) -> Result<usize, ArchError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| ArchError::UnknownBlock(name.to_string()))
    }

    /// The block with the given name.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::UnknownBlock`] when no block has that name.
    pub fn block(&self, name: &str) -> Result<&Block, ArchError> {
        Ok(&self.blocks[self.index_of(name)?])
    }

    /// Index of the processor block of `core`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::UnknownCore`] when the floorplan has no such core.
    pub fn core_block_index(&self, core: CoreId) -> Result<usize, ArchError> {
        self.blocks
            .iter()
            .position(|b| b.kind == BlockKind::Core(core))
            .ok_or(ArchError::UnknownCore(core))
    }

    /// Iterator over the processor blocks, in core-id order.
    pub fn core_blocks(&self) -> impl Iterator<Item = &Block> {
        let mut cores: Vec<&Block> = self.blocks.iter().filter(|b| b.kind.is_core()).collect();
        cores.sort_by_key(|b| match b.kind {
            BlockKind::Core(id) => id,
            _ => unreachable!("filtered to cores"),
        });
        cores.into_iter()
    }

    /// Identifiers of all cores present on the floorplan, ascending.
    pub fn core_ids(&self) -> Vec<CoreId> {
        self.core_blocks()
            .map(|b| match b.kind {
                BlockKind::Core(id) => id,
                _ => unreachable!("core_blocks yields cores"),
            })
            .collect()
    }

    /// Total die area in mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.blocks.iter().map(|b| b.rect.area_mm2()).sum()
    }

    /// Pairs of adjacent blocks together with the length (mm) of their shared
    /// edge. Used by the thermal model to build lateral conductances.
    pub fn adjacencies(&self) -> Vec<(usize, usize, f64)> {
        let mut result = Vec::new();
        for i in 0..self.blocks.len() {
            for j in (i + 1)..self.blocks.len() {
                let shared = self.blocks[i].rect.shared_edge_length(&self.blocks[j].rect);
                if shared > 0.0 {
                    result.push((i, j, shared));
                }
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_geometry() {
        let a = Rect::new(0.0, 0.0, 2.0, 3.0);
        assert_eq!(a.area_mm2(), 6.0);
        assert!((a.area_m2() - 6e-6).abs() < 1e-15);
        assert_eq!(a.center(), (1.0, 1.5));
        let b = Rect::new(2.0, 0.0, 2.0, 3.0);
        assert!(!a.overlaps(&b));
        assert_eq!(a.shared_edge_length(&b), 3.0);
        let c = Rect::new(1.0, 1.0, 2.0, 2.0);
        assert!(a.overlaps(&c));
        let far = Rect::new(10.0, 10.0, 1.0, 1.0);
        assert_eq!(a.shared_edge_length(&far), 0.0);
        assert!(a.center_distance(&far) > 10.0);
        // Vertical adjacency.
        let top = Rect::new(0.0, 3.0, 2.0, 1.0);
        assert_eq!(a.shared_edge_length(&top), 2.0);
    }

    #[test]
    fn block_kind_owner_and_display() {
        assert_eq!(BlockKind::Core(CoreId(1)).owner(), Some(CoreId(1)));
        assert_eq!(BlockKind::DCache(CoreId(2)).owner(), Some(CoreId(2)));
        assert_eq!(BlockKind::SharedMemory.owner(), None);
        assert!(BlockKind::Core(CoreId(0)).is_core());
        assert!(!BlockKind::Interconnect.is_core());
        assert_eq!(BlockKind::Core(CoreId(0)).to_string(), "core0");
        assert_eq!(BlockKind::ICache(CoreId(1)).to_string(), "core1.icache");
        assert_eq!(BlockKind::DCache(CoreId(1)).to_string(), "core1.dcache");
        assert_eq!(BlockKind::PrivateMemory(CoreId(1)).to_string(), "core1.mem");
        assert_eq!(BlockKind::SharedMemory.to_string(), "shared_mem");
        assert_eq!(BlockKind::Interconnect.to_string(), "interconnect");
    }

    #[test]
    fn paper_floorplan_structure() {
        let plan = Floorplan::paper_3core();
        // 3 tiles * 4 blocks + shared mem + interconnect = 14 blocks.
        assert_eq!(plan.len(), 14);
        assert!(!plan.is_empty());
        assert_eq!(plan.core_blocks().count(), 3);
        assert_eq!(plan.core_ids(), vec![CoreId(0), CoreId(1), CoreId(2)]);
        assert!(plan.total_area_mm2() > 30.0);
        assert!(plan.block("core0").is_ok());
        assert!(plan.block("shared_mem").is_ok());
        assert!(plan.block("bogus").is_err());
        assert!(plan.core_block_index(CoreId(2)).is_ok());
        assert!(plan.core_block_index(CoreId(9)).is_err());
    }

    #[test]
    fn adjacencies_connect_neighbouring_tiles() {
        let plan = Floorplan::paper_3core();
        let adj = plan.adjacencies();
        assert!(!adj.is_empty());
        // core0 and core1 tiles are side by side: their core blocks share an edge.
        let i0 = plan.index_of("core0").unwrap();
        let i1 = plan.index_of("core1").unwrap();
        assert!(adj
            .iter()
            .any(|&(a, b, len)| ((a == i0 && b == i1) || (a == i1 && b == i0)) && len > 0.0));
        // core0 and core2 are NOT adjacent (core1 sits between them).
        let i2 = plan.index_of("core2").unwrap();
        assert!(!adj
            .iter()
            .any(|&(a, b, _)| (a == i0 && b == i2) || (a == i2 && b == i0)));
        // The shared memory touches the last tile, not the first.
        let ishared = plan.index_of("shared_mem").unwrap();
        assert!(adj
            .iter()
            .any(|&(a, b, _)| (a == i2 && b == ishared) || (a == ishared && b == i2)));
    }

    #[test]
    fn invalid_floorplans_rejected() {
        assert!(Floorplan::new(vec![]).is_err());
        assert!(Floorplan::homogeneous_tiles(0).is_err());
        let overlapping = vec![
            Block::new(BlockKind::Core(CoreId(0)), Rect::new(0.0, 0.0, 2.0, 2.0)),
            Block::new(BlockKind::Core(CoreId(1)), Rect::new(1.0, 1.0, 2.0, 2.0)),
        ];
        assert!(Floorplan::new(overlapping).is_err());
        let degenerate = vec![Block::new(
            BlockKind::Core(CoreId(0)),
            Rect::new(0.0, 0.0, 0.0, 2.0),
        )];
        assert!(Floorplan::new(degenerate).is_err());
        let duplicate = vec![
            Block::new(BlockKind::Core(CoreId(0)), Rect::new(0.0, 0.0, 1.0, 1.0)),
            Block {
                name: "core0".into(),
                kind: BlockKind::Core(CoreId(1)),
                rect: Rect::new(5.0, 5.0, 1.0, 1.0),
            },
        ];
        assert!(Floorplan::new(duplicate).is_err());
    }

    #[test]
    fn scalable_floorplans() {
        for n in 1..=8 {
            let plan = Floorplan::homogeneous_tiles(n).unwrap();
            assert_eq!(plan.core_blocks().count(), n);
            assert_eq!(plan.len(), 4 * n + 2);
        }
    }
}
