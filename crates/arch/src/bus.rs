//! Shared on-chip bus with a contention model.
//!
//! All tiles reach the shared memory through a single bus (Figure 3.a). The
//! paper observes that task-recreation migrations move more data and thus see
//! *increasing contention* as task size grows — the reason the recreation
//! curve in Figure 2 has a larger slope. This module models the bus as a
//! bandwidth-limited resource: each simulation step the platform offers the
//! bus an amount of traffic (cache refills, queue transfers, migration
//! copies) and the bus reports how long the transfers take once contention is
//! accounted for.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::ArchError;
use crate::units::{Bytes, Seconds};

/// Configuration of the shared bus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BusConfig {
    /// Bus clock frequency in MHz (the paper's interconnect runs at the core
    /// reference frequency class).
    pub clock_mhz: f64,
    /// Bytes transferred per bus cycle (a 32-bit bus moves 4 bytes).
    pub bytes_per_cycle: f64,
    /// Arbitration overhead per transaction, in bus cycles.
    pub arbitration_cycles: f64,
    /// Transaction (burst) size in bytes used to compute arbitration counts.
    pub burst_bytes: u64,
}

impl BusConfig {
    /// Default bus: 32-bit @ 250 MHz with an 8-cycle arbitration overhead per
    /// 32-byte burst — representative of the AMBA-style interconnects used in
    /// the FPGA platform.
    pub fn paper_default() -> Self {
        BusConfig {
            clock_mhz: 250.0,
            bytes_per_cycle: 4.0,
            arbitration_cycles: 8.0,
            burst_bytes: 32,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] for non-positive clock, width or
    /// burst size, or negative arbitration overhead.
    pub fn validate(&self) -> Result<(), ArchError> {
        if self.clock_mhz <= 0.0 {
            return Err(ArchError::InvalidConfig("bus clock must be > 0".into()));
        }
        if self.bytes_per_cycle <= 0.0 {
            return Err(ArchError::InvalidConfig(
                "bus width (bytes per cycle) must be > 0".into(),
            ));
        }
        if self.arbitration_cycles < 0.0 {
            return Err(ArchError::InvalidConfig(
                "arbitration overhead cannot be negative".into(),
            ));
        }
        if self.burst_bytes == 0 {
            return Err(ArchError::InvalidConfig("burst size must be > 0".into()));
        }
        Ok(())
    }

    /// Peak bandwidth in bytes per second, ignoring arbitration.
    pub fn peak_bandwidth(&self) -> f64 {
        self.clock_mhz * 1e6 * self.bytes_per_cycle
    }
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig::paper_default()
    }
}

/// Outcome of offering a set of transfers to the bus for one interval.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BusWindow {
    /// Bytes the bus actually moved during the interval.
    pub bytes_served: Bytes,
    /// Bytes that did not fit in the interval and remain queued.
    pub bytes_deferred: Bytes,
    /// Fraction of the interval the bus was busy (0–1).
    pub utilization: f64,
    /// Average slowdown factor experienced by the transfers (≥ 1).
    pub contention_factor: f64,
}

/// The shared on-chip bus.
///
/// ```
/// use tbp_arch::bus::{Bus, BusConfig};
/// use tbp_arch::units::{Bytes, Seconds};
///
/// # fn main() -> Result<(), tbp_arch::ArchError> {
/// let mut bus = Bus::new(BusConfig::paper_default())?;
/// bus.offer(Bytes::from_kib(64));
/// let window = bus.serve(Seconds::from_millis(1.0));
/// assert!(window.bytes_served.as_u64() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bus {
    config: BusConfig,
    pending: Bytes,
    total_served: Bytes,
    busy_time: Seconds,
    /// Cached [`effective_bandwidth`](Self::effective_bandwidth): a pure
    /// function of the (immutable) configuration that `serve` and the OS
    /// step would otherwise rederive — three divisions — every step.
    effective_bandwidth: f64,
}

impl Bus {
    /// Creates a bus with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] when the configuration is invalid.
    pub fn new(config: BusConfig) -> Result<Self, ArchError> {
        config.validate()?;
        let effective_bandwidth = compute_effective_bandwidth(&config);
        Ok(Bus {
            config,
            pending: Bytes::ZERO,
            total_served: Bytes::ZERO,
            busy_time: Seconds::ZERO,
            effective_bandwidth,
        })
    }

    /// The bus configuration.
    pub fn config(&self) -> &BusConfig {
        &self.config
    }

    /// Bytes currently queued but not yet transferred.
    pub fn pending(&self) -> Bytes {
        self.pending
    }

    /// Cumulative bytes transferred since construction.
    pub fn total_served(&self) -> Bytes {
        self.total_served
    }

    /// Cumulative time the bus spent busy.
    pub fn busy_time(&self) -> Seconds {
        self.busy_time
    }

    /// Queues `bytes` of traffic for transfer.
    pub fn offer(&mut self, bytes: Bytes) {
        self.pending = self.pending.saturating_add(bytes);
    }

    /// Effective bandwidth in bytes/second once per-burst arbitration is
    /// accounted for (computed once at construction).
    pub fn effective_bandwidth(&self) -> f64 {
        self.effective_bandwidth
    }

    /// Serves queued traffic for an interval of `dt` and returns what
    /// happened. Traffic that does not fit stays queued for the next window
    /// (this is how growing migrations become slower per byte, reproducing
    /// the super-linear recreation curve of Figure 2).
    pub fn serve(&mut self, dt: Seconds) -> BusWindow {
        if dt.is_zero() {
            return BusWindow {
                bytes_served: Bytes::ZERO,
                bytes_deferred: self.pending,
                utilization: 0.0,
                contention_factor: 1.0,
            };
        }
        let capacity_bytes = self.effective_bandwidth() * dt.as_secs();
        let requested = self.pending.as_u64() as f64;
        let served = requested.min(capacity_bytes);
        let deferred = requested - served;
        let utilization = if capacity_bytes > 0.0 {
            (served / capacity_bytes).clamp(0.0, 1.0)
        } else {
            0.0
        };
        // Contention: when demand exceeds capacity, every transfer is slowed
        // down proportionally to the overload.
        let contention_factor = if capacity_bytes > 0.0 && requested > capacity_bytes {
            requested / capacity_bytes
        } else {
            1.0
        };
        let served_bytes = Bytes::new(served as u64);
        self.pending = Bytes::new(deferred as u64);
        self.total_served = self.total_served.saturating_add(served_bytes);
        self.busy_time += dt * utilization;
        BusWindow {
            bytes_served: served_bytes,
            bytes_deferred: Bytes::new(deferred as u64),
            utilization,
            contention_factor,
        }
    }

    /// Time needed to move `bytes` through an otherwise idle bus.
    pub fn transfer_time(&self, bytes: Bytes) -> Seconds {
        Seconds::new(bytes.as_u64() as f64 / self.effective_bandwidth())
    }

    /// Clears any queued traffic (used when resetting the platform between
    /// experiments).
    pub fn reset(&mut self) {
        self.pending = Bytes::ZERO;
        self.total_served = Bytes::ZERO;
        self.busy_time = Seconds::ZERO;
    }
}

/// Effective bandwidth of a bus configuration in bytes/second: data cycles
/// per burst plus arbitration overhead, scaled to the bus clock.
fn compute_effective_bandwidth(config: &BusConfig) -> f64 {
    let data_cycles_per_burst = config.burst_bytes as f64 / config.bytes_per_cycle;
    let cycles_per_burst = data_cycles_per_burst + config.arbitration_cycles;
    let bursts_per_second = config.clock_mhz * 1e6 / cycles_per_burst;
    bursts_per_second * config.burst_bytes as f64
}

impl fmt::Display for Bus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bus @ {:.0} MHz ({} pending, {} served)",
            self.config.clock_mhz, self.pending, self.total_served
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(BusConfig::paper_default().validate().is_ok());
        assert!(BusConfig::default().validate().is_ok());
        let bad = BusConfig {
            clock_mhz: 0.0,
            ..BusConfig::paper_default()
        };
        assert!(bad.validate().is_err());
        let bad = BusConfig {
            bytes_per_cycle: 0.0,
            ..BusConfig::paper_default()
        };
        assert!(bad.validate().is_err());
        let bad = BusConfig {
            arbitration_cycles: -1.0,
            ..BusConfig::paper_default()
        };
        assert!(bad.validate().is_err());
        let bad = BusConfig {
            burst_bytes: 0,
            ..BusConfig::paper_default()
        };
        assert!(bad.validate().is_err());
        assert!(Bus::new(bad).is_err());
    }

    #[test]
    fn effective_bandwidth_below_peak() {
        let bus = Bus::new(BusConfig::paper_default()).unwrap();
        let peak = bus.config().peak_bandwidth();
        let effective = bus.effective_bandwidth();
        assert!(effective < peak);
        assert!(effective > peak * 0.3);
    }

    #[test]
    fn serve_moves_traffic_and_tracks_utilization() {
        let mut bus = Bus::new(BusConfig::paper_default()).unwrap();
        bus.offer(Bytes::from_kib(64));
        let window = bus.serve(Seconds::from_millis(1.0));
        // 64 kB easily fits in 1 ms at ~500 MB/s.
        assert_eq!(window.bytes_served, Bytes::from_kib(64));
        assert_eq!(window.bytes_deferred, Bytes::ZERO);
        assert!(window.utilization > 0.0 && window.utilization < 1.0);
        assert_eq!(window.contention_factor, 1.0);
        assert_eq!(bus.pending(), Bytes::ZERO);
        assert_eq!(bus.total_served(), Bytes::from_kib(64));
        assert!(bus.busy_time().as_secs() > 0.0);
    }

    #[test]
    fn overload_defers_traffic_and_raises_contention() {
        let mut bus = Bus::new(BusConfig::paper_default()).unwrap();
        bus.offer(Bytes::from_mib(10));
        let window = bus.serve(Seconds::from_millis(1.0));
        assert!(window.bytes_deferred.as_u64() > 0);
        assert!(window.contention_factor > 1.0);
        assert!((window.utilization - 1.0).abs() < 1e-9);
        assert!(bus.pending().as_u64() > 0);
        // Serving again continues the backlog.
        let window2 = bus.serve(Seconds::from_millis(1.0));
        assert!(window2.bytes_served.as_u64() > 0);
    }

    #[test]
    fn zero_interval_serves_nothing() {
        let mut bus = Bus::new(BusConfig::paper_default()).unwrap();
        bus.offer(Bytes::from_kib(4));
        let window = bus.serve(Seconds::ZERO);
        assert_eq!(window.bytes_served, Bytes::ZERO);
        assert_eq!(window.bytes_deferred, Bytes::from_kib(4));
        assert_eq!(window.contention_factor, 1.0);
    }

    #[test]
    fn transfer_time_is_linear_in_size() {
        let bus = Bus::new(BusConfig::paper_default()).unwrap();
        let t64 = bus.transfer_time(Bytes::from_kib(64)).as_secs();
        let t128 = bus.transfer_time(Bytes::from_kib(128)).as_secs();
        assert!((t128 - 2.0 * t64).abs() < 1e-12);
        assert!(t64 > 0.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut bus = Bus::new(BusConfig::paper_default()).unwrap();
        bus.offer(Bytes::from_kib(64));
        bus.serve(Seconds::from_millis(1.0));
        bus.offer(Bytes::from_kib(64));
        bus.reset();
        assert_eq!(bus.pending(), Bytes::ZERO);
        assert_eq!(bus.total_served(), Bytes::ZERO);
        assert_eq!(bus.busy_time(), Seconds::ZERO);
        assert!(bus.to_string().contains("MHz"));
    }
}
