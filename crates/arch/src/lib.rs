//! # tbp-arch — MPSoC architecture model
//!
//! This crate models the hardware platform targeted by the DATE 2008 paper
//! *"Thermal Balancing Policy for Streaming Computing on Multiprocessor
//! Architectures"* (Mulas et al.): a homogeneous, non-cache-coherent MPSoC
//! made of 32-bit RISC tiles. Each tile contains a processor, a private
//! memory, an instruction cache and a data cache; all tiles share a single
//! non-cacheable memory reachable through an on-chip bus (Figure 3.a of the
//! paper).
//!
//! The crate provides:
//!
//! * [`freq`] — operating points (frequency/voltage pairs) and discrete DVFS
//!   scales such as the 533/266 MHz levels used in the paper's Table 2.
//! * [`power`] — the 0.09 µm component power model of Table 1 with
//!   frequency/voltage-dependent dynamic power and temperature-dependent
//!   leakage.
//! * [`core`] — per-core state (operating point, utilisation, halt state).
//! * [`cache`] / [`memory`] — cache and memory components contributing power.
//! * [`bus`] — the shared on-chip bus with a simple contention model used to
//!   account for migration traffic through the shared memory.
//! * [`floorplan`] — rectangular block placement (Figure 5) consumed by the
//!   thermal model.
//! * [`platform`] — [`platform::MpsocPlatform`], the assembled machine and the
//!   per-block power snapshots it produces every simulation step.
//!
//! # Example
//!
//! ```
//! use tbp_arch::platform::{MpsocPlatform, PlatformConfig};
//! use tbp_arch::power::CoreClass;
//!
//! # fn main() -> Result<(), tbp_arch::ArchError> {
//! // The paper's 3-core streaming MPSoC.
//! let config = PlatformConfig::paper_default();
//! let mut platform = MpsocPlatform::new(config)?;
//! assert_eq!(platform.num_cores(), 3);
//! assert_eq!(platform.core(tbp_arch::core::CoreId(0))?.class(), CoreClass::Risc32Streaming);
//!
//! // Run one millisecond at 40 % utilisation on every core and inspect power.
//! for id in platform.core_ids() {
//!     platform.core_mut(id)?.set_utilization(0.4)?;
//! }
//! let snapshot = platform.power_snapshot(45.0);
//! assert!(snapshot.total() > 0.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod bus;
pub mod cache;
pub mod core;
pub mod error;
pub mod floorplan;
pub mod freq;
pub mod memory;
pub mod platform;
pub mod power;
pub mod units;

pub use crate::core::CoreId;
pub use error::ArchError;
pub use floorplan::Floorplan;
pub use freq::{Frequency, OperatingPoint, Voltage};
pub use platform::MpsocPlatform;
pub use power::{CoreClass, PowerModel};
