//! Private and shared memory models.
//!
//! Every tile owns a private memory holding its uClinux image and task address
//! spaces; a single non-cacheable shared memory hosts the inter-processor
//! message queues and the migration transfer buffer (Figure 3). For the
//! thermal study the memories are power sources; for the migration cost study
//! the shared memory is the conduit every migrated task context must cross.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::core::CoreId;
use crate::error::ArchError;
use crate::freq::OperatingPoint;
use crate::power::{ComponentKind, PowerModel};
use crate::units::{Bytes, Celsius, Watts};

/// A per-tile private memory (scratchpad) holding OS image and task address
/// spaces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrivateMemory {
    owner: CoreId,
    capacity: Bytes,
    allocated: Bytes,
    /// Cached `sqrt(capacity / 32 kB)` used by [`power`](Self::power): a pure
    /// function of the fixed capacity that would otherwise cost a division
    /// and a square root per block per simulation step.
    macro_scale: f64,
}

impl PrivateMemory {
    /// Creates a private memory of the given capacity owned by `owner`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] for a zero capacity.
    pub fn new(owner: CoreId, capacity: Bytes) -> Result<Self, ArchError> {
        if capacity == Bytes::ZERO {
            return Err(ArchError::InvalidConfig(
                "private memory capacity must be > 0".into(),
            ));
        }
        let macros = (capacity.as_u64() as f64 / Bytes::from_kib(32).as_u64() as f64).max(1.0);
        Ok(PrivateMemory {
            owner,
            capacity,
            allocated: Bytes::ZERO,
            macro_scale: macros.sqrt(),
        })
    }

    /// The paper's tiles use small on-chip private memories; 1 MiB is enough
    /// to hold the uClinux image plus the replicated SDR tasks.
    pub fn paper_default(owner: CoreId) -> Self {
        PrivateMemory::new(owner, Bytes::from_mib(1)).expect("1 MiB is valid")
    }

    /// The owning core.
    pub fn owner(&self) -> CoreId {
        self.owner
    }

    /// Total capacity.
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Bytes currently allocated (task address spaces, replicas, OS image).
    pub fn allocated(&self) -> Bytes {
        self.allocated
    }

    /// Bytes still free.
    pub fn free(&self) -> Bytes {
        Bytes::new(
            self.capacity
                .as_u64()
                .saturating_sub(self.allocated.as_u64()),
        )
    }

    /// Occupancy as a fraction of capacity.
    pub fn occupancy(&self) -> f64 {
        self.allocated.as_u64() as f64 / self.capacity.as_u64() as f64
    }

    /// Allocates `size` bytes (e.g. a task replica's address space).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] when the allocation does not fit.
    pub fn allocate(&mut self, size: Bytes) -> Result<(), ArchError> {
        if self.allocated.as_u64() + size.as_u64() > self.capacity.as_u64() {
            return Err(ArchError::InvalidConfig(format!(
                "allocation of {size} exceeds private memory capacity {} ({} already used)",
                self.capacity, self.allocated
            )));
        }
        self.allocated += size;
        Ok(())
    }

    /// Releases `size` bytes. Releasing more than is allocated saturates at
    /// zero rather than panicking, because task-recreation kills address
    /// spaces the accounting may have already dropped.
    pub fn release(&mut self, size: Bytes) {
        self.allocated = Bytes::new(self.allocated.as_u64().saturating_sub(size.as_u64()));
    }

    /// Instantaneous power of the memory.
    ///
    /// Power is modelled as the Table 1 32 kB macro scaled by the number of
    /// such macros needed for the configured capacity, at the utilisation of
    /// the owning core.
    pub fn power(
        &self,
        model: &PowerModel,
        point: OperatingPoint,
        core_utilization: f64,
        temperature: Celsius,
    ) -> Watts {
        let per_macro = model
            .component_power(
                ComponentKind::Memory32k,
                point,
                core_utilization.clamp(0.0, 1.0),
                temperature,
            )
            .expect("clamped utilization is valid");
        // Only a handful of macros are active at a time regardless of the
        // total capacity: scale sub-linearly (square root) like banked SRAMs
        // (`macro_scale` is the cached `sqrt(capacity / 32 kB)`).
        Watts::new(per_macro.as_watts() * self.macro_scale)
    }

    /// [`power`](Self::power) with the operating point's factors precomputed
    /// by [`PowerModel::point_scales`] (bit-identical, used by the per-step
    /// power snapshot).
    pub fn power_with(
        &self,
        model: &PowerModel,
        scales: &crate::power::PointScales,
        core_utilization: f64,
        temperature: Celsius,
    ) -> Watts {
        let per_macro = model
            .total_power_with(
                ComponentKind::Memory32k.max_power(),
                scales,
                core_utilization.clamp(0.0, 1.0),
                temperature,
            )
            .expect("clamped utilization is valid");
        Watts::new(per_macro.as_watts() * self.macro_scale)
    }
}

impl fmt::Display for PrivateMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "private memory of {} ({} / {})",
            self.owner, self.allocated, self.capacity
        )
    }
}

/// The single non-cacheable shared memory of the platform.
///
/// Hosts the message queues of the streaming middleware and the migration
/// transfer buffer. Traffic through it is what the bus contention model and
/// the migration cost model account for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharedMemory {
    capacity: Bytes,
    transferred: Bytes,
}

impl SharedMemory {
    /// Creates a shared memory of the given capacity.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] for a zero capacity.
    pub fn new(capacity: Bytes) -> Result<Self, ArchError> {
        if capacity == Bytes::ZERO {
            return Err(ArchError::InvalidConfig(
                "shared memory capacity must be > 0".into(),
            ));
        }
        Ok(SharedMemory {
            capacity,
            transferred: Bytes::ZERO,
        })
    }

    /// Default shared memory (4 MiB), large enough for queues plus the 64 kB
    /// migration buffer.
    pub fn paper_default() -> Self {
        SharedMemory::new(Bytes::from_mib(4)).expect("4 MiB is valid")
    }

    /// Total capacity.
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Cumulative bytes transferred through the shared memory.
    pub fn transferred(&self) -> Bytes {
        self.transferred
    }

    /// Records a transfer through the shared memory (queue push/pop or
    /// migration buffer copy).
    pub fn record_transfer(&mut self, size: Bytes) {
        self.transferred = self.transferred.saturating_add(size);
    }

    /// Instantaneous power of the shared memory given a bus utilisation
    /// estimate (fraction of cycles the memory is being accessed).
    pub fn power(
        &self,
        model: &PowerModel,
        point: OperatingPoint,
        bus_utilization: f64,
        temperature: Celsius,
    ) -> Watts {
        model
            .component_power(
                ComponentKind::SharedMemory,
                point,
                bus_utilization.clamp(0.0, 1.0),
                temperature,
            )
            .expect("clamped utilization is valid")
    }
}

impl fmt::Display for SharedMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shared memory ({}, {} transferred)",
            self.capacity, self.transferred
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::{Frequency, Voltage};

    fn point() -> OperatingPoint {
        OperatingPoint::new(Frequency::from_mhz(500.0), Voltage::new(1.2))
    }

    #[test]
    fn private_memory_allocation_accounting() {
        let mut mem = PrivateMemory::new(CoreId(0), Bytes::from_kib(256)).unwrap();
        assert_eq!(mem.owner(), CoreId(0));
        assert_eq!(mem.capacity(), Bytes::from_kib(256));
        assert_eq!(mem.free(), Bytes::from_kib(256));
        mem.allocate(Bytes::from_kib(64)).unwrap();
        assert_eq!(mem.allocated(), Bytes::from_kib(64));
        assert_eq!(mem.free(), Bytes::from_kib(192));
        assert!((mem.occupancy() - 0.25).abs() < 1e-9);
        assert!(mem.allocate(Bytes::from_kib(256)).is_err());
        mem.release(Bytes::from_kib(64));
        assert_eq!(mem.allocated(), Bytes::ZERO);
        // Over-release saturates.
        mem.release(Bytes::from_kib(64));
        assert_eq!(mem.allocated(), Bytes::ZERO);
        assert!(mem.to_string().contains("core0"));
    }

    #[test]
    fn zero_capacity_rejected() {
        assert!(PrivateMemory::new(CoreId(0), Bytes::ZERO).is_err());
        assert!(SharedMemory::new(Bytes::ZERO).is_err());
    }

    #[test]
    fn paper_defaults() {
        let mem = PrivateMemory::paper_default(CoreId(2));
        assert_eq!(mem.capacity(), Bytes::from_mib(1));
        let shared = SharedMemory::paper_default();
        assert_eq!(shared.capacity(), Bytes::from_mib(4));
    }

    #[test]
    fn shared_memory_tracks_transfers() {
        let mut shared = SharedMemory::paper_default();
        shared.record_transfer(Bytes::from_kib(64));
        shared.record_transfer(Bytes::from_kib(64));
        assert_eq!(shared.transferred(), Bytes::from_kib(128));
        assert!(shared.to_string().contains("transferred"));
    }

    #[test]
    fn memory_power_scales_with_activity_and_capacity() {
        let model = PowerModel::new();
        let t = Celsius::new(60.0);
        let small = PrivateMemory::new(CoreId(0), Bytes::from_kib(32)).unwrap();
        let large = PrivateMemory::new(CoreId(0), Bytes::from_mib(1)).unwrap();
        let p_small = small.power(&model, point(), 1.0, t).as_watts();
        let p_large = large.power(&model, point(), 1.0, t).as_watts();
        assert!(p_large > p_small);
        // Sub-linear scaling: 32x capacity should cost much less than 32x power.
        assert!(p_large < p_small * 32.0);
        // 32 kB macro at full activity matches Table 1.
        assert!((p_small - 0.015).abs() < 1e-9);

        let shared = SharedMemory::paper_default();
        let busy = shared.power(&model, point(), 0.8, t).as_watts();
        let idle = shared.power(&model, point(), 0.0, t).as_watts();
        assert!(busy > idle);
    }
}
