//! Per-core processor state.
//!
//! A [`Core`] tracks the dynamic state the rest of the simulator needs from a
//! processor: its DVFS operating point, its current utilisation (the share of
//! cycles spent executing tasks rather than idling), and whether it is halted
//! by a Stop&Go style policy.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::ArchError;
use crate::freq::{DvfsScale, Frequency, OperatingPoint};
use crate::power::{CoreClass, PowerModel};
use crate::units::{Celsius, Watts};

/// Identifier of a processor core on the platform.
///
/// Cores are numbered densely from zero, matching the "Core 1 … Core 3"
/// naming of Table 2 (the paper counts from one; this crate counts from
/// zero).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CoreId(pub usize);

impl CoreId {
    /// Index of the core as a `usize`, for indexing vectors of per-core data.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl From<usize> for CoreId {
    fn from(value: usize) -> Self {
        CoreId(value)
    }
}

/// Execution state of a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoreState {
    /// The core is clocked and executing (or idling at) its operating point.
    Running,
    /// The core is clock-gated by a thermal policy (Stop&Go). It burns only
    /// leakage power and makes no task progress.
    Halted,
}

/// A single 32-bit RISC processor tile of the MPSoC.
///
/// ```
/// use tbp_arch::core::{Core, CoreId};
/// use tbp_arch::freq::{DvfsScale, Frequency};
/// use tbp_arch::power::CoreClass;
///
/// # fn main() -> Result<(), tbp_arch::ArchError> {
/// let mut core = Core::new(CoreId(0), CoreClass::Risc32Streaming, DvfsScale::paper_default());
/// core.set_frequency(Frequency::from_mhz(533.0))?;
/// core.set_utilization(0.65)?;
/// assert!(core.is_running());
/// assert_eq!(core.frequency(), Frequency::from_mhz(533.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Core {
    id: CoreId,
    class: CoreClass,
    scale: DvfsScale,
    point: OperatingPoint,
    utilization: f64,
    state: CoreState,
}

impl Core {
    /// Creates a core of the given class, initially running at the maximum
    /// operating point with zero utilisation.
    pub fn new(id: CoreId, class: CoreClass, scale: DvfsScale) -> Self {
        let point = scale.max_point();
        Core {
            id,
            class,
            scale,
            point,
            utilization: 0.0,
            state: CoreState::Running,
        }
    }

    /// The core's identifier.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// The core's processor class (Table 1 configuration).
    pub fn class(&self) -> CoreClass {
        self.class
    }

    /// The DVFS scale available to this core.
    pub fn scale(&self) -> &DvfsScale {
        &self.scale
    }

    /// Current operating point.
    pub fn operating_point(&self) -> OperatingPoint {
        self.point
    }

    /// Current clock frequency (zero when halted).
    pub fn frequency(&self) -> Frequency {
        match self.state {
            CoreState::Running => self.point.frequency,
            CoreState::Halted => Frequency::ZERO,
        }
    }

    /// The frequency the core will resume at when un-halted.
    pub fn configured_frequency(&self) -> Frequency {
        self.point.frequency
    }

    /// Current utilisation in `[0, 1]` — the fraction of cycles spent on task
    /// work at the current frequency.
    pub fn utilization(&self) -> f64 {
        match self.state {
            CoreState::Running => self.utilization,
            CoreState::Halted => 0.0,
        }
    }

    /// Current execution state.
    pub fn state(&self) -> CoreState {
        self.state
    }

    /// Returns `true` when the core is running (not halted).
    pub fn is_running(&self) -> bool {
        self.state == CoreState::Running
    }

    /// Sets the DVFS level of the core.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::UnsupportedFrequency`] when `frequency` is not a
    /// level of the core's DVFS scale.
    pub fn set_frequency(&mut self, frequency: Frequency) -> Result<(), ArchError> {
        self.point = self.scale.point_for(frequency)?;
        Ok(())
    }

    /// Sets the utilisation of the core.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidUtilization`] when `utilization` is outside
    /// `[0, 1]`.
    pub fn set_utilization(&mut self, utilization: f64) -> Result<(), ArchError> {
        if !(0.0..=1.0).contains(&utilization) {
            return Err(ArchError::InvalidUtilization(utilization));
        }
        self.utilization = utilization;
        Ok(())
    }

    /// Halts the core (clock gating). The core keeps leaking but burns no
    /// dynamic power and executes no cycles.
    pub fn halt(&mut self) {
        self.state = CoreState::Halted;
    }

    /// Resumes a halted core at its previously configured operating point.
    pub fn resume(&mut self) {
        self.state = CoreState::Running;
    }

    /// Number of task cycles the core executes in `dt_secs` seconds at its
    /// current frequency and utilisation.
    pub fn task_cycles_in(&self, dt_secs: f64) -> f64 {
        self.frequency().cycles_in(dt_secs) * self.utilization()
    }

    /// Instantaneous power of the processor (excluding caches and memories)
    /// at the given die temperature.
    pub fn power(&self, model: &PowerModel, temperature: Celsius) -> Watts {
        let point = match self.state {
            CoreState::Running => self.point,
            // A halted core burns only leakage: model it as a zero-frequency
            // point at the configured voltage.
            CoreState::Halted => OperatingPoint::new(Frequency::ZERO, self.point.voltage),
        };
        model
            .core_power(self.class, point, self.utilization(), temperature)
            .expect("utilization is validated on set")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_core() -> Core {
        Core::new(
            CoreId(1),
            CoreClass::Risc32Streaming,
            DvfsScale::paper_default(),
        )
    }

    #[test]
    fn core_id_display_and_index() {
        assert_eq!(CoreId(2).to_string(), "core2");
        assert_eq!(CoreId(3).index(), 3);
        assert_eq!(CoreId::from(5), CoreId(5));
    }

    #[test]
    fn new_core_runs_at_max_frequency() {
        let core = make_core();
        assert_eq!(core.id(), CoreId(1));
        assert_eq!(core.class(), CoreClass::Risc32Streaming);
        assert_eq!(core.frequency(), Frequency::from_mhz(533.0));
        assert_eq!(core.utilization(), 0.0);
        assert!(core.is_running());
        assert_eq!(core.state(), CoreState::Running);
        assert_eq!(core.scale().len(), 4);
    }

    #[test]
    fn set_frequency_validates_levels() {
        let mut core = make_core();
        assert!(core.set_frequency(Frequency::from_mhz(266.0)).is_ok());
        assert_eq!(core.frequency(), Frequency::from_mhz(266.0));
        assert!(core.set_frequency(Frequency::from_mhz(300.0)).is_err());
        // Frequency unchanged after a failed set.
        assert_eq!(core.frequency(), Frequency::from_mhz(266.0));
    }

    #[test]
    fn set_utilization_validates_range() {
        let mut core = make_core();
        assert!(core.set_utilization(0.7).is_ok());
        assert_eq!(core.utilization(), 0.7);
        assert!(core.set_utilization(1.01).is_err());
        assert!(core.set_utilization(-0.01).is_err());
        assert_eq!(core.utilization(), 0.7);
    }

    #[test]
    fn halt_and_resume() {
        let mut core = make_core();
        core.set_utilization(0.5).unwrap();
        core.halt();
        assert!(!core.is_running());
        assert_eq!(core.frequency(), Frequency::ZERO);
        assert_eq!(core.utilization(), 0.0);
        assert_eq!(core.configured_frequency(), Frequency::from_mhz(533.0));
        core.resume();
        assert!(core.is_running());
        assert_eq!(core.frequency(), Frequency::from_mhz(533.0));
        assert_eq!(core.utilization(), 0.5);
    }

    #[test]
    fn task_cycles_scale_with_utilization_and_frequency() {
        let mut core = make_core();
        core.set_frequency(Frequency::from_mhz(266.0)).unwrap();
        core.set_utilization(0.5).unwrap();
        let cycles = core.task_cycles_in(0.01);
        assert!((cycles - 266e6 * 0.01 * 0.5).abs() < 1.0);
        core.halt();
        assert_eq!(core.task_cycles_in(0.01), 0.0);
    }

    #[test]
    fn halted_core_burns_only_leakage() {
        let model = PowerModel::new();
        let mut core = make_core();
        core.set_utilization(1.0).unwrap();
        let t = Celsius::new(60.0);
        let running = core.power(&model, t);
        core.halt();
        let halted = core.power(&model, t);
        assert!(halted.as_watts() < running.as_watts());
        assert!(halted.as_watts() > 0.0);
        let leak_only = model.leakage_power(
            CoreClass::Risc32Streaming.max_power(),
            core.operating_point().voltage,
            t,
        );
        assert!((halted.as_watts() - leak_only.as_watts()).abs() < 1e-12);
    }

    #[test]
    fn arm11_class_core_uses_lower_power() {
        let model = PowerModel::new();
        let scale = DvfsScale::paper_default();
        let mut streaming = Core::new(CoreId(0), CoreClass::Risc32Streaming, scale.clone());
        let mut arm = Core::new(CoreId(1), CoreClass::Risc32Arm11, scale);
        streaming.set_utilization(1.0).unwrap();
        arm.set_utilization(1.0).unwrap();
        let t = Celsius::new(60.0);
        assert!(arm.power(&model, t).as_watts() < streaming.power(&model, t).as_watts());
    }
}
