//! Error type for architecture-model operations.

use std::error::Error;
use std::fmt;

use crate::core::CoreId;

/// Errors produced while constructing or driving the architecture model.
#[derive(Debug, Clone, PartialEq)]
pub enum ArchError {
    /// A core identifier referenced a core that does not exist on the platform.
    UnknownCore(CoreId),
    /// A floorplan block name was referenced but not present in the floorplan.
    UnknownBlock(String),
    /// A utilisation value was outside the `[0, 1]` range.
    InvalidUtilization(f64),
    /// A frequency was requested that is not part of the platform's DVFS scale.
    UnsupportedFrequency(u64),
    /// A platform was configured with no cores.
    EmptyPlatform,
    /// A floorplan was built with overlapping or degenerate blocks.
    InvalidFloorplan(String),
    /// A configuration parameter was invalid (negative power, zero area, ...).
    InvalidConfig(String),
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::UnknownCore(id) => write!(f, "unknown core {id}"),
            ArchError::UnknownBlock(name) => write!(f, "unknown floorplan block `{name}`"),
            ArchError::InvalidUtilization(u) => {
                write!(f, "utilization {u} is outside the [0, 1] range")
            }
            ArchError::UnsupportedFrequency(hz) => {
                write!(f, "frequency {hz} Hz is not an available DVFS level")
            }
            ArchError::EmptyPlatform => write!(f, "platform must contain at least one core"),
            ArchError::InvalidFloorplan(msg) => write!(f, "invalid floorplan: {msg}"),
            ArchError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = ArchError::UnknownCore(CoreId(7));
        assert!(err.to_string().contains('7'));
        let err = ArchError::InvalidUtilization(1.5);
        assert!(err.to_string().contains("1.5"));
        let err = ArchError::UnsupportedFrequency(123);
        assert!(err.to_string().contains("123"));
        let err = ArchError::UnknownBlock("core9".into());
        assert!(err.to_string().contains("core9"));
        let err = ArchError::InvalidFloorplan("overlap".into());
        assert!(err.to_string().contains("overlap"));
        let err = ArchError::InvalidConfig("bad".into());
        assert!(err.to_string().contains("bad"));
        assert!(!ArchError::EmptyPlatform.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ArchError>();
    }
}
