//! The assembled MPSoC platform.
//!
//! [`MpsocPlatform`] owns the cores, caches, memories, bus and floorplan of
//! the emulated machine and produces per-floorplan-block power snapshots that
//! the thermal model integrates. It is the hardware half of the co-simulation
//! loop; the OS model in `tbp-os` drives core utilisation and frequencies, and
//! the policies in `tbp-core` read temperatures back.

use serde::{Deserialize, Serialize};

use crate::bus::{Bus, BusConfig, BusWindow};
use crate::cache::{Cache, CacheConfig};
use crate::core::{Core, CoreId};
use crate::error::ArchError;
use crate::floorplan::{BlockKind, Floorplan};
use crate::freq::{DvfsScale, OperatingPoint};
use crate::memory::{PrivateMemory, SharedMemory};
use crate::power::{CoreClass, PowerModel};
use crate::units::{Bytes, Celsius, Seconds, Watts};

/// Configuration of an [`MpsocPlatform`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Number of processor tiles.
    pub num_cores: usize,
    /// Processor class of every tile (the platform is homogeneous).
    pub core_class: CoreClass,
    /// DVFS scale shared by all cores.
    pub dvfs: DvfsScale,
    /// Instruction-cache configuration of every tile.
    pub icache: CacheConfig,
    /// Data-cache configuration of every tile.
    pub dcache: CacheConfig,
    /// Private memory capacity of every tile.
    pub private_memory: Bytes,
    /// Shared memory capacity.
    pub shared_memory: Bytes,
    /// Shared bus configuration.
    pub bus: BusConfig,
    /// Power model parameters.
    pub power: PowerModel,
}

impl PlatformConfig {
    /// The paper's 3-core streaming MPSoC (Conf1 cores, Table 1 power
    /// figures, Figure 5 floorplan).
    pub fn paper_default() -> Self {
        PlatformConfig {
            num_cores: 3,
            core_class: CoreClass::Risc32Streaming,
            dvfs: DvfsScale::paper_default(),
            icache: CacheConfig::paper_icache(),
            dcache: CacheConfig::paper_dcache(),
            private_memory: Bytes::from_mib(1),
            shared_memory: Bytes::from_mib(4),
            bus: BusConfig::paper_default(),
            power: PowerModel::new(),
        }
    }

    /// Same platform with the lower-power ARM11-class cores (Conf2).
    pub fn paper_arm11() -> Self {
        PlatformConfig {
            core_class: CoreClass::Risc32Arm11,
            ..PlatformConfig::paper_default()
        }
    }

    /// Overrides the number of cores (used by the scalability ablation).
    pub fn with_cores(mut self, n: usize) -> Self {
        self.num_cores = n;
        self
    }
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig::paper_default()
    }
}

/// Per-block power produced by one platform step, aligned with the
/// floorplan's block order.
///
/// Block names are copies of the platform's interned block table (built once
/// at platform construction); the snapshot can be reused across steps via
/// [`MpsocPlatform::power_snapshot_into`], which rewrites the power vector in
/// place and refreshes the names with capacity-reusing `clone_from`s, so the
/// steady-state co-simulation step allocates nothing here.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerSnapshot {
    block_names: Vec<String>,
    watts: Vec<Watts>,
}

impl PowerSnapshot {
    /// Creates an empty snapshot to be filled by
    /// [`MpsocPlatform::power_snapshot_into`].
    pub fn empty() -> Self {
        PowerSnapshot::default()
    }

    /// Power of each block, in floorplan order.
    pub fn per_block(&self) -> &[Watts] {
        &self.watts
    }

    /// Block names, in floorplan order.
    pub fn block_names(&self) -> &[String] {
        &self.block_names
    }

    /// Power of the named block, if present.
    pub fn block(&self, name: &str) -> Option<Watts> {
        self.block_names
            .iter()
            .position(|n| n == name)
            .map(|i| self.watts[i])
    }

    /// Total chip power.
    pub fn total(&self) -> f64 {
        self.watts.iter().map(|w| w.as_watts()).sum()
    }
}

/// The assembled MPSoC: cores, caches, memories, bus and floorplan.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MpsocPlatform {
    config: PlatformConfig,
    floorplan: Floorplan,
    cores: Vec<Core>,
    icaches: Vec<Cache>,
    dcaches: Vec<Cache>,
    private_memories: Vec<PrivateMemory>,
    shared_memory: SharedMemory,
    bus: Bus,
    elapsed: Seconds,
    /// Interned block-name table, in floorplan order. Built once at
    /// construction so per-step power snapshots never re-clone names out of
    /// the floorplan.
    block_names: Vec<String>,
}

impl MpsocPlatform {
    /// Builds a platform from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::EmptyPlatform`] for a zero-core configuration and
    /// [`ArchError::InvalidConfig`] / [`ArchError::InvalidFloorplan`] when a
    /// component configuration is invalid.
    pub fn new(config: PlatformConfig) -> Result<Self, ArchError> {
        if config.num_cores == 0 {
            return Err(ArchError::EmptyPlatform);
        }
        let floorplan = Floorplan::homogeneous_tiles(config.num_cores)?;
        let mut cores = Vec::with_capacity(config.num_cores);
        let mut icaches = Vec::with_capacity(config.num_cores);
        let mut dcaches = Vec::with_capacity(config.num_cores);
        let mut private_memories = Vec::with_capacity(config.num_cores);
        for i in 0..config.num_cores {
            let id = CoreId(i);
            cores.push(Core::new(id, config.core_class, config.dvfs.clone()));
            icaches.push(Cache::new(id, config.icache)?);
            dcaches.push(Cache::new(id, config.dcache)?);
            private_memories.push(PrivateMemory::new(id, config.private_memory)?);
        }
        let shared_memory = SharedMemory::new(config.shared_memory)?;
        let bus = Bus::new(config.bus)?;
        let block_names = floorplan.blocks().iter().map(|b| b.name.clone()).collect();
        Ok(MpsocPlatform {
            config,
            floorplan,
            cores,
            icaches,
            dcaches,
            private_memories,
            shared_memory,
            bus,
            elapsed: Seconds::ZERO,
            block_names,
        })
    }

    /// The platform configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// The floorplan of the platform.
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Identifiers of all cores, ascending.
    pub fn core_ids(&self) -> Vec<CoreId> {
        (0..self.cores.len()).map(CoreId).collect()
    }

    /// Immutable access to a core.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::UnknownCore`] for an out-of-range id.
    pub fn core(&self, id: CoreId) -> Result<&Core, ArchError> {
        self.cores.get(id.index()).ok_or(ArchError::UnknownCore(id))
    }

    /// Mutable access to a core.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::UnknownCore`] for an out-of-range id.
    pub fn core_mut(&mut self, id: CoreId) -> Result<&mut Core, ArchError> {
        self.cores
            .get_mut(id.index())
            .ok_or(ArchError::UnknownCore(id))
    }

    /// All cores in id order.
    pub fn cores(&self) -> &[Core] {
        &self.cores
    }

    /// The private memory of a core.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::UnknownCore`] for an out-of-range id.
    pub fn private_memory(&self, id: CoreId) -> Result<&PrivateMemory, ArchError> {
        self.private_memories
            .get(id.index())
            .ok_or(ArchError::UnknownCore(id))
    }

    /// Mutable access to the private memory of a core.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::UnknownCore`] for an out-of-range id.
    pub fn private_memory_mut(&mut self, id: CoreId) -> Result<&mut PrivateMemory, ArchError> {
        self.private_memories
            .get_mut(id.index())
            .ok_or(ArchError::UnknownCore(id))
    }

    /// The shared memory.
    pub fn shared_memory(&self) -> &SharedMemory {
        &self.shared_memory
    }

    /// The shared bus.
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// Simulated time elapsed so far.
    pub fn elapsed(&self) -> Seconds {
        self.elapsed
    }

    /// Queues migration (or other middleware) traffic for transfer through
    /// the shared memory and bus.
    pub fn offer_shared_traffic(&mut self, bytes: Bytes) {
        self.shared_memory.record_transfer(bytes);
        self.bus.offer(bytes);
    }

    /// Advances the platform by `dt`: cache accesses are derived from each
    /// core's executed cycles, refill and middleware traffic is pushed
    /// through the bus, and the bus window (including contention) is
    /// returned.
    pub fn step(&mut self, dt: Seconds) -> BusWindow {
        for i in 0..self.cores.len() {
            let cycles = self.cores[i].task_cycles_in(dt.as_secs());
            let i_accesses = self.icaches[i].accesses_for_cycles(cycles);
            let d_accesses = self.dcaches[i].accesses_for_cycles(cycles);
            let refill = self.icaches[i].record_accesses(i_accesses)
                + self.dcaches[i].record_accesses(d_accesses);
            self.bus.offer(refill);
        }
        self.elapsed += dt;
        self.bus.serve(dt)
    }

    /// Produces the per-block power snapshot at the given uniform die
    /// temperature (convenience for warm-up and tests).
    pub fn power_snapshot(&self, temperature_celsius: f64) -> PowerSnapshot {
        let uniform = vec![Celsius::new(temperature_celsius); self.floorplan.len()];
        self.power_snapshot_at(&uniform)
    }

    /// The interned block-name table, in floorplan order (built once at
    /// construction; [`PowerSnapshot`]s index into the same order).
    pub fn block_table(&self) -> &[String] {
        &self.block_names
    }

    /// Produces the per-block power snapshot given each block's current
    /// temperature (floorplan order). Leakage is evaluated at the block's own
    /// temperature, closing the electro-thermal loop.
    ///
    /// Temperatures beyond the floorplan length are ignored; missing entries
    /// default to the ambient temperature.
    pub fn power_snapshot_at(&self, block_temperatures: &[Celsius]) -> PowerSnapshot {
        let mut snapshot = PowerSnapshot::empty();
        self.power_snapshot_into(block_temperatures, &mut snapshot);
        snapshot
    }

    /// Allocation-free form of [`power_snapshot_at`](Self::power_snapshot_at):
    /// rewrites `out` in place. The power vector is refilled index by index
    /// and the block names are refreshed with capacity-reusing `clone_from`s
    /// against the interned block table, so once `out` has been filled for a
    /// platform of this shape the call performs no heap allocations.
    pub fn power_snapshot_into(&self, block_temperatures: &[Celsius], out: &mut PowerSnapshot) {
        let model = &self.config.power;
        let bus_util = self.bus_utilization_estimate();
        // Point-dependent power factors are shared by every block of a tile
        // (and by both uncore blocks): precompute them once per point instead
        // of once per block. Floorplans group the four blocks of a tile, so a
        // one-entry cache keyed by core id eliminates the recomputation; a
        // differently-ordered floorplan merely recomputes identical values.
        let uncore_scales = model.point_scales(self.reference_like_point());
        let mut cached_core = usize::MAX;
        let mut core_scales = uncore_scales;
        let mut core_util = 0.0;
        out.block_names.clone_from(&self.block_names);
        out.watts.clear();
        for (i, block) in self.floorplan.blocks().iter().enumerate() {
            let t = block_temperatures
                .get(i)
                .copied()
                .unwrap_or_else(Celsius::ambient);
            let w = match block.kind {
                BlockKind::Core(id)
                | BlockKind::ICache(id)
                | BlockKind::DCache(id)
                | BlockKind::PrivateMemory(id) => {
                    let idx = id.index();
                    if idx != cached_core {
                        let core = &self.cores[idx];
                        core_scales = model.point_scales(self.active_point(core));
                        core_util = core.utilization();
                        cached_core = idx;
                    }
                    match block.kind {
                        BlockKind::Core(_) => model
                            .total_power_with(
                                self.cores[idx].class().max_power(),
                                &core_scales,
                                core_util,
                                t,
                            )
                            .expect("utilization is validated on set"),
                        BlockKind::ICache(_) => model
                            .total_power_with(
                                self.icaches[idx].config().kind.component().max_power(),
                                &core_scales,
                                core_util.clamp(0.0, 1.0),
                                t,
                            )
                            .expect("clamped utilization is always valid"),
                        BlockKind::DCache(_) => model
                            .total_power_with(
                                self.dcaches[idx].config().kind.component().max_power(),
                                &core_scales,
                                core_util.clamp(0.0, 1.0),
                                t,
                            )
                            .expect("clamped utilization is always valid"),
                        _ => {
                            self.private_memories[idx].power_with(model, &core_scales, core_util, t)
                        }
                    }
                }
                BlockKind::SharedMemory | BlockKind::Interconnect => {
                    // The interconnect is modelled as a shared-memory-class
                    // component driven by bus utilisation.
                    model
                        .total_power_with(
                            crate::power::ComponentKind::SharedMemory.max_power(),
                            &uncore_scales,
                            bus_util.clamp(0.0, 1.0),
                            t,
                        )
                        .expect("bus utilization is clamped")
                }
            };
            out.watts.push(w);
        }
    }

    fn active_point(&self, core: &Core) -> OperatingPoint {
        if core.is_running() {
            core.operating_point()
        } else {
            OperatingPoint::new(crate::freq::Frequency::ZERO, core.operating_point().voltage)
        }
    }

    fn reference_like_point(&self) -> OperatingPoint {
        // The uncore runs at a fixed operating point, independent of core DVFS.
        OperatingPoint::new(
            crate::freq::Frequency::from_mhz(self.config.bus.clock_mhz),
            crate::freq::Voltage::new(crate::power::REFERENCE_VOLTAGE),
        )
    }

    fn bus_utilization_estimate(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            (self.bus.busy_time() / self.elapsed).clamp(0.0, 1.0)
        }
    }

    /// Resets dynamic state (bus backlog, elapsed time) while keeping the
    /// configuration, so a platform can be reused across experiments.
    pub fn reset(&mut self) {
        self.bus.reset();
        self.elapsed = Seconds::ZERO;
        for core in &mut self.cores {
            core.resume();
            core.set_utilization(0.0).expect("0 is a valid utilization");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::Frequency;

    #[test]
    fn paper_platform_has_three_cores() {
        let platform = MpsocPlatform::new(PlatformConfig::paper_default()).unwrap();
        assert_eq!(platform.num_cores(), 3);
        assert_eq!(platform.core_ids(), vec![CoreId(0), CoreId(1), CoreId(2)]);
        assert_eq!(platform.floorplan().len(), 14);
        assert_eq!(platform.config().core_class, CoreClass::Risc32Streaming);
        assert!(platform.core(CoreId(2)).is_ok());
        assert!(platform.core(CoreId(3)).is_err());
        assert!(platform.private_memory(CoreId(0)).is_ok());
        assert!(platform.private_memory(CoreId(9)).is_err());
        assert_eq!(platform.elapsed(), Seconds::ZERO);
    }

    #[test]
    fn zero_core_config_rejected() {
        let config = PlatformConfig::paper_default().with_cores(0);
        assert_eq!(MpsocPlatform::new(config), Err(ArchError::EmptyPlatform));
    }

    #[test]
    fn arm11_variant_uses_conf2_cores() {
        let platform = MpsocPlatform::new(PlatformConfig::paper_arm11()).unwrap();
        assert_eq!(
            platform.core(CoreId(0)).unwrap().class(),
            CoreClass::Risc32Arm11
        );
        assert_eq!(PlatformConfig::default(), PlatformConfig::paper_default());
    }

    #[test]
    fn power_snapshot_covers_every_block() {
        let mut platform = MpsocPlatform::new(PlatformConfig::paper_default()).unwrap();
        for id in platform.core_ids() {
            platform.core_mut(id).unwrap().set_utilization(0.5).unwrap();
        }
        let snap = platform.power_snapshot(60.0);
        assert_eq!(snap.per_block().len(), 14);
        assert_eq!(snap.block_names().len(), 14);
        assert!(snap.total() > 0.0);
        assert!(snap.block("core0").is_some());
        assert!(snap.block("shared_mem").is_some());
        assert!(snap.block("nope").is_none());
        // Core blocks dominate the budget.
        let core_power = snap.block("core0").unwrap().as_watts();
        let icache_power = snap.block("core0.icache").unwrap().as_watts();
        assert!(core_power > icache_power);
    }

    #[test]
    fn snapshot_into_reuses_buffers_and_matches_fresh_snapshot() {
        let mut platform = MpsocPlatform::new(PlatformConfig::paper_default()).unwrap();
        for id in platform.core_ids() {
            platform.core_mut(id).unwrap().set_utilization(0.4).unwrap();
        }
        assert_eq!(platform.block_table().len(), 14);
        let temps = vec![Celsius::new(55.0); platform.floorplan().len()];
        let fresh = platform.power_snapshot_at(&temps);
        let mut reused = PowerSnapshot::empty();
        platform.power_snapshot_into(&temps, &mut reused);
        assert_eq!(fresh, reused);
        // Refilling after a state change rewrites in place and still matches.
        platform
            .core_mut(CoreId(0))
            .unwrap()
            .set_utilization(0.9)
            .unwrap();
        platform.power_snapshot_into(&temps, &mut reused);
        assert_eq!(platform.power_snapshot_at(&temps), reused);
        assert_eq!(reused.block_names(), platform.block_table());
    }

    #[test]
    fn busy_core_burns_more_than_idle_core() {
        let mut platform = MpsocPlatform::new(PlatformConfig::paper_default()).unwrap();
        platform
            .core_mut(CoreId(0))
            .unwrap()
            .set_utilization(0.9)
            .unwrap();
        platform
            .core_mut(CoreId(1))
            .unwrap()
            .set_utilization(0.1)
            .unwrap();
        let snap = platform.power_snapshot(60.0);
        assert!(snap.block("core0").unwrap().as_watts() > snap.block("core1").unwrap().as_watts());
    }

    #[test]
    fn frequency_scaling_reduces_power() {
        let mut platform = MpsocPlatform::new(PlatformConfig::paper_default()).unwrap();
        for id in platform.core_ids() {
            platform.core_mut(id).unwrap().set_utilization(0.8).unwrap();
        }
        let fast = platform
            .power_snapshot(60.0)
            .block("core0")
            .unwrap()
            .as_watts();
        platform
            .core_mut(CoreId(0))
            .unwrap()
            .set_frequency(Frequency::from_mhz(266.0))
            .unwrap();
        let slow = platform
            .power_snapshot(60.0)
            .block("core0")
            .unwrap()
            .as_watts();
        assert!(slow < fast);
    }

    #[test]
    fn leakage_couples_power_to_temperature() {
        let mut platform = MpsocPlatform::new(PlatformConfig::paper_default()).unwrap();
        platform
            .core_mut(CoreId(0))
            .unwrap()
            .set_utilization(0.5)
            .unwrap();
        let cool = platform
            .power_snapshot(45.0)
            .block("core0")
            .unwrap()
            .as_watts();
        let hot = platform
            .power_snapshot(95.0)
            .block("core0")
            .unwrap()
            .as_watts();
        assert!(hot > cool);
    }

    #[test]
    fn step_generates_bus_traffic_for_busy_cores() {
        let mut platform = MpsocPlatform::new(PlatformConfig::paper_default()).unwrap();
        for id in platform.core_ids() {
            platform.core_mut(id).unwrap().set_utilization(1.0).unwrap();
        }
        let window = platform.step(Seconds::from_millis(1.0));
        assert!(window.bytes_served.as_u64() > 0);
        assert!(platform.elapsed().as_millis() > 0.9);
        // Idle platform generates almost no traffic.
        let mut idle = MpsocPlatform::new(PlatformConfig::paper_default()).unwrap();
        let idle_window = idle.step(Seconds::from_millis(1.0));
        assert!(idle_window.bytes_served.as_u64() < window.bytes_served.as_u64());
    }

    #[test]
    fn shared_traffic_is_accounted() {
        let mut platform = MpsocPlatform::new(PlatformConfig::paper_default()).unwrap();
        platform.offer_shared_traffic(Bytes::from_kib(64));
        assert_eq!(platform.shared_memory().transferred(), Bytes::from_kib(64));
        assert_eq!(platform.bus().pending(), Bytes::from_kib(64));
        let window = platform.step(Seconds::from_millis(1.0));
        assert!(window.bytes_served.as_u64() >= Bytes::from_kib(64).as_u64());
    }

    #[test]
    fn reset_restores_idle_running_state() {
        let mut platform = MpsocPlatform::new(PlatformConfig::paper_default()).unwrap();
        platform
            .core_mut(CoreId(1))
            .unwrap()
            .set_utilization(0.7)
            .unwrap();
        platform.core_mut(CoreId(1)).unwrap().halt();
        platform.offer_shared_traffic(Bytes::from_kib(64));
        platform.step(Seconds::from_millis(5.0));
        platform.reset();
        assert_eq!(platform.elapsed(), Seconds::ZERO);
        assert!(platform.core(CoreId(1)).unwrap().is_running());
        assert_eq!(platform.core(CoreId(1)).unwrap().utilization(), 0.0);
        assert_eq!(platform.bus().pending(), Bytes::ZERO);
    }

    #[test]
    fn scalability_up_to_eight_cores() {
        for n in [2, 4, 8] {
            let platform =
                MpsocPlatform::new(PlatformConfig::paper_default().with_cores(n)).unwrap();
            assert_eq!(platform.num_cores(), n);
            let snap = platform.power_snapshot(50.0);
            assert_eq!(snap.per_block().len(), 4 * n + 2);
        }
    }
}
