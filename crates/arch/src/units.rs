//! Small physical-quantity newtypes shared across the workspace.
//!
//! The simulator deals with times, data sizes, powers and temperatures coming
//! from different subsystems. Using explicit newtypes for the quantities that
//! are easy to confuse (seconds vs. milliseconds, bytes vs. kilobytes) keeps
//! interfaces self-documenting and prevents unit bugs.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration expressed in seconds, stored as `f64`.
///
/// The simulation advances in steps much smaller than a second (the paper's
/// thermal sensors refresh every 10 ms), so a floating-point representation is
/// both convenient and precise enough.
///
/// ```
/// use tbp_arch::units::Seconds;
/// let step = Seconds::from_millis(10.0);
/// assert_eq!(step.as_secs(), 0.01);
/// assert_eq!((step + step).as_millis(), 20.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Seconds(f64);

impl Seconds {
    /// Zero duration.
    pub const ZERO: Seconds = Seconds(0.0);

    /// Creates a duration from seconds.
    pub fn new(secs: f64) -> Self {
        Seconds(secs)
    }

    /// Creates a duration from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Seconds(ms / 1_000.0)
    }

    /// Creates a duration from microseconds.
    pub fn from_micros(us: f64) -> Self {
        Seconds(us / 1_000_000.0)
    }

    /// Value in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Value in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1_000.0
    }

    /// Value in microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 * 1_000_000.0
    }

    /// Returns `true` when the duration is zero or negative.
    pub fn is_zero(self) -> bool {
        self.0 <= 0.0
    }

    /// Saturating subtraction that never goes below zero.
    pub fn saturating_sub(self, rhs: Seconds) -> Seconds {
        Seconds((self.0 - rhs.0).max(0.0))
    }

    /// Smaller of two durations.
    pub fn min(self, other: Seconds) -> Seconds {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Larger of two durations.
    pub fn max(self, other: Seconds) -> Seconds {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3} s", self.0)
        } else {
            write!(f, "{:.3} ms", self.0 * 1e3)
        }
    }
}

impl Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl AddAssign for Seconds {
    fn add_assign(&mut self, rhs: Seconds) {
        self.0 += rhs.0;
    }
}

impl Sub for Seconds {
    type Output = Seconds;
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 - rhs.0)
    }
}

impl SubAssign for Seconds {
    fn sub_assign(&mut self, rhs: Seconds) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Seconds {
    type Output = Seconds;
    fn mul(self, rhs: f64) -> Seconds {
        Seconds(self.0 * rhs)
    }
}

impl Div<f64> for Seconds {
    type Output = Seconds;
    fn div(self, rhs: f64) -> Seconds {
        Seconds(self.0 / rhs)
    }
}

impl Div<Seconds> for Seconds {
    type Output = f64;
    fn div(self, rhs: Seconds) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Seconds {
    fn sum<I: Iterator<Item = Seconds>>(iter: I) -> Seconds {
        Seconds(iter.map(|s| s.0).sum())
    }
}

/// A data size in bytes.
///
/// Migration traffic in the paper is reported in kilobytes (64 kB per migrated
/// task context); the cost models in [`tbp-os`](https://docs.rs) consume this
/// type.
///
/// ```
/// use tbp_arch::units::Bytes;
/// let context = Bytes::from_kib(64);
/// assert_eq!(context.as_u64(), 65_536);
/// assert_eq!(context.as_kib(), 64.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a size from a raw byte count.
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// Creates a size from kibibytes (1024 bytes).
    pub fn from_kib(kib: u64) -> Self {
        Bytes(kib * 1024)
    }

    /// Creates a size from mebibytes.
    pub fn from_mib(mib: u64) -> Self {
        Bytes(mib * 1024 * 1024)
    }

    /// Raw byte count.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Size in kibibytes as a float.
    pub fn as_kib(self) -> f64 {
        self.0 as f64 / 1024.0
    }

    /// Size in mebibytes as a float.
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_add(rhs.0))
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 * 1024 {
            write!(f, "{:.1} MiB", self.as_mib())
        } else if self.0 >= 1024 {
            write!(f, "{:.1} KiB", self.as_kib())
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        Bytes(iter.map(|b| b.0).sum())
    }
}

/// Power in watts.
///
/// ```
/// use tbp_arch::units::Watts;
/// let cache = Watts::from_milli(43.0); // D-cache max power from Table 1
/// assert!((cache.as_watts() - 0.043).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Watts(f64);

impl Watts {
    /// Zero power.
    pub const ZERO: Watts = Watts(0.0);

    /// Creates a power value in watts.
    pub fn new(watts: f64) -> Self {
        Watts(watts)
    }

    /// Creates a power value from milliwatts.
    pub fn from_milli(mw: f64) -> Self {
        Watts(mw / 1_000.0)
    }

    /// Value in watts.
    pub fn as_watts(self) -> f64 {
        self.0
    }

    /// Value in milliwatts.
    pub fn as_milliwatts(self) -> f64 {
        self.0 * 1_000.0
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1.0 {
            write!(f, "{:.1} mW", self.0 * 1e3)
        } else {
            write!(f, "{:.3} W", self.0)
        }
    }
}

impl Add for Watts {
    type Output = Watts;
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl AddAssign for Watts {
    fn add_assign(&mut self, rhs: Watts) {
        self.0 += rhs.0;
    }
}

impl Sub for Watts {
    type Output = Watts;
    fn sub(self, rhs: Watts) -> Watts {
        Watts(self.0 - rhs.0)
    }
}

impl Mul<f64> for Watts {
    type Output = Watts;
    fn mul(self, rhs: f64) -> Watts {
        Watts(self.0 * rhs)
    }
}

impl Sum for Watts {
    fn sum<I: Iterator<Item = Watts>>(iter: I) -> Watts {
        Watts(iter.map(|w| w.0).sum())
    }
}

/// Temperature in degrees Celsius.
///
/// All thermal quantities in the paper (thresholds, gradients, panic limits)
/// are expressed in °C, so the simulator uses Celsius throughout and converts
/// to Kelvin only inside the RC solver where absolute values matter.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Celsius(f64);

impl Celsius {
    /// Creates a temperature from degrees Celsius.
    pub fn new(deg: f64) -> Self {
        Celsius(deg)
    }

    /// The typical ambient temperature used by HotSpot-style models (45 °C).
    pub fn ambient() -> Self {
        Celsius(45.0)
    }

    /// Value in degrees Celsius.
    pub fn as_celsius(self) -> f64 {
        self.0
    }

    /// Value in Kelvin.
    pub fn as_kelvin(self) -> f64 {
        self.0 + 273.15
    }

    /// Creates a temperature from Kelvin.
    pub fn from_kelvin(k: f64) -> Self {
        Celsius(k - 273.15)
    }
}

impl fmt::Display for Celsius {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} °C", self.0)
    }
}

impl Add<f64> for Celsius {
    type Output = Celsius;
    fn add(self, rhs: f64) -> Celsius {
        Celsius(self.0 + rhs)
    }
}

impl Sub for Celsius {
    type Output = f64;
    fn sub(self, rhs: Celsius) -> f64 {
        self.0 - rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_conversions_round_trip() {
        let s = Seconds::from_millis(10.0);
        assert!((s.as_secs() - 0.01).abs() < 1e-12);
        assert!((s.as_millis() - 10.0).abs() < 1e-12);
        assert!((Seconds::from_micros(500.0).as_millis() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn seconds_arithmetic() {
        let a = Seconds::new(1.5);
        let b = Seconds::new(0.5);
        assert_eq!((a + b).as_secs(), 2.0);
        assert_eq!((a - b).as_secs(), 1.0);
        assert_eq!((a * 2.0).as_secs(), 3.0);
        assert_eq!((a / 3.0).as_secs(), 0.5);
        assert_eq!(a / b, 3.0);
        assert_eq!(b.saturating_sub(a), Seconds::ZERO);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
        let mut c = a;
        c += b;
        assert_eq!(c.as_secs(), 2.0);
        c -= b;
        assert_eq!(c.as_secs(), 1.5);
        let total: Seconds = [a, b].into_iter().sum();
        assert_eq!(total.as_secs(), 2.0);
    }

    #[test]
    fn seconds_zero_detection() {
        assert!(Seconds::ZERO.is_zero());
        assert!(Seconds::new(-1.0).is_zero());
        assert!(!Seconds::new(0.1).is_zero());
    }

    #[test]
    fn bytes_conversions() {
        assert_eq!(Bytes::from_kib(64).as_u64(), 65_536);
        assert_eq!(Bytes::from_mib(1).as_u64(), 1_048_576);
        assert!((Bytes::from_kib(64).as_kib() - 64.0).abs() < 1e-12);
        assert!((Bytes::from_mib(2).as_mib() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bytes_arithmetic_and_display() {
        let a = Bytes::from_kib(64);
        let b = Bytes::new(512);
        assert_eq!((a + b).as_u64(), 66_048);
        let total: Bytes = [a, b].into_iter().sum();
        assert_eq!(total.as_u64(), 66_048);
        assert_eq!(Bytes::new(u64::MAX).saturating_add(a), Bytes::new(u64::MAX));
        assert_eq!(format!("{}", Bytes::new(100)), "100 B");
        assert_eq!(format!("{}", Bytes::from_kib(64)), "64.0 KiB");
        assert_eq!(format!("{}", Bytes::from_mib(3)), "3.0 MiB");
    }

    #[test]
    fn watts_conversions_and_display() {
        let p = Watts::from_milli(43.0);
        assert!((p.as_watts() - 0.043).abs() < 1e-12);
        assert!((p.as_milliwatts() - 43.0).abs() < 1e-9);
        assert_eq!(format!("{}", Watts::new(0.5)), "500.0 mW");
        assert_eq!(format!("{}", Watts::new(1.25)), "1.250 W");
        let total: Watts = [Watts::new(0.5), Watts::new(0.25)].into_iter().sum();
        assert!((total.as_watts() - 0.75).abs() < 1e-12);
        assert!(((Watts::new(1.0) - Watts::new(0.4)).as_watts() - 0.6).abs() < 1e-12);
        assert!(((Watts::new(2.0) * 0.5).as_watts() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn celsius_kelvin_round_trip() {
        let t = Celsius::new(45.0);
        assert!((t.as_kelvin() - 318.15).abs() < 1e-9);
        let back = Celsius::from_kelvin(t.as_kelvin());
        assert!((back.as_celsius() - 45.0).abs() < 1e-9);
        assert!((Celsius::ambient().as_celsius() - 45.0).abs() < 1e-12);
        assert!(((t + 3.0).as_celsius() - 48.0).abs() < 1e-12);
        assert!((Celsius::new(50.0) - Celsius::new(45.0) - 5.0).abs() < 1e-12);
        assert!(format!("{t}").contains("°C"));
    }
}
