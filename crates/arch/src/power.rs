//! The 0.09 µm component power model (Table 1 of the paper).
//!
//! Table 1 lists the maximum power of the emulated components at 500 MHz:
//!
//! | component                  | max power |
//! |----------------------------|-----------|
//! | RISC32-streaming (Conf1)   | 0.5 W     |
//! | RISC32-ARM11 (Conf2)       | 0.27 W    |
//! | D-cache 8 kB / 2-way       | 43 mW     |
//! | I-cache 8 kB / DM          | 11 mW     |
//! | Memory 32 kB               | 15 mW     |
//!
//! The model scales dynamic power with utilisation and the `f · V²` factor of
//! the active operating point, and adds a temperature-dependent leakage term
//! (leakage grows roughly exponentially with temperature, which is one of the
//! motivations for thermal balancing cited in the paper's introduction).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::ArchError;
use crate::freq::{Frequency, OperatingPoint, Voltage};
use crate::units::{Celsius, Watts};

/// Reference frequency of Table 1 (500 MHz).
pub const REFERENCE_FREQUENCY_MHZ: f64 = 500.0;

/// Reference voltage paired with the 500 MHz figures (1.2 V at 90 nm).
pub const REFERENCE_VOLTAGE: f64 = 1.2;

/// Fraction of the maximum component power attributed to leakage at the
/// reference temperature. Typical for 90 nm designs.
pub const LEAKAGE_FRACTION_AT_REFERENCE: f64 = 0.15;

/// Reference temperature at which the leakage fraction is specified.
pub const LEAKAGE_REFERENCE_CELSIUS: f64 = 60.0;

/// Exponential leakage sensitivity: leakage doubles roughly every 25 °C.
pub const LEAKAGE_DOUBLING_CELSIUS: f64 = 25.0;

/// Processor configuration from Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoreClass {
    /// `RISC32-streaming (Conf1)` — 0.5 W max at 500 MHz.
    Risc32Streaming,
    /// `RISC32-ARM11 (Conf2)` — 0.27 W max at 500 MHz.
    Risc32Arm11,
}

impl CoreClass {
    /// Maximum core power at the 500 MHz / 1.2 V reference point.
    pub fn max_power(self) -> Watts {
        match self {
            CoreClass::Risc32Streaming => Watts::new(0.5),
            CoreClass::Risc32Arm11 => Watts::new(0.27),
        }
    }
}

impl fmt::Display for CoreClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreClass::Risc32Streaming => write!(f, "RISC32-streaming (Conf1)"),
            CoreClass::Risc32Arm11 => write!(f, "RISC32-ARM11 (Conf2)"),
        }
    }
}

/// Non-processor components of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComponentKind {
    /// 8 kB two-way data cache (43 mW max).
    DCache,
    /// 8 kB direct-mapped instruction cache (11 mW max).
    ICache,
    /// 32 kB scratchpad / private memory (15 mW max).
    Memory32k,
    /// Shared memory bank (modelled with the same 15 mW/32 kB density).
    SharedMemory,
}

impl ComponentKind {
    /// Maximum power of the component at the reference operating point.
    pub fn max_power(self) -> Watts {
        match self {
            ComponentKind::DCache => Watts::from_milli(43.0),
            ComponentKind::ICache => Watts::from_milli(11.0),
            ComponentKind::Memory32k => Watts::from_milli(15.0),
            ComponentKind::SharedMemory => Watts::from_milli(15.0),
        }
    }
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComponentKind::DCache => write!(f, "DCache 8kB/2way"),
            ComponentKind::ICache => write!(f, "ICache 8kB/DM"),
            ComponentKind::Memory32k => write!(f, "Memory 32kB"),
            ComponentKind::SharedMemory => write!(f, "Shared memory"),
        }
    }
}

/// Parameters of the power model.
///
/// All defaults reproduce Table 1; the builder-style setters allow ablation
/// studies (e.g. disabling leakage) without touching the rest of the stack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    reference: OperatingPoint,
    leakage_fraction: f64,
    leakage_reference: Celsius,
    leakage_doubling: f64,
    idle_fraction: f64,
}

impl PowerModel {
    /// Creates the Table 1 power model with default leakage parameters.
    pub fn new() -> Self {
        PowerModel {
            reference: OperatingPoint::new(
                Frequency::from_mhz(REFERENCE_FREQUENCY_MHZ),
                Voltage::new(REFERENCE_VOLTAGE),
            ),
            leakage_fraction: LEAKAGE_FRACTION_AT_REFERENCE,
            leakage_reference: Celsius::new(LEAKAGE_REFERENCE_CELSIUS),
            leakage_doubling: LEAKAGE_DOUBLING_CELSIUS,
            idle_fraction: 0.05,
        }
    }

    /// Overrides the leakage fraction (share of max power that is leakage at
    /// the reference temperature). Useful for ablations.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] when the fraction is outside `[0, 1)`.
    pub fn with_leakage_fraction(mut self, fraction: f64) -> Result<Self, ArchError> {
        if !(0.0..1.0).contains(&fraction) {
            return Err(ArchError::InvalidConfig(format!(
                "leakage fraction {fraction} must be in [0, 1)"
            )));
        }
        self.leakage_fraction = fraction;
        Ok(self)
    }

    /// Overrides the fraction of dynamic power burnt by an idle (but clocked)
    /// component, modelling clock-tree and idle-loop activity.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] when the fraction is outside `[0, 1]`.
    pub fn with_idle_fraction(mut self, fraction: f64) -> Result<Self, ArchError> {
        if !(0.0..=1.0).contains(&fraction) {
            return Err(ArchError::InvalidConfig(format!(
                "idle fraction {fraction} must be in [0, 1]"
            )));
        }
        self.idle_fraction = fraction;
        Ok(self)
    }

    /// The reference operating point (500 MHz / 1.2 V) of Table 1.
    pub fn reference(&self) -> OperatingPoint {
        self.reference
    }

    /// The idle activity fraction.
    pub fn idle_fraction(&self) -> f64 {
        self.idle_fraction
    }

    /// Dynamic power of a component with `max_power` rating running at
    /// `point` with the given `utilization` (0–1).
    ///
    /// A halted component (zero frequency) burns no dynamic power. An idle
    /// but clocked component burns `idle_fraction` of its scaled max power.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidUtilization`] when `utilization` is outside
    /// `[0, 1]`.
    pub fn dynamic_power(
        &self,
        max_power: Watts,
        point: OperatingPoint,
        utilization: f64,
    ) -> Result<Watts, ArchError> {
        if !(0.0..=1.0).contains(&utilization) {
            return Err(ArchError::InvalidUtilization(utilization));
        }
        if point.frequency == Frequency::ZERO {
            return Ok(Watts::ZERO);
        }
        let scale = point.dynamic_scale(&self.reference);
        let max_dynamic = max_power.as_watts() * (1.0 - self.leakage_fraction);
        let activity = self.idle_fraction + (1.0 - self.idle_fraction) * utilization;
        Ok(Watts::new(max_dynamic * scale * activity))
    }

    /// Temperature-dependent leakage power of a component.
    ///
    /// Leakage is `leakage_fraction · max_power` at the reference temperature
    /// and doubles every [`LEAKAGE_DOUBLING_CELSIUS`] degrees. Leakage scales
    /// with the supply voltage but not with frequency, and is burnt even by an
    /// idle component as long as it is powered (a halted core still leaks —
    /// the Stop&Go policy in the paper gates the clock, not the supply).
    pub fn leakage_power(&self, max_power: Watts, voltage: Voltage, temperature: Celsius) -> Watts {
        let base = max_power.as_watts() * self.leakage_fraction;
        let v_scale = if REFERENCE_VOLTAGE > 0.0 {
            voltage.as_volts() / REFERENCE_VOLTAGE
        } else {
            1.0
        };
        let delta_t = temperature.as_celsius() - self.leakage_reference.as_celsius();
        // Spelled `exp2` rather than `powf(2.0, ..)`: optimized builds already
        // lower a literal base-2 powf to exp2 (so release output is unchanged
        // bit for bit), and debug builds skip the generic pow path — this runs
        // once per block per simulation step.
        let t_scale = (delta_t / self.leakage_doubling).exp2();
        Watts::new(base * v_scale * t_scale)
    }

    /// Total (dynamic + leakage) power of a component.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidUtilization`] when `utilization` is outside
    /// `[0, 1]`.
    pub fn total_power(
        &self,
        max_power: Watts,
        point: OperatingPoint,
        utilization: f64,
        temperature: Celsius,
    ) -> Result<Watts, ArchError> {
        let dynamic = self.dynamic_power(max_power, point, utilization)?;
        let leakage = self.leakage_power(max_power, point.voltage, temperature);
        Ok(dynamic + leakage)
    }

    /// Convenience: total power of a processor of class `class`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidUtilization`] when `utilization` is outside
    /// `[0, 1]`.
    pub fn core_power(
        &self,
        class: CoreClass,
        point: OperatingPoint,
        utilization: f64,
        temperature: Celsius,
    ) -> Result<Watts, ArchError> {
        self.total_power(class.max_power(), point, utilization, temperature)
    }

    /// Convenience: total power of a non-processor component.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidUtilization`] when `utilization` is outside
    /// `[0, 1]`.
    pub fn component_power(
        &self,
        kind: ComponentKind,
        point: OperatingPoint,
        utilization: f64,
        temperature: Celsius,
    ) -> Result<Watts, ArchError> {
        self.total_power(kind.max_power(), point, utilization, temperature)
    }

    /// Precomputes the operating-point-dependent factors of
    /// [`total_power`](Self::total_power) so callers evaluating several
    /// components at the *same* point (the four blocks of a tile, every step)
    /// pay for the divisions once. Feed the result to
    /// [`total_power_with`](Self::total_power_with).
    pub fn point_scales(&self, point: OperatingPoint) -> PointScales {
        let voltage_scale = if REFERENCE_VOLTAGE > 0.0 {
            point.voltage.as_volts() / REFERENCE_VOLTAGE
        } else {
            1.0
        };
        PointScales {
            dynamic_scale: point.dynamic_scale(&self.reference),
            voltage_scale,
            zero_frequency: point.frequency == Frequency::ZERO,
        }
    }

    /// [`total_power`](Self::total_power) with the point-dependent factors
    /// precomputed by [`point_scales`](Self::point_scales). The arithmetic
    /// mirrors [`dynamic_power`](Self::dynamic_power) +
    /// [`leakage_power`](Self::leakage_power) operation for operation, so the
    /// two paths produce bit-identical results (asserted by the
    /// `cached_scales_match_direct_path` test).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidUtilization`] when `utilization` is outside
    /// `[0, 1]`.
    pub fn total_power_with(
        &self,
        max_power: Watts,
        scales: &PointScales,
        utilization: f64,
        temperature: Celsius,
    ) -> Result<Watts, ArchError> {
        if !(0.0..=1.0).contains(&utilization) {
            return Err(ArchError::InvalidUtilization(utilization));
        }
        let dynamic = if scales.zero_frequency {
            Watts::ZERO
        } else {
            let max_dynamic = max_power.as_watts() * (1.0 - self.leakage_fraction);
            let activity = self.idle_fraction + (1.0 - self.idle_fraction) * utilization;
            Watts::new(max_dynamic * scales.dynamic_scale * activity)
        };
        let base = max_power.as_watts() * self.leakage_fraction;
        let delta_t = temperature.as_celsius() - self.leakage_reference.as_celsius();
        let t_scale = (delta_t / self.leakage_doubling).exp2();
        let leakage = Watts::new(base * scales.voltage_scale * t_scale);
        Ok(dynamic + leakage)
    }
}

/// Operating-point-dependent factors of the power model, precomputed once
/// per point by [`PowerModel::point_scales`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointScales {
    /// `(f/f_ref) · (V/V_ref)²` of the point.
    pub dynamic_scale: f64,
    /// `V/V_ref` of the point (leakage voltage scaling).
    pub voltage_scale: f64,
    /// Whether the point is clock-gated (no dynamic power at all).
    pub zero_frequency: bool,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_scales_match_direct_path() {
        let model = PowerModel::new();
        let scale = crate::freq::DvfsScale::paper_default();
        let mut points: Vec<OperatingPoint> = scale.points().to_vec();
        points.push(OperatingPoint::new(Frequency::ZERO, Voltage::new(1.0)));
        for point in points {
            let scales = model.point_scales(point);
            for kind in [
                ComponentKind::ICache,
                ComponentKind::DCache,
                ComponentKind::Memory32k,
                ComponentKind::SharedMemory,
            ] {
                for utilization in [0.0, 0.3, 0.97, 1.0] {
                    for temp in [25.0, 45.0, 61.3, 95.0] {
                        let direct = model
                            .total_power(kind.max_power(), point, utilization, Celsius::new(temp))
                            .unwrap();
                        let cached = model
                            .total_power_with(
                                kind.max_power(),
                                &scales,
                                utilization,
                                Celsius::new(temp),
                            )
                            .unwrap();
                        assert_eq!(
                            direct.as_watts().to_bits(),
                            cached.as_watts().to_bits(),
                            "{kind:?} at {point} u={utilization} t={temp}"
                        );
                    }
                }
            }
        }
        // Out-of-range utilization is rejected on both paths.
        let scales = model.point_scales(reference_point());
        assert!(model
            .total_power_with(Watts::new(0.5), &scales, 1.5, Celsius::new(45.0))
            .is_err());
    }

    #[test]
    fn exp2_matches_powf_base_two() {
        // `leakage_power` uses `exp2` as a faster spelling of the model's
        // `2^(ΔT/doubling)`. Optimized builds lower a literal base-2 `powf`
        // to `exp2` anyway, so the spelling cannot change release output;
        // this guards the two staying equivalent within float tolerance on
        // every build profile (unoptimized libm `pow` may differ in the last
        // ulp). The grid covers far more than the plausible ΔT/doubling
        // range (roughly [-10, 10] for die temperatures).
        let mut x = -60.0f64;
        while x <= 60.0 {
            let a = x.exp2();
            let b = 2f64.powf(x);
            assert!(
                ((a - b) / b).abs() < 1e-14,
                "exp2({x}) = {a:e} deviates from powf(2, {x}) = {b:e}"
            );
            x += 0.000317;
        }
    }

    fn reference_point() -> OperatingPoint {
        OperatingPoint::new(
            Frequency::from_mhz(REFERENCE_FREQUENCY_MHZ),
            Voltage::new(REFERENCE_VOLTAGE),
        )
    }

    #[test]
    fn table1_max_power_values() {
        assert_eq!(CoreClass::Risc32Streaming.max_power(), Watts::new(0.5));
        assert_eq!(CoreClass::Risc32Arm11.max_power(), Watts::new(0.27));
        assert_eq!(ComponentKind::DCache.max_power(), Watts::from_milli(43.0));
        assert_eq!(ComponentKind::ICache.max_power(), Watts::from_milli(11.0));
        assert_eq!(
            ComponentKind::Memory32k.max_power(),
            Watts::from_milli(15.0)
        );
        assert_eq!(
            ComponentKind::SharedMemory.max_power(),
            Watts::from_milli(15.0)
        );
    }

    #[test]
    fn display_names_match_table1() {
        assert!(CoreClass::Risc32Streaming.to_string().contains("Conf1"));
        assert!(CoreClass::Risc32Arm11.to_string().contains("ARM11"));
        assert!(ComponentKind::DCache.to_string().contains("DCache"));
        assert!(ComponentKind::ICache.to_string().contains("ICache"));
        assert!(ComponentKind::Memory32k.to_string().contains("32kB"));
        assert!(ComponentKind::SharedMemory.to_string().contains("Shared"));
    }

    #[test]
    fn full_utilization_at_reference_recovers_table1() {
        let model = PowerModel::new();
        let p = model
            .core_power(
                CoreClass::Risc32Streaming,
                reference_point(),
                1.0,
                Celsius::new(LEAKAGE_REFERENCE_CELSIUS),
            )
            .unwrap();
        // dynamic = 0.85 * 0.5, leakage = 0.15 * 0.5 => 0.5 W total.
        assert!((p.as_watts() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn dynamic_power_scales_with_utilization() {
        let model = PowerModel::new();
        let point = reference_point();
        let low = model
            .dynamic_power(Watts::new(0.5), point, 0.2)
            .unwrap()
            .as_watts();
        let high = model
            .dynamic_power(Watts::new(0.5), point, 0.8)
            .unwrap()
            .as_watts();
        assert!(high > low);
        // idle component still burns the idle fraction.
        let idle = model
            .dynamic_power(Watts::new(0.5), point, 0.0)
            .unwrap()
            .as_watts();
        assert!(idle > 0.0);
        assert!(idle < low);
    }

    #[test]
    fn dynamic_power_scales_with_operating_point() {
        let model = PowerModel::new();
        let full = reference_point();
        let half = OperatingPoint::new(Frequency::from_mhz(250.0), Voltage::new(1.2));
        let p_full = model
            .dynamic_power(Watts::new(0.5), full, 1.0)
            .unwrap()
            .as_watts();
        let p_half = model
            .dynamic_power(Watts::new(0.5), half, 1.0)
            .unwrap()
            .as_watts();
        assert!((p_half - p_full / 2.0).abs() < 1e-9);
        // Halted core: no dynamic power.
        let halted = OperatingPoint::new(Frequency::ZERO, Voltage::new(1.2));
        assert_eq!(
            model.dynamic_power(Watts::new(0.5), halted, 1.0).unwrap(),
            Watts::ZERO
        );
    }

    #[test]
    fn dynamic_power_rejects_bad_utilization() {
        let model = PowerModel::new();
        assert_eq!(
            model.dynamic_power(Watts::new(0.5), reference_point(), 1.2),
            Err(ArchError::InvalidUtilization(1.2))
        );
        assert_eq!(
            model.dynamic_power(Watts::new(0.5), reference_point(), -0.1),
            Err(ArchError::InvalidUtilization(-0.1))
        );
    }

    #[test]
    fn leakage_grows_with_temperature() {
        let model = PowerModel::new();
        let v = Voltage::new(REFERENCE_VOLTAGE);
        let at_ref = model
            .leakage_power(Watts::new(0.5), v, Celsius::new(LEAKAGE_REFERENCE_CELSIUS))
            .as_watts();
        let hotter = model
            .leakage_power(
                Watts::new(0.5),
                v,
                Celsius::new(LEAKAGE_REFERENCE_CELSIUS + LEAKAGE_DOUBLING_CELSIUS),
            )
            .as_watts();
        assert!((at_ref - 0.075).abs() < 1e-9);
        assert!((hotter - 2.0 * at_ref).abs() < 1e-9);
        // Leakage also scales with voltage.
        let low_v = model
            .leakage_power(
                Watts::new(0.5),
                Voltage::new(0.6),
                Celsius::new(LEAKAGE_REFERENCE_CELSIUS),
            )
            .as_watts();
        assert!((low_v - at_ref * 0.5).abs() < 1e-9);
    }

    #[test]
    fn builder_setters_validate() {
        assert!(PowerModel::new().with_leakage_fraction(0.3).is_ok());
        assert!(PowerModel::new().with_leakage_fraction(1.0).is_err());
        assert!(PowerModel::new().with_leakage_fraction(-0.1).is_err());
        assert!(PowerModel::new().with_idle_fraction(0.0).is_ok());
        assert!(PowerModel::new().with_idle_fraction(1.0).is_ok());
        assert!(PowerModel::new().with_idle_fraction(1.1).is_err());
    }

    #[test]
    fn zero_leakage_model_has_no_leakage() {
        let model = PowerModel::new().with_leakage_fraction(0.0).unwrap();
        let leak = model.leakage_power(Watts::new(0.5), Voltage::new(1.2), Celsius::new(100.0));
        assert_eq!(leak, Watts::ZERO);
    }

    #[test]
    fn component_power_helper_matches_total_power() {
        let model = PowerModel::new();
        let point = reference_point();
        let t = Celsius::new(55.0);
        let a = model
            .component_power(ComponentKind::DCache, point, 0.5, t)
            .unwrap();
        let b = model
            .total_power(ComponentKind::DCache.max_power(), point, 0.5, t)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(model.reference().frequency, Frequency::from_mhz(500.0));
        assert!(model.idle_fraction() > 0.0);
        assert_eq!(PowerModel::default(), PowerModel::new());
    }
}
