//! Property-based tests of the architecture model's core data structures.

use proptest::prelude::*;

use tbp_arch::core::CoreId;
use tbp_arch::floorplan::Floorplan;
use tbp_arch::freq::{DvfsScale, Frequency};
use tbp_arch::platform::{MpsocPlatform, PlatformConfig};
use tbp_arch::power::{CoreClass, PowerModel};
use tbp_arch::units::{Bytes, Celsius, Seconds};

proptest! {
    /// The DVFS scale always returns a level that covers the requested load
    /// (up to saturation at the maximum frequency).
    #[test]
    fn dvfs_levels_cover_the_load(load in 0.0f64..1.5) {
        let scale = DvfsScale::paper_default();
        let point = scale.level_for_load(load).unwrap();
        let covered = point.frequency.as_hz() as f64 / scale.max_frequency().as_hz() as f64;
        prop_assert!(covered + 1e-9 >= load.min(1.0) || point.frequency == scale.max_frequency());
        prop_assert!(scale.contains(point.frequency));
    }

    /// Dynamic power is monotone in utilisation and in the operating point,
    /// and total power never drops below leakage.
    #[test]
    fn power_model_is_monotone(util_a in 0.0f64..=1.0, util_b in 0.0f64..=1.0, t in 30.0f64..110.0) {
        let model = PowerModel::new();
        let scale = DvfsScale::paper_default();
        let point = scale.max_point();
        let lo = util_a.min(util_b);
        let hi = util_a.max(util_b);
        let p_lo = model.core_power(CoreClass::Risc32Streaming, point, lo, Celsius::new(t)).unwrap();
        let p_hi = model.core_power(CoreClass::Risc32Streaming, point, hi, Celsius::new(t)).unwrap();
        prop_assert!(p_hi.as_watts() + 1e-12 >= p_lo.as_watts());
        let leak = model.leakage_power(CoreClass::Risc32Streaming.max_power(), point.voltage, Celsius::new(t));
        prop_assert!(p_lo.as_watts() + 1e-12 >= leak.as_watts());
    }

    /// Any homogeneous floorplan is well formed: blocks never overlap, every
    /// adjacency has a positive shared edge, and each core block exists.
    #[test]
    fn floorplans_are_well_formed(n in 1usize..10) {
        let plan = Floorplan::homogeneous_tiles(n).unwrap();
        prop_assert_eq!(plan.core_ids().len(), n);
        for (a, b, shared) in plan.adjacencies() {
            prop_assert!(shared > 0.0);
            prop_assert!(a != b);
            prop_assert!(!plan.blocks()[a].rect.overlaps(&plan.blocks()[b].rect));
        }
        for id in plan.core_ids() {
            prop_assert!(plan.core_block_index(id).is_ok());
        }
        prop_assert!(plan.total_area_mm2() > 0.0);
    }

    /// The platform's power snapshot is finite, positive in total, and grows
    /// (or stays equal) when any core's utilisation grows.
    #[test]
    fn platform_power_snapshot_is_sane(utils in proptest::collection::vec(0.0f64..=1.0, 3)) {
        let mut platform = MpsocPlatform::new(PlatformConfig::paper_default()).unwrap();
        for (i, &u) in utils.iter().enumerate() {
            platform.core_mut(CoreId(i)).unwrap().set_utilization(u).unwrap();
        }
        let snapshot = platform.power_snapshot(60.0);
        prop_assert!(snapshot.total().is_finite());
        prop_assert!(snapshot.total() > 0.0);
        for w in snapshot.per_block() {
            prop_assert!(w.as_watts() >= 0.0);
        }
        // Raising core 0 to full utilisation cannot decrease total power.
        platform.core_mut(CoreId(0)).unwrap().set_utilization(1.0).unwrap();
        let raised = platform.power_snapshot(60.0);
        prop_assert!(raised.total() + 1e-12 >= snapshot.total());
    }

    /// The bus conserves bytes: served + deferred equals what was offered,
    /// and repeated service eventually drains any finite backlog.
    #[test]
    fn bus_conserves_traffic(kib in 1u64..4096) {
        use tbp_arch::bus::{Bus, BusConfig};
        let mut bus = Bus::new(BusConfig::paper_default()).unwrap();
        let offered = Bytes::from_kib(kib);
        bus.offer(offered);
        let window = bus.serve(Seconds::from_millis(1.0));
        prop_assert_eq!(
            window.bytes_served.as_u64() + window.bytes_deferred.as_u64(),
            offered.as_u64()
        );
        let mut remaining = window.bytes_deferred;
        for _ in 0..10_000 {
            if remaining == Bytes::ZERO {
                break;
            }
            remaining = bus.serve(Seconds::from_millis(1.0)).bytes_deferred;
        }
        prop_assert_eq!(remaining, Bytes::ZERO);
        prop_assert_eq!(bus.total_served(), offered);
    }

    /// Frequency arithmetic round-trips: time for N cycles at frequency f,
    /// multiplied back, recovers N.
    #[test]
    fn frequency_cycle_round_trip(mhz in 1.0f64..2000.0, cycles in 1.0f64..1e9) {
        let f = Frequency::from_mhz(mhz);
        let time = f.time_for_cycles(cycles);
        let back = f.cycles_in(time);
        prop_assert!((back - cycles).abs() / cycles < 1e-9);
    }
}
