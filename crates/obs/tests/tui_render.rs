//! Headless determinism tests for the terminal trace explorer: rendering is
//! a pure function of the explorer state, so the same trace, key sequence
//! and frame size must produce byte-identical output — the property the CI
//! `obs-live-smoke` job checks end to end through the `trace_tui` binary.

use tbp_obs::tui::{Explorer, Heartbeat, Key, Pane};
use tbp_obs::{TraceData, TraceReader, TraceWriter, TrackDef, TrackKind};

/// A small but fully featured trace: three temperature tracks, counters and
/// a reconfig event.
fn demo_trace() -> TraceData {
    let defs = vec![
        TrackDef::counter(TrackKind::CoreTemperature, 0, 0.1, "core0.temp_c"),
        TrackDef::counter(TrackKind::CoreTemperature, 1, 0.1, "core1.temp_c"),
        TrackDef::counter(TrackKind::CoreTemperature, 2, 0.1, "core2.temp_c"),
        TrackDef::counter(TrackKind::Migrations, 0, 0.1, "migrations"),
        TrackDef::event(TrackKind::Reconfig, 0, "reconfig"),
    ];
    let mut writer = TraceWriter::new(Vec::new(), &defs).expect("writer builds");
    for i in 0..50 {
        let t = i as f64 * 0.1;
        writer.counter(0, t, 40.0 + (i % 7) as f64);
        writer.counter(1, t, 44.0 + (i % 5) as f64);
        writer.counter(2, t, 48.0 - (i % 3) as f64);
        writer.counter(3, t, (i / 10) as f64);
    }
    writer.event(4, 2.5, "threshold=1.5");
    writer.finish().expect("finish succeeds");
    TraceReader::read(&writer.into_inner()).expect("trace decodes")
}

#[test]
fn identical_states_render_byte_identical_frames() {
    let a = Explorer::new("demo.tbptrace", demo_trace());
    let b = Explorer::new("demo.tbptrace", demo_trace());
    for (w, h) in [(100, 30), (80, 24), (40, 12)] {
        assert_eq!(a.render_string(w, h), b.render_string(w, h), "{w}x{h}");
    }
    // Rendering twice from the same state is also stable (no hidden state).
    assert_eq!(a.render_string(100, 30), a.render_string(100, 30));
}

#[test]
fn the_same_key_sequence_reaches_the_same_frame() {
    let keys = [
        Key::Down,
        Key::Down,
        Key::Tab,
        Key::Char('+'),
        Key::Up,
        Key::Char('3'),
        Key::Char('-'),
    ];
    let drive = || {
        let mut explorer = Explorer::new("demo.tbptrace", demo_trace());
        for key in keys {
            assert!(explorer.handle_key(key), "no quit key in the sequence");
        }
        explorer.render_string(90, 28)
    };
    assert_eq!(drive(), drive());
}

#[test]
fn every_pane_renders_deterministically_with_live_heartbeat() {
    let mut explorer = Explorer::new("demo.tbptrace", demo_trace());
    explorer.set_live(true);
    explorer.set_heartbeat(Some(Heartbeat {
        done: 3,
        total: 12,
        hits: 2,
        misses: 1,
        steps_per_s: 123456.0,
    }));
    for (key, pane) in [
        ('1', Pane::Detail),
        ('2', Pane::Heatmap),
        ('3', Pane::Windows),
    ] {
        assert!(explorer.handle_key(Key::Char(key)));
        assert_eq!(explorer.pane(), pane);
        let first = explorer.render_string(100, 30);
        let second = explorer.render_string(100, 30);
        assert_eq!(first, second, "{pane:?} must render deterministically");
        assert!(first.contains("LIVE"), "{pane:?} shows the live marker");
        assert!(
            first.contains("run 3/12 hits=2 misses=1"),
            "{pane:?} shows the heartbeat"
        );
    }
}

#[test]
fn frames_have_exact_dimensions_and_no_trailing_whitespace() {
    let explorer = Explorer::new("demo.tbptrace", demo_trace());
    let rendered = explorer.render_string(72, 20);
    let lines: Vec<&str> = rendered.lines().collect();
    assert_eq!(lines.len(), 20);
    for line in &lines {
        assert!(line.chars().count() <= 72, "line overflows: {line:?}");
        assert_eq!(line.trim_end(), *line, "right-trimmed: {line:?}");
    }
}
