//! Property tests for the binary trace format: arbitrary track sets and
//! record streams must encode → decode losslessly, and arbitrary corruption
//! must surface as a typed error, never a panic or a silent wrong read.

use proptest::prelude::*;

use tbp_obs::{TraceError, TraceReader, TraceWriter, Track, TrackDef, TrackKind};

/// Builds a random but valid trace from a seeded RNG: a track table of
/// 1..=12 tracks (mixed kinds) and 0..=400 records in a deterministic
/// interleaving. Returns the expected decoded tracks next to the bytes.
fn random_trace(rng: &mut TestRng) -> (Vec<Track>, Vec<u8>) {
    let num_tracks = 1 + rng.below(12) as usize;
    let defs: Vec<TrackDef> = (0..num_tracks)
        .map(|i| {
            let kind = TrackKind::ALL[rng.below(TrackKind::ALL.len() as u64) as usize];
            let interval = if kind.is_event() {
                0.0
            } else {
                rng.next_f64() * 0.5
            };
            TrackDef {
                kind,
                index: i as u32,
                interval_s: interval,
                name: format!("{}{}", kind.label(), i),
            }
        })
        .collect();
    let mut expected: Vec<Track> = defs.iter().cloned().map(Track::new).collect();
    let mut writer = TraceWriter::new(Vec::new(), &defs).expect("writer builds");
    let records = rng.below(401);
    for r in 0..records {
        let id = rng.below(num_tracks as u64) as usize;
        let time = r as f64 * 0.005 + rng.next_f64() * 1e-3;
        if defs[id].kind.is_event() {
            let label = format!("event-{r}-{}", rng.below(1000));
            writer.event(id as u16, time, &label);
            expected[id].times.push(time);
            expected[id].labels.push(label);
        } else {
            let value = rng.next_f64() * 2e3 - 1e3;
            writer.counter(id as u16, time, value);
            expected[id].times.push(time);
            expected[id].values.push(value);
        }
    }
    writer.finish().expect("finish succeeds");
    (expected, writer.into_inner())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_traces_round_trip_losslessly(seed in any::<u64>()) {
        let mut rng = TestRng::deterministic(&format!("roundtrip-{seed}"));
        let (expected, bytes) = random_trace(&mut rng);
        let decoded = TraceReader::read(&bytes).expect("valid trace decodes");
        prop_assert_eq!(decoded.tracks.len(), expected.len());
        for (got, want) in decoded.tracks.iter().zip(&expected) {
            prop_assert_eq!(&got.def, &want.def);
            // Bit-exact: the format stores raw IEEE-754 bits.
            prop_assert_eq!(got.times.len(), want.times.len());
            for (a, b) in got.times.iter().zip(&want.times) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in got.values.iter().zip(&want.values) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            prop_assert_eq!(&got.labels, &want.labels);
        }
    }

    #[test]
    fn encoding_is_deterministic(seed in any::<u64>()) {
        let mut a = TestRng::deterministic(&format!("det-{seed}"));
        let mut b = TestRng::deterministic(&format!("det-{seed}"));
        prop_assert_eq!(random_trace(&mut a).1, random_trace(&mut b).1);
    }

    #[test]
    fn corrupted_bytes_never_panic_and_never_pass(seed in any::<u64>()) {
        let mut rng = TestRng::deterministic(&format!("corrupt-{seed}"));
        let (_, bytes) = random_trace(&mut rng);
        // Flip a random byte past the magic: the reader must reject with a
        // typed error (usually a CRC mismatch) — silent acceptance would
        // only be sound if the flip hit a payload byte *and* kept the CRC,
        // which a single flip cannot.
        if bytes.len() > 9 {
            let at = 8 + rng.below((bytes.len() - 8) as u64) as usize;
            let mut corrupt = bytes.clone();
            corrupt[at] ^= 1 << rng.below(8);
            prop_assert!(TraceReader::read(&corrupt).is_err());
        }
        // Truncate at a random point: typed error, not a short read.
        let cut = rng.below(bytes.len() as u64 + 1) as usize;
        if cut < bytes.len() {
            match TraceReader::read(&bytes[..cut]) {
                Err(
                    TraceError::BadMagic
                    | TraceError::TruncatedTail { .. }
                    | TraceError::MissingHeader
                    | TraceError::MissingEnd,
                ) => {}
                other => panic!("truncation at {cut} gave {other:?}"),
            }
        }
    }
}
