//! Property tests for the metrics registry's serialization: arbitrary
//! snapshots must survive the JSONL round-trip exactly (u64 counters
//! bit-exact, f64 gauges bit-exact including non-finite values), and
//! histogram bucket counts must stay consistent and cumulative-monotone
//! under arbitrary observation streams.

use proptest::prelude::*;

use tbp_obs::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot};

/// A metric name drawn from characters that exercise the JSON string
/// escaping paths: plain ASCII, dots, quotes, backslashes and controls.
fn random_name(rng: &mut TestRng, tag: usize) -> String {
    const ALPHABET: &[char] = &[
        'a', 'b', 'z', '0', '9', '.', '_', '-', ' ', '"', '\\', '\n', '\t', '\u{1}', 'é', '→',
    ];
    let len = 1 + rng.below(12) as usize;
    let mut name: String = (0..len)
        .map(|_| ALPHABET[rng.below(ALPHABET.len() as u64) as usize])
        .collect();
    // Keys must be unique for lookup comparisons to be meaningful.
    name.push_str(&format!("#{tag}"));
    name
}

fn random_f64(rng: &mut TestRng) -> f64 {
    match rng.below(8) {
        0 => f64::INFINITY,
        1 => f64::NEG_INFINITY,
        2 => f64::NAN,
        3 => 0.0,
        4 => -0.0,
        5 => f64::from_bits(rng.next_u64()), // arbitrary bits, may be NaN/subnormal
        _ => (rng.next_f64() - 0.5) * 2e9,
    }
}

/// Builds an arbitrary snapshot by hand (the struct's fields are public) so
/// the round-trip is tested beyond what real registries produce.
fn random_snapshot(rng: &mut TestRng) -> MetricsSnapshot {
    let counters = (0..rng.below(6))
        .map(|i| {
            let value = match rng.below(3) {
                0 => u64::MAX - rng.below(3),
                1 => rng.next_u64(),
                _ => rng.below(1000),
            };
            (random_name(rng, i as usize), value)
        })
        .collect();
    let gauges = (0..rng.below(6))
        .map(|i| (random_name(rng, 100 + i as usize), random_f64(rng)))
        .collect();
    let histograms = (0..rng.below(3))
        .map(|i| {
            let bounds: Vec<f64> = (1..=1 + rng.below(5)).map(|b| b as f64 * 1.5).collect();
            let counts: Vec<u64> = (0..bounds.len() + 1).map(|_| rng.below(1 << 40)).collect();
            let snapshot = HistogramSnapshot {
                bounds,
                counts: counts.clone(),
                sum: random_f64(rng),
                count: counts.iter().sum(),
            };
            (random_name(rng, 200 + i as usize), snapshot)
        })
        .collect();
    MetricsSnapshot {
        elapsed_s: rng.next_f64() * 1e4,
        counters,
        gauges,
        histograms,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// parse(to_jsonl(s)) == s, compared through a second serialization so
    /// NaN gauges (which break direct PartialEq) still round-trip exactly:
    /// equal JSONL lines imply bit-information-equal snapshots for every
    /// value the format can carry.
    #[test]
    fn snapshots_round_trip_through_jsonl(seed in any::<u64>()) {
        let mut rng = TestRng::deterministic(&format!("jsonl-{seed}"));
        let snapshot = random_snapshot(&mut rng);
        let line = snapshot.to_jsonl();
        prop_assert!(!line.contains('\n'), "JSONL must be one line: {line}");
        let parsed = MetricsSnapshot::parse(&line)
            .unwrap_or_else(|e| panic!("emitted line must parse ({e}): {line}"));
        prop_assert_eq!(parsed.to_jsonl(), line);
        // Spot-check the typed accessors survive too (u64 counters exactly).
        for (name, value) in &snapshot.counters {
            prop_assert_eq!(parsed.counter(name), Some(*value));
        }
    }

    /// Registry-produced snapshots (the shapes the emitter actually writes)
    /// also round-trip, and lookups agree with the instruments.
    #[test]
    fn registry_snapshots_round_trip(seed in any::<u64>()) {
        let mut rng = TestRng::deterministic(&format!("registry-{seed}"));
        let registry = MetricsRegistry::new();
        let counter = registry.counter("sim.steps");
        let gauge = registry.gauge("runner.scenarios_total");
        let histogram = registry.histogram("runner.lane_occupancy", &[1.0, 2.0, 4.0]);
        let adds = rng.below(50);
        for _ in 0..adds {
            counter.add(rng.below(1000));
            histogram.observe(rng.next_f64() * 8.0);
        }
        gauge.set(rng.next_f64() * 100.0);
        let snapshot = registry.snapshot(rng.next_f64() * 60.0);
        let parsed = MetricsSnapshot::parse(&snapshot.to_jsonl()).expect("parses");
        prop_assert_eq!(&parsed, &snapshot);
        prop_assert_eq!(parsed.counter("sim.steps"), Some(counter.get()));
        prop_assert_eq!(parsed.gauge("runner.scenarios_total"), Some(gauge.get()));
    }

    /// Bucket invariants under arbitrary observations: per-bucket counts sum
    /// to the total, the cumulative series is monotone non-decreasing and
    /// ends at the total — exactly what the Prometheus `_bucket` exposition
    /// requires.
    #[test]
    fn histogram_buckets_stay_monotone_and_consistent(seed in any::<u64>()) {
        let mut rng = TestRng::deterministic(&format!("hist-{seed}"));
        let registry = MetricsRegistry::new();
        let num_bounds = 1 + rng.below(6) as usize;
        let bounds: Vec<f64> = (0..num_bounds).map(|i| (i as f64 + 1.0) * 2.0).collect();
        let histogram = registry.histogram("h", &bounds);
        let n = rng.below(300);
        for _ in 0..n {
            // Observations straddle every bucket including the overflow one,
            // plus non-finite values which must not corrupt the counts.
            let value = match rng.below(10) {
                0 => f64::INFINITY,
                1 => f64::NAN,
                _ => rng.next_f64() * (bounds.last().unwrap() * 1.5),
            };
            histogram.observe(value);
        }
        let snapshot = registry.snapshot(0.0);
        let (_, h) = &snapshot.histograms[0];
        prop_assert_eq!(h.counts.len(), bounds.len() + 1);
        prop_assert_eq!(h.counts.iter().sum::<u64>(), h.count);
        prop_assert_eq!(h.count, n);
        let cumulative = h.cumulative();
        prop_assert!(cumulative.windows(2).all(|w| w[0] <= w[1]), "monotone: {cumulative:?}");
        prop_assert_eq!(cumulative.last().copied(), Some(h.count));
    }
}
