//! Pure, headless-testable terminal UI for trace exploration.
//!
//! The `trace_tui` binary is a thin terminal shell (raw mode, ANSI clears,
//! key decoding) around this module: all state lives in an [`Explorer`] and
//! all drawing goes through a plain character [`Frame`] with **no escape
//! codes and no timestamps**, so every pane renders deterministically from
//! `(TraceData, Explorer state)` alone and can be snapshot-tested byte for
//! byte (`trace_tui --render-once`, the `obs-live-smoke` CI job).
//!
//! Panes: a track browser (left column, always visible), a selected-track
//! detail chart, a per-core temperature heatmap, and the windowed spatial-σ
//! / migration-rate table from [`crate::stats`]. The bottom rows show a
//! timeline with reconfiguration-event markers and a status bar that, in
//! live mode, carries the metrics-registry heartbeat (run progress, cache
//! hits/misses, aggregate steps/s).

use crate::stats::{series_stats, sparkline, windowed_stats, SPARKS};
use crate::track::{TraceData, Track, TrackKind};

/// Intensity ramp for the heatmap, coldest to hottest.
const HEAT_RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// A fixed-size grid of characters — the only drawing surface the UI has.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    width: usize,
    height: usize,
    cells: Vec<char>,
}

impl Frame {
    /// Creates a space-filled frame. Zero dimensions are clamped to 1.
    pub fn new(width: usize, height: usize) -> Frame {
        let width = width.max(1);
        let height = height.max(1);
        Frame {
            width,
            height,
            cells: vec![' '; width * height],
        }
    }

    /// Frame width in columns.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in rows.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Resets every cell to a space.
    pub fn clear(&mut self) {
        self.cells.fill(' ');
    }

    /// Sets one cell; out-of-bounds writes are clipped.
    pub fn put(&mut self, x: usize, y: usize, ch: char) {
        if x < self.width && y < self.height {
            self.cells[y * self.width + x] = ch;
        }
    }

    /// Writes `text` starting at `(x, y)`, clipping at the right edge.
    pub fn put_str(&mut self, x: usize, y: usize, text: &str) {
        for (i, ch) in text.chars().enumerate() {
            self.put(x + i, y, ch);
        }
    }

    /// Fills row `y` with `ch`.
    pub fn hline(&mut self, y: usize, ch: char) {
        for x in 0..self.width {
            self.put(x, y, ch);
        }
    }

    /// Renders the frame as text: one line per row, right-trimmed, with a
    /// trailing newline. This is the `--render-once` output format.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(self.cells.len() + self.height);
        for y in 0..self.height {
            let row: String = self.cells[y * self.width..(y + 1) * self.width]
                .iter()
                .collect();
            out.push_str(row.trim_end());
            out.push('\n');
        }
        out
    }
}

/// A decoded key press, terminal-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Key {
    /// Arrow up.
    Up,
    /// Arrow down.
    Down,
    /// Arrow left.
    Left,
    /// Arrow right.
    Right,
    /// Tab.
    Tab,
    /// Escape.
    Esc,
    /// Any printable character.
    Char(char),
}

/// Which right-hand pane is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pane {
    /// Selected-track statistics and value chart.
    Detail,
    /// Per-core temperature heatmap over time.
    Heatmap,
    /// Windowed spatial-σ / migration-rate table.
    Windows,
}

impl Pane {
    const ALL: [Pane; 3] = [Pane::Detail, Pane::Heatmap, Pane::Windows];

    fn next(self) -> Pane {
        match self {
            Pane::Detail => Pane::Heatmap,
            Pane::Heatmap => Pane::Windows,
            Pane::Windows => Pane::Detail,
        }
    }

    fn prev(self) -> Pane {
        match self {
            Pane::Detail => Pane::Windows,
            Pane::Heatmap => Pane::Detail,
            Pane::Windows => Pane::Heatmap,
        }
    }

    fn title(self) -> &'static str {
        match self {
            Pane::Detail => "detail",
            Pane::Heatmap => "heatmap",
            Pane::Windows => "windows",
        }
    }
}

/// The live-run heartbeat shown in the status bar, sourced from the metrics
/// registry's JSONL snapshots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Heartbeat {
    /// Scenarios completed so far.
    pub done: u64,
    /// Scenarios in the batch.
    pub total: u64,
    /// Cache hits so far.
    pub hits: u64,
    /// Cache misses (simulated + analytic runs) so far.
    pub misses: u64,
    /// Aggregate simulation steps per second, derived from consecutive
    /// snapshots.
    pub steps_per_s: f64,
}

/// All explorer state: the trace, the selection, the active pane, and the
/// live-mode heartbeat. Pure — no I/O, no clocks.
#[derive(Debug, Clone)]
pub struct Explorer {
    data: TraceData,
    label: String,
    selected: usize,
    pane: Pane,
    window_s: f64,
    live: bool,
    heartbeat: Option<Heartbeat>,
}

impl Explorer {
    /// Creates an explorer over `data`; `label` is shown in the title bar
    /// (typically the trace file name).
    pub fn new(label: impl Into<String>, data: TraceData) -> Explorer {
        Explorer {
            data,
            label: label.into(),
            selected: 0,
            pane: Pane::Detail,
            window_s: 1.0,
            live: false,
            heartbeat: None,
        }
    }

    /// Replaces the trace (live mode: the tailer's accumulated data grows
    /// between renders). The selection is clamped, not reset.
    pub fn set_data(&mut self, data: TraceData) {
        self.data = data;
        self.selected = self.selected.min(self.data.tracks.len().saturating_sub(1));
    }

    /// Marks the explorer as tailing a still-running trace.
    pub fn set_live(&mut self, live: bool) {
        self.live = live;
    }

    /// Updates (or clears) the status-bar heartbeat.
    pub fn set_heartbeat(&mut self, heartbeat: Option<Heartbeat>) {
        self.heartbeat = heartbeat;
    }

    /// Sets the aggregation window for the windows pane, clamped to a sane
    /// range.
    pub fn set_window(&mut self, window_s: f64) {
        if window_s.is_finite() {
            self.window_s = window_s.clamp(0.125, 3600.0);
        }
    }

    /// Current aggregation window, seconds.
    pub fn window_s(&self) -> f64 {
        self.window_s
    }

    /// The active pane.
    pub fn pane(&self) -> Pane {
        self.pane
    }

    /// The selected track, if the trace has any.
    pub fn selected_track(&self) -> Option<&Track> {
        self.data.tracks.get(self.selected)
    }

    /// Applies one key press. Returns `false` when the user asked to quit.
    pub fn handle_key(&mut self, key: Key) -> bool {
        match key {
            Key::Char('q') | Key::Esc => return false,
            Key::Tab | Key::Right => self.pane = self.pane.next(),
            Key::Left => self.pane = self.pane.prev(),
            Key::Char('1') => self.pane = Pane::Detail,
            Key::Char('2') => self.pane = Pane::Heatmap,
            Key::Char('3') => self.pane = Pane::Windows,
            Key::Up | Key::Char('k') => self.selected = self.selected.saturating_sub(1),
            Key::Down | Key::Char('j') => {
                self.selected = (self.selected + 1).min(self.data.tracks.len().saturating_sub(1));
            }
            Key::Char('+') | Key::Char('=') => self.set_window(self.window_s * 2.0),
            Key::Char('-') => self.set_window(self.window_s / 2.0),
            _ => {}
        }
        true
    }

    /// Draws the full UI into `frame`.
    pub fn render_to(&self, frame: &mut Frame) {
        frame.clear();
        let w = frame.width();
        let h = frame.height();
        self.render_title(frame);
        self.render_tabs(frame);
        if h > 5 {
            let body_top = 2;
            let body_bottom = h - 2; // exclusive; timeline at h-2, status at h-1
            let list_width = (w / 3).clamp(16, 34).min(w.saturating_sub(2));
            self.render_track_list(frame, body_top, body_bottom, list_width);
            for y in body_top..body_bottom {
                frame.put(list_width, y, '│');
            }
            let pane_x = list_width + 2;
            let pane_w = w.saturating_sub(pane_x);
            if pane_w > 4 {
                match self.pane {
                    Pane::Detail => self.render_detail(frame, pane_x, body_top, body_bottom),
                    Pane::Heatmap => self.render_heatmap(frame, pane_x, body_top, body_bottom),
                    Pane::Windows => self.render_windows(frame, pane_x, body_top, body_bottom),
                }
            }
            self.render_timeline(frame, h - 2);
        }
        self.render_status(frame, h - 1);
    }

    /// Convenience: renders into a fresh `width`×`height` frame and returns
    /// the text.
    pub fn render_string(&self, width: usize, height: usize) -> String {
        let mut frame = Frame::new(width, height);
        self.render_to(&mut frame);
        frame.render()
    }

    fn render_title(&self, frame: &mut Frame) {
        let (start, end) = self.data.span().unwrap_or((0.0, 0.0));
        let title = format!(
            "tbp trace explorer — {} · {} tracks · {} records · {:.2}s..{:.2}s",
            self.label,
            self.data.tracks.len(),
            self.data.total_records(),
            start,
            end
        );
        frame.put_str(0, 0, &title);
    }

    fn render_tabs(&self, frame: &mut Frame) {
        let mut line = String::new();
        for (i, pane) in Pane::ALL.iter().enumerate() {
            let marker = if *pane == self.pane { '*' } else { ' ' };
            line.push_str(&format!("[{}{marker}] {}  ", i + 1, pane.title()));
        }
        line.push_str(&format!("window={}s", self.window_s));
        frame.put_str(0, 1, &line);
    }

    fn render_track_list(&self, frame: &mut Frame, top: usize, bottom: usize, width: usize) {
        let rows = bottom - top;
        let first = if self.selected >= rows {
            self.selected + 1 - rows
        } else {
            0
        };
        for (row, (idx, track)) in self
            .data
            .tracks
            .iter()
            .enumerate()
            .skip(first)
            .take(rows)
            .enumerate()
        {
            let y = top + row;
            let marker = if idx == self.selected { '>' } else { ' ' };
            frame.put(0, y, marker);
            let name: String = track
                .def
                .name
                .chars()
                .take(width.saturating_sub(8))
                .collect();
            frame.put_str(2, y, &name);
            let count = format!("{:>5}", track.len());
            frame.put_str(width.saturating_sub(count.chars().count()), y, &count);
        }
    }

    fn render_detail(&self, frame: &mut Frame, x: usize, top: usize, bottom: usize) {
        let Some(track) = self.selected_track() else {
            frame.put_str(x, top, "(no tracks)");
            return;
        };
        let pane_w = frame.width() - x;
        frame.put_str(
            x,
            top,
            &format!("{} [{}]", track.def.name, track.def.kind.label()),
        );
        if track.def.kind.is_event() {
            frame.put_str(x, top + 1, &format!("{} events", track.len()));
            let rows = bottom.saturating_sub(top + 2);
            let skip = track.times.len().saturating_sub(rows);
            for (i, (time, label)) in track
                .times
                .iter()
                .zip(&track.labels)
                .skip(skip)
                .take(rows)
                .enumerate()
            {
                frame.put_str(x, top + 2 + i, &format!("{time:>9.2}s  {label}"));
            }
            return;
        }
        let (min, mean, max) = series_stats(&track.values);
        frame.put_str(
            x,
            top + 1,
            &format!(
                "{} samples · min {:.2} · mean {:.2} · max {:.2}",
                track.len(),
                min,
                mean,
                max
            ),
        );
        let chart_top = top + 2;
        let chart_h = bottom.saturating_sub(chart_top);
        if chart_h == 0 || track.values.is_empty() {
            return;
        }
        if chart_h == 1 {
            frame.put_str(x, chart_top, &sparkline(&track.values, pane_w));
            return;
        }
        // Column chart: resample to the pane width, draw each column as a
        // stack of full blocks with an eighth-block cap.
        let cols = pane_w.min(track.values.len()).max(1);
        let span = (max - min).max(1e-12);
        for c in 0..cols {
            let lo = c * track.values.len() / cols;
            let hi = (((c + 1) * track.values.len()) / cols).max(lo + 1);
            let slice = &track.values[lo..hi.min(track.values.len())];
            let v = slice.iter().sum::<f64>() / slice.len() as f64;
            let eighths = (((v - min) / span) * (chart_h * 8) as f64).round() as usize;
            let full = eighths / 8;
            let rem = eighths % 8;
            for r in 0..full.min(chart_h) {
                frame.put(x + c, bottom - 1 - r, '█');
            }
            if rem > 0 && full < chart_h {
                frame.put(x + c, bottom - 1 - full, SPARKS[rem - 1]);
            }
        }
    }

    fn render_heatmap(&self, frame: &mut Frame, x: usize, top: usize, bottom: usize) {
        let temps: Vec<&Track> = self.data.tracks_of(TrackKind::CoreTemperature).collect();
        if temps.is_empty() {
            frame.put_str(x, top, "(no temperature tracks)");
            return;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for track in &temps {
            let (min, _, max) = series_stats(&track.values);
            if !track.values.is_empty() {
                lo = lo.min(min);
                hi = hi.max(max);
            }
        }
        if !lo.is_finite() || !hi.is_finite() {
            frame.put_str(x, top, "(no samples yet)");
            return;
        }
        let span = (hi - lo).max(1e-12);
        frame.put_str(
            x,
            top,
            &format!("core temperature heatmap · {lo:.1}..{hi:.1} °C"),
        );
        let label_w = 8;
        let cols = frame.width().saturating_sub(x + label_w);
        let rows = bottom.saturating_sub(top + 1);
        for (r, track) in temps.iter().take(rows).enumerate() {
            let y = top + 1 + r;
            let name: String = track.def.name.chars().take(label_w - 1).collect();
            frame.put_str(x, y, &name);
            if track.values.is_empty() || cols == 0 {
                continue;
            }
            for c in 0..cols.min(track.values.len()) {
                let lo_i = c * track.values.len() / cols.min(track.values.len());
                let hi_i =
                    (((c + 1) * track.values.len()) / cols.min(track.values.len())).max(lo_i + 1);
                let slice = &track.values[lo_i..hi_i.min(track.values.len())];
                let v = slice.iter().sum::<f64>() / slice.len() as f64;
                let level = (((v - lo) / span) * (HEAT_RAMP.len() - 1) as f64).round() as usize;
                frame.put(
                    x + label_w + c,
                    y,
                    HEAT_RAMP[level.min(HEAT_RAMP.len() - 1)],
                );
            }
        }
    }

    fn render_windows(&self, frame: &mut Frame, x: usize, top: usize, bottom: usize) {
        let windows = windowed_stats(&self.data, self.window_s);
        frame.put_str(
            x,
            top,
            &format!(
                "{:>9} {:>9} {:>12} {:>14}",
                "from_s", "to_s", "sigma_c", "migrations_per_s"
            ),
        );
        let rows = bottom.saturating_sub(top + 1);
        let skip = windows.len().saturating_sub(rows);
        for (i, w) in windows.iter().skip(skip).take(rows).enumerate() {
            frame.put_str(
                x,
                top + 1 + i,
                &format!(
                    "{:>9.2} {:>9.2} {:>12.4} {:>14.3}",
                    w.from_s, w.to_s, w.sigma_c, w.migrations_per_s
                ),
            );
        }
        if windows.is_empty() {
            frame.put_str(x, top + 1, "(no samples yet)");
        }
    }

    fn render_timeline(&self, frame: &mut Frame, y: usize) {
        let Some((start, end)) = self.data.span() else {
            frame.hline(y, '─');
            return;
        };
        frame.hline(y, '─');
        let w = frame.width();
        let span = (end - start).max(1e-12);
        for track in self.data.tracks_of(TrackKind::Reconfig) {
            for &t in &track.times {
                let col = (((t - start) / span) * (w - 1) as f64).round() as usize;
                frame.put(col.min(w - 1), y, '┆');
            }
        }
        let left = format!("{start:.1}s");
        let right = format!("{end:.1}s");
        frame.put_str(0, y, &left);
        frame.put_str(w.saturating_sub(right.chars().count()), y, &right);
    }

    fn render_status(&self, frame: &mut Frame, y: usize) {
        let mut status = if self.live {
            format!("LIVE · {} records", self.data.total_records())
        } else {
            "post-hoc".to_string()
        };
        if let Some(hb) = &self.heartbeat {
            status.push_str(&format!(
                " · run {}/{} hits={} misses={} {:.0} steps/s",
                hb.done, hb.total, hb.hits, hb.misses, hb.steps_per_s
            ));
        }
        status.push_str(" · q quit · tab/1-3 pane · ↑↓ track · +/- window");
        frame.put_str(0, y, &status);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::track::TrackDef;
    use crate::{TraceReader, TraceWriter};

    fn demo_data() -> TraceData {
        let defs = vec![
            TrackDef::counter(TrackKind::CoreTemperature, 0, 0.1, "core0.temp_c"),
            TrackDef::counter(TrackKind::CoreTemperature, 1, 0.1, "core1.temp_c"),
            TrackDef::counter(TrackKind::Migrations, 0, 0.1, "migrations"),
            TrackDef::event(TrackKind::Reconfig, 0, "reconfig"),
        ];
        let mut w = TraceWriter::new(Vec::new(), &defs).unwrap();
        for i in 0..50 {
            let t = i as f64 * 0.1;
            w.counter(0, t, 40.0 + (i % 7) as f64);
            w.counter(1, t, 43.0 + (i % 5) as f64);
            w.counter(2, t, (i / 10) as f64);
        }
        w.event(3, 2.5, "policy=stop-and-go");
        w.finish().unwrap();
        TraceReader::read(&w.into_inner()).unwrap()
    }

    #[test]
    fn frame_clips_and_trims() {
        let mut frame = Frame::new(8, 2);
        frame.put_str(5, 0, "abcdef"); // clipped at width
        frame.put(99, 99, 'x'); // silently ignored
        assert_eq!(frame.render(), "     abc\n\n");
    }

    #[test]
    fn rendering_is_deterministic() {
        let explorer = Explorer::new("demo.tbptrace", demo_data());
        assert_eq!(
            explorer.render_string(100, 30),
            explorer.render_string(100, 30)
        );
    }

    #[test]
    fn every_pane_renders_and_mentions_its_content() {
        let mut explorer = Explorer::new("demo.tbptrace", demo_data());
        let detail = explorer.render_string(100, 30);
        assert!(detail.contains("core0.temp_c"));
        assert!(detail.contains("50 samples"));
        explorer.handle_key(Key::Char('2'));
        let heatmap = explorer.render_string(100, 30);
        assert!(heatmap.contains("core temperature heatmap"));
        explorer.handle_key(Key::Char('3'));
        let windows = explorer.render_string(100, 30);
        assert!(windows.contains("sigma_c"));
        assert!(windows.contains("migrations_per_s"));
    }

    #[test]
    fn keys_drive_selection_pane_and_window() {
        let mut explorer = Explorer::new("demo", demo_data());
        assert_eq!(explorer.pane(), Pane::Detail);
        assert!(explorer.handle_key(Key::Tab));
        assert_eq!(explorer.pane(), Pane::Heatmap);
        assert!(explorer.handle_key(Key::Left));
        assert_eq!(explorer.pane(), Pane::Detail);
        explorer.handle_key(Key::Down);
        explorer.handle_key(Key::Down);
        assert_eq!(explorer.selected_track().unwrap().def.name, "migrations");
        for _ in 0..10 {
            explorer.handle_key(Key::Down); // clamps at the last track
        }
        assert_eq!(explorer.selected_track().unwrap().def.name, "reconfig");
        explorer.handle_key(Key::Char('+'));
        assert_eq!(explorer.window_s(), 2.0);
        for _ in 0..20 {
            explorer.handle_key(Key::Char('-')); // clamps at 0.125
        }
        assert_eq!(explorer.window_s(), 0.125);
        assert!(!explorer.handle_key(Key::Char('q')));
        assert!(!explorer.handle_key(Key::Esc));
    }

    #[test]
    fn live_status_carries_the_heartbeat() {
        let mut explorer = Explorer::new("demo", demo_data());
        explorer.set_live(true);
        explorer.set_heartbeat(Some(Heartbeat {
            done: 3,
            total: 12,
            hits: 2,
            misses: 1,
            steps_per_s: 123456.0,
        }));
        let text = explorer.render_string(120, 30);
        assert!(text.contains("LIVE"));
        assert!(text.contains("run 3/12 hits=2 misses=1 123456 steps/s"));
    }

    #[test]
    fn timeline_marks_reconfig_events() {
        let explorer = Explorer::new("demo", demo_data());
        let text = explorer.render_string(100, 30);
        let timeline = text.lines().rev().nth(1).unwrap();
        assert!(timeline.contains('┆'), "timeline was: {timeline}");
        assert!(timeline.starts_with("0.0s"));
    }

    #[test]
    fn tiny_frames_do_not_panic() {
        let explorer = Explorer::new("demo", demo_data());
        for (w, h) in [(1, 1), (3, 2), (10, 4), (20, 6)] {
            let _ = explorer.render_string(w, h);
        }
    }

    #[test]
    fn empty_trace_renders() {
        let explorer = Explorer::new("empty", TraceData::default());
        let text = explorer.render_string(80, 24);
        assert!(text.contains("0 tracks"));
    }
}
