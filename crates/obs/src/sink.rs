//! Streaming sink abstraction over trace consumers.
//!
//! A [`TraceSink`] is what the simulator feeds: it learns the track table
//! once ([`begin`](TraceSink::begin)) and then receives counter samples and
//! events. The hot-path methods return `()` — a sink latches failures
//! internally and surfaces them from [`finish`](TraceSink::finish) — so the
//! simulation step loop stays branch-light and allocation-free regardless of
//! which sink is attached.

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::format::{TraceError, TraceWriter};
use crate::track::{TraceData, Track, TrackDef};

/// A consumer of trace records.
pub trait TraceSink: Send {
    /// Declares the track table. Called exactly once, before any record;
    /// later `track` arguments are positions in `tracks`.
    fn begin(&mut self, tracks: &[TrackDef]);

    /// Records a counter sample. Must not allocate once `begin` ran.
    fn counter(&mut self, track: u16, time_s: f64, value: f64);

    /// Records a labelled event (rare; may allocate).
    fn event(&mut self, track: u16, time_s: f64, label: &str);

    /// Flushes and returns any failure latched by the record methods.
    ///
    /// # Errors
    ///
    /// Implementation-specific; file-backed sinks surface I/O errors here.
    fn finish(&mut self) -> Result<(), TraceError>;
}

/// A sink that discards everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn begin(&mut self, _tracks: &[TrackDef]) {}
    fn counter(&mut self, _track: u16, _time_s: f64, _value: f64) {}
    fn event(&mut self, _track: u16, _time_s: f64, _label: &str) {}
    fn finish(&mut self) -> Result<(), TraceError> {
        Ok(())
    }
}

/// Per-track state of a [`MemorySink`].
#[derive(Debug, Clone)]
struct TrackBuf {
    track: Track,
    /// Accept every `stride`-th offered sample (doubled on decimation).
    stride: u64,
    /// Samples offered so far (accepted or not).
    offered: u64,
}

/// An in-memory sink with optional bounded capacity per track.
///
/// With a capacity set, a full counter track is decimated in place —
/// every other sample is discarded and the acceptance stride doubles — so
/// arbitrarily long runs keep *full-span* coverage at progressively coarser
/// resolution instead of silently losing their tail.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    bufs: Vec<TrackBuf>,
    /// 0 = unbounded.
    capacity_per_track: usize,
    decimations: u64,
}

impl MemorySink {
    /// An unbounded in-memory sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// A sink keeping at most `capacity` samples per counter track (events
    /// are capped at the same count, without decimation).
    pub fn with_capacity_per_track(capacity: usize) -> Self {
        MemorySink {
            bufs: Vec::new(),
            capacity_per_track: capacity,
            decimations: 0,
        }
    }

    /// The accumulated trace so far.
    pub fn data(&self) -> TraceData {
        TraceData {
            tracks: self.bufs.iter().map(|b| b.track.clone()).collect(),
        }
    }

    /// Consumes the sink into the accumulated trace.
    pub fn into_data(self) -> TraceData {
        TraceData {
            tracks: self.bufs.into_iter().map(|b| b.track).collect(),
        }
    }

    /// Number of keep-every-other decimation passes performed.
    pub fn decimations(&self) -> u64 {
        self.decimations
    }
}

impl TraceSink for MemorySink {
    fn begin(&mut self, tracks: &[TrackDef]) {
        self.bufs = tracks
            .iter()
            .map(|def| TrackBuf {
                track: Track::new(def.clone()),
                stride: 1,
                offered: 0,
            })
            .collect();
    }

    fn counter(&mut self, track: u16, time_s: f64, value: f64) {
        let cap = self.capacity_per_track;
        let Some(buf) = self.bufs.get_mut(track as usize) else {
            return;
        };
        let offered = buf.offered;
        buf.offered += 1;
        if offered % buf.stride != 0 {
            return;
        }
        if cap > 0 && buf.track.times.len() >= cap {
            keep_every_other(&mut buf.track.times);
            keep_every_other(&mut buf.track.values);
            buf.stride *= 2;
            self.decimations += 1;
            // The sample that triggered the decimation may now sit off the
            // coarser grid; drop it rather than record an irregular point.
            if offered % buf.stride != 0 {
                return;
            }
        }
        buf.track.times.push(time_s);
        buf.track.values.push(value);
    }

    fn event(&mut self, track: u16, time_s: f64, label: &str) {
        let cap = self.capacity_per_track;
        let Some(buf) = self.bufs.get_mut(track as usize) else {
            return;
        };
        if cap > 0 && buf.track.times.len() >= cap {
            return;
        }
        buf.track.times.push(time_s);
        buf.track.labels.push(label.to_string());
    }

    fn finish(&mut self) -> Result<(), TraceError> {
        Ok(())
    }
}

/// Keeps elements at even indices (0, 2, 4, …), preserving the series start.
fn keep_every_other<T>(v: &mut Vec<T>) {
    let mut i = 0usize;
    v.retain(|_| {
        let keep = i.is_multiple_of(2);
        i += 1;
        keep
    });
}

/// A sink streaming the binary format into any writer.
///
/// The [`TraceWriter`] is constructed lazily at [`begin`](TraceSink::begin)
/// (that is when the track table becomes known); from then on every record
/// goes through the writer's preallocated chunk buffer without allocating.
#[derive(Debug)]
pub struct StreamSink<W: Write + Send> {
    out: Option<W>,
    writer: Option<TraceWriter<W>>,
    error: Option<TraceError>,
}

impl<W: Write + Send> StreamSink<W> {
    /// Creates a sink that will stream into `out`.
    pub fn new(out: W) -> Self {
        StreamSink {
            out: Some(out),
            writer: None,
            error: None,
        }
    }

    /// Consumes the sink and returns the underlying writer, if any (call
    /// [`finish`](TraceSink::finish) first to flush).
    pub fn into_inner(mut self) -> Option<W> {
        self.writer
            .take()
            .map(TraceWriter::into_inner)
            .or_else(|| self.out.take())
    }
}

impl<W: Write + Send> TraceSink for StreamSink<W> {
    fn begin(&mut self, tracks: &[TrackDef]) {
        let Some(out) = self.out.take() else {
            return;
        };
        match TraceWriter::new(out, tracks) {
            Ok(writer) => self.writer = Some(writer),
            Err(e) => self.error = Some(e),
        }
    }

    fn counter(&mut self, track: u16, time_s: f64, value: f64) {
        if let Some(writer) = &mut self.writer {
            writer.counter(track, time_s, value);
        }
    }

    fn event(&mut self, track: u16, time_s: f64, label: &str) {
        if let Some(writer) = &mut self.writer {
            writer.event(track, time_s, label);
        }
    }

    fn finish(&mut self) -> Result<(), TraceError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        match &mut self.writer {
            Some(writer) => writer.finish(),
            None => Ok(()),
        }
    }
}

/// A file-backed [`StreamSink`].
///
/// The file is created eagerly (so configuration errors fail fast) and the
/// trace is finalised on [`finish`](TraceSink::finish); dropping an
/// unfinished sink finalises best-effort so an early-exiting caller still
/// leaves a complete, readable trace behind when the writes succeed.
#[derive(Debug)]
pub struct FileSink {
    path: PathBuf,
    inner: StreamSink<File>,
    finished: bool,
}

impl FileSink {
    /// Creates (truncating) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the [`File::create`] error.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<FileSink> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(FileSink {
            path,
            inner: StreamSink::new(file),
            finished: false,
        })
    }

    /// The path the trace is written to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl TraceSink for FileSink {
    fn begin(&mut self, tracks: &[TrackDef]) {
        self.inner.begin(tracks);
    }

    fn counter(&mut self, track: u16, time_s: f64, value: f64) {
        self.inner.counter(track, time_s, value);
    }

    fn event(&mut self, track: u16, time_s: f64, label: &str) {
        self.inner.event(track, time_s, label);
    }

    fn finish(&mut self) -> Result<(), TraceError> {
        self.finished = true;
        self.inner.finish()
    }
}

impl Drop for FileSink {
    fn drop(&mut self) {
        if !self.finished {
            let _ = self.inner.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceReader;
    use crate::track::TrackKind;

    fn defs() -> Vec<TrackDef> {
        vec![
            TrackDef::counter(TrackKind::CoreTemperature, 0, 0.1, "core0.temp_c"),
            TrackDef::event(TrackKind::Reconfig, 0, "reconfig"),
        ]
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut sink = NullSink;
        sink.begin(&defs());
        sink.counter(0, 0.0, 1.0);
        sink.event(1, 0.0, "x");
        assert!(sink.finish().is_ok());
    }

    #[test]
    fn memory_sink_accumulates() {
        let mut sink = MemorySink::new();
        sink.begin(&defs());
        sink.counter(0, 0.0, 40.0);
        sink.counter(0, 0.1, 41.0);
        sink.counter(9, 0.1, 99.0); // unknown track: ignored
        sink.event(1, 0.05, "threshold=2");
        assert!(sink.finish().is_ok());
        let data = sink.into_data();
        assert_eq!(data.tracks[0].values, [40.0, 41.0]);
        assert_eq!(data.tracks[1].labels, ["threshold=2"]);
    }

    #[test]
    fn memory_sink_decimates_instead_of_dropping_the_tail() {
        let mut sink = MemorySink::with_capacity_per_track(8);
        sink.begin(&[TrackDef::counter(TrackKind::QueueDepth, 0, 1.0, "q0")]);
        for i in 0..64 {
            sink.counter(0, i as f64, i as f64);
        }
        let data = sink.data();
        let track = &data.tracks[0];
        // Bounded, decimated, but covering the full span: the first sample
        // is t=0 and the last kept sample is near the end of the run.
        assert!(track.len() <= 8, "len {} exceeds capacity", track.len());
        assert!(sink.decimations() >= 3);
        assert_eq!(track.times[0], 0.0);
        assert!(*track.times.last().unwrap() >= 48.0);
        // The kept grid is uniform: consecutive spacing is constant.
        let d0 = track.times[1] - track.times[0];
        for w in track.times.windows(2) {
            assert_eq!(w[1] - w[0], d0);
        }
    }

    #[test]
    fn stream_sink_produces_a_readable_trace() {
        let mut sink = StreamSink::new(Vec::new());
        sink.begin(&defs());
        sink.counter(0, 0.0, 39.5);
        sink.event(1, 0.2, "policy=mig");
        sink.finish().unwrap();
        let bytes = sink.into_inner().unwrap();
        let data = TraceReader::read(&bytes).unwrap();
        assert_eq!(data.total_records(), 2);
        assert_eq!(data.tracks[1].labels, ["policy=mig"]);
    }

    #[test]
    fn stream_sink_without_begin_finishes_cleanly() {
        let mut sink = StreamSink::new(Vec::new());
        sink.counter(0, 0.0, 1.0); // before begin: ignored
        assert!(sink.finish().is_ok());
        // No magic was ever written.
        assert_eq!(sink.into_inner().unwrap().len(), 0);
    }

    #[test]
    fn file_sink_writes_and_finalises_on_drop() {
        let dir = std::env::temp_dir().join("tbp-obs-sink-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("drop.tbptrace");
        {
            let mut sink = FileSink::create(&path).unwrap();
            assert_eq!(sink.path(), path.as_path());
            sink.begin(&defs());
            sink.counter(0, 0.0, 42.0);
            // Dropped without finish: the Drop impl finalises the file.
        }
        let data = TraceReader::read_file(&path).unwrap();
        assert_eq!(data.tracks[0].values, [42.0]);
        std::fs::remove_file(&path).unwrap();
    }
}
