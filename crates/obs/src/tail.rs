//! Live tailing of an in-progress `.tbptrace` file.
//!
//! A [`TraceTailer`] attaches to a trace file while a simulation is still
//! writing it and decodes whatever *complete* chunks have landed so far.
//! The format's per-chunk CRC framing makes this safe: a chunk either
//! verifies in full or is not consumed at all, so a torn in-progress tail
//! (the writer paused mid-`write_all`) is simply carried over to the next
//! [`poll`](TraceTailer::poll) instead of being reported as corruption.
//! Real corruption — a bad magic, a CRC mismatch on a *complete* chunk, a
//! malformed payload — still surfaces as the same typed [`TraceError`]s a
//! post-hoc [`TraceReader`](crate::TraceReader) read would produce.
//!
//! Because the tailer drives the exact decoder the one-shot reader uses,
//! the data it accumulates over any number of polls is byte-identical to a
//! full read of the finished file (pinned by the concurrent writer/tailer
//! integration test in `tbp-core`).

use std::fs::File;
use std::io::Read;
use std::path::Path;
use std::time::{Duration, Instant};

use crate::format::{frame_chunk, ChunkDecoder, TraceError, MAGIC};
use crate::track::TraceData;

/// What one [`TraceTailer::poll`] observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailProgress {
    /// Records decoded by this poll (complete chunks that landed since the
    /// previous poll).
    pub new_records: u64,
    /// Whether the end chunk has been decoded — the trace is complete and
    /// further polls will make no progress.
    pub ended: bool,
    /// Bytes read from the file but not yet decodable: a torn in-progress
    /// chunk the writer has only partially flushed.
    pub pending_bytes: usize,
}

/// Follow-mode reader over a trace file that is still being written.
#[derive(Debug)]
pub struct TraceTailer {
    file: File,
    /// Bytes read from the file but not yet consumed by the decoder (at
    /// most one torn chunk plus whatever landed since the last poll).
    buf: Vec<u8>,
    /// Absolute file offset of `buf[0]` — keeps [`TraceError::TruncatedTail`]
    /// offsets meaningful even though consumed bytes are dropped.
    buf_offset: usize,
    magic_ok: bool,
    decoder: ChunkDecoder,
    /// Give up ([`TraceError::WriterStalled`]) once this much wall time
    /// passes without the file growing or a record decoding. `None` (the
    /// default) polls forever.
    stall_timeout: Option<Duration>,
    /// When the file last grew or a record last decoded.
    last_progress: Instant,
}

impl TraceTailer {
    /// Attaches to the trace file at `path`.
    ///
    /// The file may be empty or mid-write; nothing is validated until
    /// [`poll`](Self::poll) sees enough bytes.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] when the file cannot be opened (e.g. the writer
    /// has not created it yet — callers typically retry).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        Ok(TraceTailer {
            file: File::open(path)?,
            buf: Vec::new(),
            buf_offset: 0,
            magic_ok: false,
            decoder: ChunkDecoder::new(),
            stall_timeout: None,
            last_progress: Instant::now(),
        })
    }

    /// Configures a stall timeout (builder-style): when no new bytes arrive
    /// and no record decodes for `timeout` of wall time — and the trace has
    /// not ended — [`poll`](Self::poll) returns
    /// [`TraceError::WriterStalled`] instead of letting the caller poll a
    /// dead writer forever. The clock starts now and rearms on every byte
    /// of progress, so a merely *slow* writer is never misreported.
    pub fn with_stall_timeout(mut self, timeout: Duration) -> Self {
        self.stall_timeout = Some(timeout);
        self.last_progress = Instant::now();
        self
    }

    /// Reads newly appended bytes and decodes every complete chunk among
    /// them. An incomplete final chunk is left pending for the next poll —
    /// it is *not* an error here, unlike a one-shot read.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] for read failures, [`TraceError::BadMagic`] once
    /// eight bytes exist and are not the trace magic, and any decode error
    /// a complete-but-invalid chunk produces ([`TraceError::CrcMismatch`],
    /// [`TraceError::Malformed`], …). Decode errors are fatal: the tailer
    /// stays in the failed state and further polls re-fail. With a
    /// [`with_stall_timeout`](Self::with_stall_timeout) configured,
    /// [`TraceError::WriterStalled`] once the window elapses without
    /// progress.
    pub fn poll(&mut self) -> Result<TailProgress, TraceError> {
        let mut scratch = [0u8; 64 * 1024];
        let mut grew = false;
        loop {
            let n = self.file.read(&mut scratch)?;
            if n == 0 {
                break;
            }
            grew = true;
            self.buf.extend_from_slice(&scratch[..n]);
        }
        let before = self.decoder.decoded;
        let mut pos = 0usize;
        if !self.magic_ok {
            if self.buf.len() < MAGIC.len() {
                return self.finish_poll(before, grew);
            }
            if &self.buf[..MAGIC.len()] != MAGIC {
                return Err(TraceError::BadMagic);
            }
            self.magic_ok = true;
            pos = MAGIC.len();
        }
        loop {
            if self.decoder.ended {
                if pos < self.buf.len() {
                    return Err(TraceError::Malformed {
                        chunk: self.decoder.chunk_index,
                        what: "data after the end chunk",
                    });
                }
                break;
            }
            // Disjoint borrows: the payload borrows `buf`, the decoder
            // mutates itself.
            let (buf, decoder) = (&self.buf, &mut self.decoder);
            match frame_chunk(buf, pos, decoder.chunk_index)
                .map_err(|e| offset_error(e, self.buf_offset))?
            {
                Some((payload, next)) => {
                    decoder.accept(payload)?;
                    pos = next;
                }
                None => break,
            }
        }
        if pos > 0 {
            self.buf.drain(..pos);
            self.buf_offset += pos;
        }
        self.finish_poll(before, grew)
    }

    /// Rearms or checks the stall clock and packages the poll's progress.
    /// Progress is any of: the file grew, a record decoded, the end chunk
    /// landed. Anything else with an armed, elapsed timeout is a stall.
    fn finish_poll(&mut self, decoded_before: u64, grew: bool) -> Result<TailProgress, TraceError> {
        let progress = self.progress(decoded_before);
        if grew || progress.new_records > 0 || progress.ended {
            self.last_progress = Instant::now();
        } else if let Some(timeout) = self.stall_timeout {
            if self.last_progress.elapsed() >= timeout {
                return Err(TraceError::WriterStalled {
                    timeout_ms: timeout.as_millis() as u64,
                    pending_bytes: progress.pending_bytes,
                });
            }
        }
        Ok(progress)
    }

    fn progress(&self, decoded_before: u64) -> TailProgress {
        TailProgress {
            new_records: self.decoder.decoded - decoded_before,
            ended: self.decoder.ended,
            pending_bytes: self.buf.len(),
        }
    }

    /// The data accumulated so far — grows monotonically across polls and,
    /// once [`ended`](Self::ended), equals a post-hoc full read.
    pub fn data(&self) -> &TraceData {
        self.decoder.data()
    }

    /// Whether the end chunk has been decoded.
    pub fn ended(&self) -> bool {
        self.decoder.ended
    }

    /// Records decoded so far.
    pub fn records(&self) -> u64 {
        self.decoder.decoded
    }

    /// Consumes the tailer and returns the accumulated data.
    ///
    /// # Errors
    ///
    /// [`TraceError::MissingEnd`] (or [`TraceError::MissingHeader`]) when
    /// the trace never completed — the writer died or is still running.
    pub fn into_data(self) -> Result<TraceData, TraceError> {
        if !self.decoder.ended {
            return Err(self.decoder.missing_end());
        }
        Ok(self.decoder.into_data())
    }
}

/// Rebases a buffer-relative [`TraceError::TruncatedTail`] offset to the
/// absolute file offset (the tailer drops consumed bytes from its buffer).
fn offset_error(e: TraceError, base: usize) -> TraceError {
    match e {
        TraceError::TruncatedTail { chunk, offset } => TraceError::TruncatedTail {
            chunk,
            offset: offset + base,
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use std::io::Write;

    use super::*;
    use crate::format::TraceWriter;
    use crate::track::{TrackDef, TrackKind};
    use crate::TraceReader;

    fn demo_bytes(records: usize) -> Vec<u8> {
        let defs = vec![TrackDef::counter(
            TrackKind::CoreTemperature,
            0,
            0.01,
            "core0.temp_c",
        )];
        let mut w = TraceWriter::new(Vec::new(), &defs).unwrap();
        for i in 0..records {
            w.counter(0, i as f64 * 0.01, 40.0 + i as f64);
        }
        w.finish().unwrap();
        w.into_inner()
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tbp_tail_{name}_{}.tbptrace", std::process::id()))
    }

    #[test]
    fn tailing_a_growing_file_decodes_incrementally_and_matches_full_read() {
        let bytes = demo_bytes(5_000);
        let path = temp_path("grow");
        let mut file = std::fs::File::create(&path).unwrap();
        let mut tailer = TraceTailer::open(&path).unwrap();

        // Feed the file in awkward slices (including mid-magic and
        // mid-chunk cuts); the tailer must never error and must finish
        // with exactly the full-read data.
        let mut progressed = 0;
        for piece in bytes.chunks(911) {
            file.write_all(piece).unwrap();
            file.flush().unwrap();
            let p = tailer.poll().unwrap();
            if p.new_records > 0 {
                progressed += 1;
            }
        }
        let p = tailer.poll().unwrap();
        assert!(p.ended);
        assert_eq!(p.pending_bytes, 0);
        assert!(progressed > 1, "tailer decoded everything in one gulp");
        assert_eq!(tailer.records(), 5_000);
        let full = TraceReader::read(&bytes).unwrap();
        assert_eq!(tailer.data(), &full);
        assert_eq!(tailer.into_data().unwrap(), full);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_pending_not_an_error() {
        let bytes = demo_bytes(10);
        let path = temp_path("torn");
        let mut file = std::fs::File::create(&path).unwrap();
        file.write_all(&bytes[..bytes.len() - 5]).unwrap();
        file.flush().unwrap();
        let mut tailer = TraceTailer::open(&path).unwrap();
        let p = tailer.poll().unwrap();
        assert!(!p.ended);
        assert!(p.pending_bytes > 0, "torn end chunk stays pending");
        // A premature into_data reports the incompleteness.
        assert!(matches!(
            tailer.into_data(),
            Err(TraceError::MissingEnd | TraceError::MissingHeader)
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dead_writer_mid_chunk_trips_the_stall_timeout() {
        let bytes = demo_bytes(200);
        let path = temp_path("stall");
        let mut file = std::fs::File::create(&path).unwrap();
        // The writer lands some complete chunks plus a torn one, then dies.
        file.write_all(&bytes[..bytes.len() - 7]).unwrap();
        file.flush().unwrap();

        let mut tailer = TraceTailer::open(&path)
            .unwrap()
            .with_stall_timeout(std::time::Duration::from_millis(60));
        let p = tailer.poll().unwrap();
        assert!(!p.ended);
        assert!(p.pending_bytes > 0, "torn final chunk stays pending");

        // Idle polls inside the window are fine; once the window elapses
        // with no growth the follower reports the writer dead.
        let err = loop {
            match tailer.poll() {
                Ok(p) => {
                    assert_eq!(p.new_records, 0);
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                Err(e) => break e,
            }
        };
        assert!(
            matches!(
                err,
                TraceError::WriterStalled {
                    timeout_ms: 60,
                    pending_bytes
                } if pending_bytes > 0
            ),
            "expected WriterStalled, got {err:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resumed_writer_rearms_the_stall_clock() {
        let bytes = demo_bytes(200);
        let path = temp_path("stall-rearm");
        let mut file = std::fs::File::create(&path).unwrap();
        let half = bytes.len() / 2;
        file.write_all(&bytes[..half]).unwrap();
        file.flush().unwrap();

        let mut tailer = TraceTailer::open(&path)
            .unwrap()
            .with_stall_timeout(std::time::Duration::from_millis(80));
        tailer.poll().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));
        tailer.poll().unwrap(); // inside the window: no error

        // The writer comes back: progress rearms the clock and the trace
        // finishes without ever reporting a stall.
        std::thread::sleep(std::time::Duration::from_millis(50));
        file.write_all(&bytes[half..]).unwrap();
        file.flush().unwrap();
        let p = tailer.poll().unwrap();
        assert!(p.ended);
        assert_eq!(tailer.records(), 200);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn complete_chunk_corruption_is_still_fatal() {
        let mut bytes = demo_bytes(10);
        let last = bytes.len() - 3;
        bytes[last] ^= 0x40; // inside the (complete) end chunk's payload
        let path = temp_path("corrupt");
        std::fs::write(&path, &bytes).unwrap();
        let mut tailer = TraceTailer::open(&path).unwrap();
        assert!(matches!(
            tailer.poll(),
            Err(TraceError::CrcMismatch { .. } | TraceError::CountMismatch { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wrong_magic_is_rejected_once_enough_bytes_exist() {
        let path = temp_path("magic");
        std::fs::write(&path, b"NOTTRACE....").unwrap();
        let mut tailer = TraceTailer::open(&path).unwrap();
        assert!(matches!(tailer.poll(), Err(TraceError::BadMagic)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn data_after_the_end_chunk_is_rejected() {
        let mut bytes = demo_bytes(3);
        bytes.extend_from_slice(b"junk");
        let path = temp_path("after");
        std::fs::write(&path, &bytes).unwrap();
        let mut tailer = TraceTailer::open(&path).unwrap();
        assert!(matches!(
            tailer.poll(),
            Err(TraceError::Malformed {
                what: "data after the end chunk",
                ..
            })
        ));
        let _ = std::fs::remove_file(&path);
    }
}
