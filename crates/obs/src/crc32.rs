//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven.
//!
//! Self-contained for the same reason the scenario hasher carries its own
//! SHA-256: the workspace builds offline with no external crates. The
//! reflected table-driven form below is the textbook byte-at-a-time variant;
//! it processes a 64 KiB chunk in well under the cost of writing it to disk.

/// The 256-entry lookup table for the reflected polynomial `0xEDB88320`.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                0xEDB8_8320 ^ (crc >> 1)
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `data` (IEEE, as used by zip/gzip/PNG).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = TABLE[((crc ^ byte as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"some chunk payload");
        let mut flipped = b"some chunk payload".to_vec();
        flipped[3] ^= 0x01;
        assert_ne!(crc32(&flipped), base);
    }
}
