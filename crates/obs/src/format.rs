//! The chunked binary trace format.
//!
//! ```text
//! file   := magic chunk*
//! magic  := "TBPTRC01" (8 bytes)
//! chunk  := payload_len:u32le crc32(payload):u32le payload
//! payload:= tag:u8 body
//!
//! tag 0x01 (header, exactly once, first):
//!   version:u32le track_count:u32le track*
//!   track := kind:u8 index:u32le interval_s:f64le name_len:u16le name:utf8
//! tag 0x02 (samples, any number):
//!   record*
//!   record := 0x01 track:u16le time_s:f64le value:f64le        (counter)
//!           | 0x02 track:u16le time_s:f64le len:u16le label    (event)
//! tag 0xFF (end, exactly once, last):
//!   total_records:u64le
//! ```
//!
//! All integers and floats are little-endian fixed width. Every chunk is
//! independently CRC-checked, so corruption is detected at chunk granularity
//! and a file truncated mid-chunk (or missing its end chunk entirely) is
//! rejected with a typed error rather than silently read short.

use std::fmt;
use std::io::{self, Write};
use std::path::Path;

use crate::crc32::crc32;
use crate::track::{TraceData, Track, TrackDef, TrackKind};

/// Leading magic: format name plus a human-readable major version.
pub const MAGIC: &[u8; 8] = b"TBPTRC01";
/// Version written into (and required from) the header chunk.
pub const FORMAT_VERSION: u32 = 1;

const TAG_HEADER: u8 = 0x01;
const TAG_SAMPLES: u8 = 0x02;
const TAG_END: u8 = 0xFF;

const REC_COUNTER: u8 = 0x01;
const REC_EVENT: u8 = 0x02;

/// Samples chunks are flushed once they reach this size.
const CHUNK_CAPACITY: usize = 64 * 1024;
/// Event labels are truncated (on a char boundary) to this many bytes so one
/// record can never outgrow a chunk.
const MAX_LABEL_BYTES: usize = 4096;
/// Upper bound a reader accepts for one chunk's payload length: large enough
/// for any header we could write, small enough to reject garbage lengths
/// from a corrupt size field before allocating.
const MAX_CHUNK_BYTES: usize = 16 * 1024 * 1024;

const COUNTER_RECORD_BYTES: usize = 1 + 2 + 8 + 8;

/// Errors produced while writing or reading a binary trace.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// The file does not start with the trace magic.
    BadMagic,
    /// The byte stream ends with an incomplete final chunk. Distinct from
    /// [`CrcMismatch`](Self::CrcMismatch): the bytes that *are* present are
    /// not known to be corrupt — a writer may simply still be appending, so
    /// a follow-mode reader treats this as "wait for more data" rather than
    /// as a fatal decode error.
    TruncatedTail {
        /// Zero-based index of the incomplete chunk.
        chunk: usize,
        /// Byte offset (from the start of the stream) of the incomplete
        /// chunk's frame.
        offset: usize,
    },
    /// A chunk's payload does not match its stored CRC-32.
    CrcMismatch {
        /// Zero-based index of the corrupt chunk.
        chunk: usize,
    },
    /// The header declares a format version this reader does not support.
    UnsupportedVersion(u32),
    /// A chunk payload is structurally invalid.
    Malformed {
        /// Zero-based index of the offending chunk.
        chunk: usize,
        /// What was wrong.
        what: &'static str,
    },
    /// The first chunk was not a header chunk.
    MissingHeader,
    /// A record referenced a track id the header did not declare.
    UnknownTrack {
        /// Zero-based index of the offending chunk.
        chunk: usize,
        /// The undeclared track id.
        track: u16,
    },
    /// The stream ended without an end chunk (truncated at a chunk
    /// boundary, which per-chunk CRCs alone cannot detect).
    MissingEnd,
    /// The end chunk's declared record count disagrees with the records
    /// actually decoded.
    CountMismatch {
        /// Count declared by the end chunk.
        declared: u64,
        /// Count decoded from the samples chunks.
        decoded: u64,
    },
    /// A follow-mode reader with a stall timeout saw no new bytes, records,
    /// or end chunk for longer than the configured window — the writer is
    /// presumed dead (crashed or wedged) and the trace will never complete.
    WriterStalled {
        /// The configured stall window, in milliseconds.
        timeout_ms: u64,
        /// Bytes of torn in-progress chunk pending when the follower gave
        /// up (zero when the writer died cleanly between chunks).
        pending_bytes: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic => write!(f, "not a TBP trace (bad magic)"),
            TraceError::TruncatedTail { chunk, offset } => {
                write!(
                    f,
                    "trace ends with an incomplete chunk {chunk} starting at byte offset \
                     {offset} (torn tail: writer still running, or file cut short)"
                )
            }
            TraceError::CrcMismatch { chunk } => {
                write!(f, "CRC mismatch in chunk {chunk} (corrupt trace)")
            }
            TraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace format version {v}")
            }
            TraceError::Malformed { chunk, what } => {
                write!(f, "malformed chunk {chunk}: {what}")
            }
            TraceError::MissingHeader => write!(f, "trace does not start with a header chunk"),
            TraceError::UnknownTrack { chunk, track } => {
                write!(f, "chunk {chunk} references undeclared track {track}")
            }
            TraceError::MissingEnd => {
                write!(
                    f,
                    "trace ends without an end chunk (truncated at a chunk boundary)"
                )
            }
            TraceError::CountMismatch { declared, decoded } => write!(
                f,
                "end chunk declares {declared} records but {decoded} were decoded"
            ),
            TraceError::WriterStalled {
                timeout_ms,
                pending_bytes,
            } => write!(
                f,
                "trace writer stalled: no progress for {timeout_ms} ms and no end chunk \
                 ({pending_bytes} bytes of torn chunk pending); writer presumed dead"
            ),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Streams records into the chunked binary format.
///
/// Records are encoded into a preallocated chunk buffer and flushed to the
/// underlying writer whenever the buffer reaches `CHUNK_CAPACITY` (64 KiB); the
/// record methods therefore never allocate and never return errors — an I/O
/// failure is latched and surfaced by [`finish`](Self::finish). This is what
/// lets a file-backed sink sit inside the simulator's zero-allocation step
/// loop.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    chunk: Vec<u8>,
    records: u64,
    finished: bool,
    error: Option<TraceError>,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer over `out` and immediately writes the magic and the
    /// header chunk declaring `tracks` (record `track` ids are positions in
    /// this slice).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] when the magic or header cannot be
    /// written, and [`TraceError::Malformed`] for more than `u16::MAX`
    /// tracks or a track name longer than 65 535 bytes.
    pub fn new(mut out: W, tracks: &[TrackDef]) -> Result<Self, TraceError> {
        if tracks.len() > u16::MAX as usize {
            return Err(TraceError::Malformed {
                chunk: 0,
                what: "more than 65535 tracks",
            });
        }
        let mut payload = Vec::with_capacity(16 + tracks.len() * 32);
        payload.push(TAG_HEADER);
        payload.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        payload.extend_from_slice(&(tracks.len() as u32).to_le_bytes());
        for track in tracks {
            let name = track.name.as_bytes();
            if name.len() > u16::MAX as usize {
                return Err(TraceError::Malformed {
                    chunk: 0,
                    what: "track name longer than 65535 bytes",
                });
            }
            payload.push(track.kind.as_u8());
            payload.extend_from_slice(&track.index.to_le_bytes());
            payload.extend_from_slice(&track.interval_s.to_le_bytes());
            payload.extend_from_slice(&(name.len() as u16).to_le_bytes());
            payload.extend_from_slice(name);
        }
        out.write_all(MAGIC)?;
        write_chunk(&mut out, &payload)?;
        Ok(TraceWriter {
            out,
            // Flushed *before* overflowing, so this capacity is never
            // exceeded and the buffer never reallocates.
            chunk: Vec::with_capacity(CHUNK_CAPACITY),
            records: 0,
            finished: false,
            error: None,
        })
    }

    /// Appends a counter sample. Allocation-free; errors are latched.
    pub fn counter(&mut self, track: u16, time_s: f64, value: f64) {
        if self.finished || self.error.is_some() {
            return;
        }
        self.reserve(COUNTER_RECORD_BYTES);
        self.chunk.push(REC_COUNTER);
        self.chunk.extend_from_slice(&track.to_le_bytes());
        self.chunk.extend_from_slice(&time_s.to_le_bytes());
        self.chunk.extend_from_slice(&value.to_le_bytes());
        self.records += 1;
    }

    /// Appends a labelled event. Labels longer than 4 KiB are truncated on
    /// a char boundary. Allocation-free; errors are latched.
    pub fn event(&mut self, track: u16, time_s: f64, label: &str) {
        if self.finished || self.error.is_some() {
            return;
        }
        let mut end = label.len().min(MAX_LABEL_BYTES);
        while end > 0 && !label.is_char_boundary(end) {
            end -= 1;
        }
        let bytes = &label.as_bytes()[..end];
        self.reserve(1 + 2 + 8 + 2 + bytes.len());
        self.chunk.push(REC_EVENT);
        self.chunk.extend_from_slice(&track.to_le_bytes());
        self.chunk.extend_from_slice(&time_s.to_le_bytes());
        self.chunk
            .extend_from_slice(&(bytes.len() as u16).to_le_bytes());
        self.chunk.extend_from_slice(bytes);
        self.records += 1;
    }

    /// Flushes any buffered samples, writes the end chunk and flushes the
    /// underlying writer. Idempotent: later calls are no-ops returning `Ok`.
    ///
    /// # Errors
    ///
    /// Returns the first latched I/O error, or the error of the final
    /// writes.
    pub fn finish(&mut self) -> Result<(), TraceError> {
        if self.finished {
            return Ok(());
        }
        self.finished = true;
        self.flush_chunk();
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let mut payload = [0u8; 9];
        payload[0] = TAG_END;
        payload[1..9].copy_from_slice(&self.records.to_le_bytes());
        write_chunk(&mut self.out, &payload)?;
        self.out.flush()?;
        Ok(())
    }

    /// Number of records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Consumes the writer and returns the underlying writer (call
    /// [`finish`](Self::finish) first — this does not).
    pub fn into_inner(self) -> W {
        self.out
    }

    /// Makes room for `bytes` more payload, flushing the current chunk when
    /// it would overflow, and seeds a fresh chunk with the samples tag.
    fn reserve(&mut self, bytes: usize) {
        if self.chunk.len() + bytes > CHUNK_CAPACITY {
            self.flush_chunk();
        }
        if self.chunk.is_empty() {
            self.chunk.push(TAG_SAMPLES);
        }
    }

    fn flush_chunk(&mut self) {
        if self.chunk.is_empty() {
            return;
        }
        if self.error.is_none() {
            if let Err(e) = write_chunk(&mut self.out, &self.chunk) {
                self.error = Some(e);
            }
        }
        self.chunk.clear();
    }
}

fn write_chunk<W: Write>(out: &mut W, payload: &[u8]) -> Result<(), TraceError> {
    out.write_all(&(payload.len() as u32).to_le_bytes())?;
    out.write_all(&crc32(payload).to_le_bytes())?;
    out.write_all(payload)?;
    Ok(())
}

/// Decodes a binary trace back into [`TraceData`].
pub struct TraceReader;

impl TraceReader {
    /// Reads and decodes the trace file at `path`.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] for filesystem failures, otherwise as
    /// [`read`](Self::read).
    pub fn read_file(path: impl AsRef<Path>) -> Result<TraceData, TraceError> {
        Self::read(&std::fs::read(path)?)
    }

    /// Decodes a complete in-memory trace.
    ///
    /// # Errors
    ///
    /// Every structural defect maps to a dedicated [`TraceError`] variant:
    /// wrong magic, mid-chunk truncation, per-chunk CRC mismatches, missing
    /// or duplicate header, undeclared track ids, a missing end chunk, or a
    /// record-count mismatch.
    pub fn read(bytes: &[u8]) -> Result<TraceData, TraceError> {
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut pos = MAGIC.len();
        let mut decoder = ChunkDecoder::new();
        while pos < bytes.len() {
            if decoder.ended {
                return Err(TraceError::Malformed {
                    chunk: decoder.chunk_index,
                    what: "data after the end chunk",
                });
            }
            match frame_chunk(bytes, pos, decoder.chunk_index)? {
                Some((payload, next)) => {
                    decoder.accept(payload)?;
                    pos = next;
                }
                None => {
                    // A one-shot read sees the whole file: an incomplete
                    // frame here is a torn tail, not "more data coming".
                    return Err(TraceError::TruncatedTail {
                        chunk: decoder.chunk_index,
                        offset: pos,
                    });
                }
            }
        }
        if !decoder.ended {
            return Err(decoder.missing_end());
        }
        Ok(decoder.into_data())
    }
}

/// Attempts to frame the chunk whose 8-byte length/CRC prefix starts at
/// `bytes[pos..]`.
///
/// Returns `Ok(Some((payload, next_pos)))` for a complete, CRC-verified
/// chunk, and `Ok(None)` when the remaining bytes do not yet hold a full
/// frame — the caller decides whether that is a torn tail
/// ([`TraceError::TruncatedTail`]) or simply "poll again later" (live
/// tailing).
///
/// # Errors
///
/// [`TraceError::Malformed`] for an over-long declared length and
/// [`TraceError::CrcMismatch`] when a *complete* chunk fails its CRC.
pub(crate) fn frame_chunk(
    bytes: &[u8],
    pos: usize,
    chunk_index: usize,
) -> Result<Option<(&[u8], usize)>, TraceError> {
    if bytes.len() - pos < 8 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
    if len > MAX_CHUNK_BYTES {
        return Err(TraceError::Malformed {
            chunk: chunk_index,
            what: "chunk length exceeds the format maximum",
        });
    }
    if bytes.len() - pos - 8 < len {
        return Ok(None);
    }
    let payload = &bytes[pos + 8..pos + 8 + len];
    if crc32(payload) != crc {
        return Err(TraceError::CrcMismatch { chunk: chunk_index });
    }
    Ok(Some((payload, pos + 8 + len)))
}

/// Incremental chunk-payload decoder shared by the one-shot
/// [`TraceReader`] and the live [`TraceTailer`](crate::tail::TraceTailer):
/// feed it CRC-verified payloads one at a time and it accumulates
/// [`TraceData`].
#[derive(Debug, Default)]
pub(crate) struct ChunkDecoder {
    data: TraceData,
    have_header: bool,
    pub(crate) chunk_index: usize,
    pub(crate) decoded: u64,
    pub(crate) ended: bool,
}

impl ChunkDecoder {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Consumes one complete, CRC-verified chunk payload.
    pub(crate) fn accept(&mut self, payload: &[u8]) -> Result<(), TraceError> {
        let chunk = self.chunk_index;
        if self.ended {
            return Err(TraceError::Malformed {
                chunk,
                what: "data after the end chunk",
            });
        }
        let (&tag, body) = payload.split_first().ok_or(TraceError::Malformed {
            chunk,
            what: "empty chunk payload",
        })?;
        match tag {
            TAG_HEADER => {
                if self.have_header {
                    return Err(TraceError::Malformed {
                        chunk,
                        what: "duplicate header chunk",
                    });
                }
                self.data.tracks = parse_header(body, chunk)?;
                self.have_header = true;
            }
            TAG_SAMPLES => {
                if !self.have_header {
                    return Err(TraceError::MissingHeader);
                }
                self.decoded += parse_samples(body, &mut self.data.tracks, chunk)?;
            }
            TAG_END => {
                if !self.have_header {
                    return Err(TraceError::MissingHeader);
                }
                if body.len() != 8 {
                    return Err(TraceError::Malformed {
                        chunk,
                        what: "end chunk payload is not 8 bytes",
                    });
                }
                let declared = u64::from_le_bytes(body.try_into().unwrap());
                if declared != self.decoded {
                    return Err(TraceError::CountMismatch {
                        declared,
                        decoded: self.decoded,
                    });
                }
                self.ended = true;
            }
            _ => {
                return Err(TraceError::Malformed {
                    chunk,
                    what: "unknown chunk tag",
                });
            }
        }
        self.chunk_index += 1;
        Ok(())
    }

    /// The typed error for a stream that stopped cleanly at a chunk
    /// boundary without its end chunk.
    pub(crate) fn missing_end(&self) -> TraceError {
        if self.have_header {
            TraceError::MissingEnd
        } else {
            TraceError::MissingHeader
        }
    }

    pub(crate) fn data(&self) -> &TraceData {
        &self.data
    }

    pub(crate) fn into_data(self) -> TraceData {
        self.data
    }
}

struct Cursor<'a> {
    body: &'a [u8],
    pos: usize,
    chunk: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], TraceError> {
        if self.body.len() - self.pos < n {
            return Err(TraceError::Malformed {
                chunk: self.chunk,
                what,
            });
        }
        let slice = &self.body[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, TraceError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, TraceError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, TraceError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, TraceError> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn done(&self) -> bool {
        self.pos >= self.body.len()
    }
}

fn parse_header(body: &[u8], chunk: usize) -> Result<Vec<Track>, TraceError> {
    let mut cur = Cursor {
        body,
        pos: 0,
        chunk,
    };
    let version = cur.u32("header too short for version")?;
    if version != FORMAT_VERSION {
        return Err(TraceError::UnsupportedVersion(version));
    }
    let count = cur.u32("header too short for track count")? as usize;
    if count > u16::MAX as usize {
        return Err(TraceError::Malformed {
            chunk,
            what: "header declares more than 65535 tracks",
        });
    }
    let mut tracks = Vec::with_capacity(count);
    for _ in 0..count {
        let kind = cur.u8("track definition too short")?;
        let kind = TrackKind::from_u8(kind).ok_or(TraceError::Malformed {
            chunk,
            what: "unknown track kind",
        })?;
        let index = cur.u32("track definition too short")?;
        let interval_s = cur.f64("track definition too short")?;
        let name_len = cur.u16("track definition too short")? as usize;
        let name = cur.take(name_len, "track name overruns the header")?;
        let name = std::str::from_utf8(name).map_err(|_| TraceError::Malformed {
            chunk,
            what: "track name is not valid UTF-8",
        })?;
        tracks.push(Track::new(TrackDef {
            kind,
            index,
            interval_s,
            name: name.to_string(),
        }));
    }
    if !cur.done() {
        return Err(TraceError::Malformed {
            chunk,
            what: "trailing bytes after the track definitions",
        });
    }
    Ok(tracks)
}

fn parse_samples(body: &[u8], tracks: &mut [Track], chunk: usize) -> Result<u64, TraceError> {
    let mut cur = Cursor {
        body,
        pos: 0,
        chunk,
    };
    let mut decoded = 0u64;
    while !cur.done() {
        let rec = cur.u8("record tag missing")?;
        let track_id = cur.u16("record too short for track id")?;
        let time = cur.f64("record too short for timestamp")?;
        let track = tracks
            .get_mut(track_id as usize)
            .ok_or(TraceError::UnknownTrack {
                chunk,
                track: track_id,
            })?;
        match rec {
            REC_COUNTER => {
                let value = cur.f64("record too short for value")?;
                if track.def.kind.is_event() {
                    return Err(TraceError::Malformed {
                        chunk,
                        what: "counter record on an event track",
                    });
                }
                track.times.push(time);
                track.values.push(value);
            }
            REC_EVENT => {
                let len = cur.u16("record too short for label length")? as usize;
                let label = cur.take(len, "label overruns the chunk")?;
                let label = std::str::from_utf8(label).map_err(|_| TraceError::Malformed {
                    chunk,
                    what: "event label is not valid UTF-8",
                })?;
                if !track.def.kind.is_event() {
                    return Err(TraceError::Malformed {
                        chunk,
                        what: "event record on a counter track",
                    });
                }
                track.times.push(time);
                track.labels.push(label.to_string());
            }
            _ => {
                return Err(TraceError::Malformed {
                    chunk,
                    what: "unknown record tag",
                });
            }
        }
        decoded += 1;
    }
    Ok(decoded)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_defs() -> Vec<TrackDef> {
        vec![
            TrackDef::counter(TrackKind::CoreTemperature, 0, 0.1, "core0.temp_c"),
            TrackDef::counter(TrackKind::Migrations, 0, 0.1, "migrations"),
            TrackDef::event(TrackKind::Reconfig, 0, "reconfig"),
        ]
    }

    fn demo_trace() -> Vec<u8> {
        let mut w = TraceWriter::new(Vec::new(), &demo_defs()).unwrap();
        w.counter(0, 0.0, 40.0);
        w.counter(1, 0.0, 0.0);
        w.counter(0, 0.1, 41.25);
        w.event(2, 0.05, "policy=stop-and-go");
        w.finish().unwrap();
        w.into_inner()
    }

    #[test]
    fn round_trips_counters_and_events() {
        let bytes = demo_trace();
        let data = TraceReader::read(&bytes).unwrap();
        assert_eq!(data.tracks.len(), 3);
        let temps = data.track(TrackKind::CoreTemperature, 0).unwrap();
        assert_eq!(temps.times, [0.0, 0.1]);
        assert_eq!(temps.values, [40.0, 41.25]);
        assert_eq!(temps.def.name, "core0.temp_c");
        assert_eq!(temps.def.interval_s, 0.1);
        let reconfig = data.track(TrackKind::Reconfig, 0).unwrap();
        assert_eq!(reconfig.times, [0.05]);
        assert_eq!(reconfig.labels, ["policy=stop-and-go"]);
        assert_eq!(data.total_records(), 4);
    }

    #[test]
    fn writing_is_deterministic() {
        assert_eq!(demo_trace(), demo_trace());
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut w = TraceWriter::new(Vec::new(), &demo_defs()).unwrap();
        w.finish().unwrap();
        let data = TraceReader::read(&w.into_inner()).unwrap();
        assert_eq!(data.tracks.len(), 3);
        assert_eq!(data.total_records(), 0);
    }

    #[test]
    fn finish_is_idempotent() {
        let mut w = TraceWriter::new(Vec::new(), &demo_defs()).unwrap();
        w.counter(0, 0.0, 1.0);
        w.finish().unwrap();
        w.finish().unwrap();
        w.counter(0, 0.1, 2.0); // ignored after finish
        let data = TraceReader::read(&w.into_inner()).unwrap();
        assert_eq!(data.total_records(), 1);
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(matches!(TraceReader::read(b""), Err(TraceError::BadMagic)));
        let mut bytes = demo_trace();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            TraceReader::read(&bytes),
            Err(TraceError::BadMagic)
        ));
    }

    #[test]
    fn corrupt_payload_is_a_crc_mismatch_not_a_panic() {
        let bytes = demo_trace();
        // Flip one byte in every payload position; each flip must surface
        // as a typed error (CRC mismatch), never a panic or a silent pass.
        for i in MAGIC.len() + 8..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            match TraceReader::read(&corrupt) {
                Err(TraceError::CrcMismatch { .. })
                | Err(TraceError::TruncatedTail { .. })
                | Err(TraceError::Malformed { .. })
                | Err(TraceError::CountMismatch { .. }) => {}
                other => panic!("flip at {i} gave {other:?}"),
            }
        }
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let bytes = demo_trace();
        for len in 0..bytes.len() {
            let err = TraceReader::read(&bytes[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    TraceError::BadMagic
                        | TraceError::TruncatedTail { .. }
                        | TraceError::MissingEnd
                        | TraceError::MissingHeader
                ),
                "truncation at {len} gave {err:?}"
            );
        }
    }

    #[test]
    fn torn_final_chunk_is_a_truncated_tail_naming_the_chunk_offset() {
        // Cut the demo trace in the middle of its final (end) chunk: the
        // intact preceding chunks must NOT be reported as corrupt, and the
        // error must name both the chunk index and the byte offset where
        // the incomplete frame starts.
        let bytes = demo_trace();
        let tail_start = bytes.len() - 17; // end chunk = 8 frame + 9 payload
        let torn = &bytes[..bytes.len() - 5];
        let err = TraceReader::read(torn).unwrap_err();
        match err {
            TraceError::TruncatedTail { chunk, offset } => {
                assert_eq!(
                    chunk, 2,
                    "header + samples decode before the torn end chunk"
                );
                assert_eq!(offset, tail_start);
            }
            other => panic!("torn tail gave {other:?}"),
        }
        // The message names the offset so an operator can cross-check with
        // the file size, and is distinct from the corruption message.
        let msg = TraceReader::read(torn).unwrap_err().to_string();
        assert!(msg.contains(&tail_start.to_string()), "message was: {msg}");
        assert!(msg.contains("incomplete chunk 2"), "message was: {msg}");
        assert!(!msg.contains("CRC"), "message was: {msg}");
    }

    #[test]
    fn end_count_mismatch_is_detected() {
        // Drop the last samples chunk but keep the end chunk: the declared
        // record count no longer matches.
        let defs = demo_defs();
        let mut w = TraceWriter::new(Vec::new(), &defs).unwrap();
        w.counter(0, 0.0, 40.0);
        w.finish().unwrap();
        let with_samples = w.into_inner();
        let mut w = TraceWriter::new(Vec::new(), &defs).unwrap();
        w.finish().unwrap();
        let empty = w.into_inner();
        // Splice: header from `empty`, end chunk (records=1) from
        // `with_samples`. The end chunk is the last 17 bytes (8 frame + 9
        // payload).
        let mut spliced = empty[..empty.len() - 17].to_vec();
        spliced.extend_from_slice(&with_samples[with_samples.len() - 17..]);
        assert!(matches!(
            TraceReader::read(&spliced),
            Err(TraceError::CountMismatch {
                declared: 1,
                decoded: 0
            })
        ));
    }

    #[test]
    fn undeclared_track_ids_are_rejected() {
        let mut w = TraceWriter::new(Vec::new(), &demo_defs()).unwrap();
        w.counter(7, 0.0, 1.0);
        w.finish().unwrap();
        assert!(matches!(
            TraceReader::read(&w.into_inner()),
            Err(TraceError::UnknownTrack { track: 7, .. })
        ));
    }

    #[test]
    fn record_kind_must_match_track_kind() {
        let mut w = TraceWriter::new(Vec::new(), &demo_defs()).unwrap();
        w.event(0, 0.0, "not an event track");
        w.finish().unwrap();
        assert!(matches!(
            TraceReader::read(&w.into_inner()),
            Err(TraceError::Malformed { .. })
        ));
        let mut w = TraceWriter::new(Vec::new(), &demo_defs()).unwrap();
        w.counter(2, 0.0, 1.0);
        w.finish().unwrap();
        assert!(matches!(
            TraceReader::read(&w.into_inner()),
            Err(TraceError::Malformed { .. })
        ));
    }

    #[test]
    fn long_labels_are_truncated_on_a_char_boundary() {
        let mut w = TraceWriter::new(Vec::new(), &demo_defs()).unwrap();
        // 4095 ASCII bytes then a multi-byte char straddling the limit.
        let label = format!("{}ééé", "x".repeat(4095));
        w.event(2, 0.0, &label);
        w.finish().unwrap();
        let data = TraceReader::read(&w.into_inner()).unwrap();
        let stored = &data.track(TrackKind::Reconfig, 0).unwrap().labels[0];
        assert!(stored.len() <= 4096);
        assert!(stored.starts_with("xxx"));
    }

    #[test]
    fn large_streams_span_multiple_chunks() {
        let defs = vec![TrackDef::counter(TrackKind::QueueDepth, 0, 0.01, "q0")];
        let mut w = TraceWriter::new(Vec::new(), &defs).unwrap();
        // ~10k counter records ≈ 190 KiB of payload → several 64 KiB chunks.
        for i in 0..10_000 {
            w.counter(0, i as f64 * 0.01, (i % 7) as f64);
        }
        w.finish().unwrap();
        assert_eq!(w.records(), 10_000);
        let data = TraceReader::read(&w.into_inner()).unwrap();
        assert_eq!(data.tracks[0].len(), 10_000);
        assert_eq!(data.tracks[0].values[6], 6.0);
        assert_eq!(data.tracks[0].values[7], 0.0);
    }

    #[test]
    fn errors_render_and_convert() {
        let err = TraceError::from(io::Error::other("disk on fire"));
        assert!(err.to_string().contains("disk on fire"));
        assert!(std::error::Error::source(&err).is_some());
        for e in [
            TraceError::BadMagic,
            TraceError::TruncatedTail {
                chunk: 2,
                offset: 3,
            },
            TraceError::CrcMismatch { chunk: 1 },
            TraceError::UnsupportedVersion(9),
            TraceError::MissingHeader,
            TraceError::MissingEnd,
            TraceError::CountMismatch {
                declared: 2,
                decoded: 1,
            },
            TraceError::UnknownTrack { chunk: 0, track: 9 },
            TraceError::Malformed {
                chunk: 0,
                what: "x",
            },
        ] {
            assert!(!e.to_string().is_empty());
            assert!(std::error::Error::source(&e).is_none());
        }
    }
}
