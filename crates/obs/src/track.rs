//! Typed per-subsystem tracks.
//!
//! A *track* is one independently sampled time series — one core's
//! temperature, one pipeline queue's depth, the cumulative migration count —
//! identified by a [`TrackKind`] plus an index within that kind. Tracks
//! replace the monolithic all-subsystems-in-one sample struct: each track
//! can be selected, sampled and decimated on its own, and a reader only
//! pays for the series it asks for.

/// What a track measures. The discriminants are part of the binary format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrackKind {
    /// One core's sensor temperature in °C.
    CoreTemperature,
    /// One core's clock frequency in MHz.
    CoreFrequency,
    /// Cumulative completed task migrations.
    Migrations,
    /// Cumulative pipeline deadline misses.
    DeadlineMisses,
    /// One pipeline edge queue's fill level (frames).
    QueueDepth,
    /// Live-reconfiguration events (labelled instants, not a counter).
    Reconfig,
}

impl TrackKind {
    /// All kinds, in wire-discriminant order.
    pub const ALL: [TrackKind; 6] = [
        TrackKind::CoreTemperature,
        TrackKind::CoreFrequency,
        TrackKind::Migrations,
        TrackKind::DeadlineMisses,
        TrackKind::QueueDepth,
        TrackKind::Reconfig,
    ];

    /// The wire discriminant of this kind.
    pub fn as_u8(self) -> u8 {
        match self {
            TrackKind::CoreTemperature => 0,
            TrackKind::CoreFrequency => 1,
            TrackKind::Migrations => 2,
            TrackKind::DeadlineMisses => 3,
            TrackKind::QueueDepth => 4,
            TrackKind::Reconfig => 5,
        }
    }

    /// The kind for a wire discriminant.
    pub fn from_u8(value: u8) -> Option<TrackKind> {
        TrackKind::ALL.get(value as usize).copied()
    }

    /// Whether tracks of this kind carry labelled events instead of values.
    pub fn is_event(self) -> bool {
        matches!(self, TrackKind::Reconfig)
    }

    /// The unit counter values of this kind are expressed in.
    pub fn unit(self) -> &'static str {
        match self {
            TrackKind::CoreTemperature => "degC",
            TrackKind::CoreFrequency => "MHz",
            TrackKind::Migrations => "count",
            TrackKind::DeadlineMisses => "count",
            TrackKind::QueueDepth => "frames",
            TrackKind::Reconfig => "",
        }
    }

    /// Stable lower-case label, used in exports and the explorer.
    pub fn label(self) -> &'static str {
        match self {
            TrackKind::CoreTemperature => "core_temperature",
            TrackKind::CoreFrequency => "core_frequency",
            TrackKind::Migrations => "migrations",
            TrackKind::DeadlineMisses => "deadline_misses",
            TrackKind::QueueDepth => "queue_depth",
            TrackKind::Reconfig => "reconfig",
        }
    }
}

/// Identity and sampling metadata of one track.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackDef {
    /// What the track measures.
    pub kind: TrackKind,
    /// Index within the kind (core id, queue id; 0 for scalar kinds).
    pub index: u32,
    /// Nominal sampling interval in seconds (0 for irregular/event tracks).
    pub interval_s: f64,
    /// Human-readable name, e.g. `core0.temp_c`.
    pub name: String,
}

impl TrackDef {
    /// A counter track sampled every `interval_s` seconds.
    pub fn counter(kind: TrackKind, index: u32, interval_s: f64, name: impl Into<String>) -> Self {
        TrackDef {
            kind,
            index,
            interval_s,
            name: name.into(),
        }
    }

    /// An event track (irregular, labelled instants).
    pub fn event(kind: TrackKind, index: u32, name: impl Into<String>) -> Self {
        TrackDef {
            kind,
            index,
            interval_s: 0.0,
            name: name.into(),
        }
    }
}

/// One decoded track: definition plus its series.
///
/// Counter tracks fill `times`/`values`; event tracks fill `times`/`labels`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Track {
    /// The track's identity.
    pub def: TrackDef,
    /// Sample timestamps in simulated seconds, in record order.
    pub times: Vec<f64>,
    /// Counter values (empty for event tracks).
    pub values: Vec<f64>,
    /// Event labels (empty for counter tracks).
    pub labels: Vec<String>,
}

impl Default for TrackDef {
    fn default() -> Self {
        TrackDef::counter(TrackKind::CoreTemperature, 0, 0.0, "")
    }
}

impl Track {
    /// An empty track for `def`.
    pub fn new(def: TrackDef) -> Self {
        Track {
            def,
            times: Vec::new(),
            values: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Number of samples (or events) recorded.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the track holds no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The counter value at the latest sample at or before `time`, if any.
    pub fn value_at_or_before(&self, time: f64) -> Option<f64> {
        // partition_point gives the first index with times[i] > time.
        let idx = self.times.partition_point(|&t| t <= time);
        if idx == 0 {
            None
        } else {
            self.values.get(idx - 1).copied()
        }
    }
}

/// A fully decoded trace: every track, in header order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceData {
    /// All tracks, in the order the trace header declared them.
    pub tracks: Vec<Track>,
}

impl TraceData {
    /// The track of `kind` with the given `index`, if present.
    pub fn track(&self, kind: TrackKind, index: u32) -> Option<&Track> {
        self.tracks
            .iter()
            .find(|t| t.def.kind == kind && t.def.index == index)
    }

    /// All tracks of one kind, in index order as declared.
    pub fn tracks_of(&self, kind: TrackKind) -> impl Iterator<Item = &Track> {
        self.tracks.iter().filter(move |t| t.def.kind == kind)
    }

    /// Total number of samples and events across all tracks.
    pub fn total_records(&self) -> u64 {
        self.tracks.iter().map(|t| t.len() as u64).sum()
    }

    /// The overall time span `(first, last)` covered by any track.
    pub fn span(&self) -> Option<(f64, f64)> {
        let mut span: Option<(f64, f64)> = None;
        for track in &self.tracks {
            let (Some(&first), Some(&last)) = (track.times.first(), track.times.last()) else {
                continue;
            };
            span = Some(match span {
                Some((lo, hi)) => (lo.min(first), hi.max(last)),
                None => (first, last),
            });
        }
        span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_discriminants_round_trip() {
        for kind in TrackKind::ALL {
            assert_eq!(TrackKind::from_u8(kind.as_u8()), Some(kind));
            assert!(!kind.label().is_empty());
        }
        assert_eq!(TrackKind::from_u8(200), None);
        assert!(TrackKind::Reconfig.is_event());
        assert!(!TrackKind::CoreTemperature.is_event());
        assert_eq!(TrackKind::CoreFrequency.unit(), "MHz");
    }

    #[test]
    fn value_lookup_is_at_or_before() {
        let mut t = Track::new(TrackDef::counter(
            TrackKind::Migrations,
            0,
            0.1,
            "migrations",
        ));
        t.times = vec![0.0, 0.1, 0.2];
        t.values = vec![0.0, 2.0, 5.0];
        assert_eq!(t.value_at_or_before(-0.01), None);
        assert_eq!(t.value_at_or_before(0.0), Some(0.0));
        assert_eq!(t.value_at_or_before(0.15), Some(2.0));
        assert_eq!(t.value_at_or_before(9.0), Some(5.0));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn trace_data_lookup_and_span() {
        let mut a = Track::new(TrackDef::counter(TrackKind::CoreTemperature, 1, 0.1, "c1"));
        a.times = vec![0.5, 1.0];
        a.values = vec![40.0, 41.0];
        let mut b = Track::new(TrackDef::event(TrackKind::Reconfig, 0, "reconfig"));
        b.times = vec![2.0];
        b.labels = vec!["x".into()];
        let data = TraceData { tracks: vec![a, b] };
        assert!(data.track(TrackKind::CoreTemperature, 1).is_some());
        assert!(data.track(TrackKind::CoreTemperature, 0).is_none());
        assert_eq!(data.tracks_of(TrackKind::Reconfig).count(), 1);
        assert_eq!(data.total_records(), 3);
        assert_eq!(data.span(), Some((0.5, 2.0)));
        assert_eq!(TraceData::default().span(), None);
    }
}
