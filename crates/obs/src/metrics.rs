//! Live run metrics: a lightweight registry of counters, gauges and
//! histograms, periodic JSONL snapshots, and a Prometheus-style text
//! exposition.
//!
//! The registry mirrors the crate's std-only discipline and the simulator's
//! hot-loop contract: **registration allocates, updates never do**. Every
//! instrument is a cheaply clonable handle over shared atomics, so the
//! simulation step loop, the batch runner's worker threads and a background
//! snapshot emitter can all touch the same instrument without locks on the
//! update path. Snapshots are taken under the registry's registration lock
//! but read the atomics with relaxed ordering — heartbeats are monitoring
//! data, not a synchronization point, and individual values may be a step
//! apart.
//!
//! Snapshot lines are hand-rolled JSON (this crate deliberately has no
//! dependencies, serde included); [`MetricsSnapshot::parse`] reads back
//! exactly what [`MetricsSnapshot::to_jsonl`] writes, with `u64` counter
//! values preserved bit-exactly rather than routed through `f64`.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A monotonically increasing `u64` instrument. Cloning shares the value.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a detached counter starting at zero (registry-less use in
    /// tests; production code obtains counters from a [`MetricsRegistry`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one. Never allocates.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. Never allocates.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins `f64` instrument. Cloning shares the value.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Creates a detached gauge starting at `0.0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the value. Never allocates.
    #[inline]
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Finite, strictly increasing upper bounds; observations land in the
    /// first bucket whose bound is `>=` the value.
    bounds: Vec<f64>,
    /// One count per bound plus a final overflow bucket.
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram. Bucket layout is frozen at registration;
/// [`observe`](Self::observe) touches only atomics.
#[derive(Clone, Debug)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Creates a detached histogram. Non-finite bounds are dropped and the
    /// rest sorted and deduplicated, so any slice yields a valid layout.
    pub fn new(bounds: &[f64]) -> Self {
        let mut bounds: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        bounds.sort_by(|a, b| a.partial_cmp(b).expect("finite bounds compare"));
        bounds.dedup();
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            core: Arc::new(HistogramCore {
                bounds,
                counts,
                sum_bits: AtomicU64::new(0.0f64.to_bits()),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation. Never allocates.
    pub fn observe(&self, value: f64) {
        let core = &*self.core;
        let mut bucket = core.bounds.len();
        for (i, bound) in core.bounds.iter().enumerate() {
            if value <= *bound {
                bucket = i;
                break;
            }
        }
        core.counts[bucket].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match core.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let core = &*self.core;
        HistogramSnapshot {
            bounds: core.bounds.clone(),
            counts: core
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: f64::from_bits(core.sum_bits.load(Ordering::Relaxed)),
            count: core.count.load(Ordering::Relaxed),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    histograms: Vec<(String, Histogram)>,
}

/// A named collection of instruments. Cloning shares the registry;
/// registration (`counter`/`gauge`/`histogram`) takes a lock and may
/// allocate, updates through the returned handles never do.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Inner>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, registering it on first use.
    /// Instruments are snapshotted in registration order.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("metrics registry lock");
        if let Some((_, c)) = inner.counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let counter = Counter::new();
        inner.counters.push((name.to_string(), counter.clone()));
        counter
    }

    /// Returns the gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("metrics registry lock");
        if let Some((_, g)) = inner.gauges.iter().find(|(n, _)| n == name) {
            return g.clone();
        }
        let gauge = Gauge::new();
        inner.gauges.push((name.to_string(), gauge.clone()));
        gauge
    }

    /// Returns the histogram named `name`, registering it with `bounds` on
    /// first use (later calls reuse the existing layout and ignore
    /// `bounds`).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let mut inner = self.inner.lock().expect("metrics registry lock");
        if let Some((_, h)) = inner.histograms.iter().find(|(n, _)| n == name) {
            return h.clone();
        }
        let histogram = Histogram::new(bounds);
        inner.histograms.push((name.to_string(), histogram.clone()));
        histogram
    }

    /// Captures every instrument's current value, stamped with `elapsed_s`
    /// seconds since whatever epoch the caller is tracking.
    pub fn snapshot(&self, elapsed_s: f64) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry lock");
        MetricsSnapshot {
            elapsed_s,
            counters: inner
                .counters
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (finite, strictly increasing).
    pub bounds: Vec<f64>,
    /// Per-bucket counts; one entry per bound plus the overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: f64,
    /// Total observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Cumulative count at or below each bound, ending with the total —
    /// the Prometheus `_bucket` series. Monotonically non-decreasing by
    /// construction.
    pub fn cumulative(&self) -> Vec<u64> {
        let mut total = 0u64;
        self.counts
            .iter()
            .map(|c| {
                total += c;
                total
            })
            .collect()
    }
}

/// Point-in-time copy of every instrument in a [`MetricsRegistry`],
/// serializable as one JSON line.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Seconds since the emitter (or caller) started.
    pub elapsed_s: f64,
    /// `(name, value)` pairs in registration order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs in registration order.
    pub gauges: Vec<(String, f64)>,
    /// `(name, snapshot)` pairs in registration order.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Serializes the snapshot as one JSON object (no trailing newline):
    ///
    /// ```json
    /// {"elapsed_s":1.5,"counters":{"sim.steps":4000},"gauges":{},"histograms":{}}
    /// ```
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"elapsed_s\":");
        json_f64(&mut out, self.elapsed_s);
        out.push_str(",\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(&mut out, name);
            let _ = write!(out, ":{value}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(&mut out, name);
            out.push(':');
            json_f64(&mut out, *value);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(&mut out, name);
            out.push_str(":{\"bounds\":[");
            for (j, b) in h.bounds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json_f64(&mut out, *b);
            }
            out.push_str("],\"counts\":[");
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            out.push_str("],\"sum\":");
            json_f64(&mut out, h.sum);
            let _ = write!(out, ",\"count\":{}}}", h.count);
        }
        out.push_str("}}");
        out
    }

    /// Parses one line previously produced by [`to_jsonl`](Self::to_jsonl).
    ///
    /// The parser accepts exactly that shape (keys in emission order);
    /// `u64` values round-trip bit-exactly and non-finite floats survive
    /// via the `"inf"`/`"-inf"`/`"nan"` string encodings.
    ///
    /// # Errors
    ///
    /// A static description of the first structural mismatch.
    pub fn parse(line: &str) -> Result<Self, &'static str> {
        let mut p = Parser {
            bytes: line.trim().as_bytes(),
            pos: 0,
        };
        p.expect(b'{')?;
        p.key("elapsed_s")?;
        let elapsed_s = p.f64()?;
        p.expect(b',')?;
        p.key("counters")?;
        let mut counters = Vec::new();
        p.object(|p, name| {
            counters.push((name, p.u64()?));
            Ok(())
        })?;
        p.expect(b',')?;
        p.key("gauges")?;
        let mut gauges = Vec::new();
        p.object(|p, name| {
            gauges.push((name, p.f64()?));
            Ok(())
        })?;
        p.expect(b',')?;
        p.key("histograms")?;
        let mut histograms = Vec::new();
        p.object(|p, name| {
            p.expect(b'{')?;
            p.key("bounds")?;
            let mut bounds = Vec::new();
            p.array(|p| {
                bounds.push(p.f64()?);
                Ok(())
            })?;
            p.expect(b',')?;
            p.key("counts")?;
            let mut counts = Vec::new();
            p.array(|p| {
                counts.push(p.u64()?);
                Ok(())
            })?;
            p.expect(b',')?;
            p.key("sum")?;
            let sum = p.f64()?;
            p.expect(b',')?;
            p.key("count")?;
            let count = p.u64()?;
            p.expect(b'}')?;
            histograms.push((
                name,
                HistogramSnapshot {
                    bounds,
                    counts,
                    sum,
                    count,
                },
            ));
            Ok(())
        })?;
        p.expect(b'}')?;
        if p.pos != p.bytes.len() {
            return Err("trailing bytes after the snapshot object");
        }
        Ok(MetricsSnapshot {
            elapsed_s,
            counters,
            gauges,
            histograms,
        })
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// `tbp_`-prefixed sanitized names, `# TYPE` comments, cumulative
    /// `_bucket{le="…"}` series plus `_sum`/`_count` for histograms.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(256);
        for (name, value) in &self.counters {
            let name = prom_name(name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &self.gauges {
            let name = prom_name(name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, h) in &self.histograms {
            let name = prom_name(name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let cumulative = h.cumulative();
            for (bound, cum) in h.bounds.iter().zip(&cumulative) {
                let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cum}");
            }
            let total = cumulative.last().copied().unwrap_or(0);
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {total}");
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }
}

/// `tbp_` prefix plus the metric name with every character outside
/// `[a-zA-Z0-9_:]` replaced by `_` (so `runner.cache_hits` becomes
/// `tbp_runner_cache_hits`).
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(4 + name.len());
    out.push_str("tbp_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' || ch == ':' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Floats print via Rust's shortest round-trip `Display`; the non-finite
/// values JSON cannot express become the strings `"inf"`/`"-inf"`/`"nan"`.
fn json_f64(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("\"nan\"");
    } else if v.is_infinite() {
        out.push_str(if v > 0.0 { "\"inf\"" } else { "\"-inf\"" });
    } else {
        let _ = write!(out, "{v}");
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn expect(&mut self, b: u8) -> Result<(), &'static str> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err("unexpected byte in metrics snapshot line")
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// `"name":` — a quoted key followed by a colon.
    fn key(&mut self, name: &str) -> Result<(), &'static str> {
        if self.string()? != name {
            return Err("unexpected key in metrics snapshot line");
        }
        self.expect(b':')
    }

    fn string(&mut self) -> Result<String, &'static str> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self
                .bytes
                .get(self.pos)
                .copied()
                .ok_or("unterminated string")?
            {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied().ok_or("bad escape")? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("bad unicode escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad unicode escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad unicode escape")?;
                            out.push(char::from_u32(code).ok_or("bad unicode escape")?);
                            self.pos += 4;
                        }
                        _ => return Err("unsupported escape"),
                    }
                    self.pos += 1;
                }
                _ => {
                    // Multi-byte UTF-8: take the whole char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let ch = rest.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// The byte span of the next number token.
    fn number_token(&mut self) -> Result<&'a str, &'static str> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err("expected a number");
        }
        std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "expected a number")
    }

    fn u64(&mut self) -> Result<u64, &'static str> {
        self.number_token()?
            .parse::<u64>()
            .map_err(|_| "expected an unsigned integer")
    }

    fn f64(&mut self) -> Result<f64, &'static str> {
        if self.peek() == Some(b'"') {
            return match self.string()?.as_str() {
                "inf" => Ok(f64::INFINITY),
                "-inf" => Ok(f64::NEG_INFINITY),
                "nan" => Ok(f64::NAN),
                _ => Err("unknown string-encoded float"),
            };
        }
        self.number_token()?
            .parse::<f64>()
            .map_err(|_| "expected a float")
    }

    /// `{"k":<value>,...}` — calls `each(self, key)` positioned at each
    /// value; `each` must consume it.
    fn object(
        &mut self,
        mut each: impl FnMut(&mut Self, String) -> Result<(), &'static str>,
    ) -> Result<(), &'static str> {
        self.expect(b'{')?;
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            each(self, key)?;
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err("expected , or } in object"),
            }
        }
    }

    /// `[<value>,...]` — calls `each(self)` positioned at each value.
    fn array(
        &mut self,
        mut each: impl FnMut(&mut Self) -> Result<(), &'static str>,
    ) -> Result<(), &'static str> {
        self.expect(b'[')?;
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            each(self)?;
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err("expected , or ] in array"),
            }
        }
    }
}

/// Background thread that appends one [`MetricsSnapshot`] JSONL line to a
/// file every `interval`, plus a final line when finished — so even runs
/// shorter than one interval leave a complete heartbeat behind.
#[derive(Debug)]
pub struct SnapshotEmitter {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<std::io::Result<()>>>,
}

impl SnapshotEmitter {
    /// Creates (truncates) `path` and starts the emitter thread.
    ///
    /// # Errors
    ///
    /// The file-creation error, surfaced eagerly; write errors on the
    /// emitter thread are returned by [`finish`](Self::finish).
    pub fn spawn(
        registry: MetricsRegistry,
        path: impl AsRef<Path>,
        interval: Duration,
    ) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("tbp-metrics".into())
            .spawn(move || -> std::io::Result<()> {
                let mut out = std::io::BufWriter::new(file);
                let start = Instant::now();
                let tick = Duration::from_millis(20).min(interval.max(Duration::from_millis(1)));
                loop {
                    let deadline = Instant::now() + interval;
                    // Sleep in short ticks so finish() returns promptly.
                    while Instant::now() < deadline {
                        if thread_stop.load(Ordering::Relaxed) {
                            let snap = registry.snapshot(start.elapsed().as_secs_f64());
                            writeln!(out, "{}", snap.to_jsonl())?;
                            return out.flush();
                        }
                        std::thread::sleep(tick);
                    }
                    let snap = registry.snapshot(start.elapsed().as_secs_f64());
                    writeln!(out, "{}", snap.to_jsonl())?;
                    out.flush()?;
                }
            })?;
        Ok(SnapshotEmitter {
            stop,
            handle: Some(handle),
        })
    }

    /// Stops the emitter, writes the final snapshot line and waits for the
    /// thread.
    ///
    /// # Errors
    ///
    /// The first write/flush error the emitter thread hit.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.stop.store(true, Ordering::Relaxed);
        match self.handle.take() {
            Some(handle) => handle.join().unwrap_or(Ok(())),
            None => Ok(()),
        }
    }
}

impl Drop for SnapshotEmitter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_state_across_clones() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("sim.steps");
        let b = registry.counter("sim.steps");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let g = registry.gauge("runner.scenarios_total");
        registry.gauge("runner.scenarios_total").set(7.5);
        assert_eq!(g.get(), 7.5);
    }

    #[test]
    fn histogram_buckets_by_upper_bound_with_overflow() {
        let h = Histogram::new(&[1.0, 4.0, 8.0]);
        for v in [0.5, 1.0, 3.0, 8.0, 100.0] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.counts, [2, 1, 1, 1]);
        assert_eq!(snap.count, 5);
        assert!((snap.sum - 112.5).abs() < 1e-9);
        assert_eq!(snap.cumulative(), [2, 3, 4, 5]);
    }

    #[test]
    fn histogram_bounds_are_sanitized() {
        let h = Histogram::new(&[8.0, 1.0, f64::NAN, 1.0, f64::INFINITY]);
        assert_eq!(h.snapshot().bounds, [1.0, 8.0]);
    }

    #[test]
    fn snapshot_jsonl_round_trips() {
        let registry = MetricsRegistry::new();
        registry.counter("runner.cache_hits").add(41);
        registry.gauge("runner.scenarios_total").set(12.0);
        let h = registry.histogram("runner.lane_occupancy", &[1.0, 2.0, 4.0]);
        h.observe(1.0);
        h.observe(4.0);
        let snap = registry.snapshot(2.25);
        let line = snap.to_jsonl();
        assert_eq!(MetricsSnapshot::parse(&line).unwrap(), snap);
        assert_eq!(snap.counter("runner.cache_hits"), Some(41));
        assert_eq!(snap.gauge("runner.scenarios_total"), Some(12.0));
    }

    #[test]
    fn non_finite_floats_survive_the_round_trip() {
        let snap = MetricsSnapshot {
            elapsed_s: 1.0,
            counters: vec![],
            gauges: vec![("a".into(), f64::INFINITY), ("b".into(), f64::NEG_INFINITY)],
            histograms: vec![],
        };
        let back = MetricsSnapshot::parse(&snap.to_jsonl()).unwrap();
        assert_eq!(back, snap);
        let nan = MetricsSnapshot {
            elapsed_s: f64::NAN,
            ..MetricsSnapshot::default()
        };
        let back = MetricsSnapshot::parse(&nan.to_jsonl()).unwrap();
        assert!(back.elapsed_s.is_nan());
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let registry = MetricsRegistry::new();
        registry.counter("sim.steps").add(4000);
        registry.gauge("sim.trace_dropped").set(0.0);
        let h = registry.histogram("runner.lane_occupancy", &[1.0, 2.0]);
        h.observe(2.0);
        let text = registry.snapshot(0.0).to_prometheus();
        assert!(text.contains("# TYPE tbp_sim_steps counter\ntbp_sim_steps 4000\n"));
        assert!(text.contains("# TYPE tbp_sim_trace_dropped gauge"));
        assert!(text.contains("tbp_runner_lane_occupancy_bucket{le=\"2\"} 1"));
        assert!(text.contains("tbp_runner_lane_occupancy_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("tbp_runner_lane_occupancy_count 1"));
    }

    #[test]
    fn emitter_writes_parseable_heartbeats_including_a_final_line() {
        let registry = MetricsRegistry::new();
        let steps = registry.counter("sim.steps");
        let path =
            std::env::temp_dir().join(format!("tbp_metrics_emitter_{}.jsonl", std::process::id()));
        let emitter =
            SnapshotEmitter::spawn(registry.clone(), &path, Duration::from_millis(10)).unwrap();
        steps.add(123);
        std::thread::sleep(Duration::from_millis(40));
        emitter.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        assert!(!lines.is_empty());
        for line in &lines {
            MetricsSnapshot::parse(line).unwrap();
        }
        let last = MetricsSnapshot::parse(lines.last().unwrap()).unwrap();
        assert_eq!(last.counter("sim.steps"), Some(123));
        let _ = std::fs::remove_file(&path);
    }
}
