//! Observability subsystem: compact binary traces for the co-simulation.
//!
//! The paper's emulation platform streams per-component statistics to a host
//! PC over a dedicated link; this crate is the software equivalent. It
//! defines:
//!
//! - a **versioned, chunked binary trace format** ([`TraceWriter`] /
//!   [`TraceReader`]): magic + header chunk, per-chunk length + CRC32,
//!   little-endian fixed-width records — compact enough for fleet-scale
//!   archival and robust against truncation and corruption;
//! - **typed per-subsystem tracks** ([`TrackKind`], [`TrackDef`],
//!   [`Track`]): core temperatures, core frequencies, cumulative migrations,
//!   deadline misses, per-stage queue depths, and reconfiguration events,
//!   each an independent time series instead of one monolithic sample
//!   struct;
//! - a **streaming sink abstraction** ([`TraceSink`]: [`NullSink`],
//!   [`MemorySink`], [`StreamSink`], [`FileSink`]) whose hot-path methods
//!   never allocate once the sink is attached, preserving the simulator's
//!   zero-allocation step guarantee while a file-backed trace is recorded;
//! - **exporters** ([`export`]): perfetto-compatible Chrome-trace JSON,
//!   lossless legacy JSON, and long-format CSV;
//! - a **live metrics registry** ([`metrics`]): allocation-free-after-
//!   registration counters/gauges/histograms, periodic JSONL
//!   [`MetricsSnapshot`] heartbeats and a one-shot Prometheus-style text
//!   exposition;
//! - a **live trace tailer** ([`tail::TraceTailer`]): follows a `.tbptrace`
//!   while it is being written, decoding only complete CRC-verified chunks
//!   and treating a torn in-progress tail as "poll again" rather than
//!   corruption;
//! - **windowed statistics** ([`stats`]) and a **pure terminal UI layer**
//!   ([`tui`]: [`tui::Frame`] / [`tui::Explorer`]) shared by the
//!   `trace_explore` and `trace_tui` binaries, renderable headlessly and
//!   deterministically.
//!
//! The crate is deliberately std-only: host tooling (`trace_explore`,
//! `trace_tui`) and the simulator share it without pulling simulation
//! layers in either direction.
//!
//! # Example
//!
//! ```
//! use tbp_obs::{Track, TrackDef, TrackKind, TraceReader, TraceWriter};
//!
//! let defs = vec![
//!     TrackDef::counter(TrackKind::CoreTemperature, 0, 0.1, "core0.temp_c"),
//!     TrackDef::event(TrackKind::Reconfig, 0, "reconfig"),
//! ];
//! let mut writer = TraceWriter::new(Vec::new(), &defs).unwrap();
//! writer.counter(0, 0.0, 41.5);
//! writer.counter(0, 0.1, 42.0);
//! writer.event(1, 0.05, "threshold=2");
//! writer.finish().unwrap();
//!
//! let data = TraceReader::read(&writer.into_inner()).unwrap();
//! let temps: &Track = data.track(TrackKind::CoreTemperature, 0).unwrap();
//! assert_eq!(temps.values, [41.5, 42.0]);
//! assert_eq!(data.tracks[1].labels, ["threshold=2"]);
//! ```

pub mod crc32;
pub mod export;
pub mod format;
pub mod metrics;
pub mod sink;
pub mod stats;
pub mod tail;
pub mod track;
pub mod tui;

pub use format::{TraceError, TraceReader, TraceWriter, FORMAT_VERSION, MAGIC};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, SnapshotEmitter,
};
pub use sink::{FileSink, MemorySink, NullSink, StreamSink, TraceSink};
pub use tail::{TailProgress, TraceTailer};
pub use track::{TraceData, Track, TrackDef, TrackKind};
