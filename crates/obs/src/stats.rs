//! Windowed statistics and small series helpers over [`TraceData`].
//!
//! Shared by the `trace_explore` and `trace_tui` binaries so the live and
//! post-hoc views agree exactly: per fixed time window, the mean spatial
//! temperature σ across cores (the paper's headline balancing metric) and
//! the migration rate. Windows are anchored at the trace's first sample
//! instant, so recomputing over a growing trace (live tailing) never moves
//! a window that has already been reported — only the final, still-filling
//! window changes.

use crate::track::{TraceData, Track, TrackKind};

/// 8-level block characters used by every sparkline in the tooling.
pub const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// One aggregated time window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStat {
    /// Window start (inclusive), seconds.
    pub from_s: f64,
    /// Window end (exclusive, except the final window which is clamped to
    /// the trace end), seconds.
    pub to_s: f64,
    /// Mean spatial temperature σ across cores over the window's sample
    /// instants, °C.
    pub sigma_c: f64,
    /// Completed migrations per second over the window.
    pub migrations_per_s: f64,
}

/// Aggregates `data` into fixed `window_s`-second windows.
///
/// Returns an empty vector for an empty trace. The sample grid is the
/// densest core-temperature track's timestamps; at each grid instant the
/// spatial σ is taken across every core's last-known temperature, and the
/// window stores the mean of those σ values. Migration rate is the delta of
/// the cumulative migrations track across the window divided by its
/// duration.
pub fn windowed_stats(data: &TraceData, window_s: f64) -> Vec<WindowStat> {
    let temps: Vec<&Track> = data.tracks_of(TrackKind::CoreTemperature).collect();
    let migrations = data.track(TrackKind::Migrations, 0);
    let Some((start, end)) = data.span() else {
        return Vec::new();
    };
    let grid: &[f64] = temps
        .iter()
        .max_by_key(|t| t.len())
        .map(|t| t.times.as_slice())
        .unwrap_or(&[]);
    let mut windows = Vec::new();
    let mut at = start;
    while at < end {
        let to = (at + window_s).min(end);
        let mut sigma_sum = 0.0;
        let mut sigma_n = 0u64;
        for &t in grid.iter().filter(|&&t| t >= at && t < to) {
            let values: Vec<f64> = temps
                .iter()
                .filter_map(|track| track.value_at_or_before(t))
                .collect();
            if values.len() > 1 {
                sigma_sum += std_dev(&values);
                sigma_n += 1;
            }
        }
        let sigma = if sigma_n > 0 {
            sigma_sum / sigma_n as f64
        } else {
            0.0
        };
        let migrated = migrations
            .map(|m| {
                let before = m.value_at_or_before(at).unwrap_or(0.0);
                let after = m.value_at_or_before(to).unwrap_or(before);
                (after - before).max(0.0)
            })
            .unwrap_or(0.0);
        let rate = if to > at { migrated / (to - at) } else { 0.0 };
        windows.push(WindowStat {
            from_s: at,
            to_s: to,
            sigma_c: sigma,
            migrations_per_s: rate,
        });
        at = to;
    }
    windows
}

/// `(min, mean, max)` of a series; zeros for an empty one.
pub fn series_stats(values: &[f64]) -> (f64, f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    (min, mean, max)
}

/// Population standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// Resamples `values` into at most `width` buckets (bucket mean) and maps
/// each onto the 8-level block characters.
pub fn sparkline(values: &[f64], width: usize) -> String {
    if values.is_empty() {
        return String::new();
    }
    let buckets = width.min(values.len()).max(1);
    let mut resampled = Vec::with_capacity(buckets);
    for b in 0..buckets {
        let lo = b * values.len() / buckets;
        let hi = (((b + 1) * values.len()) / buckets).max(lo + 1);
        let slice = &values[lo..hi.min(values.len())];
        resampled.push(slice.iter().sum::<f64>() / slice.len() as f64);
    }
    let (min, _, max) = series_stats(&resampled);
    let span = (max - min).max(1e-12);
    resampled
        .iter()
        .map(|v| {
            let level = (((v - min) / span) * 7.0).round() as usize;
            SPARKS[level.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::track::TrackDef;
    use crate::{TraceReader, TraceWriter};

    fn two_core_trace() -> TraceData {
        let defs = vec![
            TrackDef::counter(TrackKind::CoreTemperature, 0, 0.1, "core0.temp_c"),
            TrackDef::counter(TrackKind::CoreTemperature, 1, 0.1, "core1.temp_c"),
            TrackDef::counter(TrackKind::Migrations, 0, 0.1, "migrations"),
        ];
        let mut w = TraceWriter::new(Vec::new(), &defs).unwrap();
        for i in 0..40 {
            let t = i as f64 * 0.1;
            w.counter(0, t, 40.0);
            w.counter(1, t, 44.0); // constant spread → σ = 2 everywhere
            w.counter(2, t, (i / 10) as f64); // one migration per second
        }
        w.finish().unwrap();
        TraceReader::read(&w.into_inner()).unwrap()
    }

    #[test]
    fn windows_cover_the_span_with_constant_sigma() {
        let data = two_core_trace();
        let windows = windowed_stats(&data, 1.0);
        assert_eq!(windows.len(), 4);
        assert_eq!(windows[0].from_s, 0.0);
        assert!((windows.last().unwrap().to_s - 3.9).abs() < 1e-9);
        for w in &windows {
            assert!((w.sigma_c - 2.0).abs() < 1e-9, "σ was {}", w.sigma_c);
        }
    }

    #[test]
    fn completed_windows_are_stable_as_the_trace_grows() {
        // Recomputing over a longer trace must not move windows a live view
        // already printed — the anchor is the first sample instant.
        let data = two_core_trace();
        let full = windowed_stats(&data, 1.0);
        let mut truncated = data.clone();
        for track in &mut truncated.tracks {
            track.times.truncate(25);
            track.values.truncate(25);
        }
        let partial = windowed_stats(&truncated, 1.0);
        assert_eq!(&full[..2], &partial[..2]);
    }

    #[test]
    fn empty_trace_yields_no_windows() {
        let defs = vec![TrackDef::counter(TrackKind::CoreTemperature, 0, 0.1, "c0")];
        let mut w = TraceWriter::new(Vec::new(), &defs).unwrap();
        w.finish().unwrap();
        let data = TraceReader::read(&w.into_inner()).unwrap();
        assert!(windowed_stats(&data, 1.0).is_empty());
    }

    #[test]
    fn sparkline_maps_extremes_to_extreme_blocks() {
        let line = sparkline(&[0.0, 1.0], 10);
        assert_eq!(line.chars().next(), Some('▁'));
        assert_eq!(line.chars().last(), Some('█'));
        assert_eq!(sparkline(&[], 10), "");
    }
}
