//! Exporters from decoded traces to interchange formats.
//!
//! Three targets:
//!
//! - [`to_perfetto_json`]: Chrome-trace JSON (the format `ui.perfetto.dev`
//!   and `chrome://tracing` open directly) — one counter track per series
//!   plus instant events for migrations and reconfigurations;
//! - [`to_legacy_json`]: the shape of the pre-obs in-memory recorder
//!   (`samples` array of per-tick structs plus `reconfigs`), for tooling
//!   written against that layout;
//! - [`to_csv`]: long-format CSV (`track,kind,index,time_s,value,label`),
//!   one row per record, trivially loadable into dataframes.

use std::fmt::Write as _;

use crate::track::{TraceData, Track, TrackKind};

/// Renders a Chrome-trace ("trace event format") JSON document.
///
/// Counter tracks become `ph:"C"` events (perfetto draws one counter lane
/// per name); each *increase* of the cumulative migration counter and each
/// reconfiguration become global `ph:"i"` instant events so discrete
/// actions line up against the thermal lanes. Timestamps are microseconds,
/// as the format requires.
pub fn to_perfetto_json(data: &TraceData) -> String {
    let mut events = Vec::new();
    for track in &data.tracks {
        if track.def.kind.is_event() {
            for (time, label) in track.times.iter().zip(&track.labels) {
                events.push(format!(
                    r#"{{"name":"{}: {}","ph":"i","s":"g","ts":{},"pid":1,"tid":1}}"#,
                    escape_json(&track.def.name),
                    escape_json(label),
                    micros(*time)
                ));
            }
            continue;
        }
        for (time, value) in track.times.iter().zip(&track.values) {
            events.push(format!(
                r#"{{"name":"{}","ph":"C","ts":{},"pid":1,"tid":1,"args":{{"value":{}}}}}"#,
                escape_json(&track.def.name),
                micros(*time),
                json_f64(*value)
            ));
        }
        if track.def.kind == TrackKind::Migrations {
            for w in track
                .times
                .iter()
                .zip(&track.values)
                .collect::<Vec<_>>()
                .windows(2)
            {
                let ((_, prev), (time, value)) = (w[0], w[1]);
                if value > prev {
                    events.push(format!(
                        r#"{{"name":"migrations +{}","ph":"i","s":"g","ts":{},"pid":1,"tid":1}}"#,
                        (*value - *prev) as u64,
                        micros(*time)
                    ));
                }
            }
        }
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}\n",
        events.join(",")
    )
}

/// Renders the legacy in-memory recorder shape: an object with `samples`
/// (one struct per sampling tick, core series re-assembled positionally)
/// and `reconfigs`.
///
/// The base time grid is the densest core-temperature track (all counter
/// tracks written by the simulator share tick times, so this loses
/// nothing); counters sampled more coarsely contribute their
/// latest-at-or-before value.
pub fn to_legacy_json(data: &TraceData) -> String {
    let temps: Vec<&Track> = data.tracks_of(TrackKind::CoreTemperature).collect();
    let freqs: Vec<&Track> = data.tracks_of(TrackKind::CoreFrequency).collect();
    let migrations = data.track(TrackKind::Migrations, 0);
    let misses = data.track(TrackKind::DeadlineMisses, 0);
    let grid: &[f64] = temps
        .iter()
        .chain(freqs.iter())
        .max_by_key(|t| t.len())
        .map(|t| t.times.as_slice())
        .unwrap_or(&[]);
    let mut out = String::from("{\"samples\":[");
    for (i, &time) in grid.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"time\":{}", json_f64(time));
        out.push_str(",\"core_temperatures\":[");
        push_series_at(&mut out, &temps, time);
        out.push_str("],\"core_frequencies_mhz\":[");
        push_series_at(&mut out, &freqs, time);
        let _ = write!(
            out,
            "],\"migrations\":{},\"deadline_misses\":{}}}",
            counter_at(migrations, time),
            counter_at(misses, time)
        );
    }
    out.push_str("],\"reconfigs\":[");
    let mut first = true;
    for track in data.tracks_of(TrackKind::Reconfig) {
        for (time, label) in track.times.iter().zip(&track.labels) {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"time\":{},\"description\":\"{}\"}}",
                json_f64(*time),
                escape_json(label)
            );
        }
    }
    out.push_str("]}\n");
    out
}

/// Renders long-format CSV: one row per record, events carrying their label
/// in the last column.
pub fn to_csv(data: &TraceData) -> String {
    let mut out = String::from("track,kind,index,time_s,value,label\n");
    for track in &data.tracks {
        for (i, time) in track.times.iter().enumerate() {
            let _ = write!(
                out,
                "{},{},{},{}",
                csv_field(&track.def.name),
                track.def.kind.label(),
                track.def.index,
                json_f64(*time)
            );
            if track.def.kind.is_event() {
                let label = track.labels.get(i).map(String::as_str).unwrap_or("");
                let _ = writeln!(out, ",,{}", csv_field(label));
            } else {
                let value = track.values.get(i).copied().unwrap_or(0.0);
                let _ = writeln!(out, ",{},", json_f64(value));
            }
        }
    }
    out
}

fn push_series_at(out: &mut String, tracks: &[&Track], time: f64) {
    for (i, track) in tracks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let value = track.value_at_or_before(time).unwrap_or(0.0);
        let _ = write!(out, "{}", json_f64(value));
    }
}

fn counter_at(track: Option<&Track>, time: f64) -> u64 {
    track
        .and_then(|t| t.value_at_or_before(time))
        .map(|v| v.max(0.0) as u64)
        .unwrap_or(0)
}

fn micros(time_s: f64) -> String {
    json_f64(time_s * 1e6)
}

/// A finite f64 as shortest-round-trip JSON; non-finite values (absent from
/// simulator output, but the format does not forbid them) degrade to 0.
fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "0".to_string()
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::track::TrackDef;

    fn demo() -> TraceData {
        let mut t0 = Track::new(TrackDef::counter(
            TrackKind::CoreTemperature,
            0,
            0.1,
            "core0.temp_c",
        ));
        t0.times = vec![0.0, 0.1, 0.2];
        t0.values = vec![40.0, 41.0, 42.0];
        let mut f0 = Track::new(TrackDef::counter(
            TrackKind::CoreFrequency,
            0,
            0.1,
            "core0.freq_mhz",
        ));
        f0.times = vec![0.0, 0.1, 0.2];
        f0.values = vec![533.0, 533.0, 266.0];
        let mut mig = Track::new(TrackDef::counter(
            TrackKind::Migrations,
            0,
            0.1,
            "migrations",
        ));
        mig.times = vec![0.0, 0.1, 0.2];
        mig.values = vec![0.0, 0.0, 2.0];
        let mut rec = Track::new(TrackDef::event(TrackKind::Reconfig, 0, "reconfig"));
        rec.times = vec![0.15];
        rec.labels = vec!["threshold=2 \"hot\"".into()];
        TraceData {
            tracks: vec![t0, f0, mig, rec],
        }
    }

    #[test]
    fn perfetto_export_has_counters_and_instants() {
        let json = to_perfetto_json(&demo());
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains(r#""name":"core0.temp_c","ph":"C""#));
        assert!(json.contains(r#""ts":100000"#)); // 0.1 s → 100 000 µs
        assert!(json.contains(r#""name":"migrations +2","ph":"i""#));
        assert!(json.contains(r#"reconfig: threshold=2 \"hot\"","ph":"i""#));
        // Crude but effective structural check: balanced braces.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn legacy_export_reassembles_per_tick_samples() {
        let json = to_legacy_json(&demo());
        assert!(json.starts_with("{\"samples\":["));
        assert!(json.contains(
            r#"{"time":0.1,"core_temperatures":[41],"core_frequencies_mhz":[533],"migrations":0,"deadline_misses":0}"#
        ));
        assert!(json.contains(r#""migrations":2"#));
        assert!(json.contains(r#""description":"threshold=2 \"hot\""#));
    }

    #[test]
    fn legacy_export_of_empty_trace_is_valid() {
        let json = to_legacy_json(&TraceData::default());
        assert_eq!(json, "{\"samples\":[],\"reconfigs\":[]}\n");
    }

    #[test]
    fn csv_export_is_long_format() {
        let csv = to_csv(&demo());
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("track,kind,index,time_s,value,label"));
        assert!(csv.contains("core0.temp_c,core_temperature,0,0.1,41,"));
        assert!(csv.contains("reconfig,reconfig,0,0.15,,\"threshold=2 \"\"hot\"\"\""));
    }

    #[test]
    fn json_escaping_and_nonfinite_degradation() {
        assert_eq!(escape_json("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(f64::INFINITY), "0");
        assert_eq!(json_f64(1.5), "1.5");
    }
}
