//! Integration tests of the live-observability layer: a concurrent
//! writer/tailer pair proving tailed samples are byte-identical to a
//! post-hoc read, runner/cache metric counts on cold and warm passes, the
//! lane-occupancy histogram on the batched path, reconfig counting on
//! phased runs — and the invariant underneath all of it: attaching metrics
//! never changes a report.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use tbp_arch::units::Seconds;
use tbp_core::scenario::{
    CacheMetrics, FsCache, PhaseSpec, Runner, RunnerMetrics, ScenarioSpec, SweepSpec,
};
use tbp_core::trace::TrackSelection;
use tbp_obs::{FileSink, MetricsRegistry, MetricsSnapshot, TraceReader, TraceTailer};
use tbp_thermal::package::PackageKind;

/// A self-cleaning temp directory.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("tbp-live-tail-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir creates");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn quick(name: &str) -> ScenarioSpec {
    ScenarioSpec::new(name)
        .with_package(PackageKind::HighPerformance)
        .with_schedule(0.5, 1.5)
}

/// The headline tailing guarantee: a tailer polling a trace file *while a
/// simulation writes it* accumulates exactly the `TraceData` a post-hoc
/// `TraceReader::read_file` sees once the writer finishes — same decode
/// machinery, so byte-identical by construction, verified end to end here.
#[test]
fn tailing_a_live_writer_matches_the_posthoc_read_exactly() {
    let dir = TempDir::new("concurrent");
    let path = dir.path().join("live.tbptrace");
    let writer_path = path.clone();

    // Writer: a real simulation streaming through a FileSink, deliberately
    // paced (segments + sleeps) so the tailer observes a half-written file.
    // A 2 ms sampling interval makes each segment land multiple chunks.
    let writer = std::thread::spawn(move || {
        let mut sim = quick("live").build().expect("spec builds");
        let sink = FileSink::create(&writer_path).expect("trace file creates");
        sim.attach_trace_sink(
            Box::new(sink),
            Seconds::from_millis(2.0),
            TrackSelection::all(),
        )
        .expect("sink attaches");
        for _ in 0..20 {
            sim.run_for(Seconds::new(0.1)).expect("segment runs");
            std::thread::sleep(Duration::from_millis(10));
        }
        sim.detach_trace_sink().expect("sink finalises");
    });

    // Tailer: retry the open until the writer creates the file, then poll
    // until the end chunk lands.
    let started = Instant::now();
    let mut tailer = loop {
        match TraceTailer::open(&path) {
            Ok(tailer) => break tailer,
            Err(_) if started.elapsed() < Duration::from_secs(30) => {
                std::thread::sleep(Duration::from_millis(2))
            }
            Err(e) => panic!("trace file never appeared: {e}"),
        }
    };
    let mut saw_partial = false;
    loop {
        let progress = tailer.poll().expect("poll never hits corruption");
        if !progress.ended && tailer.records() > 0 {
            saw_partial = true; // caught the file mid-write
        }
        if progress.ended {
            break;
        }
        assert!(
            started.elapsed() < Duration::from_secs(60),
            "writer never finished"
        );
        std::thread::sleep(Duration::from_millis(3));
    }
    writer.join().expect("writer thread succeeds");

    assert!(
        saw_partial,
        "the tailer never observed a half-written trace; the test lost its race"
    );
    let tailed = tailer.into_data().expect("ended trace converts");
    let posthoc = TraceReader::read_file(&path).expect("post-hoc read succeeds");
    assert_eq!(
        tailed, posthoc,
        "tailed samples must be identical to the finished file's content"
    );
    assert!(posthoc.total_records() > 1000, "the run traced densely");
}

fn histogram_count(snapshot: &MetricsSnapshot, name: &str) -> u64 {
    snapshot
        .histograms
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, h)| h.count)
        .expect("histogram registered")
}

/// Cold pass: every scenario is a miss (simulated, stored); warm pass over
/// the same cache: every scenario is a hit, zero simulation steps. The
/// counters mirror `RunnerStats` exactly.
#[test]
fn runner_and_cache_counters_track_cold_and_warm_passes() {
    let dir = TempDir::new("counters");
    let spec = quick("count").with_sweep(SweepSpec::default().with_thresholds([1.0, 3.0]));

    let cold_registry = MetricsRegistry::new();
    let cold = Runner::sequential()
        .with_metrics(RunnerMetrics::register(&cold_registry))
        .with_cache(
            FsCache::open(dir.path())
                .expect("cache opens")
                .with_metrics(CacheMetrics::register(&cold_registry)),
        );
    let cold_batch = cold.run_spec(&spec).expect("cold run completes");
    assert_eq!(cold_batch.len(), 2);
    let snap = cold_registry.snapshot(1.0);
    assert_eq!(snap.gauge("runner.scenarios_total"), Some(2.0));
    assert_eq!(snap.counter("runner.scenarios_completed"), Some(2));
    assert_eq!(snap.counter("runner.cache_hits"), Some(0));
    assert_eq!(snap.counter("runner.cache_misses"), Some(2));
    assert_eq!(snap.counter("cache.loads"), Some(2));
    assert_eq!(snap.counter("cache.load_hits"), Some(0));
    assert_eq!(snap.counter("cache.stores"), Some(2));
    assert!(
        snap.counter("sim.steps").unwrap() > 0,
        "simulations stepped"
    );
    // The counters agree with the runner's own accounting.
    assert_eq!(cold.stats().cache_hits, 0);
    assert_eq!(cold.stats().misses(), 2);

    let warm_registry = MetricsRegistry::new();
    let warm = Runner::sequential()
        .with_metrics(RunnerMetrics::register(&warm_registry))
        .with_cache(
            FsCache::open(dir.path())
                .expect("cache reopens")
                .with_metrics(CacheMetrics::register(&warm_registry)),
        );
    let warm_batch = warm.run_spec(&spec).expect("warm run completes");
    let snap = warm_registry.snapshot(1.0);
    assert_eq!(snap.counter("runner.scenarios_completed"), Some(2));
    assert_eq!(snap.counter("runner.cache_hits"), Some(2));
    assert_eq!(snap.counter("runner.cache_misses"), Some(0));
    assert_eq!(snap.counter("cache.load_hits"), Some(2));
    assert_eq!(snap.counter("cache.stores"), Some(0));
    assert_eq!(
        snap.counter("sim.steps"),
        Some(0),
        "warm pass simulates nothing"
    );

    // Hits re-render the cached reports: both passes report identically.
    assert_eq!(cold_batch.to_json(), warm_batch.to_json());
}

/// The batched (lane) path feeds the same counters and the lane-occupancy
/// histogram, and reports stay byte-identical with metrics attached.
#[test]
fn lane_runs_observe_occupancy_and_metrics_never_perturb_reports() {
    let spec = quick("lanes").with_sweep(SweepSpec::default().with_thresholds([1.0, 2.0, 3.0]));

    let registry = MetricsRegistry::new();
    let observed = Runner::sequential()
        .with_lanes(2)
        .with_metrics(RunnerMetrics::register(&registry))
        .run_spec(&spec)
        .expect("batched run completes");
    let snap = registry.snapshot(1.0);
    assert_eq!(snap.counter("runner.scenarios_completed"), Some(3));
    assert_eq!(snap.counter("runner.cache_misses"), Some(3));
    assert!(snap.counter("sim.steps").unwrap() > 0);
    // 3 sims over 2-wide lanes → chunks of 2 and 1 observed.
    assert_eq!(histogram_count(&snap, "runner.lane_occupancy"), 2);

    let plain = Runner::sequential()
        .with_lanes(2)
        .run_spec(&spec)
        .expect("plain run completes");
    assert_eq!(observed.to_json(), plain.to_json());
    assert_eq!(observed.to_csv(), plain.to_csv());
}

/// Mid-run policy/threshold swaps tick `sim.reconfigs`, and migrations
/// accumulate from the simulation's own accounting.
#[test]
fn phased_runs_count_reconfigs_and_migrations() {
    let spec = quick("phased").with_phases([PhaseSpec::at(1.0).with_threshold(1.5)]);
    let registry = MetricsRegistry::new();
    let batch = Runner::sequential()
        .with_metrics(RunnerMetrics::register(&registry))
        .run_spec(&spec)
        .expect("phased run completes");
    assert_eq!(batch.len(), 1);
    let snap = registry.snapshot(1.0);
    assert_eq!(snap.counter("sim.reconfigs"), Some(1));
    // The live counter covers the whole run (warmup included); the summary
    // aggregates the measured window, so the counter bounds it from above.
    let migrations = snap.counter("sim.migrations").expect("counter registered");
    let reported = batch.reports[0]
        .summary()
        .expect("simulated run has a summary")
        .migration
        .migrations;
    assert!(
        migrations >= reported,
        "live counter {migrations} lost migrations the summary reports ({reported})"
    );
}
