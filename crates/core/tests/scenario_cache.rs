//! Integration tests of the persistence-and-distribution layer: content-hash
//! stability, cache semantics (cold → warm equality, zero warm simulations)
//! and shard-merge determinism.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

use tbp_core::scenario::{
    load_dir, CacheMetrics, FsCache, MemCache, PartialReport, PlatformSpec, Runner, ScenarioHash,
    ScenarioSpec, ShardPlan, SweepSpec, WorkloadDecl, WorkloadKind,
};
use tbp_core::SimError;

use tbp_os::migration::MigrationStrategy;
use tbp_thermal::package::PackageKind;

/// A self-cleaning temp directory for filesystem caches.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("tbp-scenario-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn grid_spec(name: &str) -> ScenarioSpec {
    ScenarioSpec::new(name).with_schedule(0.5, 1.0).with_sweep(
        SweepSpec::default()
            .with_packages([PackageKind::MobileEmbedded, PackageKind::HighPerformance])
            .with_policies(["thermal-balancing", "stop-and-go"])
            .with_thresholds([1.0, 3.0]),
    )
}

#[test]
fn hash_is_stable_across_field_reordering() {
    // The same scenario written twice: tables and keys in different orders.
    let a = ScenarioSpec::from_toml_str(
        r#"
        name = "order-a"
        package = "HighPerformance"

        [policy]
        name = "stop-and-go"
        threshold = 2.0

        [schedule]
        warmup = 1.0
        duration = 2.0

        [workload]
        queue_capacity = 11
        prefill = 5
        "#,
    )
    .expect("valid TOML");
    let b = ScenarioSpec::from_toml_str(
        r#"
        package = "HighPerformance"
        name = "order-b"

        [workload]
        prefill = 5
        queue_capacity = 11

        [schedule]
        duration = 2.0
        warmup = 1.0

        [policy]
        threshold = 2.0
        name = "stop-and-go"
        "#,
    )
    .expect("valid TOML");
    assert_eq!(
        ScenarioHash::of(&a).unwrap(),
        ScenarioHash::of(&b).unwrap(),
        "field order (and the scenario name) must not change the hash"
    );
    // Hashing is also stable across serialization round-trips.
    let round_tripped = ScenarioSpec::from_toml_str(&a.to_toml_string()).unwrap();
    assert_eq!(
        ScenarioHash::of(&a).unwrap(),
        ScenarioHash::of(&round_tripped).unwrap()
    );
}

#[test]
fn hash_changes_on_any_semantic_field_change() {
    let base = ScenarioSpec::new("base")
        .with_package(PackageKind::MobileEmbedded)
        .with_policy("thermal-balancing", 3.0)
        .with_workload(WorkloadDecl::sdr_with_queue(11))
        .with_schedule(1.0, 2.0);
    let variants: Vec<ScenarioSpec> = vec![
        base.clone().with_package(PackageKind::HighPerformance),
        base.clone().with_policy("stop-and-go", 3.0),
        base.clone().with_policy("thermal-balancing", 2.0),
        base.clone().with_workload(WorkloadDecl::sdr_with_queue(7)),
        base.clone().with_workload(WorkloadDecl {
            kind: Some(WorkloadKind::Synthetic),
            ..WorkloadDecl::default()
        }),
        base.clone().with_schedule(0.5, 2.0),
        base.clone().with_schedule(1.0, 4.0),
        {
            let mut spec = base.clone();
            spec.platform = Some(PlatformSpec {
                cores: Some(4),
                ..PlatformSpec::default()
            });
            spec
        },
        {
            let mut spec = base.clone();
            spec.platform = Some(PlatformSpec {
                arm11: Some(true),
                ..PlatformSpec::default()
            });
            spec
        },
        {
            let mut spec = base.clone();
            spec.platform = Some(PlatformSpec {
                dvfs: Some(false),
                ..PlatformSpec::default()
            });
            spec
        },
        {
            let mut spec = base.clone();
            spec.platform = Some(PlatformSpec {
                migration: Some(MigrationStrategy::TaskRecreation),
                ..PlatformSpec::default()
            });
            spec
        },
        {
            let mut spec = base.clone();
            let mut schedule = spec.schedule.clone().unwrap();
            schedule.time_step_ms = Some(2.5);
            spec.schedule = Some(schedule);
            spec
        },
    ];
    let base_hash = ScenarioHash::of(&base).unwrap();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    seen.insert(base_hash.to_hex());
    for variant in &variants {
        let hash = ScenarioHash::of(variant).unwrap();
        assert_ne!(
            hash, base_hash,
            "variant must hash differently: {variant:?}"
        );
        assert!(
            seen.insert(hash.to_hex()),
            "two distinct variants collided: {variant:?}"
        );
    }
    // Defaulted-but-absent and explicitly-set sections are distinct specs.
    let explicit = base.clone().with_schedule(8.0, 20.0);
    assert_ne!(ScenarioHash::of(&explicit).unwrap(), base_hash);
}

#[test]
fn sweep_carrying_specs_refuse_to_hash() {
    let spec = grid_spec("swept");
    assert!(matches!(spec.content_hash(), Err(SimError::Spec(_))));
    for case in spec.expand() {
        case.content_hash().expect("expanded cases are concrete");
    }
}

#[test]
fn cold_then_warm_runs_are_byte_identical_and_simulate_nothing() {
    let tmp = TempDir::new("cold-warm");
    let spec = grid_spec("cache");
    let cache = Arc::new(FsCache::open(&tmp.0).expect("cache opens"));

    let cold_runner = Runner::new().with_cache_arc(cache.clone());
    let cold = cold_runner.run_spec(&spec).expect("cold batch runs");
    let cold_stats = cold_runner.stats();
    assert_eq!(cold.len(), 8);
    assert_eq!(cold_stats.simulated, 8, "cold run simulates every case");
    assert_eq!(cache.len(), 8, "every report is persisted");

    // A *fresh* runner over the same directory: everything comes from disk.
    let warm_runner = Runner::new().with_cache_arc(cache.clone());
    let warm = warm_runner.run_spec(&spec).expect("warm batch runs");
    let warm_stats = warm_runner.stats();
    assert_eq!(warm_stats.simulated, 0, "warm run must not simulate");
    assert_eq!(warm_stats.analytic, 0);
    assert_eq!(warm_stats.cache_hits, 8);
    assert_eq!(warm.to_json(), cold.to_json(), "reports are byte-identical");
    assert_eq!(warm.to_csv(), cold.to_csv());
}

#[test]
fn torn_cache_entry_is_quarantined_and_resimulates_byte_identically() {
    let tmp = TempDir::new("torn-entry");
    let spec = grid_spec("torn");
    let registry = tbp_obs::MetricsRegistry::new();
    let open = |registry: &tbp_obs::MetricsRegistry| {
        Arc::new(
            FsCache::open(&tmp.0)
                .expect("cache opens")
                .with_metrics(CacheMetrics::register(registry)),
        )
    };

    let cold_runner = Runner::new().with_cache_arc(open(&registry));
    let cold = cold_runner.run_spec(&spec).expect("cold batch runs");
    assert_eq!(cold_runner.stats().simulated, 8);

    // Tear one entry in half — what a crash mid-`store` on a filesystem
    // without atomic rename (or a torn copy between hosts) leaves behind.
    let mut entries: Vec<_> = std::fs::read_dir(&tmp.0)
        .expect("cache dir lists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    entries.sort();
    let victim = entries.first().expect("cache has entries").clone();
    let intact = std::fs::read_to_string(&victim).expect("entry reads");
    std::fs::write(&victim, &intact[..intact.len() / 2]).expect("entry tears");

    let warm_runner = Runner::new().with_cache_arc(open(&registry));
    let warm = warm_runner
        .run_spec(&spec)
        .expect("warm batch survives the torn entry");
    let stats = warm_runner.stats();
    assert_eq!(stats.simulated, 1, "only the torn scenario re-simulates");
    assert_eq!(stats.cache_hits, 7);
    assert_eq!(warm.to_json(), cold.to_json(), "output is byte-identical");
    assert_eq!(warm.to_csv(), cold.to_csv());

    let snapshot = registry.snapshot(0.0);
    assert_eq!(snapshot.counter("cache.load_corrupt"), Some(1));
    let quarantined: Vec<_> = std::fs::read_dir(&tmp.0)
        .expect("cache dir lists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "corrupt"))
        .collect();
    assert_eq!(quarantined.len(), 1, "torn entry moved to <hash>.corrupt");

    // The re-simulation restored the entry: a third run is fully warm.
    let third_runner = Runner::new().with_cache_arc(open(&registry));
    let third = third_runner.run_spec(&spec).expect("third batch runs");
    assert_eq!(third_runner.stats().simulated, 0);
    assert_eq!(third.to_json(), cold.to_json());
}

#[test]
fn warm_cache_rerun_of_every_shipped_scenario_performs_zero_simulations() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
    let specs: Vec<ScenarioSpec> = load_dir(&dir)
        .expect("scenarios/ loads")
        .into_iter()
        .map(|spec| {
            if spec.analysis.is_some() {
                spec
            } else {
                // Shorten the paper's 8 s + 20 s schedule; the cache semantics
                // under test are schedule-independent.
                spec.with_schedule(0.2, 0.5)
            }
        })
        .collect();
    assert_eq!(
        specs.len(),
        10,
        "seven paper scenarios, two cross-workload ones, one phased"
    );

    let cache = Arc::new(MemCache::new());
    let cold_runner = Runner::new().with_cache_arc(cache.clone());
    let cold = cold_runner.run(&specs).expect("cold paper batch runs");
    assert!(cold_runner.stats().simulated > 0);
    assert!(cold_runner.stats().analytic > 0);

    let warm_runner = Runner::new().with_cache_arc(cache);
    let warm = warm_runner.run(&specs).expect("warm paper batch runs");
    let stats = warm_runner.stats();
    assert_eq!(
        (stats.simulated, stats.analytic),
        (0, 0),
        "a warm re-run of the shipped scenarios must execute nothing"
    );
    assert_eq!(stats.cache_hits, cold.len() as u64);
    assert_eq!(warm.to_json(), cold.to_json());
}

#[test]
fn renaming_a_scenario_reuses_its_cached_runs() {
    let cache = Arc::new(MemCache::new());
    let original = grid_spec("old-name");
    let runner = Runner::new().with_cache_arc(cache.clone());
    runner.run_spec(&original).expect("cold batch runs");

    let mut renamed = original.clone();
    renamed.name = "new-name".to_string();
    let warm_runner = Runner::new().with_cache_arc(cache);
    let warm = warm_runner.run_spec(&renamed).expect("renamed batch runs");
    assert_eq!(warm_runner.stats().simulated, 0);
    assert!(warm
        .reports
        .iter()
        .all(|r| r.group == "new-name" && r.scenario.starts_with("new-name[")));
}

#[test]
fn shard_merge_is_byte_identical_to_a_single_process_run() {
    let specs = [
        grid_spec("shard-grid"),
        ScenarioSpec::new("shard-solo")
            .with_package(PackageKind::HighPerformance)
            .with_policy("dvfs-only", 2.0)
            .with_schedule(0.5, 1.0),
    ];
    let single = Runner::new()
        .run(&specs)
        .expect("single-process batch runs");
    assert_eq!(single.len(), 9);

    // Three independent workers, each with its own runner (as separate
    // processes would have), collected out of order.
    let mut partials: Vec<PartialReport> = [3usize, 1, 2]
        .iter()
        .map(|&index| {
            Runner::new()
                .run_shard(&specs, ShardPlan::new(index, 3).unwrap())
                .expect("shard runs")
        })
        .collect();
    assert_eq!(
        partials.iter().map(|p| p.reports.len()).sum::<usize>(),
        single.len()
    );
    // Partials survive their on-disk JSON form.
    partials = partials
        .iter()
        .map(|p| PartialReport::from_json_str(&p.to_json()).expect("partial round-trips"))
        .collect();
    let merged = PartialReport::merge(partials).expect("complete set merges");
    assert_eq!(merged.to_json(), single.to_json());
    assert_eq!(merged.to_csv(), single.to_csv());
}

#[test]
fn partials_from_different_batches_refuse_to_merge() {
    // The same scenario at two durations — the classic mixed-TBP_DURATION
    // mistake. Each worker believes it ran shard i of 2 of "the" batch.
    let short = grid_spec("mixed");
    let long = grid_spec("mixed").with_schedule(0.5, 2.0);
    let p1 = Runner::new()
        .run_shard(std::slice::from_ref(&short), ShardPlan::new(1, 2).unwrap())
        .expect("shard of the short batch runs");
    let p2 = Runner::new()
        .run_shard(std::slice::from_ref(&long), ShardPlan::new(2, 2).unwrap())
        .expect("shard of the long batch runs");
    let err = PartialReport::merge(vec![p1, p2]).unwrap_err();
    assert!(err.to_string().contains("different batch"), "{err}");
}

#[test]
fn shards_sharing_a_cache_make_the_full_batch_free() {
    let tmp = TempDir::new("shard-cache");
    let spec = grid_spec("shard-warm");
    let cache = Arc::new(FsCache::open(&tmp.0).expect("cache opens"));

    // Two shard workers populate a common cache directory...
    for index in 1..=2 {
        Runner::new()
            .with_cache_arc(cache.clone())
            .run_shard(
                std::slice::from_ref(&spec),
                ShardPlan::new(index, 2).unwrap(),
            )
            .expect("shard runs");
    }
    // ...after which the unsharded batch is answered entirely from disk.
    let runner = Runner::new().with_cache_arc(cache);
    let warm = runner.run_spec(&spec).expect("warm batch runs");
    assert_eq!(runner.stats().simulated, 0);
    assert_eq!(runner.stats().cache_hits, warm.len() as u64);
    let uncached = Runner::new().run_spec(&spec).expect("reference batch runs");
    assert_eq!(warm.to_json(), uncached.to_json());
}

// ---------------------------------------------------------------------------
// Property tests: shard plans and partial-report merging under randomised
// shard counts, arrival orders and cache states (PR 7 satellite).
// ---------------------------------------------------------------------------

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Shard ranges partition `0..total` contiguously, in order, for every
    /// shard count — including `k = 1` (the degenerate single-shard plan)
    /// and `k > total` (trailing shards come out empty).
    #[test]
    fn shard_ranges_partition_any_batch(total in 0usize..40, k in 1usize..12) {
        let mut next = 0usize;
        for index in 1..=k {
            let range = ShardPlan::new(index, k).unwrap().range(total);
            prop_assert_eq!(range.start, next, "gap or overlap at shard {}/{}", index, k);
            prop_assert!(range.end >= range.start);
            next = range.end;
        }
        prop_assert_eq!(next, total, "shards must cover the whole batch");
    }

    /// Merging a complete set of partials is byte-identical to the single
    /// process run for any shard count and any arrival order. `k = 1`
    /// exercises the single-partial merge; `k` beyond the run count (the
    /// grid expands to 8 runs) exercises empty shards; the rotation models
    /// out-of-order arrival from racing workers.
    #[test]
    fn sharded_merge_matches_single_run_bytes(k in 1usize..=10, rot in 0usize..10) {
        let spec = grid_spec("prop-shard");
        let single = Runner::new()
            .run_spec(&spec)
            .expect("single-process batch runs");
        let mut partials: Vec<PartialReport> = (1..=k)
            .map(|index| {
                Runner::new()
                    .run_shard(
                        std::slice::from_ref(&spec),
                        ShardPlan::new(index, k).unwrap(),
                    )
                    .expect("shard runs")
            })
            .collect();
        partials.rotate_left(rot % k);
        let merged = PartialReport::merge(partials).expect("complete set merges");
        prop_assert_eq!(merged.to_csv(), single.to_csv());
        prop_assert_eq!(merged.to_json(), single.to_json());
    }

    /// A shard answered entirely from a warm cache merges byte-identically
    /// with cold shards: cache hits relabel stored reports instead of
    /// simulating, and the merge cannot tell the difference.
    #[test]
    fn all_cache_hit_shard_merges_like_a_cold_one(warm_index in 1usize..=3) {
        let spec = grid_spec("prop-warm-shard");
        let k = 3usize;
        let cache: Arc<MemCache> = Arc::new(MemCache::new());
        let plan = ShardPlan::new(warm_index, k).unwrap();

        // Populate the cache with exactly the warm shard's slice...
        Runner::new()
            .with_cache_arc(cache.clone())
            .run_shard(std::slice::from_ref(&spec), plan)
            .expect("cold populating shard runs");

        // ...then produce that shard again purely from cache.
        let warm_runner = Runner::new().with_cache_arc(cache);
        let warm = warm_runner
            .run_shard(std::slice::from_ref(&spec), plan)
            .expect("warm shard runs");
        prop_assert_eq!(warm_runner.stats().misses(), 0);
        prop_assert!(warm_runner.stats().cache_hits > 0);

        let partials: Vec<PartialReport> = (1..=k)
            .map(|index| {
                if index == warm_index {
                    warm.clone()
                } else {
                    Runner::new()
                        .run_shard(
                            std::slice::from_ref(&spec),
                            ShardPlan::new(index, k).unwrap(),
                        )
                        .expect("cold shard runs")
                }
            })
            .collect();
        let merged = PartialReport::merge(partials).expect("mixed set merges");
        let single = Runner::new().run_spec(&spec).expect("reference runs");
        prop_assert_eq!(merged.to_csv(), single.to_csv());
    }

    /// JSON round-tripping a partial (the on-disk worker hand-off format)
    /// never changes the merged bytes.
    #[test]
    fn partial_json_roundtrip_preserves_merge_bytes(k in 1usize..=4) {
        let spec = grid_spec("prop-roundtrip");
        let partials: Vec<PartialReport> = (1..=k)
            .map(|index| {
                let p = Runner::new()
                    .run_shard(
                        std::slice::from_ref(&spec),
                        ShardPlan::new(index, k).unwrap(),
                    )
                    .expect("shard runs");
                PartialReport::from_json_str(&p.to_json()).expect("partial round-trips")
            })
            .collect();
        let merged = PartialReport::merge(partials).expect("round-tripped set merges");
        let single = Runner::new().run_spec(&spec).expect("reference runs");
        prop_assert_eq!(merged.to_csv(), single.to_csv());
    }
}
