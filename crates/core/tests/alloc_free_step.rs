//! Counting-allocator proof that the steady-state simulation step is
//! allocation-free.
//!
//! This test binary installs a `#[global_allocator]` that counts every
//! allocation, then drives full simulations (SDR and DAG workloads, Euler
//! and RK4 solvers, policy enabled) past their warm-up and asserts that a
//! window of steady-state [`Simulation::step`] calls performs **zero** heap
//! allocations. This is the property the PR 4 hot-loop rework establishes:
//! all per-step buffers live in reusable workspaces/scratch structs.
//!
//! The in-memory trace recorder is disabled in the measured configuration —
//! a recorder *stores* samples, and retaining data inherently allocates. A
//! file-backed observability sink, by contrast, must uphold the guarantee
//! (its chunk buffer is preallocated and flushed in place), so a fourth case
//! measures the loop with one attached — and a fifth with live metrics
//! counters attached (registration allocates, relaxed atomic updates never
//! do). Everything else runs exactly as in a real experiment.
//!
//! The counter is process-global, so this file contains a single `#[test]`
//! (integration tests compile to their own binary; the libtest harness would
//! otherwise interleave counts from concurrently running tests).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use tbp_arch::units::Seconds;
use tbp_core::sim::builder::Workload;
use tbp_core::sim::{LaneBatch, Simulation, SimulationBuilder, SimulationConfig};
use tbp_thermal::package::Package;
use tbp_thermal::solver::SolverKind;

/// A [`System`] wrapper that counts allocations (not deallocations — a
/// steady-state step must not free either, but frees of empty collections
/// never call the allocator anyway, so counting `alloc`/`realloc` is the
/// signal that matters).
///
/// Counting is gated on a `const`-initialised thread-local so only the
/// *test thread's* allocations are measured: the libtest harness keeps its
/// own main thread alive alongside the test, and its occasional bookkeeping
/// allocations would otherwise land inside the measured window and fail the
/// assertion spuriously (observed as a rare "allocated 2 times" flake). The
/// const initialiser matters — a lazily initialised thread-local would
/// itself allocate on first access from the allocator hooks.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static COUNTING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn counting_here() -> bool {
    COUNTING.try_with(|c| c.get()).unwrap_or(false)
}

// SAFETY: pure pass-through to `System`; the only extra work is a lock-free
// counter bump, so `System`'s layout/ptr contracts are forwarded unchanged.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller upholds `GlobalAlloc`'s contract; forwarded verbatim.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_here() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: same layout the caller passed in.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds `GlobalAlloc`'s contract; forwarded verbatim.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from `System.alloc` with this same layout.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller upholds `GlobalAlloc`'s contract; forwarded verbatim.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_here() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: `ptr`, `layout` and `new_size` forwarded unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Starts counting this thread's allocations and returns the baseline.
fn allocations() -> u64 {
    COUNTING.with(|c| c.set(true));
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn build(package: Package, solver: SolverKind, workload: Workload) -> Simulation {
    SimulationBuilder::new()
        .with_package(package)
        .with_solver(solver)
        .with_workload(workload)
        .with_config(SimulationConfig {
            // Tracing retains data and therefore allocates by design; the
            // step loop itself must not.
            trace_interval: None,
            ..SimulationConfig::paper_default()
        })
        .build()
        .expect("simulation builds")
}

#[test]
fn steady_state_step_performs_zero_heap_allocations() {
    let cases: Vec<(&str, Simulation)> = vec![
        (
            "mobile_euler_sdr",
            build(
                Package::mobile_embedded(),
                SolverKind::ForwardEuler,
                Workload::sdr(),
            ),
        ),
        (
            "hiperf_rk4_sdr",
            build(
                Package::high_performance(),
                SolverKind::RungeKutta4,
                Workload::sdr(),
            ),
        ),
        (
            "mobile_euler_dag",
            build(
                Package::mobile_embedded(),
                SolverKind::ForwardEuler,
                Workload::generated("dag"),
            ),
        ),
    ];
    for (name, mut sim) in cases {
        // Warm-up: past the policy warm-up (8 s) and long enough that every
        // scratch buffer, queue and run-queue vector has reached its
        // steady-state capacity.
        sim.run_for(Seconds::new(9.0)).expect("warm-up runs");

        // Measure a long steady-state window: 4 000 steps = 20 s simulated,
        // covering sensor samples, policy invocations and daemon statistics
        // reports (100 ms period) many times over.
        let before = allocations();
        for _ in 0..4_000 {
            sim.step().expect("steady-state step");
        }
        let after = allocations();
        assert_eq!(
            after - before,
            0,
            "{name}: steady-state Simulation::step allocated {} times in 4000 steps",
            after - before
        );
        // The simulation still works after the measured window (the counter
        // did not trade correctness for silence).
        assert!(sim.elapsed().as_secs() > 28.0);
    }

    // A file-backed observability sink must not break the guarantee: its
    // chunk buffer is preallocated at attach time and flushed to the OS in
    // place, so feeding every track each sampling tick stays allocation-free.
    let path = std::env::temp_dir().join("tbp_alloc_free_step.tbptrace");
    let mut sim = build(
        Package::mobile_embedded(),
        SolverKind::ForwardEuler,
        Workload::sdr(),
    );
    sim.attach_trace_sink(
        Box::new(tbp_obs::FileSink::create(&path).expect("trace file creates")),
        Seconds::from_millis(10.0),
        tbp_core::trace::TrackSelection::all(),
    )
    .expect("sink attaches");
    sim.run_for(Seconds::new(9.0)).expect("warm-up runs");
    let before = allocations();
    for _ in 0..4_000 {
        sim.step().expect("steady-state step with sink");
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "file-sink: steady-state Simulation::step allocated {} times in 4000 steps",
        after - before
    );
    sim.detach_trace_sink().expect("sink finalises");
    // The emitted trace is complete and readable.
    let data = tbp_obs::TraceReader::read_file(&path).expect("trace decodes");
    assert!(data.total_records() > 0);
    let _ = std::fs::remove_file(&path);

    // Live metrics must be free too: attaching a `SimMetrics` set adds a
    // handful of relaxed atomic ops per step — registration allocates once
    // up front, updates never do.
    let registry = tbp_obs::MetricsRegistry::new();
    let sim_metrics = tbp_core::sim::SimMetrics::register(&registry);
    let mut sim = build(
        Package::mobile_embedded(),
        SolverKind::ForwardEuler,
        Workload::sdr(),
    );
    sim.attach_metrics(sim_metrics);
    sim.run_for(Seconds::new(9.0)).expect("warm-up runs");
    let before = allocations();
    for _ in 0..4_000 {
        sim.step().expect("steady-state step with metrics");
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "metrics: steady-state Simulation::step allocated {} times in 4000 steps",
        after - before
    );
    // The counters really observed the measured window.
    let snapshot = registry.snapshot(0.0);
    assert!(snapshot.counter("sim.steps").unwrap() >= 4_000);

    // The batched engine inherits the guarantee: a 4-lane LaneBatch steps
    // its lane-strided thermal kernel and all four per-lane stacks without
    // touching the allocator once warm.
    let sims: Vec<Simulation> = (0..4)
        .map(|_| {
            build(
                Package::high_performance(),
                SolverKind::RungeKutta4,
                Workload::sdr(),
            )
        })
        .collect();
    let mut batch = LaneBatch::new(sims).expect("lane batch forms");
    batch.run_steps(1_800).expect("warm-up runs"); // 9 s at the 5 ms step
    let before = allocations();
    batch.run_steps(4_000).expect("steady-state batch steps");
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "lane-batch: steady-state LaneBatch::step allocated {} times in 4000 steps",
        after - before
    );
    assert!(batch.lane(0).expect("lane accessible").elapsed().as_secs() > 28.0);

    // And with a file sink attached to one lane: the sink's preallocated
    // chunk buffer keeps the batched loop allocation-free too.
    let lane_path = std::env::temp_dir().join("tbp_alloc_free_lane.tbptrace");
    let sims: Vec<Simulation> = (0..4)
        .map(|_| {
            build(
                Package::mobile_embedded(),
                SolverKind::ForwardEuler,
                Workload::sdr(),
            )
        })
        .collect();
    let mut batch = LaneBatch::new(sims).expect("lane batch forms");
    batch
        .lane_mut(2)
        .expect("lane accessible")
        .attach_trace_sink(
            Box::new(tbp_obs::FileSink::create(&lane_path).expect("trace file creates")),
            Seconds::from_millis(10.0),
            tbp_core::trace::TrackSelection::all(),
        )
        .expect("sink attaches");
    batch.run_steps(1_800).expect("warm-up runs");
    let before = allocations();
    batch
        .run_steps(4_000)
        .expect("steady-state batch steps with sink");
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "lane-batch file-sink: LaneBatch::step allocated {} times in 4000 steps",
        after - before
    );
    batch
        .lane_mut(2)
        .expect("lane accessible")
        .detach_trace_sink()
        .expect("sink finalises");
    let data = tbp_obs::TraceReader::read_file(&lane_path).expect("trace decodes");
    assert!(data.total_records() > 0);
    let _ = std::fs::remove_file(&lane_path);
}
