//! Integration tests of the observability subsystem: file-backed binary
//! traces from full simulations (determinism, losslessness, track
//! selection), reconfiguration events flowing to the sink, the `[trace]`
//! spec table (parse + hash invariance), runner trace emission, and
//! cache round-trips of summaries carrying the new accounting fields.

use std::path::{Path, PathBuf};

use tbp_core::scenario::{
    FsCache, PhaseSpec, Runner, ScenarioHash, ScenarioSpec, SweepSpec, TraceSpec,
};
use tbp_core::sim::Simulation;
use tbp_core::trace::TrackSelection;
use tbp_obs::{FileSink, TraceReader, TrackKind};

use tbp_arch::units::Seconds;
use tbp_thermal::package::PackageKind;

/// A self-cleaning temp directory for trace files and caches.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("tbp-trace-obs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir creates");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A quick spec (short schedule keeps tests fast).
fn quick(name: &str) -> ScenarioSpec {
    ScenarioSpec::new(name)
        .with_package(PackageKind::HighPerformance)
        .with_schedule(0.5, 1.5)
}

fn build(spec: &ScenarioSpec) -> Simulation {
    spec.build().expect("spec builds")
}

fn attach_file(sim: &mut Simulation, path: &Path, interval_ms: f64, selection: TrackSelection) {
    let sink = FileSink::create(path).expect("trace file creates");
    sim.attach_trace_sink(Box::new(sink), Seconds::from_millis(interval_ms), selection)
        .expect("sink attaches");
}

#[test]
fn file_sink_traces_are_deterministic_and_lossless() {
    let dir = TempDir::new("determinism");
    let spec = quick("det");
    let run = |path: &Path| {
        let mut sim = build(&spec);
        attach_file(&mut sim, path, 50.0, TrackSelection::all());
        sim.run_for(Seconds::new(2.0)).expect("run completes");
        sim.detach_trace_sink().expect("sink finalises");
    };
    let a = dir.path().join("a.tbptrace");
    let b = dir.path().join("b.tbptrace");
    run(&a);
    run(&b);
    let bytes_a = std::fs::read(&a).expect("trace a reads");
    let bytes_b = std::fs::read(&b).expect("trace b reads");
    assert!(!bytes_a.is_empty());
    assert_eq!(bytes_a, bytes_b, "same spec + seed must trace identically");

    let data = TraceReader::read(&bytes_a).expect("trace decodes");
    // The paper's platform has 3 cores: 3 temp + 3 freq tracks, the two
    // counters, the SDR pipeline's queues, and the reconfig event track.
    assert_eq!(data.tracks_of(TrackKind::CoreTemperature).count(), 3);
    assert_eq!(data.tracks_of(TrackKind::CoreFrequency).count(), 3);
    assert!(data.track(TrackKind::Migrations, 0).is_some());
    assert!(data.track(TrackKind::DeadlineMisses, 0).is_some());
    assert!(data.tracks_of(TrackKind::QueueDepth).count() > 0);
    assert!(data.track(TrackKind::Reconfig, 0).is_some());
    // 2 s at 50 ms → 40 samples per counter track, first at t = 0.
    let temps = data.track(TrackKind::CoreTemperature, 0).unwrap();
    assert_eq!(temps.len(), 40);
    assert_eq!(temps.times[0], 0.0);
    // Temperatures are physical: between ambient and the throttling range.
    assert!(temps.values.iter().all(|&t| (20.0..120.0).contains(&t)));
}

#[test]
fn track_selection_narrows_the_table() {
    let dir = TempDir::new("selection");
    let path = dir.path().join("narrow.tbptrace");
    let mut sim = build(&quick("narrow"));
    let selection = TrackSelection {
        temperatures: true,
        reconfigs: true,
        ..TrackSelection::none()
    };
    attach_file(&mut sim, &path, 100.0, selection);
    sim.run_for(Seconds::new(1.0)).expect("run completes");
    sim.detach_trace_sink().expect("sink finalises");
    let data = TraceReader::read_file(&path).expect("trace decodes");
    assert_eq!(data.tracks_of(TrackKind::CoreTemperature).count(), 3);
    assert_eq!(data.tracks_of(TrackKind::Reconfig).count(), 1);
    assert_eq!(data.tracks_of(TrackKind::CoreFrequency).count(), 0);
    assert_eq!(data.tracks_of(TrackKind::Migrations).count(), 0);
    assert_eq!(data.tracks_of(TrackKind::QueueDepth).count(), 0);
}

#[test]
fn reconfig_events_reach_the_sink() {
    use tbp_core::scenario::SpecDelta;
    let dir = TempDir::new("reconfig");
    let path = dir.path().join("events.tbptrace");
    let mut sim = build(&quick("events"));
    attach_file(&mut sim, &path, 100.0, TrackSelection::all());
    sim.run_for(Seconds::new(0.5)).expect("first segment runs");
    sim.apply_delta(&SpecDelta::new().with_threshold(1.5))
        .expect("delta applies");
    sim.run_for(Seconds::new(0.5)).expect("second segment runs");
    sim.detach_trace_sink().expect("sink finalises");
    let data = TraceReader::read_file(&path).expect("trace decodes");
    let events = data.track(TrackKind::Reconfig, 0).expect("event track");
    assert_eq!(events.labels, vec!["threshold=1.5".to_string()]);
    assert!((events.times[0] - 0.5).abs() < 0.01);
}

#[test]
fn attach_validates_interval_and_rejects_double_attach() {
    let dir = TempDir::new("validate");
    let mut sim = build(&quick("validate"));
    // Detaching with nothing attached is a harmless no-op.
    assert!(!sim.has_trace_sink());
    sim.detach_trace_sink().expect("no-op detach");
    // Non-positive and non-finite intervals are rejected.
    for bad in [0.0, -1.0, f64::INFINITY, f64::NAN] {
        let sink = FileSink::create(dir.path().join("bad.tbptrace")).unwrap();
        assert!(sim
            .attach_trace_sink(Box::new(sink), Seconds::new(bad), TrackSelection::all())
            .is_err());
    }
    assert!(!sim.has_trace_sink());
    // A second sink cannot shadow the first.
    attach_file(
        &mut sim,
        &dir.path().join("first.tbptrace"),
        100.0,
        TrackSelection::all(),
    );
    assert!(sim.has_trace_sink());
    let second = FileSink::create(dir.path().join("second.tbptrace")).unwrap();
    assert!(sim
        .attach_trace_sink(
            Box::new(second),
            Seconds::from_millis(100.0),
            TrackSelection::all()
        )
        .is_err());
    sim.detach_trace_sink().expect("sink finalises");
    assert!(!sim.has_trace_sink());
}

#[test]
fn trace_spec_toml_parses_and_hash_is_invariant() {
    let plain: ScenarioSpec = toml::from_str(
        r#"
        name = "t"

        [schedule]
        warmup = 0.5
        duration = 1.0
        "#,
    )
    .expect("plain spec parses");
    let traced: ScenarioSpec = toml::from_str(
        r#"
        name = "t"

        [schedule]
        warmup = 0.5
        duration = 1.0

        [trace]
        interval_ms = 25.0
        tracks = ["temperatures", "queue_depths"]
        "#,
    )
    .expect("traced spec parses");
    let table = traced.trace.as_ref().expect("trace table present");
    assert_eq!(table.interval().unwrap(), Seconds::from_millis(25.0));
    let selection = table.selection().unwrap();
    assert!(selection.temperatures && selection.queue_depths);
    assert!(!selection.frequencies && !selection.reconfigs);
    // The table must not move the cache key.
    assert_eq!(
        ScenarioHash::of(&plain).unwrap(),
        ScenarioHash::of(&traced).unwrap()
    );
    // Defaults: absent table fields mean 100 ms, all tracks.
    let defaults = TraceSpec::default();
    assert_eq!(defaults.interval().unwrap(), Seconds::from_millis(100.0));
    assert_eq!(defaults.selection().unwrap(), TrackSelection::all());
    // Unknown groups and bad intervals are rejected with a message naming
    // the problem.
    let bad = TraceSpec {
        interval_ms: None,
        tracks: Some(vec!["temperature".into()]),
    };
    let err = bad.selection().unwrap_err().to_string();
    assert!(err.contains("unknown track group `temperature`"), "{err}");
    let bad = TraceSpec {
        interval_ms: Some(-5.0),
        tracks: None,
    };
    assert!(bad.interval().is_err());
}

#[test]
fn runner_emits_one_trace_per_simulated_run() {
    let dir = TempDir::new("runner");
    let traces = dir.path().join("traces");
    let mut spec = quick("sweep").with_sweep(SweepSpec::default().with_thresholds([1.0, 3.0]));
    spec.trace = Some(TraceSpec {
        interval_ms: Some(50.0),
        tracks: None,
    });
    let batch = Runner::sequential()
        .with_trace_dir(&traces)
        .run_spec(&spec)
        .expect("sweep runs");
    assert_eq!(batch.len(), 2);
    // One file per expanded scenario, named after it (brackets sanitised).
    let mut files: Vec<String> = std::fs::read_dir(&traces)
        .expect("trace dir exists")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    files.sort();
    assert_eq!(files, vec!["sweep_t1_.tbptrace", "sweep_t3_.tbptrace"]);
    for file in &files {
        let data = TraceReader::read_file(traces.join(file)).expect("trace decodes");
        assert!(data.total_records() > 0);
        assert_eq!(data.tracks_of(TrackKind::CoreTemperature).count(), 3);
    }
    // The CSV carries the decimation accounting column.
    let csv = batch.to_csv();
    let header = csv.lines().next().unwrap();
    assert!(header.ends_with(",measured_s,trace_dropped"), "{header}");
    for row in csv.lines().skip(1) {
        assert!(row.ends_with(",0"), "no run saturated its recorder: {row}");
    }
}

#[test]
fn traced_and_untraced_runs_report_identically() {
    // Tracing must observe, never perturb: with and without a trace dir the
    // reports (JSON and CSV) are byte-identical.
    let dir = TempDir::new("equivalence");
    let spec = quick("equiv").with_phases([PhaseSpec::at(1.0).with_threshold(1.5)]);
    let with_trace = Runner::sequential()
        .with_trace_dir(dir.path().join("traces"))
        .run_spec(&spec)
        .expect("traced run completes");
    let without = Runner::sequential()
        .run_spec(&spec)
        .expect("untraced run completes");
    assert_eq!(with_trace.to_json(), without.to_json());
    assert_eq!(with_trace.to_csv(), without.to_csv());
    // The phased run's delta shows up in the trace as an event.
    let data =
        TraceReader::read_file(dir.path().join("traces/equiv.tbptrace")).expect("trace decodes");
    let events = data.track(TrackKind::Reconfig, 0).expect("event track");
    assert_eq!(events.labels, vec!["threshold=1.5".to_string()]);
}

#[test]
fn summaries_round_trip_through_fscache_with_tracing_disabled() {
    // Regression for the disabled-recorder serde hazard: a run whose
    // schedule disables tracing (`trace_interval_ms = 0`) produces a report
    // that must store into and load from the strict-JSON FsCache unchanged.
    let dir = TempDir::new("fscache");
    let spec: ScenarioSpec = toml::from_str(
        r#"
        name = "untraced"
        package = "HighPerformance"

        [schedule]
        warmup = 0.5
        duration = 1.0
        trace_interval_ms = 0.0
        "#,
    )
    .expect("spec parses");
    let cold_runner =
        Runner::sequential().with_cache(FsCache::open(dir.path()).expect("cache opens"));
    let cold = cold_runner.run_spec(&spec).expect("cold run completes");
    let warm_runner =
        Runner::sequential().with_cache(FsCache::open(dir.path()).expect("cache reopens"));
    let warm = warm_runner.run_spec(&spec).expect("warm run completes");
    assert_eq!(cold.to_json(), warm.to_json());
    assert_eq!(
        warm_runner.stats().simulated,
        0,
        "warm run must be all hits"
    );
    assert_eq!(warm_runner.stats().cache_hits, 1);
    assert_eq!(warm.reports[0].summary().unwrap().trace_dropped, 0);
}

/// Regression (PR 7 satellite): driving the in-memory recorder through its
/// exact capacity boundary inside a full simulation fires interval-doubling
/// decimation exactly once, and the summary's `trace_dropped` accounts for
/// every sample a reader of `Simulation::trace` no longer sees — while a
/// streaming file sink (which never decimates) keeps the full series.
#[test]
fn decimation_boundary_in_full_simulation_accounts_for_dropped_samples() {
    use tbp_core::sim::builder::Workload;
    use tbp_core::sim::{SimulationBuilder, SimulationConfig};

    let cap = 40usize;
    let dir = TempDir::new("decimation-boundary");
    let path = dir.path().join("boundary.tbptrace");
    let mut sim = SimulationBuilder::new()
        .with_package(tbp_thermal::package::Package::mobile_embedded())
        .with_workload(Workload::sdr())
        .with_config(SimulationConfig {
            trace_interval: Some(Seconds::from_millis(100.0)),
            max_trace_samples: cap,
            ..SimulationConfig::paper_default()
        })
        .build()
        .expect("simulation builds");
    sim.attach_trace_sink(
        Box::new(FileSink::create(&path).expect("sink file creates")),
        Seconds::from_millis(100.0),
        TrackSelection::all(),
    )
    .expect("sink attaches");

    // 6 s at a 100 ms interval offers the 41st in-memory sample (the
    // capacity-crossing one) at ~4 s, then a handful more on the doubled
    // interval — long enough to cross the boundary once, far from twice.
    sim.run_for(Seconds::new(6.0)).expect("run completes");
    let summary = sim.summary();

    let rec = sim.trace();
    assert_eq!(rec.decimations(), 1, "boundary must decimate exactly once");
    assert!(
        (rec.interval().as_secs() - 0.2).abs() < 1e-12,
        "one decimation doubles the 100 ms interval"
    );
    // One keep-every-other pass over a full buffer drops exactly half.
    assert_eq!(rec.dropped(), (cap / 2) as u64);
    assert_eq!(
        summary.trace_dropped,
        rec.dropped(),
        "summary must report the recorder's drop count"
    );
    // The retained series still spans the whole run on a uniform grid.
    let times: Vec<f64> = rec.samples().iter().map(|s| s.time.as_secs()).collect();
    assert!(times.len() < cap);
    assert!(times.last().expect("samples retained") > &5.5);
    let d0 = times[1] - times[0];
    for w in times.windows(2) {
        assert!((w[1] - w[0] - d0).abs() < 1e-9, "grid must stay uniform");
    }
    let (retained, dropped) = (rec.samples().len() as u64, rec.dropped());

    // The streaming sink never decimates: the file holds every offered
    // sampling tick, so the reader-side count exceeds the in-memory one and
    // matches retained + dropped up to the two clocks' one-tick phase
    // offset (the recorder stores its first sample at the first step, the
    // sink fires a full interval after attach) plus the post-decimation
    // offers the in-memory recorder skipped.
    sim.detach_trace_sink().expect("sink finalises");
    let data = TraceReader::read_file(&path).expect("trace decodes");
    let file_samples = data
        .track(TrackKind::CoreTemperature, 0)
        .map(|t| t.times.len() as u64)
        .expect("temperature track present");
    assert!(
        file_samples > retained,
        "file keeps more than the decimated in-memory series"
    );
    assert!(
        file_samples >= retained + dropped,
        "reader-side count covers every sample the recorder ever stored"
    );
}
