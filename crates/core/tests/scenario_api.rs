//! Integration tests of the declarative Scenario API: serde round-trips
//! (TOML and JSON), sweep-axis expansion, registry resolution errors, and
//! the determinism of the parallel batch runner.

use tbp_core::experiments::{paper_scenarios, THRESHOLD_SWEEP};
use tbp_core::policy::DvfsOnlyPolicy;
use tbp_core::scenario::{load_dir, PolicyRegistry, Runner, ScenarioSpec, SweepSpec, WorkloadDecl};
use tbp_core::SimError;

use tbp_arch::units::Seconds;
use tbp_thermal::package::PackageKind;

fn full_spec() -> ScenarioSpec {
    ScenarioSpec::new("round-trip")
        .with_description("every section populated")
        .with_package(PackageKind::HighPerformance)
        .with_policy("stop-and-go", 2.5)
        .with_workload(WorkloadDecl::sdr_with_queue(11))
        .with_schedule(1.5, 3.0)
        .with_sweep(
            SweepSpec::default()
                .with_policies(["thermal-balancing", "stop-and-go"])
                .with_thresholds([1.0, 2.0])
                .with_packages([PackageKind::MobileEmbedded, PackageKind::HighPerformance])
                .with_queue_capacities([4, 11]),
        )
}

#[test]
fn toml_round_trip_preserves_every_field() {
    let spec = full_spec();
    let text = spec.to_toml_string();
    let back = ScenarioSpec::from_toml_str(&text).expect("serialized spec parses");
    assert_eq!(back, spec);
    // And a second serialization is textually stable.
    assert_eq!(back.to_toml_string(), text);
}

#[test]
fn json_round_trip_preserves_every_field() {
    let spec = full_spec();
    let text = spec.to_json_string();
    let back = ScenarioSpec::from_json_str(&text).expect("serialized spec parses");
    assert_eq!(back, spec);
}

#[test]
fn shipped_scenario_files_parse_and_round_trip() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
    let specs = load_dir(&dir).expect("scenarios/ directory loads");
    assert_eq!(
        specs.len(),
        10,
        "seven paper scenarios, two cross-workload ones, one phased"
    );
    for spec in &specs {
        let text = spec.to_toml_string();
        let back = ScenarioSpec::from_toml_str(&text)
            .unwrap_or_else(|e| panic!("round-trip of `{}` failed: {e}", spec.name));
        assert_eq!(
            &back, spec,
            "round-trip of `{}` changed the spec",
            spec.name
        );
    }
    // The shipped files start with the built-in constructors' runs, in the
    // same order; the cross-workload scenarios follow.
    let built_in = paper_scenarios(Seconds::new(20.0));
    let shipped_names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
    let built_in_names: Vec<&str> = built_in.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(&shipped_names[..built_in_names.len()], &built_in_names[..]);
    assert!(shipped_names.contains(&"video-analytics"));
    assert!(shipped_names.contains(&"dag-sweep"));
}

#[test]
fn third_party_workloads_run_from_toml_through_the_runner() {
    use tbp_streaming::workloads::{
        GeneratedWorkload, SyntheticGenerator, WorkloadGenerator, WorkloadParams, WorkloadRegistry,
    };
    struct Renamed;
    impl WorkloadGenerator for Renamed {
        fn name(&self) -> &str {
            "my-workload"
        }
        fn generate(
            &self,
            params: &WorkloadParams,
        ) -> Result<GeneratedWorkload, tbp_streaming::StreamError> {
            SyntheticGenerator.generate(params)
        }
    }
    let spec = ScenarioSpec::from_toml_str(
        r#"
        name = "custom"

        [workload]
        generator = "my-workload"
        seed = 5

        [schedule]
        warmup = 0.2
        duration = 0.4
        "#,
    )
    .expect("valid TOML");
    // Without the hook the name does not resolve…
    let err = Runner::new().run_spec(&spec).unwrap_err();
    assert!(err.to_string().contains("my-workload"), "{err}");
    // …with it, the scenario runs and the report carries the custom label.
    let mut registry = WorkloadRegistry::with_builtins();
    registry.register(Renamed);
    let batch = Runner::new()
        .with_workload_registry(registry)
        .run_spec(&spec)
        .expect("custom workload runs");
    assert_eq!(batch.reports[0].workload.as_deref(), Some("my-workload"));
}

#[test]
fn cross_workload_sweeps_run_and_label_their_reports() {
    use tbp_core::scenario::WorkloadKind;
    let spec = ScenarioSpec::new("matrix")
        .with_schedule(0.3, 0.6)
        .with_sweep(
            SweepSpec::default()
                .with_workloads([
                    WorkloadKind::Sdr,
                    WorkloadKind::Synthetic,
                    WorkloadKind::VideoAnalytics,
                    WorkloadKind::Dag,
                ])
                .with_policies(["thermal-balancing", "dvfs-only"]),
        );
    let batch = Runner::new().run_spec(&spec).expect("matrix runs");
    assert_eq!(batch.len(), 8);
    let labels: Vec<&str> = batch
        .reports
        .iter()
        .filter_map(|r| r.workload.as_deref())
        .collect();
    assert_eq!(
        labels,
        vec![
            "sdr",
            "sdr",
            "synthetic",
            "synthetic",
            "video-analytics",
            "video-analytics",
            "dag",
            "dag"
        ]
    );
    // Pipeline workloads deliver frames; the flat synthetic one does not.
    for report in &batch.reports {
        let summary = report.summary().expect("simulation outcome");
        match report.workload.as_deref() {
            Some("synthetic") => assert_eq!(summary.qos.frames_delivered, 0),
            _ => assert!(summary.qos.frames_delivered > 0),
        }
    }
    // The workload column lands in the CSV.
    let csv = batch.to_csv();
    assert!(csv.lines().next().unwrap().contains(",workload,"));
    assert!(csv.contains("video-analytics"));
}

#[test]
fn sweep_expansion_counts_multiply_across_axes() {
    let spec = full_spec();
    // 2 packages × 2 policies × 2 thresholds × 2 queues.
    assert_eq!(spec.expand().len(), 16);
    let sweep = spec.sweep.clone().unwrap();
    assert_eq!(sweep.cardinality(), 16);

    let figures = paper_scenarios(Seconds::new(20.0));
    let threshold_sweeps: Vec<_> = figures
        .iter()
        .filter(|s| s.name.starts_with("threshold-sweep"))
        .collect();
    assert_eq!(threshold_sweeps.len(), 2);
    for spec in threshold_sweeps {
        assert_eq!(spec.expand().len(), 3 * THRESHOLD_SWEEP.len());
    }
}

#[test]
fn unknown_policy_is_a_structured_error() {
    let spec = ScenarioSpec::new("bad").with_policy("does-not-exist", 1.0);
    match Runner::new().run_spec(&spec) {
        Err(SimError::UnknownPolicy { name, known }) => {
            assert_eq!(name, "does-not-exist");
            assert!(known.contains(&"thermal-balancing".to_string()));
        }
        Err(other) => panic!("expected UnknownPolicy, got {other:?}"),
        Ok(_) => panic!("unknown policy must not run"),
    }
}

#[test]
fn third_party_policies_run_through_a_custom_registry() {
    let mut registry = PolicyRegistry::with_builtins();
    registry.register("noop", |_| Ok(Box::new(DvfsOnlyPolicy::new())));
    let spec = ScenarioSpec::new("custom")
        .with_package(PackageKind::HighPerformance)
        .with_policy("noop", 2.0)
        .with_schedule(0.5, 1.0);
    let batch = Runner::new()
        .with_registry(registry)
        .run_spec(&spec)
        .expect("custom policy runs");
    let summary = batch.reports[0].summary().expect("simulation outcome");
    assert_eq!(summary.policy, "dvfs-only");
    assert_eq!(summary.migration.migrations, 0);
}

#[test]
fn parallel_and_sequential_batches_are_byte_identical() {
    // A threshold × policy × package grid, kept short: 2 × 2 × 2 = 8 runs.
    let spec = ScenarioSpec::new("determinism")
        .with_schedule(0.5, 1.0)
        .with_sweep(
            SweepSpec::default()
                .with_packages([PackageKind::MobileEmbedded, PackageKind::HighPerformance])
                .with_policies(["thermal-balancing", "stop-and-go"])
                .with_thresholds([1.0, 3.0]),
        );
    let parallel = Runner::new().run_spec(&spec).expect("parallel batch runs");
    let sequential = Runner::sequential()
        .run_spec(&spec)
        .expect("sequential batch runs");
    assert_eq!(parallel.len(), 8);
    assert_eq!(parallel, sequential);
    assert_eq!(parallel.to_json(), sequential.to_json());
    assert_eq!(parallel.to_csv(), sequential.to_csv());
    // Reports come back in expansion order, not completion order.
    assert_eq!(
        parallel.reports[0].scenario,
        "determinism[mobile/thermal-balancing/t1]"
    );
    assert_eq!(
        parallel.reports[7].scenario,
        "determinism[hiperf/stop-and-go/t3]"
    );
}

#[test]
fn batch_reports_round_trip_through_json() {
    let spec = ScenarioSpec::new("report-serde")
        .with_package(PackageKind::HighPerformance)
        .with_policy("dvfs-only", 2.0)
        .with_schedule(0.5, 1.0);
    let batch = Runner::new().run_spec(&spec).expect("batch runs");
    let json = batch.to_json();
    let back: tbp_core::scenario::BatchReport =
        serde_json::from_str(&json).expect("batch JSON parses");
    assert_eq!(back, batch);
}
