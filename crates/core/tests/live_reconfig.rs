//! Integration tests of the live-reconfiguration subsystem: phased scenario
//! specs, mid-run deltas through the runner, swap equivalence against static
//! specs, and cache behaviour of phased runs.

use std::sync::Arc;

use tbp_core::scenario::{
    MemCache, PhaseSpec, PolicyRegistry, Runner, ScenarioHash, ScenarioSpec, SpecDelta,
};
use tbp_core::SimError;
use tbp_thermal::package::PackageKind;

/// A quick high-performance-package spec (short schedule keeps tests fast).
fn quick(name: &str) -> ScenarioSpec {
    ScenarioSpec::new(name)
        .with_package(PackageKind::HighPerformance)
        .with_schedule(0.5, 1.5)
}

#[test]
fn phase_at_t0_is_byte_identical_to_the_static_spec() {
    // The acceptance bar of the reconfiguration subsystem: applying a delta
    // before the first step is *exactly* starting with it. The phased spec
    // leaves policy/threshold to a t = 0 phase; the static spec declares
    // them directly. Reports — JSON and CSV — must match byte for byte.
    let static_spec = quick("equiv").with_policy("stop-and-go", 2.0);
    let phased_spec = quick("equiv").with_phases([PhaseSpec::at(0.0)
        .with_policy("stop-and-go")
        .with_threshold(2.0)]);

    let a = Runner::sequential()
        .run_spec(&static_spec)
        .expect("static spec runs");
    let b = Runner::sequential()
        .run_spec(&phased_spec)
        .expect("phased spec runs");
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.to_csv(), b.to_csv());
    assert_eq!(a.reports[0].policy.as_deref(), Some("stop-and-go"));
    assert_eq!(a.reports[0].threshold, Some(2.0));
    assert_eq!(a.reports[0].summary().unwrap().reconfigs, 0);

    // Equivalent runs, but *not* equivalent cache keys: declaring phases
    // moves the spec to the v3 hash domain.
    assert_ne!(
        ScenarioHash::of(&static_spec).unwrap(),
        ScenarioHash::of(&phased_spec).unwrap()
    );

    // A t = 0 phase that changes the sensor period has no static-spec
    // equivalent and therefore stays live: it applies before the first step
    // and is counted as a reconfiguration.
    let sensor_spec =
        quick("sensor-t0").with_phases([PhaseSpec::at(0.0).with_sensor_period_ms(5.0)]);
    let batch = Runner::sequential()
        .run_spec(&sensor_spec)
        .expect("sensor-period phase runs");
    assert_eq!(batch.reports[0].summary().unwrap().reconfigs, 1);
}

#[test]
fn phased_specs_apply_their_deltas_in_order() {
    let spec = quick("phased")
        .with_policy("thermal-balancing", 1.0)
        .with_phases([
            PhaseSpec::at(0.8).with_threshold(3.0),
            PhaseSpec::at(1.2).with_policy("stop-and-go"),
            PhaseSpec::at(1.6).with_policy_period_ms(20.0),
        ]);
    let batch = Runner::new().run_spec(&spec).expect("phased spec runs");
    assert_eq!(batch.len(), 1);
    let report = &batch.reports[0];
    // Report metadata describes the *initial* configuration...
    assert_eq!(report.policy.as_deref(), Some("thermal-balancing"));
    assert_eq!(report.threshold, Some(1.0));
    // ...while the summary reflects what actually ran: all three deltas
    // applied, and the policy that finished the run is the swapped one.
    let summary = report.summary().expect("simulation outcome");
    assert_eq!(summary.reconfigs, 3);
    assert_eq!(summary.policy, "stop-and-go");
    // The CSV row carries the reconfiguration count.
    let csv = batch.to_csv();
    let header: Vec<&str> = csv.lines().next().unwrap().split(',').collect();
    let row: Vec<&str> = csv.lines().nth(1).unwrap().split(',').collect();
    let col = header.iter().position(|h| *h == "reconfigs").unwrap();
    assert_eq!(row[col], "3");

    // Phases at or beyond the end of the run never fire.
    let late = quick("late-phase").with_phases([PhaseSpec::at(100.0).with_threshold(2.0)]);
    let batch = Runner::new().run_spec(&late).expect("late phase runs");
    assert_eq!(batch.reports[0].summary().unwrap().reconfigs, 0);
}

#[test]
fn phased_runs_are_deterministic_and_cacheable() {
    let spec = quick("cache-phased").with_phases([
        PhaseSpec::at(0.7).with_threshold(1.0),
        PhaseSpec::at(1.1).with_policy("energy-balancing"),
    ]);
    let cache = Arc::new(MemCache::new());
    let runner = Runner::new().with_cache_arc(cache.clone());
    let cold = runner.run_spec(&spec).expect("cold run");
    assert_eq!(runner.stats().simulated, 1);
    assert_eq!(runner.stats().cache_hits, 0);
    let warm = runner.run_spec(&spec).expect("warm run");
    assert_eq!(runner.stats().simulated, 1, "warm run must not simulate");
    assert_eq!(runner.stats().cache_hits, 1);
    assert_eq!(cold.to_json(), warm.to_json());
    assert_eq!(cold.to_csv(), warm.to_csv());
    assert_eq!(cache.len(), 1);

    // And an uncached re-run from a fresh runner reproduces the same bytes
    // (deterministic phased execution, parallel runner included).
    let again = Runner::new().run_spec(&spec).expect("fresh run");
    assert_eq!(cold.to_json(), again.to_json());
}

#[test]
fn invalid_phase_tables_are_rejected() {
    // Out-of-order phase times.
    let unsorted = quick("unsorted").with_phases([
        PhaseSpec::at(1.0).with_threshold(2.0),
        PhaseSpec::at(0.5).with_threshold(3.0),
    ]);
    assert!(matches!(unsorted.validate_phases(), Err(SimError::Spec(_))));
    assert!(Runner::new().run_spec(&unsorted).is_err());
    // Duplicate times are not "ascending" either.
    let duplicated = quick("dup").with_phases([
        PhaseSpec::at(1.0).with_threshold(2.0),
        PhaseSpec::at(1.0).with_threshold(3.0),
    ]);
    assert!(duplicated.validate_phases().is_err());
    // A phase with no override.
    let empty = quick("empty-phase").with_phases([PhaseSpec::at(1.0)]);
    assert!(empty.validate_phases().is_err());
    // Negative and non-finite times.
    assert!(quick("neg")
        .with_phases([PhaseSpec::at(-1.0).with_threshold(2.0)])
        .validate_phases()
        .is_err());
    assert!(quick("nan")
        .with_phases([PhaseSpec::at(f64::NAN).with_threshold(2.0)])
        .validate_phases()
        .is_err());
    // Bad knob values.
    assert!(quick("bad-threshold")
        .with_phases([PhaseSpec::at(1.0).with_threshold(-2.0)])
        .validate_phases()
        .is_err());
    assert!(quick("bad-period")
        .with_phases([PhaseSpec::at(1.0).with_policy_period_ms(0.0)])
        .validate_phases()
        .is_err());
    // A valid table passes.
    let ok = quick("ok").with_phases([
        PhaseSpec::at(0.0).with_threshold(2.0),
        PhaseSpec::at(1.0).with_policy("stop-and-go"),
    ]);
    assert!(ok.validate_phases().is_ok());
    // An unknown policy in a *runtime* phase fails the run, not the parse.
    let unknown = quick("unknown").with_phases([PhaseSpec::at(0.9).with_policy("not-a-policy")]);
    assert!(unknown.validate_phases().is_ok());
    assert!(matches!(
        Runner::new().run_spec(&unknown),
        Err(SimError::UnknownPolicy { .. })
    ));
}

#[test]
fn phases_round_trip_through_toml_and_json() {
    let spec: ScenarioSpec = toml::from_str(
        r#"
        name = "phased-toml"
        package = "HighPerformance"

        [policy]
        name = "thermal-balancing"
        threshold = 1.0

        [schedule]
        warmup = 0.5
        duration = 1.5

        [[phases]]
        at = 1.0
        threshold = 3.0

        [[phases]]
        at = 1.5
        policy = "stop-and-go"
        policy_period_ms = 20.0
        "#,
    )
    .expect("valid TOML");
    let phases = spec.phases.as_ref().expect("phases parsed");
    assert_eq!(phases.len(), 2);
    assert_eq!(phases[0].at, 1.0);
    assert_eq!(phases[1].policy.as_deref(), Some("stop-and-go"));
    assert!(spec.validate_phases().is_ok());
    // TOML and JSON round trips preserve the phase table.
    let reparsed = ScenarioSpec::from_toml_str(&spec.to_toml_string()).unwrap();
    assert_eq!(reparsed, spec);
    let reparsed = ScenarioSpec::from_json_str(&spec.to_json_string()).unwrap();
    assert_eq!(reparsed, spec);
    // And the parsed spec actually runs its phases.
    let batch = Runner::new().run_spec(&spec).expect("phased TOML runs");
    assert_eq!(batch.reports[0].summary().unwrap().reconfigs, 2);
}

#[test]
fn sweeps_and_phases_compose() {
    // Phases ride along every expanded grid point: the sweep sets the
    // initial threshold, the phase retunes it mid-run.
    let spec = quick("swept-phases")
        .with_sweep(tbp_core::scenario::SweepSpec::default().with_thresholds([1.0, 2.0]))
        .with_phases([PhaseSpec::at(1.0).with_threshold(4.0)]);
    let cases = spec.expand();
    assert_eq!(cases.len(), 2);
    assert!(cases.iter().all(|c| c.phases.is_some()));
    let batch = Runner::new().run_spec(&spec).expect("swept phased runs");
    assert_eq!(batch.len(), 2);
    for report in &batch.reports {
        assert_eq!(report.summary().unwrap().reconfigs, 1);
    }
    // Grid points differ in their initial threshold but share the phase, so
    // their hashes must differ.
    assert_ne!(
        ScenarioHash::of(&cases[0]).unwrap(),
        ScenarioHash::of(&cases[1]).unwrap()
    );
}

#[test]
fn custom_registries_serve_live_swaps() {
    use tbp_core::policy::DvfsOnlyPolicy;

    // A policy known only to a custom registry must be reachable both at
    // build time and as a live-swap target.
    let mut registry = PolicyRegistry::with_builtins();
    registry.register("my-policy", |_| Ok(Box::new(DvfsOnlyPolicy::new())));
    let spec = quick("custom").with_phases([PhaseSpec::at(0.9).with_policy("my-policy")]);
    let batch = Runner::sequential()
        .with_registry(registry)
        .run_spec(&spec)
        .expect("custom registry serves the swap");
    let summary = batch.reports[0].summary().unwrap();
    assert_eq!(summary.reconfigs, 1);
    assert_eq!(summary.policy, "dvfs-only");
    // The default runner (global registry) cannot resolve the same swap.
    assert!(Runner::sequential().run_spec(&spec).is_err());
}

#[test]
fn fold_initial_phases_normalizes_t0_deltas() {
    let spec = quick("fold")
        .with_policy("thermal-balancing", 1.0)
        .with_phases([
            PhaseSpec::at(0.0)
                .with_policy("stop-and-go")
                .with_threshold(2.5),
            PhaseSpec::at(1.0).with_threshold(3.0),
        ]);
    let folded = spec.fold_initial_phases().expect("valid phases fold");
    // The t = 0 delta moved into the static policy section...
    let policy = folded.policy_spec();
    assert_eq!(policy.name, "stop-and-go");
    assert_eq!(policy.threshold, Some(2.5));
    // ...and only the runtime phase remains.
    let remaining = folded.phases.as_ref().expect("runtime phase kept");
    assert_eq!(remaining.len(), 1);
    assert_eq!(remaining[0].at, 1.0);
    // A spec whose only phase fires at t = 0 normalizes to a fully static
    // spec (no phases left).
    let only_t0 = quick("only-t0").with_phases([PhaseSpec::at(0.0).with_threshold(2.0)]);
    let folded = only_t0.fold_initial_phases().unwrap();
    assert!(folded.phases.is_none());
    assert_eq!(folded.threshold(), 2.0);
    // Folding a phase-free spec is the identity.
    let plain = quick("plain");
    assert_eq!(plain.fold_initial_phases().unwrap(), plain);
}

#[test]
fn spec_delta_describe_is_deterministic_and_complete() {
    use tbp_arch::units::Seconds;
    let delta = SpecDelta::new()
        .with_policy("stop-and-go")
        .with_threshold(2.0)
        .with_policy_period(Seconds::from_millis(20.0))
        .with_sensor_period(Seconds::from_millis(5.0));
    assert_eq!(
        delta.describe(),
        "policy=stop-and-go threshold=2 policy_period_ms=20 sensor_period_ms=5"
    );
    assert!(!delta.is_empty());
    assert!(SpecDelta::new().is_empty());
    // PhaseSpec::delta carries every knob over.
    let phase = PhaseSpec::at(3.0)
        .with_policy("stop-and-go")
        .with_threshold(2.0)
        .with_policy_period_ms(20.0)
        .with_sensor_period_ms(5.0);
    assert_eq!(phase.delta(), delta);
}
